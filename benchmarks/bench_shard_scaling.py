"""Sharded FOL engine: speedup vs. shard count and hot-shard recovery.

Two claims under test (ISSUE 2 acceptance criteria):

1. **Scaling** — with a balanced (hash/interleaved) partition and
   uniform keys, cycles/request improves monotonically from K=1 to
   K=4: each shard runs its FOL rounds over ~1/K of the batch and the
   batch's cost is the max over the concurrent shards, so per-request
   cost falls until vector start-up and the residual hot addresses
   dominate.  Higher skew flattens the curve — FOL serialises a hot
   address's conflicts on whichever shard owns it (Theorem 5 is per
   address, sharding cannot parallelise *within* one address).

2. **Rebalancing** — a contiguous range partition at Zipf skew 1.2
   concentrates the hot ranks on shard 0 and throughput decays toward
   the single-shard level; Megaphone-style live migration
   (``rebalance.py``) must recover at least half the throughput lost
   relative to the balanced partition.

Dual interface: a plain script (CI smoke job) and pytest-benchmark
wrappers.  Both write machine-readable results to ``BENCH_shard.json``
at the repo root::

    python benchmarks/bench_shard_scaling.py [--smoke] [--json PATH]
    pytest benchmarks/bench_shard_scaling.py --benchmark-only -s
"""

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.bench.reporting import format_table, write_json
from repro.runtime import StreamService, closed_loop_workload, make_batcher
from repro.shard import ShardCoordinator

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_shard.json"

SKEWS = (0.0, 0.8, 1.2)
SHARD_COUNTS = (1, 2, 4, 8)
TABLE_SIZE = 509
KEY_SPACE = 2048
N_CELLS = 256
BATCH_SIZE = 128
KINDS = ("hash", "list")


def run_sharded(
    *, n_requests, skew, shards, partitioner, rebalance, seed, kinds=KINDS
):
    """One closed-loop sharded run; returns (cycles/request, extras)."""
    rng = np.random.default_rng(seed)
    requests = closed_loop_workload(
        rng, n_requests, kinds=kinds, skew=skew,
        key_space=KEY_SPACE, n_cells=N_CELLS,
    )
    coordinator = ShardCoordinator.for_workload(
        requests,
        shards=shards,
        partitioner=partitioner,
        rebalance=rebalance,
        table_size=TABLE_SIZE,
        n_cells=N_CELLS,
        key_space=KEY_SPACE,
    )
    service = StreamService(
        coordinator, batcher=make_batcher("fixed", batch_size=BATCH_SIZE)
    )
    summary = service.run(requests).summary()
    assert summary["completed"] == n_requests
    cpr = service.now / n_requests
    return round(cpr, 2), {
        "migrations": coordinator.total_migrations,
        "cross_units": coordinator.total_cross,
        "batches": summary["batches"],
        "mean_shard_imbalance": round(
            float(summary.get("mean_shard_imbalance", 1.0)), 3
        ),
    }


def scaling_sweep(n_requests, seed):
    """cycles/request by skew x K, balanced (hash) partition."""
    out = {}
    for skew in SKEWS:
        for k in SHARD_COUNTS:
            cpr, _ = run_sharded(
                n_requests=n_requests, skew=skew, shards=k,
                partitioner="hash", rebalance=False, seed=seed,
            )
            out[f"skew{skew}_k{k}"] = cpr
    return out


def sort_sweep(n_requests, seed):
    """cycles/request for the registry-added "sort" kind, K=1..8: the
    kind rides the sharded engine purely through its spec module, so
    this sweep doubles as an extensibility regression check."""
    out = {}
    for k in SHARD_COUNTS:
        cpr, _ = run_sharded(
            n_requests=n_requests, skew=0.8, shards=k,
            partitioner="hash", rebalance=False, seed=seed,
            kinds=("sort",),
        )
        out[f"sort_k{k}"] = cpr
    return out


def rebalance_experiment(n_requests, seed, shards=4):
    """The hot-shard cell: balanced vs. hot (range) vs. hot+rebalance
    at Zipf 1.2, compared on throughput (requests per cycle)."""
    cells = {}
    for name, partitioner, rebalance in (
        ("balanced", "hash", False),
        ("hot", "range", False),
        ("rebalanced", "range", True),
    ):
        cpr, extras = run_sharded(
            n_requests=n_requests, skew=1.2, shards=shards,
            partitioner=partitioner, rebalance=rebalance, seed=seed,
        )
        cells[name] = {"cycles_per_request": cpr, **extras}
    thr = {name: 1.0 / c["cycles_per_request"] for name, c in cells.items()}
    lost = thr["balanced"] - thr["hot"]
    recovered = thr["rebalanced"] - thr["hot"]
    cells["throughput_lost"] = round(lost, 6)
    cells["throughput_recovered"] = round(recovered, 6)
    # The recovered share of the hot-vs-balanced throughput gap.  Live
    # migration can legitimately beat the balanced partition outright
    # (isolating hot bins lowers the max-over-shards cost), which made
    # the raw ratio read as a nonsense ">100% fraction" (4.506 in the
    # PR 2 numbers); the reported fraction is bounded to [0, 1.05] and
    # the unbounded ratio kept alongside for the curious.
    if lost > 0:
        raw = recovered / lost
        cells["recovered_ratio_raw"] = round(raw, 3)
        cells["recovered_fraction"] = round(min(max(raw, 0.0), 1.05), 3)
    else:
        cells["recovered_ratio_raw"] = None
        cells["recovered_fraction"] = None
    cells["shards"] = shards
    return cells


def check(payload):
    """The acceptance assertions; returns a list of failure strings."""
    failures = []
    scaling = payload["scaling"]
    k14 = [scaling["skew0.0_k1"], scaling["skew0.0_k2"], scaling["skew0.0_k4"]]
    if not (k14[0] > k14[1] > k14[2]):
        failures.append(
            f"cycles/request not monotone K=1->4 at uniform keys: {k14}"
        )
    reb = payload["rebalance"]
    frac = reb["recovered_fraction"]
    if frac is None:
        failures.append("range partition lost no throughput at skew 1.2")
    elif frac < 0.5:
        failures.append(
            f"rebalancing recovered only {frac:.0%} of the hot-shard loss"
        )
    return failures


def build_payload(n_requests, seed):
    return {
        "bench": "shard_scaling",
        "config": {
            "n_requests": n_requests,
            "seed": seed,
            "kinds": list(KINDS),
            "table_size": TABLE_SIZE,
            "key_space": KEY_SPACE,
            "n_cells": N_CELLS,
            "batch_size": BATCH_SIZE,
            "skews": list(SKEWS),
            "shard_counts": list(SHARD_COUNTS),
        },
        "scaling": scaling_sweep(n_requests, seed),
        "sort": sort_sweep(n_requests, seed),
        "rebalance": rebalance_experiment(n_requests, seed),
    }


def print_report(payload):
    scaling = payload["scaling"]
    rows = [
        [f"skew={skew}"] + [scaling[f"skew{skew}_k{k}"] for k in SHARD_COUNTS]
        for skew in SKEWS
    ]
    print()
    print(f"cycles/request vs shard count "
          f"({payload['config']['n_requests']} hash+list requests, "
          f"balanced partition, closed loop)")
    print(format_table(["workload"] + [f"K={k}" for k in SHARD_COUNTS], rows))
    sort = payload["sort"]
    print()
    print("cycles/request, sort-only workload (skew 0.8)")
    print(format_table(
        ["workload"] + [f"K={k}" for k in SHARD_COUNTS],
        [["sort"] + [sort[f"sort_k{k}"] for k in SHARD_COUNTS]],
    ))
    reb = payload["rebalance"]
    print()
    print(f"hot-shard recovery at Zipf 1.2, K={reb['shards']} "
          f"(range partition concentrates hot ranks on shard 0)")
    rows = [
        [name, reb[name]["cycles_per_request"], reb[name]["migrations"]]
        for name in ("balanced", "hot", "rebalanced")
    ]
    print(format_table(["partition", "cyc/req", "migrations"], rows))
    print(f"recovered fraction of lost throughput: "
          f"{reb['recovered_fraction']}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for the CI smoke job")
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON,
                        help=f"result path (default {DEFAULT_JSON})")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--requests", type=int, default=None,
                        help="override workload size")
    args = parser.parse_args(argv)

    n_requests = args.requests or (300 if args.smoke else 2000)
    payload = build_payload(n_requests, args.seed)
    print_report(payload)
    path = write_json(args.json, payload)
    print(f"\nwrote {path}")

    failures = check(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


# ----------------------------------------------------------------------
# pytest-benchmark wrappers (full sizes; also refresh BENCH_shard.json)
# ----------------------------------------------------------------------
def test_shard_scaling_and_rebalance(benchmark):
    payload = benchmark.pedantic(
        build_payload, args=(2000, 11), rounds=1, iterations=1
    )
    print_report(payload)
    write_json(DEFAULT_JSON, payload)
    for key, value in payload["scaling"].items():
        benchmark.extra_info[key] = value
    benchmark.extra_info["recovered_fraction"] = (
        payload["rebalance"]["recovered_fraction"]
    )
    assert check(payload) == []


if __name__ == "__main__":
    sys.exit(main())
