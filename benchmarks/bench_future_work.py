"""§6 future-work and transformation-layer benchmarks: graph connected
components, the vectorizing compiler's plans, and the ISA backend vs the
facade on the same algorithm."""

import numpy as np
import pytest

from repro.compiler import Loop, Store, add, const, inp, load, run_sequential, run_vectorized
from repro.graphs import ParentForest, scalar_components, vector_components
from repro.hashing import OpenHashTable, vector_open_insert
from repro.hashing.isa_program import isa_open_insert
from repro.machine import CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import BumpAllocator


def _graph_pair(n_nodes: int, n_edges: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n_nodes, size=n_edges)
    v = rng.integers(0, n_nodes, size=n_edges)
    cm = CostModel.s810()

    vvm = VectorMachine(Memory(2 * n_nodes + 64, cost_model=cm, seed=seed))
    vf = ParentForest(BumpAllocator(vvm.mem), n_nodes)
    vector_components(vvm, vf, u, v)

    svm = Memory(2 * n_nodes + 64, cost_model=cm, seed=seed)
    sf = ParentForest(BumpAllocator(svm), n_nodes)
    scalar_components(ScalarProcessor(svm), sf, u, v)

    assert vf.component_count() == sf.component_count()
    return svm.counter.total, vvm.counter.total


@pytest.mark.parametrize("n_nodes,n_edges", [(256, 512), (2048, 4096)])
def test_graph_components(benchmark, n_nodes, n_edges):
    scalar, vector = benchmark(_graph_pair, n_nodes, n_edges)
    benchmark.extra_info["acceleration"] = round(scalar / vector, 2)
    benchmark.extra_info["scalar_cycles"] = int(scalar)
    benchmark.extra_info["vector_cycles"] = int(vector)


def _histogram_pair(n: int, n_bins: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    k = rng.integers(0, n_bins, size=n).astype(np.int64)
    loop = Loop(
        body=[Store("h", inp("k"), add(load("h", inp("k")), const(1)))],
        inputs=("k",),
    )
    cm = CostModel.s810()
    regions = {"h": 100}

    vvm = VectorMachine(Memory(4096, cost_model=cm, seed=seed))
    run_vectorized(vvm, loop, n, {"k": k}, regions, work_offset=2000)

    svm = Memory(4096, cost_model=cm, seed=seed)
    run_sequential(ScalarProcessor(svm), loop, n, {"k": k}, regions)
    assert np.array_equal(
        vvm.mem.peek_range(100, n_bins), svm.peek_range(100, n_bins)
    )
    return svm.counter.total, vvm.counter.total


@pytest.mark.parametrize("n,n_bins", [(512, 256), (512, 8)])
def test_compiler_histogram(benchmark, n, n_bins):
    """The auto-vectorized RMW histogram: many bins = rare sharing
    (vector wins); 8 bins = heavy sharing (ordered FOL serialises)."""
    scalar, vector = benchmark(_histogram_pair, n, n_bins)
    benchmark.extra_info["acceleration"] = round(scalar / vector, 2)


def _backend_pair(seed: int = 0):
    rng = np.random.default_rng(seed)
    keys = rng.choice(100_000, size=260, replace=False)
    cm = CostModel.s810()

    vm1 = VectorMachine(Memory(1200, cost_model=cm, seed=seed))
    t1 = OpenHashTable(BumpAllocator(vm1.mem), 521)
    isa_open_insert(vm1, t1, keys, staging_base=600)

    vm2 = VectorMachine(Memory(1200, cost_model=cm, seed=seed))
    t2 = OpenHashTable(BumpAllocator(vm2.mem), 521)
    vector_open_insert(vm2, t2, keys)
    return vm1.counter.total, vm2.counter.total


def test_isa_vs_facade_backend(benchmark):
    """Two backends, one algorithm: the ISA interpreter's simulated
    cycle count must track the facade's (the interpreter itself is
    free; only machine operations cost cycles)."""
    isa_cycles, facade_cycles = benchmark(_backend_pair)
    ratio = isa_cycles / facade_cycles
    benchmark.extra_info["isa_over_facade"] = round(ratio, 2)
    assert 0.5 < ratio < 2.0
