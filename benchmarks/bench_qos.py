"""Multi-tenant QoS admission: worst-tenant tail latency vs global FIFO.

The tentpole claim under test (ISSUE 9): with one hot tenant (Zipf 1.2
keys, >= 70% of offered traffic) saturating a bounded queue, SLO-aware
admission — per-tenant depth caps + weighted-fair dequeue + deadline
-aware batch release (:class:`repro.runtime.qos.QoSPolicy` handed to
:class:`repro.runtime.queue.BoundedQueue`) — must cut the **worst
tenant's p99 latency by >= 30%** against global FIFO admission at equal
aggregate offered load, and raise Jain's fairness index over per-tenant
SLO attainment.

Why it works: under reject admission at saturation a global FIFO fills
to capacity ``C``, so *every* admitted request — light tenant included
— waits the full ``C x service_time`` drain.  Depth caps bound tenant
*t*'s backlog to ``burst x share_t x C`` while weighted-fair dequeue
serves it at rate ``share_t``, so its queueing delay is ``burst x C x
service_time`` — an improvement of about ``1 - burst`` on every
tenant's tail, bought by shedding the hot tenant's excess at the door
instead of queueing it.

The engine runs **retry-in-batch** (``carryover=False``): under
carryover, a Zipf-1.2 tenant's tail is set by FOL's one-winner-per-
address conflict serialisation *across* batches (hot-key duplicates
complete one per micro-batch, hundreds of batches deep) — a cost no
admission policy can touch.  Retry-in-batch resolves those conflicts
inside the batch, so the measured tail is queueing delay, the quantity
QoS admission actually bounds.

Two experiments, written to ``BENCH_qos.json``:

* **hot_tenant** — the acceptance scenario: per-tenant p50/p99,
  admission counters, SLO attainment and Jain fairness for the
  ``fifo`` and ``qos`` arms over the *identical* workload (same seed,
  same arrivals), plus the worst-tenant p99 improvement percentage;
* **burst_sweep** — the burst knob's trade: worst-tenant p99 and
  per-tenant admitted counts as ``burst`` tightens from 1.0 to 0.4
  (lower burst = tighter delay bound, more shedding).

Dual interface like the other benches::

    python benchmarks/bench_qos.py [--smoke] [--json PATH]
    pytest benchmarks/bench_qos.py --benchmark-only -s
"""

import argparse
import math
import sys
from pathlib import Path

import numpy as np

from repro.bench.reporting import format_table, write_json
from repro.runtime import (
    BoundedQueue,
    QoSPolicy,
    StreamService,
    TenantClass,
    make_batcher,
    tenant_workload,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_qos.json"

#: The acceptance scenario: tenant A is the hot tenant — Zipf 1.2 keys
#: and 70% of offered traffic; B is a light uniform tenant.  SLOs sit
#: between the QoS-bounded delay and the FIFO full-queue delay so
#: attainment separates the arms.
TENANTS = (
    TenantClass("A", share=0.7, skew=1.2, slo=40_000.0),
    TenantClass("B", share=0.3, skew=0.0, slo=40_000.0),
)
KINDS = ("hash",)  # no-kind-lint
KEY_SPACE = 2048
TABLE_SIZE = 509
BATCH_SIZE = 64
CAPACITY = 256
#: Open-loop mean inter-arrival gap in cycles — well past saturation,
#: so the queue stays full and admission policy is what differentiates
#: the arms.
MEAN_GAP = 30.0
BURST = 0.35
BURST_SWEEP = (1.0, 0.7, 0.5, 0.35)
TARGET_IMPROVEMENT = 30.0  # percent, worst-tenant p99 vs fifo


def _workload(n_requests, seed):
    rng = np.random.default_rng(seed)
    return tenant_workload(
        rng,
        n_requests,
        TENANTS,
        kinds=KINDS,
        key_space=KEY_SPACE,
        mean_gap=MEAN_GAP,
    )


def run_once(n_requests, seed, *, qos=False, burst=BURST):
    """One stream run over the tenant workload; ``qos=False`` is the
    global-FIFO baseline arm (tenants tagged, no policy)."""
    requests = _workload(n_requests, seed)
    policy = QoSPolicy(TENANTS, burst=burst) if qos else None
    queue = BoundedQueue(CAPACITY, admission="reject", qos=policy)
    service = StreamService.for_workload(
        requests,
        batcher=make_batcher("fixed", batch_size=BATCH_SIZE),
        queue=queue,
        table_size=TABLE_SIZE,
        seed=seed,
        carryover=False,  # keep hot-key conflicts inside the batch
    )
    metrics = service.run(requests)
    if not qos:
        # FIFO arm: report against the same weights/SLOs so attainment
        # and fairness are comparable.
        for t in TENANTS:
            metrics.tenant_weights.setdefault(t.name, t.share)
            if math.isfinite(t.slo):
                metrics.tenant_slos.setdefault(t.name, t.slo)
    return metrics, service


def worst_tenant_p99(cells):
    """Max per-tenant p99 over tenants with completions (NaN if none)."""
    vals = [
        c["p99_latency"]
        for c in cells.values()
        if math.isfinite(c["p99_latency"])
    ]
    return max(vals) if vals else float("nan")


def _arm_summary(metrics):
    cells = metrics.tenant_summary()
    return {
        "tenants": cells,
        "worst_tenant_p99": round(worst_tenant_p99(cells), 1),
        "jain_fairness": round(metrics.jain_fairness(), 4),
        "completed": metrics.total_completed,
        "p99_latency": round(metrics.latency_percentile(99), 1),
    }


# ----------------------------------------------------------------------
# experiments
# ----------------------------------------------------------------------
def hot_tenant_experiment(n_requests, seed):
    """The acceptance scenario: fifo vs qos over the identical
    workload (same seed => same tenants, keys and arrivals)."""
    out = {}
    for arm, qos in (("fifo", False), ("qos", True)):
        metrics, _ = run_once(n_requests, seed, qos=qos)
        out[arm] = _arm_summary(metrics)
    fifo, qos_arm = out["fifo"], out["qos"]
    out["improvement_pct"] = round(
        100.0
        * (1.0 - qos_arm["worst_tenant_p99"] / fifo["worst_tenant_p99"]),
        1,
    )
    out["target_improvement_pct"] = TARGET_IMPROVEMENT
    return out


def burst_sweep_experiment(n_requests, seed, bursts):
    """Worst-tenant p99 and admission vs the burst factor."""
    out = {}
    for burst in bursts:
        metrics, _ = run_once(n_requests, seed, qos=True, burst=burst)
        cells = metrics.tenant_summary()
        out[f"burst{burst:g}"] = {
            "burst": burst,
            "worst_tenant_p99": round(worst_tenant_p99(cells), 1),
            "jain_fairness": round(metrics.jain_fairness(), 4),
            "admitted": {
                name: cells[name].get("admitted", 0) for name in cells
            },
            "completed": metrics.total_completed,
        }
    return out


# ----------------------------------------------------------------------
def check(payload):
    """Acceptance assertions; returns a list of failure strings."""
    failures = []
    hot = payload["hot_tenant"]
    for arm in ("fifo", "qos"):
        cells = hot.get(arm, {}).get("tenants", {})
        for t in TENANTS:
            if t.name not in cells:
                failures.append(f"{arm} arm has no cell for tenant {t.name!r}")
            elif not math.isfinite(cells[t.name]["p99_latency"]):
                failures.append(
                    f"{arm} arm: tenant {t.name!r} recorded no completions"
                )
        if not math.isfinite(hot.get(arm, {}).get("jain_fairness", float("nan"))):
            failures.append(f"{arm} arm has no Jain fairness index")
    if hot["improvement_pct"] < TARGET_IMPROVEMENT:
        failures.append(
            f"worst-tenant p99 improved only {hot['improvement_pct']}% "
            f"over global FIFO (target >= {TARGET_IMPROVEMENT}%)"
        )
    if not payload["burst_sweep"]:
        failures.append("burst sweep is empty")
    return failures


def build_payload(n_requests, seed, bursts=BURST_SWEEP):
    return {
        "bench": "qos",
        "config": {
            "n_requests": n_requests,
            "seed": seed,
            "kinds": list(KINDS),
            "tenants": {
                t.name: {"share": t.share, "skew": t.skew, "slo": t.slo}
                for t in TENANTS
            },
            "key_space": KEY_SPACE,
            "table_size": TABLE_SIZE,
            "batch_size": BATCH_SIZE,
            "queue_capacity": CAPACITY,
            "admission": "reject",
            "carryover": False,
            "mean_gap": MEAN_GAP,
            "burst": BURST,
            "bursts": list(bursts),
            "target_improvement_pct": TARGET_IMPROVEMENT,
        },
        "hot_tenant": hot_tenant_experiment(n_requests, seed),
        "burst_sweep": burst_sweep_experiment(n_requests, seed, bursts),
    }


def print_report(payload):
    hot = payload["hot_tenant"]
    print()
    print(
        f"hot-tenant scenario: A=70% Zipf1.2 vs B=30% uniform, "
        f"open loop @ gap {MEAN_GAP:g} cyc, capacity {CAPACITY}, reject"
    )
    rows = []
    for arm in ("fifo", "qos"):
        for name, cell in hot[arm]["tenants"].items():
            rows.append(
                [
                    arm,
                    name,
                    cell.get("offered", 0),
                    cell.get("admitted", 0),
                    cell.get("rejected", 0),
                    cell["completed"],
                    f"{cell['p99_latency']:,.0f}",
                    f"{100 * cell.get('slo_attainment', 0.0):.1f}",
                ]
            )
    print(
        format_table(
            ["arm", "tenant", "offered", "admitted", "rejected",
             "completed", "p99 cyc", "attain%"],
            rows,
        )
    )
    print(
        f"worst-tenant p99: fifo {hot['fifo']['worst_tenant_p99']:,.0f} -> "
        f"qos {hot['qos']['worst_tenant_p99']:,.0f} "
        f"({hot['improvement_pct']}% better; target "
        f">= {TARGET_IMPROVEMENT}%)"
    )
    print(
        f"jain fairness (SLO attainment): fifo "
        f"{hot['fifo']['jain_fairness']} -> qos {hot['qos']['jain_fairness']}"
    )
    print()
    print("burst sweep (qos arm)")
    rows = [
        [
            f"{p['burst']:g}",
            f"{p['worst_tenant_p99']:,.0f}",
            p["jain_fairness"],
            p["admitted"].get("A", 0),
            p["admitted"].get("B", 0),
            p["completed"],
        ]
        for p in payload["burst_sweep"].values()
    ]
    print(
        format_table(
            ["burst", "worst p99", "jain", "A admitted", "B admitted",
             "completed"],
            rows,
        )
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for the CI smoke job")
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON,
                        help=f"result path (default {DEFAULT_JSON})")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--requests", type=int, default=None,
                        help="override workload size")
    args = parser.parse_args(argv)

    n_requests = args.requests or (1000 if args.smoke else 6000)
    bursts = BURST_SWEEP[::2] if args.smoke else BURST_SWEEP
    payload = build_payload(n_requests, args.seed, bursts)
    print_report(payload)
    path = write_json(args.json, payload)
    print(f"\nwrote {path}")

    if args.smoke:
        # Smoke sizes don't saturate long enough for the tail claim;
        # only the envelope and coverage are asserted.
        failures = [
            f for f in check(payload) if "improved only" not in f
        ]
    else:
        failures = check(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


# ----------------------------------------------------------------------
# pytest-benchmark wrappers (full sizes; also refresh BENCH_qos.json)
# ----------------------------------------------------------------------
def test_qos_hot_tenant(benchmark):
    payload = benchmark.pedantic(
        build_payload, args=(6000, 7), rounds=1, iterations=1
    )
    print_report(payload)
    write_json(DEFAULT_JSON, payload)
    benchmark.extra_info["improvement_pct"] = (
        payload["hot_tenant"]["improvement_pct"]
    )
    assert check(payload) == []


if __name__ == "__main__":
    sys.exit(main())
