"""Figure 14: acceleration ratio when entering multiple keys into a
pre-built random binary search tree, by initial tree size Ni and the
number of inserted keys.

Paper reference: ratios roughly 1–5, growing both with Ni (bigger trees
spread the keys, so fewer slot conflicts) and with the insert count
(longer vectors).  An empty initial tree is avoided because "all the
keys to be entered create conflict when the tree is empty".
"""

import pytest

from repro.bench import runner


@pytest.mark.parametrize("ni", [8, 32, 128, 512, 2048])
def test_fig14_bst_insert_500(benchmark, record_pair, ni):
    result = benchmark(runner.run_bst_pair, ni, 500, 0)
    record_pair(benchmark, result)


@pytest.mark.parametrize("n_insert", [25, 100, 500])
def test_fig14_bst_insert_count_sweep(benchmark, record_pair, n_insert):
    result = benchmark(runner.run_bst_pair, 128, n_insert, 0)
    record_pair(benchmark, result)


def test_fig14_accel_grows_with_ni(benchmark):
    """Shape claim: acceleration grows with the initial tree size."""

    def run():
        return [runner.run_bst_pair(ni, 300, seed=0).acceleration
                for ni in (8, 128, 2048)]

    accels = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["accels"] = accels
    assert accels[0] < accels[-1]
    assert accels[-1] > 1.0
