"""§4.1 ablation: the optimized probe recalculation
``(h + (key & 31) + 1) mod size`` vs. the original ``(h + 1) mod size``.

Paper claim: the optimized rule gives a larger acceleration ratio for
load factors between 0.5 and 0.98, because keys that collided at the
same slot scatter instead of re-colliding as a convoy.
"""

import pytest

from repro.bench import runner


@pytest.mark.parametrize("probe", ["original", "optimized"])
@pytest.mark.parametrize("load_factor", [0.5, 0.9, 0.98])
def test_probe_strategies(benchmark, record_pair, probe, load_factor):
    result = benchmark(
        runner.run_open_hashing_pair, 521, load_factor, 0, None, probe
    )
    record_pair(benchmark, result)


def test_optimized_beats_original_at_high_load(benchmark):
    """The paper's stated improvement, checked at the stressed end of
    the curve, averaged over seeds to drown the per-seed noise."""

    def run():
        orig, opt = 0.0, 0.0
        for seed in range(5):
            orig += runner.run_open_hashing_pair(
                521, 0.9, seed=seed, probe="original").acceleration
            opt += runner.run_open_hashing_pair(
                521, 0.9, seed=seed, probe="optimized").acceleration
        return orig / 5, opt / 5

    orig, opt = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["original"] = round(orig, 2)
    benchmark.extra_info["optimized"] = round(opt, 2)
    assert opt > orig
