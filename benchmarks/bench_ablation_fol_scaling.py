"""Theorems 4 and 6 ablation: FOL1's cycle cost is O(N) when sharing is
rare and O(N^2) when every element aliases one storage area.
"""

import numpy as np
import pytest

from repro.core import fol1
from repro.machine import CostModel, Memory, VectorMachine


def run_fol(n: int, regime: str) -> float:
    rng = np.random.default_rng(0)
    if regime == "no_sharing":
        v = rng.permutation(n).astype(np.int64) + 1
    elif regime == "all_shared":
        v = np.ones(n, dtype=np.int64)
    else:  # mixed: 10% of elements alias one hot address
        v = rng.permutation(n).astype(np.int64) + 1
        v[: n // 10] = 1
    vm = VectorMachine(Memory(n + 64, cost_model=CostModel.s810(), seed=0))
    fol1(vm, v)
    return vm.counter.total


@pytest.mark.parametrize("n", [256, 1024, 4096])
@pytest.mark.parametrize("regime", ["no_sharing", "mixed", "all_shared"])
def test_fol1_scaling(benchmark, n, regime):
    cycles = benchmark(run_fol, n, regime)
    benchmark.extra_info["cycles"] = int(cycles)
    benchmark.extra_info["cycles_per_n"] = round(cycles / n, 2)


def test_linear_vs_quadratic_regimes(benchmark):
    """Doubling N must roughly double no-sharing cycles but roughly
    quadruple all-shared cycles."""

    def run():
        return {
            "lin": (run_fol(512, "no_sharing"), run_fol(2048, "no_sharing")),
            "quad": (run_fol(512, "all_shared"), run_fol(2048, "all_shared")),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    lin_ratio = r["lin"][1] / r["lin"][0]
    quad_ratio = r["quad"][1] / r["quad"][0]
    benchmark.extra_info["linear_growth_4x_n"] = round(lin_ratio, 2)
    benchmark.extra_info["quadratic_growth_4x_n"] = round(quad_ratio, 2)
    assert lin_ratio < 8  # ~4x for 4x N
    assert quad_ratio > 10  # ~16x for 4x N
