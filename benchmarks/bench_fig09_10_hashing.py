"""Figures 9 and 10: multiple hashing into an empty open-addressing
table, CPU time and acceleration ratio vs. load factor, for table sizes
521 and 4099.

Paper reference points (Figure 10): acceleration peaks at load factor
0.5 — ≈5.2 for N=521 and ≈12.3 for N=4099 — and declines toward ≈1–2 as
the table approaches full.
"""

import pytest

from repro.bench import runner

PAPER_PEAKS = {521: 5.2, 4099: 12.3}


@pytest.mark.parametrize("table_size", [521, 4099])
@pytest.mark.parametrize("load_factor", [0.2, 0.5, 0.9, 0.98])
def test_fig9_10_hashing_pair(benchmark, record_pair, table_size, load_factor):
    result = benchmark(
        runner.run_open_hashing_pair, table_size, load_factor, seed=0
    )
    paper = PAPER_PEAKS[table_size] if load_factor == 0.5 else None
    record_pair(benchmark, result, paper=paper)


@pytest.mark.parametrize("table_size", [521, 4099])
def test_fig10_peak_shape(benchmark, record_pair, table_size):
    """The headline shape claim: the peak of the acceleration curve sits
    in the mid-load region, and the vector version wins there."""

    def run():
        return {
            lf: runner.run_open_hashing_pair(table_size, lf, seed=0).acceleration
            for lf in (0.1, 0.5, 0.98)
        }

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["curve"] = curve
    assert curve[0.5] > 1.0, "vector must win at the paper's peak point"
    assert curve[0.5] > curve[0.98], "curve must decline toward a full table"
