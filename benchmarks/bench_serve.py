"""Serving layer: measured wall-clock latency and saturation throughput.

Unlike every other bench in this directory, nothing here is a simulated
cycle: K real worker processes own their shard arenas in POSIX shared
memory and the numbers are seconds on the front-end's monotonic clock.
Two experiments (ISSUE 7 acceptance criteria):

1. **Saturation** — closed-loop (all arrivals at t=0) sort-weighted
   mixed workload for K in {1, 2, 4}.  The sort workload's displaced-run
   shift cost is superlinear in per-shard store size, so splitting the
   store across processes wins even on a single-CPU runner and K=4
   saturation throughput must exceed K=1.  (A conflict-free mix would
   *not* show this on one CPU: per-exchange IPC overhead times K wakeups
   eats the algorithmic win — which is itself a measurement the
   simulated backend cannot make.)
2. **Sub-saturation latency** — open-loop Poisson arrivals well below
   the K=1 saturation rate; p50/p99 arrival-to-completion latency as the
   front-end observes it (queueing + linger + transport + execution).
3. **Trace overhead** (ISSUE 10) — the same closed-loop run with the
   lifecycle recorder off vs on; the p99 latency delta is the cost of
   ``--trace`` and the target is ≤ 5%.  The traced arm's per-stage
   breakdown is recorded alongside.  (Wall-clock p99 on a shared 1-CPU
   runner is noisy; the recorded number is the measurement, the target
   a soft gate printed as PASS/WARN.)

Every run's merged worker end state is checked against the one-shot
scalar oracle; a divergence fails the bench.

Results go to ``BENCH_serve.json`` (schema checked by
``tools/check_bench_schema.py``)::

    python benchmarks/bench_serve.py [--smoke] [--json PATH]
"""

import argparse
import platform
import sys
from pathlib import Path

from repro.bench.reporting import format_table, write_json
from repro.serve import run_serve

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_serve.json"

WORKER_COUNTS = (1, 2, 4)

# Sort-weighted mix: sharding's algorithmic win (smaller per-shard
# sorted stores) has to outrun per-exchange IPC on a 1-CPU runner.
KINDS = ("hash", "sort", "xfer", "bst")
WEIGHTS = (1, 3, 1, 1)
SKEW = 1.2
KEY_SPACE = 4096
N_CELLS = 256
TABLE_SIZE = 509
BATCH_SIZE = 1024
N_REQUESTS = 6000
LATENCY_REQUESTS = 1200
LATENCY_RATE = 150.0  # rps, well below K=1 saturation
SEED = 0
TRACE_OVERHEAD_TARGET_PCT = 5.0


def _one_run(*, workers, requests, rate, batch_size):
    report = run_serve(
        workers=workers,
        backend="native",
        requests=requests,
        rate=rate,
        skew=SKEW,
        kinds=KINDS,
        weights=WEIGHTS,
        batch_size=batch_size,
        table_size=TABLE_SIZE,
        n_cells=N_CELLS,
        key_space=KEY_SPACE,
        seed=SEED,
        install_signal_handlers=False,
    )
    if report.divergence is not None:
        raise SystemExit(
            f"ORACLE DIVERGENCE at K={workers}: {report.divergence}"
        )
    if not report.completed:
        raise SystemExit(f"no requests completed at K={workers}")
    summary = report.metrics.summary()
    return {
        "workers": workers,
        "completed": summary["completed"],
        "exchanges": summary["exchanges"],
        "throughput_rps": round(summary["throughput_rps"], 1),
        "p50_latency_ms": round(summary["p50_latency_ms"], 2),
        "p99_latency_ms": round(summary["p99_latency_ms"], 2),
        "busy_seconds": round(summary["busy_seconds"], 3),
        "cross_shard_units": summary["cross_shard_units"],
        "fingerprint": report.state_fingerprint,
    }


def _trace_overhead(*, workers, requests, batch_size):
    """Run the identical closed-loop workload with the lifecycle
    recorder off and on; the p99 delta is the cost of ``--trace``."""
    rows = {}
    breakdown = None
    for arm, trace in (("off", False), ("on", True)):
        report = run_serve(
            workers=workers,
            backend="native",
            requests=requests,
            rate=None,
            skew=SKEW,
            kinds=KINDS,
            weights=WEIGHTS,
            batch_size=batch_size,
            table_size=TABLE_SIZE,
            n_cells=N_CELLS,
            key_space=KEY_SPACE,
            seed=SEED,
            install_signal_handlers=False,
            trace=trace,
        )
        if report.divergence is not None:
            raise SystemExit(
                f"ORACLE DIVERGENCE in trace-overhead arm {arm!r}: "
                f"{report.divergence}"
            )
        summary = report.metrics.summary()
        rows[arm] = {
            "p50_latency_ms": round(summary["p50_latency_ms"], 2),
            "p99_latency_ms": round(summary["p99_latency_ms"], 2),
            "throughput_rps": round(summary["throughput_rps"], 1),
        }
        if trace:
            breakdown = report.recorder.stage_breakdown()
            rows[arm]["events"] = len(report.recorder.events)
    off_p99 = rows["off"]["p99_latency_ms"]
    on_p99 = rows["on"]["p99_latency_ms"]
    overhead = (
        100.0 * (on_p99 - off_p99) / off_p99 if off_p99 > 0 else float("nan")
    )
    series = {
        "off": rows["off"],
        "on": rows["on"],
        "overhead_pct": round(overhead, 2),
        "target_pct": TRACE_OVERHEAD_TARGET_PCT,
        "stage_breakdown": breakdown,
    }
    verdict = (
        "PASS" if overhead <= TRACE_OVERHEAD_TARGET_PCT
        else "WARN (wall-clock noise on shared runners; see the recorded "
             "number)"
    )
    print(
        f"trace overhead (K={workers}, {requests} requests): "
        f"p99 {off_p99} ms off -> {on_p99} ms on "
        f"({overhead:+.1f}%, target <= {TRACE_OVERHEAD_TARGET_PCT:g}%) "
        f"{verdict}"
    )
    return series


def _series_table(title, rows):
    print(f"\n== {title} ==")
    headers = ["K", "completed", "rps", "p50 ms", "p99 ms", "busy s", "cross"]
    print(
        format_table(
            headers,
            [
                [
                    r["workers"], r["completed"], r["throughput_rps"],
                    r["p50_latency_ms"], r["p99_latency_ms"],
                    r["busy_seconds"], r["cross_shard_units"],
                ]
                for r in rows
            ],
        )
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="~5 s 2-worker sanity run for CI (skips the K sweep)",
    )
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON)
    args = parser.parse_args(argv)

    config = {
        "kinds": list(KINDS),
        "weights": list(WEIGHTS),
        "skew": SKEW,
        "key_space": KEY_SPACE,
        "n_cells": N_CELLS,
        "table_size": TABLE_SIZE,
        "batch_size": BATCH_SIZE,
        "n_requests": N_REQUESTS,
        "latency_requests": LATENCY_REQUESTS,
        "latency_rate_rps": LATENCY_RATE,
        "seed": SEED,
        "worker_counts": list(WORKER_COUNTS),
        "backend": "native",
        "machine": platform.machine(),
        "smoke": args.smoke,
    }

    if args.smoke:
        row = _one_run(workers=2, requests=1200, rate=None, batch_size=512)
        _series_table("serve smoke (K=2, closed loop)", [row])
        overhead = _trace_overhead(workers=2, requests=800, batch_size=256)
        write_json(
            args.json,
            {
                "bench": "serve",
                "config": config,
                "saturation": {"K=2": row},
                "trace_overhead": overhead,
            },
        )
        print(f"\nwrote {args.json}")
        print("smoke OK: completed > 0, merged state matches the oracle")
        return 0

    saturation = {}
    for k in WORKER_COUNTS:
        row = _one_run(
            workers=k, requests=N_REQUESTS, rate=None, batch_size=BATCH_SIZE
        )
        saturation[f"K={k}"] = row
        print(
            f"saturation K={k}: {row['throughput_rps']} rps, "
            f"p99 {row['p99_latency_ms']} ms"
        )

    latency = {}
    for k in WORKER_COUNTS:
        row = _one_run(
            workers=k,
            requests=LATENCY_REQUESTS,
            rate=LATENCY_RATE,
            batch_size=256,
        )
        latency[f"K={k}"] = row
        print(
            f"open-loop K={k} @ {LATENCY_RATE:.0f} rps: "
            f"p50 {row['p50_latency_ms']} ms, p99 {row['p99_latency_ms']} ms"
        )

    _series_table("saturation throughput (closed loop)", list(saturation.values()))
    _series_table(
        f"sub-saturation latency (open loop, {LATENCY_RATE:.0f} rps offered)",
        list(latency.values()),
    )

    overhead = _trace_overhead(
        workers=2, requests=LATENCY_REQUESTS, batch_size=256
    )

    write_json(
        args.json,
        {"bench": "serve", "config": config,
         "saturation": saturation, "latency": latency,
         "trace_overhead": overhead},
    )
    print(f"\nwrote {args.json}")

    k1 = saturation["K=1"]["throughput_rps"]
    k4 = saturation["K=4"]["throughput_rps"]
    if not k4 > k1:
        print(
            f"FAIL: K=4 saturation ({k4} rps) does not exceed K=1 ({k1} rps)",
            file=sys.stderr,
        )
        return 1
    print(f"K=4/K=1 saturation speedup: {k4 / k1:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
