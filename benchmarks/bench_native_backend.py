"""Native backend: real wall-clock throughput vs the cycle simulator.

The ``native`` backend exists to answer "how fast does the paper's
method actually run on this machine?" — it executes the same FOL plans
as the ``sim`` backend with all cycle accounting compiled out and the
per-round op dispatch fused into a recorded loop.  Three claims under
test (ISSUE 6 acceptance criteria):

1. **Speed** — for every workload kind (and the full mix), native
   requests/sec beats the calibrated simulator's wall-clock
   requests/sec.
2. **Parity** — every native run ends with a machine-state fingerprint
   bit-identical to the sim run of the same seeded workload (speed
   never buys a different answer).
3. **Recorded-loop ablation** — replaying the fused round is no slower
   than interpreting the same plan op-by-op through the facade
   (``--no-recorded-loop``), and ends in the same state.
4. **Auto mode** — ``recorded_loop="auto"`` calibrates each plan shape
   once on a scratch machine, keeps the faster path, stays
   bit-identical, and the chosen mode is recorded per workload (kinds
   whose specs drive the facade directly — bst, sort — never reach the
   recorded loop, so their cell says so instead of a mode).

Dual interface: a plain script (CI smoke job) and a pytest-benchmark
wrapper.  Both write machine-readable results to ``BENCH_native.json``
at the repo root::

    python benchmarks/bench_native_backend.py [--smoke] [--json PATH]
    pytest benchmarks/bench_native_backend.py --benchmark-only -s
"""

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.backend import get_backend
from repro.backend.native import NativeBackend
from repro.bench.reporting import format_table, write_json
from repro.runtime import StreamService, closed_loop_workload, make_batcher

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_native.json"

KINDS = ("hash", "bst", "list", "xfer", "sort")
TABLE_SIZE = 509
KEY_SPACE = 2048
N_CELLS = 256
BATCH_SIZE = 128
SKEW = 0.8


def _arms():
    """(label, backend factory) for the four execution arms."""
    return (
        ("sim", lambda: get_backend("sim")),
        ("native", lambda: NativeBackend(recorded_loop=True)),
        ("native_interpreted", lambda: NativeBackend(recorded_loop=False)),
        ("native_auto", lambda: NativeBackend(recorded_loop="auto")),
    )


def run_arm(kinds, backend, *, n_requests, seed, repeats):
    """Best-of-``repeats`` wall-clock for one backend arm; returns
    (requests/sec, state fingerprint, completed count)."""
    best = float("inf")
    fingerprint = None
    for _ in range(repeats):
        rng = np.random.default_rng(seed)
        requests = closed_loop_workload(
            rng, n_requests, kinds=kinds, skew=SKEW,
            key_space=KEY_SPACE, n_cells=N_CELLS,
        )
        service = StreamService.for_workload(
            requests,
            batcher=make_batcher("fixed", batch_size=BATCH_SIZE),
            table_size=TABLE_SIZE,
            n_cells=N_CELLS,
            backend=backend,
        )
        t0 = time.perf_counter()
        summary = service.run(requests).summary()
        best = min(best, time.perf_counter() - t0)
        assert summary["completed"] == n_requests
        fp = service.executor.state_fingerprint()
        assert fingerprint is None or fp == fingerprint
        fingerprint = fp
    return round(n_requests / best, 1), fingerprint


def build_payload(n_requests, seed, repeats):
    workloads = [(kind, (kind,)) for kind in KINDS] + [("mix", KINDS)]
    results = {}
    for name, kinds in workloads:
        cells = {}
        fingerprints = {}
        for label, make_backend in _arms():
            backend = make_backend()
            rate, fp = run_arm(
                kinds, backend,
                n_requests=n_requests, seed=seed, repeats=repeats,
            )
            cells[f"{label}_req_per_sec"] = rate
            fingerprints[label] = fp
            if label == "native_auto":
                # The calibration outcome per plan shape this workload
                # exercised; facade-driven kinds never reach the loop.
                cells["chosen_loop_modes"] = (
                    backend.chosen_modes
                    or {"all": "facade (no FolPlan rounds)"}
                )
        cells["state_match"] = len(set(fingerprints.values())) == 1
        cells["speedup_vs_sim"] = round(
            cells["native_req_per_sec"] / cells["sim_req_per_sec"], 2
        )
        cells["recorded_loop_speedup"] = round(
            cells["native_req_per_sec"] / cells["native_interpreted_req_per_sec"],
            2,
        )
        results[name] = cells
    return {
        "bench": "native_backend",
        "config": {
            "n_requests": n_requests,
            "seed": seed,
            "repeats": repeats,
            "kinds": list(KINDS),
            "skew": SKEW,
            "table_size": TABLE_SIZE,
            "key_space": KEY_SPACE,
            "n_cells": N_CELLS,
            "batch_size": BATCH_SIZE,
        },
        "workloads": results,
    }


def check(payload):
    """The acceptance assertions; returns a list of failure strings."""
    failures = []
    for name, cells in payload["workloads"].items():
        if not cells["state_match"]:
            failures.append(f"{name}: end states diverge across backends")
        if not cells.get("chosen_loop_modes"):
            failures.append(f"{name}: auto arm recorded no loop choice")
        if cells["speedup_vs_sim"] <= 1.0:
            failures.append(
                f"{name}: native ({cells['native_req_per_sec']} req/s) did "
                f"not beat sim ({cells['sim_req_per_sec']} req/s)"
            )
    return failures


def print_report(payload):
    rows = [
        [
            name,
            cells["sim_req_per_sec"],
            cells["native_req_per_sec"],
            cells["native_interpreted_req_per_sec"],
            cells["native_auto_req_per_sec"],
            f"{cells['speedup_vs_sim']}x",
            f"{cells['recorded_loop_speedup']}x",
            "yes" if cells["state_match"] else "NO",
        ]
        for name, cells in payload["workloads"].items()
    ]
    print()
    print(f"wall-clock requests/sec, {payload['config']['n_requests']} "
          f"closed-loop requests per workload (best of "
          f"{payload['config']['repeats']})")
    print(format_table(
        ["workload", "sim", "native", "native(no-rec)", "native(auto)",
         "native/sim", "rec/no-rec", "states match"],
        rows,
    ))
    print()
    print("auto-mode loop choice per workload:")
    for name, cells in payload["workloads"].items():
        modes = ", ".join(
            f"{shape}={mode}"
            for shape, mode in cells["chosen_loop_modes"].items()
        )
        print(f"  {name}: {modes}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for the CI smoke job")
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON,
                        help=f"result path (default {DEFAULT_JSON})")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--requests", type=int, default=None,
                        help="override workload size")
    args = parser.parse_args(argv)

    n_requests = args.requests or (300 if args.smoke else 3000)
    repeats = 2 if args.smoke else 3
    payload = build_payload(n_requests, args.seed, repeats)
    print_report(payload)
    path = write_json(args.json, payload)
    print(f"\nwrote {path}")

    failures = check(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


# ----------------------------------------------------------------------
# pytest-benchmark wrapper (full sizes; also refreshes BENCH_native.json)
# ----------------------------------------------------------------------
def test_native_backend_throughput(benchmark):
    payload = benchmark.pedantic(
        build_payload, args=(3000, 11, 3), rounds=1, iterations=1
    )
    print_report(payload)
    write_json(DEFAULT_JSON, payload)
    for name, cells in payload["workloads"].items():
        benchmark.extra_info[f"{name}_speedup_vs_sim"] = cells["speedup_vs_sim"]
    assert check(payload) == []


if __name__ == "__main__":
    sys.exit(main())
