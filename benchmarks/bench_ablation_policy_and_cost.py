"""Design-choice ablations from DESIGN.md §5: scatter conflict policy
and cost-model sensitivity."""

import pytest

from repro.bench import runner
from repro.machine import CostModel


@pytest.mark.parametrize("policy", ["arbitrary", "last", "first"])
def test_conflict_policy_hashing(benchmark, record_pair, policy):
    """FOL is correct under any ELS policy; cycle counts barely move."""
    result = benchmark(
        runner.run_open_hashing_pair, 521, 0.5, 0, None, "optimized", policy
    )
    record_pair(benchmark, result)


@pytest.mark.parametrize("model", ["s810", "uniform"])
def test_cost_model_sensitivity(benchmark, record_pair, model):
    """The factor-of-ten wins require a weak-scalar machine: under the
    flat `uniform` model the vector formulation stops paying."""
    cm = CostModel.s810() if model == "s810" else CostModel.uniform()
    result = benchmark(runner.run_open_hashing_pair, 4099, 0.5, 0, cm)
    record_pair(benchmark, result)


def test_policy_equivalence_summary(benchmark):
    def run():
        return {
            p: runner.run_open_hashing_pair(521, 0.5, seed=0, policy=p).acceleration
            for p in ("arbitrary", "last", "first")
        }

    accels = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["accels"] = accels
    values = list(accels.values())
    assert max(values) / min(values) < 1.6  # same ballpark under all policies


@pytest.mark.parametrize("n", [2**6, 2**10, 2**14])
def test_strip_mining_ablation(benchmark, record_pair, n):
    """How much of Table 1's growth-with-N is start-up amortisation?
    With 256-element vector registers (strip-mined start-up), the
    address-calculation sort's acceleration saturates instead of
    growing past N ≈ 2^10."""
    cm = CostModel.s810_sectioned(256)
    result = benchmark(runner.run_address_calc_pair, n, 0, cm)
    record_pair(benchmark, result)


def test_strip_mining_saturation_shape(benchmark):
    def run():
        cm = CostModel.s810_sectioned(256)
        return [runner.run_address_calc_pair(n, seed=0, cost=cm).acceleration
                for n in (2**6, 2**10, 2**14)]

    accels = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["accels"] = accels
    # grows to one section's worth, then flattens: 2^14 gains little
    # over 2^10 compared with the unsectioned model's continued growth
    assert accels[1] > accels[0]
    assert accels[2] < accels[1] * 1.5


def test_label_strategy_ablation(benchmark):
    """§3.2's simplification: fusing label-write with main processing
    (keys as labels, Figure 8) vs the generic unfused FOL1 with a
    separate work area.  The fused form must be cheaper."""
    import numpy as np

    from repro.hashing import OpenHashTable, vector_open_insert
    from repro.hashing.open_addressing import vector_open_insert_unfused
    from repro.machine import Memory, VectorMachine
    from repro.mem import BumpAllocator

    def run():
        rng = np.random.default_rng(0)
        keys = rng.choice(100_000, size=2049, replace=False)
        cm = CostModel.s810()

        vm1 = VectorMachine(Memory(2 * 4099 + 128, cost_model=cm, seed=1))
        a1 = BumpAllocator(vm1.mem)
        t1 = OpenHashTable(a1, 4099)
        work = a1.alloc(4099, "fol_work")
        vector_open_insert_unfused(vm1, t1, keys, work)

        vm2 = VectorMachine(Memory(4099 + 128, cost_model=cm, seed=1))
        t2 = OpenHashTable(BumpAllocator(vm2.mem), 4099)
        vector_open_insert(vm2, t2, keys)
        return vm1.counter.total, vm2.counter.total

    unfused, fused = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["unfused_cycles"] = int(unfused)
    benchmark.extra_info["fused_cycles"] = int(fused)
    benchmark.extra_info["fusion_saves"] = round(1 - fused / unfused, 3)
    assert fused < unfused
