"""Bin-granular live migration: rate x latency frontier and recovery.

The tentpole claim under test (ISSUE 8): with two-level bin routing
(:mod:`repro.shard.partition`) and the pacing migration controller
(:mod:`repro.shard.migration`), a K=8 sharded engine on Zipf-1.2
hash+list traffic must beat the static balanced partition's 217.8
cycles/request (the ``skew1.2_k8`` cell of BENCH_shard.json) by at
least 20% — i.e. reach <= ~174.2 steady-state cycles/request — because
re-homing hot bins lets the max-over-shards batch cost stop tracking
the hottest shard.

Three experiments, written to ``BENCH_migration.json``:

* **steady_state** — closed-loop cycles/request for the static
  baseline and each pacing strategy (identical workload, seed and
  batch policy as the BENCH_shard baseline cell), plus the improvement
  percentage the acceptance criterion reads;
* **frontier** — offered rate x achieved throughput x p50/p99 latency
  for each strategy and the no-migration baseline, swept over open-loop
  arrival gaps from under-load to past saturation.  The frontier shows
  what pacing buys: how much offered load each configuration absorbs
  before latency departs;
* **reconfiguration** — the p99 spike while bins are in flight: per
  batch cycles/lane, split into migration-active batches (a handoff
  ran or parked requests replayed) vs quiet batches, reported as the
  active-p99 / quiet-median ratio per strategy.

Dual interface like the other benches::

    python benchmarks/bench_migration.py [--smoke] [--json PATH]
    pytest benchmarks/bench_migration.py --benchmark-only -s
"""

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.bench.reporting import format_table, write_json
from repro.runtime import (
    StreamService,
    closed_loop_workload,
    make_batcher,
    open_loop_workload,
)
from repro.shard import PACING_STRATEGIES, ShardCoordinator

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_migration.json"

#: Workload/engine config — identical to the BENCH_shard.json scaling
#: sweep whose skew1.2_k8 cell is the acceptance baseline.
SHARDS = 8
SKEW = 1.2
TABLE_SIZE = 509
KEY_SPACE = 2048
N_CELLS = 256
BATCH_SIZE = 128
KINDS = ("hash", "list")
#: The static balanced-partition cost this bench must improve on
#: (BENCH_shard.json ``scaling.skew1.2_k8``).
BASELINE_CPR = 217.8
TARGET_IMPROVEMENT = 20.0  # percent

#: Rebalancer tuning for the K=8 runs: a higher trigger threshold
#: plans fewer, better-timed bin moves (the decayed load signal at K=8
#: is noisy early on; eager plans chase transients and churn).
REBALANCE = dict(
    rebalance_threshold=2.2, rebalance_cooldown=4, rebalance_max_moves=8
)

#: Open-loop mean inter-arrival gaps (cycles): ~0.5x to ~1.2x the
#: engine's service rate, so the sweep crosses saturation.
MEAN_GAPS = (400.0, 250.0, 180.0, 140.0)


def _workload(n_requests, seed, mean_gap=None):
    rng = np.random.default_rng(seed)
    common = dict(
        kinds=KINDS, skew=SKEW, key_space=KEY_SPACE, n_cells=N_CELLS
    )
    if mean_gap is None:
        return closed_loop_workload(rng, n_requests, **common)
    return open_loop_workload(rng, n_requests, mean_gap=mean_gap, **common)


def run_once(n_requests, seed, *, strategy=None, mean_gap=None):
    """One K=8 run; ``strategy=None`` disables migration entirely.
    Returns (metrics, coordinator, service)."""
    requests = _workload(n_requests, seed, mean_gap)
    coordinator = ShardCoordinator.for_workload(
        requests,
        shards=SHARDS,
        partitioner="hash",  # no-kind-lint
        rebalance=strategy is not None,
        table_size=TABLE_SIZE,
        n_cells=N_CELLS,
        key_space=KEY_SPACE,
        migration=strategy or "all-at-once",
        **REBALANCE,
    )
    service = StreamService(
        coordinator, batcher=make_batcher("fixed", batch_size=BATCH_SIZE)
    )
    metrics = service.run(requests)
    assert metrics.summary()["completed"] == n_requests
    return metrics, coordinator, service


# ----------------------------------------------------------------------
# experiments
# ----------------------------------------------------------------------
def steady_state_experiment(n_requests, seed):
    """Closed-loop cycles/request, static baseline vs each strategy —
    the same metric as BENCH_shard's scaling cells."""
    out = {"baseline_bench_shard": BASELINE_CPR}
    for arm in (None,) + tuple(PACING_STRATEGIES):
        metrics, coord, service = run_once(n_requests, seed, strategy=arm)
        name = arm or "static"
        out[name] = {
            "cycles_per_request": round(service.now / n_requests, 2),
            "migrations": coord.total_migrations,
            "migration_skips": coord.migration_skips,
            "parked": sum(b.parked for b in metrics.batches),
            "migration_cycles": round(coord.migration_cycles, 1),
        }
    best = min(
        out[s]["cycles_per_request"] for s in PACING_STRATEGIES
    )
    out["best_cycles_per_request"] = best
    out["improvement_pct"] = round(
        100.0 * (1.0 - best / BASELINE_CPR), 1
    )
    return out


def frontier_experiment(n_requests, seed, mean_gaps):
    """Offered rate x achieved throughput x latency per strategy."""
    out = {}
    for arm in (None,) + tuple(PACING_STRATEGIES):
        name = arm or "static"
        points = []
        for gap in mean_gaps:
            metrics, coord, service = run_once(
                n_requests, seed, strategy=arm, mean_gap=gap
            )
            points.append(
                {
                    "mean_gap": gap,
                    "offered_rate": round(1.0 / gap, 6),
                    "achieved_rate": round(n_requests / service.now, 6),
                    "cycles_per_request": round(service.now / n_requests, 2),
                    "p50_latency": round(metrics.latency_percentile(50), 1),
                    "p99_latency": round(metrics.latency_percentile(99), 1),
                    "migrations": coord.total_migrations,
                    "parked": sum(b.parked for b in metrics.batches),
                }
            )
        out[name] = points
    return out


def reconfiguration_experiment(n_requests, seed):
    """The p99 spike while bins are in flight, per strategy: per-batch
    cycles/lane over migration-active batches vs quiet batches."""
    out = {}
    for arm in PACING_STRATEGIES:
        metrics, coord, service = run_once(n_requests, seed, strategy=arm)
        per_lane = lambda b: b.cycles / b.size  # noqa: E731
        # Only full-ish batches: the closed-loop drain phase runs
        # near-empty batches whose per-lane cost says nothing about
        # reconfiguration.
        full = [b for b in metrics.batches if b.size >= BATCH_SIZE // 2]
        active = [
            per_lane(b) for b in full if b.migrations or b.parked
        ]
        quiet = [
            per_lane(b) for b in full if not (b.migrations or b.parked)
        ]
        spike = (
            round(
                float(np.percentile(active, 99)) / float(np.median(quiet)), 3
            )
            if active and quiet
            else None
        )
        out[arm] = {
            "active_batches": len(active),
            "quiet_batches": len(quiet),
            "active_p99_cyc_per_lane": (
                round(float(np.percentile(active, 99)), 1) if active else None
            ),
            "quiet_median_cyc_per_lane": (
                round(float(np.median(quiet)), 1) if quiet else None
            ),
            "p99_spike_ratio": spike,
        }
    return out


# ----------------------------------------------------------------------
def check(payload):
    """Acceptance assertions; returns a list of failure strings."""
    failures = []
    steady = payload["steady_state"]
    if steady["improvement_pct"] < TARGET_IMPROVEMENT:
        failures.append(
            f"steady-state cyc/req improved only "
            f"{steady['improvement_pct']}% over the {BASELINE_CPR} "
            f"baseline (target >= {TARGET_IMPROVEMENT}%)"
        )
    frontier = payload["frontier"]
    for arm in PACING_STRATEGIES:
        if arm not in frontier or not frontier[arm]:
            failures.append(f"frontier missing strategy {arm!r}")
    recon = payload["reconfiguration"]
    for arm in PACING_STRATEGIES:
        if recon.get(arm, {}).get("active_batches", 0) == 0:
            failures.append(
                f"no migration-active batches recorded for {arm!r} — "
                f"the reconfiguration window was never observed"
            )
    return failures


def build_payload(n_requests, seed, mean_gaps=MEAN_GAPS):
    return {
        "bench": "migration",
        "config": {
            "n_requests": n_requests,
            "seed": seed,
            "kinds": list(KINDS),
            "shards": SHARDS,
            "skew": SKEW,
            "table_size": TABLE_SIZE,
            "key_space": KEY_SPACE,
            "n_cells": N_CELLS,
            "batch_size": BATCH_SIZE,
            "partitioner": "hash",  # no-kind-lint
            "strategies": list(PACING_STRATEGIES),
            "mean_gaps": list(mean_gaps),
            "baseline_cycles_per_request": BASELINE_CPR,
            "target_improvement_pct": TARGET_IMPROVEMENT,
            **REBALANCE,
        },
        "steady_state": steady_state_experiment(n_requests, seed),
        "frontier": frontier_experiment(n_requests, seed, mean_gaps),
        "reconfiguration": reconfiguration_experiment(n_requests, seed),
    }


def print_report(payload):
    steady = payload["steady_state"]
    print()
    print(
        f"steady-state cycles/request, K={SHARDS} shards, "
        f"Zipf {SKEW} {'+'.join(KINDS)} (closed loop)"
    )
    rows = [
        [
            name,
            steady[name]["cycles_per_request"],
            steady[name]["migrations"],
            steady[name]["parked"],
        ]
        for name in ("static",) + tuple(PACING_STRATEGIES)
    ]
    print(format_table(["arm", "cyc/req", "bin moves", "parked"], rows))
    print(
        f"best vs BENCH_shard baseline {BASELINE_CPR}: "
        f"{steady['best_cycles_per_request']} "
        f"({steady['improvement_pct']}% better)"
    )
    print()
    print("rate x latency frontier (open loop)")
    headers = ["arm", "gap", "offered", "achieved", "p50", "p99"]
    rows = []
    for name, points in payload["frontier"].items():
        for p in points:
            rows.append(
                [
                    name,
                    f"{p['mean_gap']:g}",
                    f"{p['offered_rate']:.5f}",
                    f"{p['achieved_rate']:.5f}",
                    p["p50_latency"],
                    p["p99_latency"],
                ]
            )
    print(format_table(headers, rows))
    print()
    print("reconfiguration p99 spike (active vs quiet batches)")
    rows = [
        [
            arm,
            cell["active_batches"],
            cell["active_p99_cyc_per_lane"],
            cell["quiet_median_cyc_per_lane"],
            cell["p99_spike_ratio"],
        ]
        for arm, cell in payload["reconfiguration"].items()
    ]
    print(
        format_table(
            ["strategy", "active", "p99 active", "median quiet", "spike"],
            rows,
        )
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for the CI smoke job")
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON,
                        help=f"result path (default {DEFAULT_JSON})")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--requests", type=int, default=None,
                        help="override workload size")
    args = parser.parse_args(argv)

    n_requests = args.requests or (400 if args.smoke else 2000)
    mean_gaps = MEAN_GAPS[1::2] if args.smoke else MEAN_GAPS
    payload = build_payload(n_requests, args.seed, mean_gaps)
    print_report(payload)
    path = write_json(args.json, payload)
    print(f"\nwrote {path}")

    if args.smoke:
        # Smoke sizes don't reach steady state; only the envelope and
        # the strategy coverage are asserted.
        failures = [
            f for f in check(payload) if "improved only" not in f
        ]
    else:
        failures = check(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


# ----------------------------------------------------------------------
# pytest-benchmark wrappers (full sizes; also refresh BENCH_migration.json)
# ----------------------------------------------------------------------
def test_migration_frontier(benchmark):
    payload = benchmark.pedantic(
        build_payload, args=(2000, 11), rounds=1, iterations=1
    )
    print_report(payload)
    write_json(DEFAULT_JSON, payload)
    benchmark.extra_info["improvement_pct"] = (
        payload["steady_state"]["improvement_pct"]
    )
    assert check(payload) == []


if __name__ == "__main__":
    sys.exit(main())
