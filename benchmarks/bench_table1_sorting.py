"""Table 1: CPU time and acceleration ratio of the two O(N) sorting
algorithms at N = 2^6, 2^10 and 2^14.

Paper reference accelerations — address-calculation sorting: 2.62,
7.65, 12.84 (growing with N); distribution counting sort: 8.02, 7.52,
5.31 (work array fixed at 2^16).
"""

import pytest

from repro.bench import runner

PAPER_ACS = {2**6: 2.62, 2**10: 7.65, 2**14: 12.84}
PAPER_DCS = {2**6: 8.02, 2**10: 7.52, 2**14: 5.31}


@pytest.mark.parametrize("n", [2**6, 2**10, 2**14])
def test_table1_address_calc(benchmark, record_pair, n):
    result = benchmark(runner.run_address_calc_pair, n, 0)
    record_pair(benchmark, result, paper=PAPER_ACS[n])
    assert result.acceleration > 1.0


@pytest.mark.parametrize("n", [2**6, 2**10, 2**14])
def test_table1_distribution(benchmark, record_pair, n):
    result = benchmark(runner.run_distribution_pair, n, 0)
    record_pair(benchmark, result, paper=PAPER_DCS[n])
    assert result.acceleration > 1.0


def test_table1_acs_grows_with_n(benchmark, record_pair):
    """The paper's shape claim for ACS: longer vectors amortise
    start-up, so acceleration grows with N."""

    def run():
        return [runner.run_address_calc_pair(n, seed=0).acceleration
                for n in (2**6, 2**10, 2**14)]

    accels = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["accels"] = accels
    assert accels[0] < accels[1] < accels[2]
