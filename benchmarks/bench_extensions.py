"""§5 extension benchmarks: the related-work algorithms that embed the
S1-only FOL specialisation (vectorized copying GC, maze routing), plus
chained hashing, list rewriting, and operation-tree rewriting."""

import pytest

from repro.bench import runner


def test_gc_copying(benchmark, record_pair):
    result = benchmark(runner.run_gc_pair, 1000, 0)
    record_pair(benchmark, result)
    assert result.acceleration > 1.0


def test_maze_routing(benchmark, record_pair):
    result = benchmark(runner.run_maze_pair, 40, 48, 0)
    record_pair(benchmark, result)


def test_chained_hashing(benchmark, record_pair):
    result = benchmark(runner.run_chained_hashing_pair, 521, 1024, 0)
    record_pair(benchmark, result)
    assert result.acceleration > 1.0


def test_list_rewrite_staggered(benchmark, record_pair):
    """Low per-wave sharing: the regime FOL targets."""
    result = benchmark(runner.run_lists_pair, 48, 24, 16, 0)
    record_pair(benchmark, result)


def test_list_rewrite_worst_case(benchmark, record_pair):
    """All lists hit the shared suffix on the same wave: the §3.2
    warning that sequential wins under heavy sharing."""
    result = benchmark.pedantic(
        lambda: runner.run_lists_pair(48, 24, 16, seed=0, uniform_lengths=True),
        rounds=1, iterations=1,
    )
    record_pair(benchmark, result)


@pytest.mark.parametrize("shape", ["random", "comb"])
def test_tree_rewrite(benchmark, record_pair, shape):
    """Random trees parallelise; the right comb is the §2 maximally-
    shared shape where FOL* degenerates to near-sequential."""
    result = benchmark(runner.run_rewrite_pair, 96, 0, None, shape)
    record_pair(benchmark, result)


def test_hash_join(benchmark, record_pair):
    """The §1 database motivation: build with FOL1 multiple hashing,
    probe with lock-step chain walking."""
    result = benchmark(runner.run_join_pair, 512, 1024, 600, 0)
    record_pair(benchmark, result)
    assert result.acceleration > 1.0
