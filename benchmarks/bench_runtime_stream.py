"""Streaming runtime: batch-sizing policy comparison under key skew.

The claim under test: a fixed batch size cannot be right at every skew.
Long batches amortise vector start-up (best at uniform keys) but pack
many duplicates of hot keys into one batch, and FOL pays M rounds per
batch (Theorem 5) with quadratic element work in the duplicate count
(Theorem 6).  The adaptive policy tracks the observed round count and
shrinks/grows the batch toward the knee, so it should approach the
fixed-size optimum at *every* skew — in particular beating a throughput-
tuned fixed size (512) once Zipf skew reaches 1.1.

A second comparison: cross-batch carryover vs. the paper's in-batch
retry (§3.2) in an open-loop stream, where deferred lanes ride along
with fresh arrivals instead of serialising extra short rounds.

Run with::

    pytest benchmarks/bench_runtime_stream.py --benchmark-only -s
"""

from pathlib import Path

import numpy as np
import pytest

from repro.bench.reporting import format_table, write_json
from repro.runtime import (
    BoundedQueue,
    StreamService,
    closed_loop_workload,
    make_batcher,
    open_loop_workload,
)

N_REQUESTS = 4000
SKEWS = (0.0, 0.8, 1.1, 1.4)
POLICIES = ("fixed", "deadline", "adaptive")

STREAM_JSON = Path(__file__).resolve().parent.parent / "BENCH_stream.json"

#: Sections accumulated by the tests; flushed to ``BENCH_stream.json``
#: once the module's last test has run (see ``_flush_stream_json``).
RESULTS = {"bench": "runtime_stream", "config": {"n_requests": N_REQUESTS}}


@pytest.fixture(scope="module", autouse=True)
def _flush_stream_json():
    yield
    if len(RESULTS) > 2:  # only if at least one test contributed
        write_json(STREAM_JSON, RESULTS)


def _batcher(policy):
    if policy == "fixed":
        return make_batcher("fixed", batch_size=512)
    if policy == "deadline":
        return make_batcher("deadline", deadline=2000.0, max_size=512)
    return make_batcher("adaptive", initial=256)


def run_stream(policy, skew, *, carryover=False, closed=True, seed=0):
    """One full service run; returns the metrics summary dict."""
    rng = np.random.default_rng(seed)
    if closed:
        requests = closed_loop_workload(rng, N_REQUESTS, skew=skew)
    else:
        requests = open_loop_workload(rng, N_REQUESTS, skew=skew, mean_gap=40.0)
    service = StreamService.for_workload(
        requests,
        batcher=_batcher(policy),
        queue=BoundedQueue(4096),
        carryover=carryover,
        seed=seed,
    )
    summary = service.run(requests).summary()
    assert summary["completed"] == N_REQUESTS
    return summary


def test_policy_comparison_under_skew(benchmark):
    """The headline table: cycles/request by policy and skew (closed
    loop, in-batch retry, so batch sizing is the only variable)."""

    def sweep():
        return {
            (policy, skew): run_stream(policy, skew)
            for policy in POLICIES
            for skew in SKEWS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for policy in POLICIES:
        row = [policy]
        for skew in SKEWS:
            s = results[(policy, skew)]
            row.append(f"{s['cycles_per_request']:.1f}")
            benchmark.extra_info[f"{policy}_skew{skew}_cpr"] = round(
                s["cycles_per_request"], 2
            )
        rows.append(row)
    RESULTS["policy_comparison"] = {
        f"{policy}_skew{skew}": round(
            results[(policy, skew)]["cycles_per_request"], 2
        )
        for policy in POLICIES
        for skew in SKEWS
    }
    print()
    print(f"cycles/request by batch policy x Zipf skew "
          f"({N_REQUESTS} hash inserts, closed loop, in-batch retry)")
    print(format_table(["policy"] + [f"skew={s}" for s in SKEWS], rows))

    # The acceptance claim: adaptive beats fixed-512 under hot-key skew.
    for skew in (1.1, 1.4):
        adaptive = results[("adaptive", skew)]["cycles_per_request"]
        fixed = results[("fixed", skew)]["cycles_per_request"]
        assert adaptive < fixed, (
            f"adaptive {adaptive:.1f} !< fixed {fixed:.1f} at skew {skew}"
        )
    # ...while staying in the same league on uniform keys (within 25%).
    assert (results[("adaptive", 0.0)]["cycles_per_request"]
            < 1.25 * results[("fixed", 0.0)]["cycles_per_request"])


def test_adaptive_latency_not_pathological(benchmark):
    """Adaptive must not buy its throughput with unbounded batches: its
    p99 under skew stays below the fixed-512 p99."""

    def run():
        return (run_stream("adaptive", 1.1), run_stream("fixed", 1.1))

    adaptive, fixed = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["adaptive_p99"] = round(adaptive["p99_latency"], 1)
    benchmark.extra_info["fixed_p99"] = round(fixed["p99_latency"], 1)
    RESULTS["latency_skew1.1"] = {
        "adaptive_p99": round(adaptive["p99_latency"], 1),
        "fixed_p99": round(fixed["p99_latency"], 1),
    }
    assert adaptive["p99_latency"] < fixed["p99_latency"]


def test_carryover_vs_retry_open_loop(benchmark):
    """Open loop, uniform keys: carrying filtered lanes to the next
    micro-batch beats in-batch retry — deferred lanes retry at full
    vector length instead of paying a short round per duplicate rank.
    (Under extreme closed-loop hot-key pile-up the ordering flips: ELS
    admits one winner per address per round either way, and carryover
    then pays one batch's start-up per serialised winner; that regime is
    documented in docs/runtime.md rather than asserted here.)"""

    def run():
        return {
            mode: run_stream("adaptive", 0.0, carryover=c, closed=False)
            for mode, c in (("carryover", True), ("retry", False))
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [mode, f"{s['cycles_per_request']:.1f}", f"{s['p99_latency']:.0f}",
         s["fol_rounds"], s["batches"]]
        for mode, s in results.items()
    ]
    print()
    print(f"carryover vs in-batch retry ({N_REQUESTS} hash inserts, "
          f"open loop, uniform keys, adaptive policy)")
    print(format_table(["mode", "cyc/req", "p99", "rounds", "batches"], rows))
    for mode, s in results.items():
        benchmark.extra_info[f"{mode}_cpr"] = round(s["cycles_per_request"], 2)
    RESULTS["carryover_vs_retry"] = {
        mode: round(s["cycles_per_request"], 2) for mode, s in results.items()
    }

    assert (results["carryover"]["cycles_per_request"]
            < results["retry"]["cycles_per_request"])


@pytest.mark.parametrize("skew", [0.0, 1.1])
def test_stream_throughput(benchmark, skew):
    """Raw wall-clock of a full adaptive closed-loop run (the simulated
    cycles/request lands in extra_info for cross-run tracking)."""
    summary = benchmark(run_stream, "adaptive", skew)
    benchmark.extra_info["cycles_per_request"] = round(
        summary["cycles_per_request"], 2
    )
