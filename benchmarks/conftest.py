"""Benchmark-suite configuration.

Every benchmark measures the wall-clock of one paired scalar/vector
experiment run (the same code path `repro.bench.figures` uses) and
stores the *simulated-cycle acceleration ratio* — the paper's metric —
in ``extra_info`` together with the paper's reported value where the
paper states one.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def record(benchmark, result, paper=None):
    """Attach the paper-comparison metrics to a benchmark entry."""
    benchmark.extra_info["acceleration"] = round(result.acceleration, 2)
    benchmark.extra_info["scalar_cycles"] = int(result.scalar_cycles)
    benchmark.extra_info["vector_cycles"] = int(result.vector_cycles)
    if paper is not None:
        benchmark.extra_info["paper_acceleration"] = paper
    for k, v in result.params.items():
        benchmark.extra_info[str(k)] = v


@pytest.fixture
def record_pair():
    return record
