"""§3.3 ablation: FOL*'s overhead grows with L (items rewritten per unit
process); the paper judges it "practical only when L is less than five
or so"."""

import numpy as np
import pytest

from repro.core import fol_star
from repro.machine import CostModel, Memory, VectorMachine

N = 512


def run_fol_star(l: int) -> float:
    rng = np.random.default_rng(0)
    vs = []
    for k in range(l):
        base = 1 + k * 2 * N
        vs.append(base + rng.integers(0, int(N * 0.9), size=N).astype(np.int64))
    vm = VectorMachine(
        Memory(1 + 2 * N * (l + 1) + 64, cost_model=CostModel.s810(), seed=0)
    )
    fol_star(vm, vs)
    return vm.counter.total


@pytest.mark.parametrize("l", [1, 2, 3, 5, 8])
def test_fol_star_l_cost(benchmark, l):
    cycles = benchmark(run_fol_star, l)
    benchmark.extra_info["cycles_per_tuple"] = round(cycles / N, 2)


def test_overhead_superlinear_in_l(benchmark):
    """Per-tuple cycles at L=5 must exceed 2.5x the L=2 cost — the
    effect behind the paper's practicality bound."""

    def run():
        return run_fol_star(2) / N, run_fol_star(5) / N

    c2, c5 = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["per_tuple_L2"] = round(c2, 2)
    benchmark.extra_info["per_tuple_L5"] = round(c5, 2)
    assert c5 > 2.5 * c2
