"""Vectorized multiple hashing with chaining — Figure 7.

Unlike the open-addressing variant, chained hashing inserts a *node* at
the head of the target slot's chain, so duplicated keys are allowed; the
shared storage area is the chain-head word, and FOL1 (with subscript
labels) decomposes the key set so that within a round no two keys target
the same head.

Main processing for one parallel-processable set S (all by vector ops,
addresses within S distinct by Lemma 2)::

    node[i].key  := key[i]           -- scatter into fresh nodes
    node[i].next := head[slot[i]]    -- gather old heads, scatter to nodes
    head[slot[i]] := node[i]         -- scatter new heads

Keys colliding across rounds end up chained in *some* order — the paper
(footnote 5) notes the chain order is execution-order dependent and
irrelevant to correctness.
"""

from __future__ import annotations

import numpy as np

from ..core.fol1 import fol1
from ..machine.vm import VectorMachine
from .table import ChainedHashTable


def vector_chained_insert(
    vm: VectorMachine,
    table: ChainedHashTable,
    keys: np.ndarray,
    policy: str = "arbitrary",
) -> int:
    """Enter all ``keys`` (duplicates allowed) into chains by FOL1.
    Returns M, the number of parallel-processable sets used."""
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return 0

    # Index vector: address of each key's chain-head word.
    hashed = vm.mod(keys, table.size)
    head_addrs = vm.add(hashed, table.base)

    # One fresh node per key, allocated as a block up-front (a single
    # vector-length address generation).
    node_ptrs = table.nodes.alloc_many(keys.size)
    vm.iota(keys.size)  # charge the address-generation instruction
    key_field = table.nodes.offset("key")
    next_field = table.nodes.offset("next")

    def enter_set(positions: np.ndarray, _round: int) -> None:
        # Amalgamated main processing (Figure 7 step 3): enter this
        # round's keys in parallel.  Within the set all head addresses
        # are distinct, so every scatter below is conflict-free.
        nodes = node_ptrs[positions]
        heads = head_addrs[positions]
        vm.scatter(vm.add(nodes, key_field), keys[positions], policy=policy)
        old_heads = vm.gather(heads)
        vm.scatter(vm.add(nodes, next_field), old_heads, policy=policy)
        vm.scatter(heads, nodes, policy=policy)

    dec = fol1(
        vm,
        head_addrs,
        work_offset=table.work_offset,
        policy=policy,
        on_set=enter_set,
    )
    return dec.m


def vector_multiple_hashing_chained(
    vm: VectorMachine,
    table: ChainedHashTable,
    keys: np.ndarray,
    policy: str = "arbitrary",
    charge_init: bool = True,
) -> int:
    """Initialise the chain heads (one vector fill) and enter all keys."""
    if charge_init:
        table.reset_vector(vm)
    else:
        table.reset()
    return vector_chained_insert(vm, table, keys, policy)
