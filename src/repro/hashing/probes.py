"""Probe-sequence (subscript recalculation) strategies for open
addressing (paper §4.1).

The paper compares two recalculation rules for colliding keys:

* **original** (the PARBASE-90 "overwrite-and-check" paper's rule):
  ``h' = (h + 1) mod size`` — every collided key advances by one, so
  keys that collided with *each other* keep colliding forever until an
  empty slot separates them, and clustering grows.
* **optimized** (this paper's improvement): ``h' = (h + (key & 31) + 1)
  mod size`` — the step depends on the key's low bits, so keys that
  collided at the same slot scatter to (mostly) different slots on the
  next round.  Requires ``size > 32``.

Both are expressed once, with a scalar form (for the sequential
baseline) and a vector form (for Figure 8), so the two implementations
provably probe the same sequence for the same key.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..machine.scalar import ScalarProcessor
from ..machine.vm import VectorMachine

#: Scalar probe: (sp, h, key, size) -> next h, charging its own ALU ops.
ScalarProbe = Callable[[ScalarProcessor, int, int, int], int]
#: Vector probe: (vm, h_vec, key_vec, size) -> next h_vec, charged on vm.
VectorProbe = Callable[[VectorMachine, np.ndarray, np.ndarray, int], np.ndarray]


# ----------------------------------------------------------------------
# original: +1 linear probing
# ----------------------------------------------------------------------
def original_scalar(sp: ScalarProcessor, h: int, key: int, size: int) -> int:
    """``(h + 1) mod size`` — one add, one mod."""
    sp.alu(2)
    return (h + 1) % size


def original_vector(
    vm: VectorMachine, h: np.ndarray, keys: np.ndarray, size: int
) -> np.ndarray:
    """Vector form of the +1 rule."""
    return vm.mod(vm.add(h, 1), size)


# ----------------------------------------------------------------------
# optimized: key-dependent step (this paper's contribution in §4.1)
# ----------------------------------------------------------------------
def optimized_scalar(sp: ScalarProcessor, h: int, key: int, size: int) -> int:
    """``(h + (key & 31) + 1) mod size`` — and, two adds, one mod."""
    sp.alu(4)
    return (h + (key & 31) + 1) % size


def optimized_vector(
    vm: VectorMachine, h: np.ndarray, keys: np.ndarray, size: int
) -> np.ndarray:
    """Vector form of the key-dependent rule (Figure 8's recalculation)."""
    step = vm.add(vm.bitand(keys, 31), 1)
    return vm.mod(vm.add(h, step), size)


#: Named probe pairs for benches and the CLI: name -> (scalar, vector).
PROBES: dict[str, tuple[ScalarProbe, VectorProbe]] = {
    "original": (original_scalar, original_vector),
    "optimized": (optimized_scalar, optimized_vector),
}


def get_probe(name: str) -> tuple[ScalarProbe, VectorProbe]:
    """Look up a probe pair by name (raises KeyError with choices)."""
    try:
        return PROBES[name]
    except KeyError:
        raise KeyError(f"unknown probe {name!r}; choose from {sorted(PROBES)}") from None
