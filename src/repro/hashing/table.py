"""Hash-table storage layouts on simulated memory.

Two layouts matching the paper's two collision-resolution schemes (§4.1):

* :class:`OpenHashTable` — a flat array of ``size`` words; empty entries
  hold the sentinel :data:`UNENTERED`; only keys are stored (Figure 8's
  setting).
* :class:`ChainedHashTable` — ``size`` chain-head words plus a node
  arena of ``(key, next)`` records (Figures 4 and 7's setting).

Keys are non-negative int64 values; :data:`UNENTERED` is −1 so it can
never collide with a key.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..machine.memory import Memory
from ..machine.scalar import ScalarProcessor
from ..machine.vm import VectorMachine
from ..mem.arena import NIL, BumpAllocator, RecordArena

#: Sentinel marking an unused open-addressing entry (paper: "a special
#: value, unentered, which is not used as a key value").
UNENTERED = -1


class OpenHashTable:
    """Open-addressing hash table: ``size`` key words in memory."""

    def __init__(self, allocator: BumpAllocator, size: int, name: str = "open_table") -> None:
        if size <= 32:
            # The optimized probe recalculation asserts size(table) > 32
            # (paper §4.1: "It is asserted that size(table) > 32").
            raise ValueError(f"table size must exceed 32, got {size}")
        self.memory: Memory = allocator.memory
        self.size = int(size)
        self.base = allocator.alloc(self.size, name)
        self.memory.words[self.base : self.base + self.size] = UNENTERED

    # -- charged initialisation (part of a measured run) ---------------
    def reset_vector(self, vm: VectorMachine) -> None:
        """Re-initialise every entry with one vector fill."""
        vm.mem.fill(self.base, self.size, UNENTERED)

    def reset_scalar(self, sp: ScalarProcessor) -> None:
        """Re-initialise sequentially (charged per entry)."""
        sp.fill_array(self.base, self.size, UNENTERED)

    # -- debug/verification (uncharged) ---------------------------------
    def reset(self) -> None:
        """Uncharged reset for test setup."""
        self.memory.words[self.base : self.base + self.size] = UNENTERED

    def entries(self) -> np.ndarray:
        """Snapshot of all entries (uncharged)."""
        return self.memory.peek_range(self.base, self.size)

    def stored_keys(self) -> np.ndarray:
        """Multiset of keys currently in the table (uncharged)."""
        e = self.entries()
        return e[e != UNENTERED]

    def load_factor(self) -> float:
        """Fraction of entries in use (uncharged)."""
        return float((self.entries() != UNENTERED).mean())


class ChainedHashTable:
    """Chained hash table: head words, per-slot label work area, and a
    ``(key, next)`` node arena.

    Figure 7 gives every hash-table entry "a work area for storing
    labels": FOL's label writes must not destroy the chain-head pointer,
    because the main processing reads the old head when linking.  The
    work area is a parallel region, addressed as ``head_addr +
    work_offset``.
    """

    def __init__(
        self,
        allocator: BumpAllocator,
        size: int,
        capacity: int,
        name: str = "chained_table",
    ) -> None:
        if size <= 0:
            raise ValueError(f"table size must be positive, got {size}")
        self.memory: Memory = allocator.memory
        self.size = int(size)
        self.base = allocator.alloc(self.size, f"{name}.heads")
        self.work_base = allocator.alloc(self.size, f"{name}.work")
        self.nodes = RecordArena(
            allocator, fields=("key", "next"), capacity=capacity, name=f"{name}.nodes"
        )
        self.memory.words[self.base : self.base + self.size] = NIL

    @property
    def work_offset(self) -> int:
        """Additive offset from a head word to its label work word."""
        return self.work_base - self.base

    # -- charged initialisation -----------------------------------------
    def reset_vector(self, vm: VectorMachine) -> None:
        """Clear all chain heads with one vector fill (nodes are bump-
        allocated, so clearing heads empties the table)."""
        vm.mem.fill(self.base, self.size, NIL)

    def reset_scalar(self, sp: ScalarProcessor) -> None:
        """Clear all chain heads sequentially (charged per entry)."""
        sp.fill_array(self.base, self.size, NIL)

    # -- debug/verification (uncharged) ----------------------------------
    def chain(self, slot: int) -> List[int]:
        """Keys in slot's chain, head first (uncharged walk)."""
        out: List[int] = []
        ptr = self.memory.peek(self.base + slot)
        while ptr != NIL:
            out.append(self.nodes.peek_field(ptr, "key"))
            ptr = self.nodes.peek_field(ptr, "next")
        return out

    def all_chains(self) -> List[List[int]]:
        """Every chain's keys (uncharged)."""
        return [self.chain(s) for s in range(self.size)]

    def stored_keys(self) -> np.ndarray:
        """Multiset of keys across all chains (uncharged)."""
        keys: List[int] = []
        for s in range(self.size):
            keys.extend(self.chain(s))
        return np.asarray(keys, dtype=np.int64)
