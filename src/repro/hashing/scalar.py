"""Sequential hashing baselines (the paper's scalar Fortran stand-ins).

These run on the :class:`~repro.machine.scalar.ScalarProcessor`, charging
one scalar memory/ALU/branch cost per operation — the denominator of
every acceleration ratio in Figures 9 and 10.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..errors import TableFullError
from ..machine.scalar import ScalarProcessor
from ..mem.arena import NIL
from .probes import ScalarProbe, optimized_scalar
from .table import UNENTERED, ChainedHashTable, OpenHashTable


def scalar_open_insert(
    sp: ScalarProcessor,
    table: OpenHashTable,
    keys: Iterable[int],
    probe: ScalarProbe = optimized_scalar,
) -> None:
    """Insert ``keys`` one at a time into an open-addressing table.

    Per key: hash, then probe until an ``unentered`` entry is found.
    Keys must be distinct (only keys are stored, as in Figure 8).

    Raises
    ------
    TableFullError
        If a key probes ``size`` times without finding a free entry.
    """
    size = table.size
    for key in keys:
        key = int(key)
        h = sp.hash_mod(key, size)
        for _ in range(size):
            entry = sp.load(table.base + h)
            sp.branch()  # the "is it free?" test
            if entry == UNENTERED:
                sp.store(table.base + h, key)
                break
            h = probe(sp, h, key, size)
            sp.loop_iter()
        else:
            raise TableFullError(f"no free slot for key {key} after {size} probes")


def scalar_open_lookup(
    sp: ScalarProcessor,
    table: OpenHashTable,
    key: int,
    probe: ScalarProbe = optimized_scalar,
) -> Optional[int]:
    """Find ``key``'s slot following its probe sequence; None if absent."""
    size = table.size
    key = int(key)
    h = sp.hash_mod(key, size)
    for _ in range(size):
        entry = sp.load(table.base + h)
        sp.branch()
        if entry == key:
            return h
        if entry == UNENTERED:
            return None
        h = probe(sp, h, key, size)
        sp.loop_iter()
    return None


def scalar_chained_insert(
    sp: ScalarProcessor,
    table: ChainedHashTable,
    keys: Iterable[int],
) -> None:
    """Insert ``keys`` one at a time at the head of their hash chain
    (Figure 4a's sequential processing; duplicates allowed)."""
    size = table.size
    for key in keys:
        key = int(key)
        h = sp.hash_mod(key, size)
        node = table.nodes.alloc_one()
        sp.alu()  # bump-pointer allocation
        head_addr = table.base + h
        old = sp.load(head_addr)
        sp.store(table.nodes.field_addr(node, "key"), key)
        sp.alu()  # field address arithmetic
        sp.store(table.nodes.field_addr(node, "next"), old)
        sp.alu()
        sp.store(head_addr, node)
        sp.loop_iter()


def scalar_chained_lookup(
    sp: ScalarProcessor,
    table: ChainedHashTable,
    key: int,
) -> bool:
    """Walk ``key``'s chain; True if present."""
    key = int(key)
    h = sp.hash_mod(key, table.size)
    ptr = sp.load(table.base + h)
    while ptr != NIL:
        sp.branch()
        k = sp.load(table.nodes.field_addr(ptr, "key"))
        sp.alu()
        if k == key:
            return True
        ptr = sp.load(table.nodes.field_addr(ptr, "next"))
        sp.alu()
    sp.branch()
    return False


def scalar_multiple_hashing_open(
    sp: ScalarProcessor,
    table: OpenHashTable,
    keys: np.ndarray,
    probe: ScalarProbe = optimized_scalar,
    charge_init: bool = True,
) -> None:
    """The full sequential run measured in Figure 9: initialise the
    table, then enter all keys."""
    if charge_init:
        table.reset_scalar(sp)
    else:
        table.reset()
    scalar_open_insert(sp, table, keys, probe)
