"""Multiple hashing (paper §4.1): chained (Figure 7, FOL1) and open
addressing (Figure 8, overwrite-and-check), plus sequential baselines."""

from .chained import vector_chained_insert, vector_multiple_hashing_chained
from .open_addressing import (
    vector_multiple_hashing_open,
    vector_open_insert,
    vector_open_insert_unfused,
)
from .probes import (
    PROBES,
    get_probe,
    optimized_scalar,
    optimized_vector,
    original_scalar,
    original_vector,
)
from .sets import VectorHashSet, vector_member, vector_unique
from .scalar import (
    scalar_chained_insert,
    scalar_chained_lookup,
    scalar_multiple_hashing_open,
    scalar_open_insert,
    scalar_open_lookup,
)
from .table import UNENTERED, ChainedHashTable, OpenHashTable

__all__ = [
    "UNENTERED",
    "OpenHashTable",
    "ChainedHashTable",
    "PROBES",
    "get_probe",
    "original_scalar",
    "original_vector",
    "optimized_scalar",
    "optimized_vector",
    "scalar_open_insert",
    "scalar_open_lookup",
    "scalar_chained_insert",
    "scalar_chained_lookup",
    "scalar_multiple_hashing_open",
    "vector_open_insert",
    "vector_open_insert_unfused",
    "vector_multiple_hashing_open",
    "vector_chained_insert",
    "vector_multiple_hashing_chained",
    "vector_unique",
    "vector_member",
    "VectorHashSet",
]
