"""Figure 8 as an actual machine program.

The paper's algorithm ran as compiled Fortran on the S-810; this module
writes the same algorithm as an instruction sequence for the ISA-level
backend (:mod:`repro.machine.isa`), with the probe-recalculation loop
expressed through labels and conditional branches rather than Python
control flow.  Tests cross-validate it against the facade-level
implementation (:func:`repro.hashing.open_addressing.vector_open_insert`):
same table contents, comparable cycle counts.

Register conventions::

    S1 = table base        V0 = keys (live, compressed each round)
    S2 = table size        V1 = hashed values
    S3 = UNENTERED         V2 = absolute addresses
    S4 = n (key count)     V3 = gathered entries
    S5 = nrest             V4 = probe step scratch
    S6 = 31, S7 = 1        M0 = free-slot mask
    S8 = staging base      M1 = entered mask, M2 = not-entered
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import TableFullError
from ..machine.isa import Assembler, Instr, Interpreter
from ..machine.vm import VectorMachine
from .table import UNENTERED, OpenHashTable


def build_figure8_program() -> List[Instr]:
    """Assemble the Figure 8 multiple-hashing program (optimized
    probe).  Expects S1..S4, S6..S8 preset per the module docstring."""
    a = Assembler()
    # load the key vector from the staging area: V0 := mem[S8 .. S8+n)
    a.emit("VIOTA", 5, 4)          # V5 := 0..n-1
    a.emit("VADDS", 5, 5, 8)       # V5 += staging base
    a.emit("VGATHER", 0, 5)        # V0 := keys

    # hashed := keys mod size ; first entry attempt
    a.emit("VMODS", 1, 0, 2)       # V1 := V0 mod S2
    a.emit("VADDS", 2, 1, 1)       # V2 := V1 + base
    a.emit("VGATHER", 3, 2)        # V3 := table entries
    a.emit("VCMPES", 0, 3, 3)      # M0 := entry == UNENTERED
    a.emit("VSCATTERM", 2, 0, 0)   # where free: table := keys

    a.label("loop")
    # overwrite check
    a.emit("VGATHER", 3, 2)
    a.emit("VCMPEV", 1, 3, 0)      # M1 := entry == key
    a.emit("MNOT", 2, 1)           # M2 := not entered
    a.emit("MCNT", 5, 2)           # S5 := nrest
    a.emit("JZ", 5, "done")

    # pack the colliding keys and their subscripts
    a.emit("VCOMPRESS", 0, 0, 2)
    a.emit("VCOMPRESS", 1, 1, 2)

    # optimized recalculation: h := (h + (key & 31) + 1) mod size
    a.emit("VANDS", 4, 0, 6)       # V4 := key & 31
    a.emit("VADDV", 1, 1, 4)       # h += step
    a.emit("VADDS", 1, 1, 7)       # h += 1
    a.emit("VMODS", 1, 1, 2)       # h mod size

    # retry entry
    a.emit("VADDS", 2, 1, 1)
    a.emit("VGATHER", 3, 2)
    a.emit("VCMPES", 0, 3, 3)
    a.emit("VSCATTERM", 2, 0, 0)
    a.emit("JMP", "loop")

    a.label("done")
    a.emit("HALT")
    return a.assemble()


def isa_open_insert(
    vm: VectorMachine,
    table: OpenHashTable,
    keys: np.ndarray,
    staging_base: int,
    policy: str = "arbitrary",
) -> int:
    """Run the Figure 8 machine program to enter ``keys`` into
    ``table``.  ``staging_base`` is a memory region of at least
    ``len(keys)`` words for the input vector.  Returns the number of
    instructions executed."""
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return 0
    if np.unique(keys).size != keys.size:
        raise ValueError("open-addressing multiple hashing requires distinct keys")
    if keys.min() < 0:
        raise ValueError("keys must be non-negative (UNENTERED is -1)")
    if keys.size > table.size:
        raise TableFullError(f"{keys.size} keys cannot fit a table of {table.size}")

    # stage the key vector (workload setup, uncharged like the paper's
    # pre-loaded arrays) and preset the register conventions
    vm.mem.words[staging_base : staging_base + keys.size] = keys

    interp = Interpreter(vm, max_steps=200 * (table.size + keys.size) + 10_000)
    interp.s[1] = table.base
    interp.s[2] = table.size
    interp.s[3] = UNENTERED
    interp.s[4] = keys.size
    interp.s[6] = 31
    interp.s[7] = 1
    interp.s[8] = staging_base
    return interp.run(build_figure8_program(), scatter_policy=policy)
