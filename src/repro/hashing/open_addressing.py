"""Vectorized multiple hashing with open addressing — Figure 8.

This is the paper's optimized "overwrite-and-check" algorithm, a
specialized FOL1 in which the **keys themselves are the labels** (§3.2's
simplified method): writing a key into a free entry *is* the label write,
and reading it back *is* the overwrite detection, so label writing and
main processing are fused into a single scatter.

All keys must therefore be distinct (the label-uniqueness precondition),
and only keys are stored in the table.

The algorithm, per Figure 8::

    hashedValue := hash(key)                      -- vector
    where table[hashedValue] = unentered do       -- masked scatter
        table[hashedValue] := key                 --   (ELS: one key/slot wins)
    loop:
        entered := key = table[hashedValue]       -- gather + compare
        pack the not-entered keys                 -- compress
        exit when none remain
        hashedValue := recalc(hashedValue, key)   -- probe strategy
        where table[hashedValue] = unentered do
            table[hashedValue] := key
"""

from __future__ import annotations

import numpy as np

from ..errors import TableFullError
from ..machine.vm import VectorMachine
from .probes import VectorProbe, optimized_vector
from .table import UNENTERED, OpenHashTable


def vector_open_insert(
    vm: VectorMachine,
    table: OpenHashTable,
    keys: np.ndarray,
    probe: VectorProbe = optimized_vector,
    policy: str = "arbitrary",
) -> int:
    """Enter all ``keys`` (distinct, non-negative) into ``table`` by
    vector operations.  Returns the number of probe rounds used.

    Raises
    ------
    TableFullError
        After ``size(table)`` rounds with keys still unentered (the
        Figure 8 loop bound).
    ValueError
        If keys are not distinct — the fused key-as-label scheme is
        unsound with duplicates (see :func:`repro.core.labels.key_labels`).
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return 0
    if np.unique(keys).size != keys.size:
        raise ValueError("open-addressing multiple hashing requires distinct keys")
    if keys.min() < 0:
        raise ValueError("keys must be non-negative (UNENTERED is -1)")
    if keys.size > table.size:
        raise TableFullError(f"{keys.size} keys cannot fit a table of {table.size}")

    size = table.size

    # hashedValue := hash(key)  {hash(x) = x mod size}
    hashed = vm.mod(keys, size)
    addrs = vm.add(hashed, table.base)

    # First entry attempt: store keys only where the entry is free.
    entry = vm.gather(addrs)
    free = vm.eq(entry, UNENTERED)
    vm.scatter_masked(addrs, keys, free, policy=policy)

    rounds = 1
    for _ in range(size):
        # Overwrite check: did *my* key survive in *my* slot?
        entry = vm.gather(addrs)
        entered = vm.eq(entry, keys)
        nrest = vm.count_true(vm.mask_not(entered))
        if nrest == 0:
            return rounds
        not_entered = vm.mask_not(entered)
        keys = vm.compress(keys, not_entered)
        hashed = vm.compress(hashed, not_entered)

        # Subscript recalculation for the colliding keys, then retry.
        hashed = probe(vm, hashed, keys, size)
        addrs = vm.add(hashed, table.base)
        entry = vm.gather(addrs)
        free = vm.eq(entry, UNENTERED)
        vm.scatter_masked(addrs, keys, free, policy=policy)
        vm.loop_overhead()
        rounds += 1

    raise TableFullError(
        f"{keys.size} keys unentered after {size} rounds (load factor "
        f"{table.load_factor():.2f})"
    )


def vector_open_insert_unfused(
    vm: VectorMachine,
    table: OpenHashTable,
    keys: np.ndarray,
    work_base: int,
    probe: VectorProbe = optimized_vector,
    policy: str = "arbitrary",
) -> int:
    """The *unfused* formulation: generic FOL1 with subscript labels in
    a separate work area, instead of Figure 8's key-as-label fusion.

    Per round, lanes whose probed slot is free run a label round
    (scatter subscripts into ``work_base + slot``, gather, compare);
    survivors then store their keys in a second scatter.  Functionally
    identical to :func:`vector_open_insert`, but every round pays one
    extra scatter+gather pair plus the work-area traffic — the overhead
    §3.2's simplification ("the label writing and the main processing
    can be performed at the same time") exists to remove.  Used by the
    label-strategy ablation bench.

    ``work_base`` must point at ``table.size`` scratch words.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return 0
    if np.unique(keys).size != keys.size:
        raise ValueError("open-addressing multiple hashing requires distinct keys")
    if keys.min() < 0:
        raise ValueError("keys must be non-negative (UNENTERED is -1)")
    if keys.size > table.size:
        raise TableFullError(f"{keys.size} keys cannot fit a table of {table.size}")

    size = table.size
    hashed = vm.mod(keys, size)
    labels = vm.iota(keys.size)

    rounds = 0
    for _ in range(2 * size + 2):
        rounds += 1
        addrs = vm.add(hashed, table.base)
        entry = vm.gather(addrs)
        free = vm.eq(entry, UNENTERED)

        # FOL1 label round over the free-slot lanes (separate work area)
        work = vm.add(hashed, work_base)
        vm.scatter_masked(work, labels, free, policy=policy)
        readback = vm.gather(work)
        won = vm.mask_and(free, vm.eq(readback, labels))
        # main processing, now a second scatter
        vm.scatter_masked(addrs, keys, won, policy=policy)

        live = vm.mask_not(won)
        if vm.count_true(live) == 0:
            return rounds
        keys = vm.compress(keys, live)
        hashed = vm.compress(hashed, live)
        labels = vm.compress(labels, live)
        # free-slot losers re-check the same slot; occupied lanes probe
        advance = vm.compress(vm.mask_not(free), live)
        next_hashed = probe(vm, hashed, keys, size)
        hashed = vm.select(advance, next_hashed, hashed)
        vm.loop_overhead()

    raise TableFullError(
        f"{keys.size} keys unentered after {2 * size} rounds (load factor "
        f"{table.load_factor():.2f})"
    )


def vector_multiple_hashing_open(
    vm: VectorMachine,
    table: OpenHashTable,
    keys: np.ndarray,
    probe: VectorProbe = optimized_vector,
    policy: str = "arbitrary",
    charge_init: bool = True,
) -> int:
    """The full vectorized run measured in Figure 9: initialise the
    table (one vector fill), then enter all keys."""
    if charge_init:
        table.reset_vector(vm)
    else:
        table.reset()
    return vector_open_insert(vm, table, keys, probe, policy)
