"""Vectorized set operations built on overwrite-and-check hashing.

The paper positions multiple hashing as a building block ("entering
multiple data items into a hash table, address calculation sorting, and
many other algorithms").  This module supplies the most common
downstream uses as a small public API:

* :func:`vector_unique` — deduplicate a key vector (the overwrite-and-
  check election run to a fixed point over an open-addressing table);
* :func:`vector_member` — batch membership queries against an already
  populated table, entirely with gathers;
* :class:`VectorHashSet` — a growable wrapper tying the two together.

These are *vector* algorithms in the paper's sense: no Python-level
per-element loops, only per-round loops, every operation charged to the
machine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import TableFullError
from ..machine.vm import VectorMachine
from ..mem.arena import BumpAllocator
from .probes import VectorProbe, optimized_vector
from .table import UNENTERED, OpenHashTable


def vector_unique(
    vm: VectorMachine,
    table: OpenHashTable,
    keys: np.ndarray,
    probe: VectorProbe = optimized_vector,
    policy: str = "arbitrary",
) -> np.ndarray:
    """Insert ``keys`` (duplicates allowed) into ``table``, returning
    the distinct keys ordered by their *winning* occurrence's position.
    Which occurrence of a duplicated key wins is the conflict policy's
    business (footnote 5); under ``policy="first"`` the result is in
    first-occurrence order.

    Unlike :func:`~repro.hashing.open_addressing.vector_open_insert`,
    duplicated keys are legal here.  That forces a change from
    Figure 8: the key-as-label shortcut requires unique labels (§3.2),
    so this algorithm runs proper FOL1 rounds with **subscript labels**
    to elect one inserter per free slot.  Equal keys racing on one free
    slot then resolve correctly — one lane wins and stores the key, the
    losers re-examine the *same* slot next round, find their own key
    already stored, and drop out as duplicates.  Lanes whose slot holds
    a different key probe onward.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return keys.copy()
    if keys.min() < 0:
        raise ValueError("keys must be non-negative (UNENTERED is -1)")

    size = table.size
    positions = vm.iota(keys.size)
    rem_keys = keys.copy()
    hashed = vm.mod(rem_keys, size)
    unique_positions = []

    # Each round makes progress (a slot is filled, or lanes drop as
    # duplicates), but a lane can spend one extra round re-checking a
    # lost slot, hence the 2x bound.
    for _ in range(2 * size + 2):
        addrs = vm.add(hashed, table.base)
        entry = vm.gather(addrs)

        # a lane whose slot already holds its own key is a duplicate
        dup = vm.eq(entry, rem_keys)
        free = vm.eq(entry, UNENTERED)
        occupied_other = vm.mask_not(vm.mask_or(dup, free))

        # FOL round over the free-slot lanes: subscript labels elect
        # exactly one inserter per slot, then winners store their keys.
        labels = positions  # unique per lane, >= 0 so never UNENTERED
        vm.scatter_masked(addrs, labels, free, policy=policy)
        readback = vm.gather(addrs)
        won = vm.mask_and(free, vm.eq(readback, labels))
        vm.scatter_masked(addrs, rem_keys, won, policy=policy)
        unique_positions.append(vm.compress(positions, won))

        live = vm.mask_not(vm.mask_or(dup, won))
        if vm.count_true(live) == 0:
            out = np.concatenate(unique_positions)
            out.sort()  # first-occurrence order
            return keys[out]

        # Only occupied-by-another-key lanes probe onward; free-slot
        # losers re-examine the same slot (it now holds some winner's
        # key — possibly their own, which the next round's dup check
        # catches).
        advance = vm.compress(occupied_other, live)
        rem_keys = vm.compress(rem_keys, live)
        hashed = vm.compress(hashed, live)
        positions = vm.compress(positions, live)
        next_hashed = probe(vm, hashed, rem_keys, size)
        hashed = vm.select(advance, next_hashed, hashed)
        vm.loop_overhead()

    raise TableFullError(
        f"{rem_keys.size} keys unresolved after {2 * size} rounds "
        f"(load factor {table.load_factor():.2f})"
    )


def vector_member(
    vm: VectorMachine,
    table: OpenHashTable,
    keys: np.ndarray,
    probe: VectorProbe = optimized_vector,
) -> np.ndarray:
    """Batch membership: mask[i] = (keys[i] in table), by pure gathers
    along each key's probe sequence (read-only sharing is the Figure 2b
    case, so no FOL is needed)."""
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return np.zeros(0, dtype=bool)
    size = table.size
    result = np.zeros(keys.size, dtype=bool)
    positions = vm.iota(keys.size)
    rem = keys.copy()
    hashed = vm.mod(rem, size)

    for _ in range(size + 1):
        entry = vm.gather(vm.add(hashed, table.base))
        found = vm.eq(entry, rem)
        missing = vm.eq(entry, UNENTERED)
        if vm.any_true(found):
            result[vm.compress(positions, found)] = True
        live = vm.mask_not(vm.mask_or(found, missing))
        if vm.count_true(live) == 0:
            return result
        rem = vm.compress(rem, live)
        hashed = vm.compress(hashed, live)
        positions = vm.compress(positions, live)
        hashed = probe(vm, hashed, rem, size)
        vm.loop_overhead()

    return result


class VectorHashSet:
    """A set of non-negative int64 keys with vectorized bulk operations.

    Thin stateful wrapper over one :class:`OpenHashTable`; capacity is
    fixed at construction (open addressing cannot grow in place on the
    simulated machine, just as it could not on the S-810)."""

    def __init__(
        self,
        vm: VectorMachine,
        allocator: BumpAllocator,
        size: int,
        name: str = "hashset",
    ) -> None:
        self.vm = vm
        self.table = OpenHashTable(allocator, size, name=name)
        self._count = 0

    def add_all(self, keys: np.ndarray, policy: str = "arbitrary") -> np.ndarray:
        """Insert keys (duplicates fine); returns the newly added ones."""
        fresh = vector_unique(self.vm, self.table, keys, policy=policy)
        self._count += fresh.size
        return fresh

    def contains_all(self, keys: np.ndarray) -> np.ndarray:
        """Vector membership mask."""
        return vector_member(self.vm, self.table, keys)

    def __len__(self) -> int:
        return self._count

    def keys(self) -> np.ndarray:
        """Current contents (uncharged snapshot, unordered)."""
        return self.table.stored_keys()
