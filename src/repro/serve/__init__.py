"""``repro.serve`` — the real multi-process serving layer.

Everything below this package runs on a **measured wall clock**: an
asyncio front-end admits and micro-batches requests
(:mod:`~repro.serve.frontend`), one OS process per shard worker owns
its arena in shared memory and computes in place
(:mod:`~repro.serve.proc_worker`), and the two-phase claim/commit
protocol of the simulated sharded engine rides multiprocessing message
queues while batches and end states move zero-copy through shared
segments (:mod:`~repro.serve.transport`,
:mod:`~repro.serve.cluster`).  A real load generator replays the
runtime's open/closed-loop Zipf workloads in real time
(:mod:`~repro.serve.loadgen`) and the metrics
(:mod:`~repro.serve.metrics`) report measured p50/p99 latency and
saturation throughput — the simulated runtime's cycle-denominated
quantities keep living in :mod:`repro.runtime`.

Entry points: ``python -m repro serve`` and :func:`run_serve`.
See docs/serving.md for the process topology and protocol.
"""

from .cluster import ProcessCluster
from .frontend import ServeFrontend, ServeReport, run_serve
from .loadgen import timed_workload
from .metrics import ExchangeRecord, ServeMetrics

__all__ = [
    "ExchangeRecord",
    "ProcessCluster",
    "ServeFrontend",
    "ServeMetrics",
    "ServeReport",
    "run_serve",
    "timed_workload",
]
