"""Wall-clock metrics for the multi-process serving layer.

Deliberately a separate type from
:class:`~repro.runtime.metrics.StreamMetrics`: every number here is a
**measured** second on the front-end's monotonic clock, not a simulated
cycle, and mixing the two units in one object is exactly the confusion
the backends split (docs/backends.md) exists to prevent.  The summary
names its units explicitly so ``BENCH_serve.json`` is unambiguous.

Latency is arrival-to-completion as the front-end observes it: queueing
delay + batching linger + transport + shard execution.  Saturation
throughput is completed requests over the span from first batch launch
to last batch retirement (idle warm-up excluded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..bench.reporting import format_table


@dataclass(frozen=True)
class ExchangeRecord:
    """One executed micro-batch exchange, in wall-clock seconds."""

    index: int
    size: int
    carried_in: int
    queue_depth: int
    rounds: int
    completed: int
    seconds: float  # scatter -> gather+commit wall time
    cross_units: int = 0
    shard_sizes: Tuple[int, ...] = ()


@dataclass
class ServeMetrics:
    """Accumulated measurements for one serve run."""

    workers: int = 0
    backend: str = ""
    exchanges: List[ExchangeRecord] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    blocked: int = 0
    max_queue_depth: int = 0
    interrupted: bool = False
    first_launch: Optional[float] = None
    last_retire: Optional[float] = None

    # ------------------------------------------------------------------
    def record_exchange(self, record: ExchangeRecord, now: float) -> None:
        self.exchanges.append(record)
        self.max_queue_depth = max(self.max_queue_depth, record.queue_depth)
        if self.first_launch is None:
            self.first_launch = now - record.seconds
        self.last_retire = now

    def record_completion(self, latency: float) -> None:
        self.latencies.append(latency)

    # ------------------------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """Measured-latency percentile in seconds (NaN with no
        completions — same no-fake-zeros rule as StreamMetrics)."""
        if not self.latencies:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies), q))

    @property
    def total_completed(self) -> int:
        return len(self.latencies)

    @property
    def busy_seconds(self) -> float:
        """First batch launch to last batch retirement."""
        if self.first_launch is None or self.last_retire is None:
            return 0.0
        return self.last_retire - self.first_launch

    @property
    def throughput(self) -> float:
        """Completed requests per measured busy second (NaN when the
        run never executed a batch)."""
        busy = self.busy_seconds
        if busy <= 0 or not self.latencies:
            return float("nan")
        return self.total_completed / busy

    def summary(self) -> Dict[str, object]:
        sizes = [e.size for e in self.exchanges]
        return {
            "workers": self.workers,
            "backend": self.backend,
            "interrupted": self.interrupted,
            "exchanges": len(self.exchanges),
            "completed": self.total_completed,
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "blocked": self.blocked,
            "mean_batch_size": float(np.mean(sizes)) if sizes else 0.0,
            "max_queue_depth": self.max_queue_depth,
            "cross_shard_units": sum(e.cross_units for e in self.exchanges),
            "busy_seconds": self.busy_seconds,
            "throughput_rps": self.throughput,
            "p50_latency_ms": 1e3 * self.latency_percentile(50),
            "p99_latency_ms": 1e3 * self.latency_percentile(99),
        }

    # ------------------------------------------------------------------
    def exchange_table(self, max_rows: Optional[int] = None) -> str:
        records = self.exchanges
        if max_rows is not None and len(records) > max_rows:
            idx = np.linspace(0, len(records) - 1, max_rows).astype(int)
            records = [records[i] for i in sorted(set(idx))]
        headers = ["batch", "size", "carried", "depth", "rounds",
                   "lanes/shard", "cross", "ms"]
        rows = [
            [
                e.index, e.size, e.carried_in, e.queue_depth, e.rounds,
                ":".join(str(s) for s in e.shard_sizes),
                e.cross_units, f"{1e3 * e.seconds:.2f}",
            ]
            for e in records
        ]
        return format_table(headers, rows)

    def summary_table(self) -> str:
        rows = [[k, _fmt(v)] for k, v in self.summary().items()]
        return format_table(["metric", "value"], rows)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return "—" if np.isnan(v) else f"{v:,.3f}"
    return str(v)
