"""Wall-clock metrics for the multi-process serving layer.

Deliberately a separate type from
:class:`~repro.runtime.metrics.StreamMetrics`: every number here is a
**measured** second on the front-end's monotonic clock, not a simulated
cycle, and mixing the two units in one object is exactly the confusion
the backends split (docs/backends.md) exists to prevent.  The summary
names its units explicitly so ``BENCH_serve.json`` is unambiguous.

Both types share one telemetry core —
:class:`repro.obs.core.MetricsBase` carries the completion ledger,
percentile math, tenant cells/fairness and table rendering; this facade
keeps only what is serve-specific (exchange records, throughput over
the busy span, and millisecond scaling of the latency cells).

Latency is arrival-to-completion as the front-end observes it: queueing
delay + batching linger + transport + shard execution.  Saturation
throughput is completed requests over the span from first batch launch
to last batch retirement (idle warm-up excluded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs.core import MetricsBase, format_table, subsample


@dataclass(frozen=True)
class ExchangeRecord:
    """One executed micro-batch exchange, in wall-clock seconds."""

    index: int
    size: int
    carried_in: int
    queue_depth: int
    rounds: int
    completed: int
    seconds: float  # scatter -> gather+commit wall time
    cross_units: int = 0
    shard_sizes: Tuple[int, ...] = ()


class ServeMetrics(MetricsBase):
    """Accumulated measurements for one serve run."""

    _precision = 3
    _fmt_dicts = False
    _tenant_unit_suffix = "_ms"
    _summary_table_skip = ("tenants", "stage_breakdown")

    def __init__(self, workers: int = 0, backend: str = "") -> None:
        super().__init__()
        self.workers = workers
        self.backend = backend
        self.exchanges: List[ExchangeRecord] = []
        self.offered = 0
        self.admitted = 0
        self.interrupted = False
        self.first_launch: Optional[float] = None
        self.last_retire: Optional[float] = None

    # ------------------------------------------------------------------
    def record_exchange(self, record: ExchangeRecord, now: float) -> None:
        self.exchanges.append(record)
        self.max_queue_depth = max(self.max_queue_depth, record.queue_depth)
        if self.first_launch is None:
            self.first_launch = now - record.seconds
        self.last_retire = now

    def absorb_queue(self, queue) -> None:
        super().absorb_queue(queue)
        self.offered = queue.stats.offered
        self.admitted = queue.stats.admitted

    # ------------------------------------------------------------------
    @property
    def total_completed(self) -> int:
        return len(self.latencies)

    @property
    def busy_seconds(self) -> float:
        """First batch launch to last batch retirement."""
        if self.first_launch is None or self.last_retire is None:
            return 0.0
        return self.last_retire - self.first_launch

    @property
    def throughput(self) -> float:
        """Completed requests per measured busy second (NaN when the
        run never executed a batch)."""
        busy = self.busy_seconds
        if busy <= 0 or not self.latencies:
            return float("nan")
        return self.total_completed / busy

    def summary(self) -> Dict[str, object]:
        sizes = [e.size for e in self.exchanges]
        out: Dict[str, object] = {
            "workers": self.workers,
            "backend": self.backend,
            "interrupted": self.interrupted,
            "exchanges": len(self.exchanges),
            "completed": self.total_completed,
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "blocked_offers": self.blocked_offers,
            "blocked_requests": self.blocked_requests,
            "mean_batch_size": float(np.mean(sizes)) if sizes else 0.0,
            # Reconciled: the queue's locked high-water mark dominates
            # the exchange-launch samples (each launch drains first).
            "max_queue_depth": self.reconciled_max_depth,
            "max_queue_depth_sampled": self.max_queue_depth,
            "cross_shard_units": sum(e.cross_units for e in self.exchanges),
            "busy_seconds": self.busy_seconds,
            "throughput_rps": self.throughput,
            "p50_latency_ms": 1e3 * self.latency_percentile(50),
            "p99_latency_ms": 1e3 * self.latency_percentile(99),
        }
        self._tenant_summary_keys(out)
        self._stage_summary_keys(out)
        return out

    # ------------------------------------------------------------------
    # per-tenant aggregates (wall-clock; latency cells in milliseconds)
    # ------------------------------------------------------------------
    def tenant_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant cells like StreamMetrics', but with measured
        latencies and SLO budgets converted to milliseconds (keys
        ``p50_latency_ms``/``p99_latency_ms``/``slo_ms``)."""
        out: Dict[str, Dict[str, object]] = {}
        for name, cell in self._tenant_cells().items():
            scaled = dict(cell)
            for key in ("p50_latency", "p99_latency", "slo"):
                if key in scaled:
                    scaled[f"{key}_ms"] = 1e3 * float(scaled.pop(key))
            out[name] = scaled
        return out

    # ------------------------------------------------------------------
    def exchange_table(self, max_rows: Optional[int] = None) -> str:
        headers = ["batch", "size", "carried", "depth", "rounds",
                   "lanes/shard", "cross", "ms"]
        rows = [
            [
                e.index, e.size, e.carried_in, e.queue_depth, e.rounds,
                ":".join(str(s) for s in e.shard_sizes),
                e.cross_units, f"{1e3 * e.seconds:.2f}",
            ]
            for e in subsample(self.exchanges, max_rows)
        ]
        return format_table(headers, rows)
