"""Wall-clock metrics for the multi-process serving layer.

Deliberately a separate type from
:class:`~repro.runtime.metrics.StreamMetrics`: every number here is a
**measured** second on the front-end's monotonic clock, not a simulated
cycle, and mixing the two units in one object is exactly the confusion
the backends split (docs/backends.md) exists to prevent.  The summary
names its units explicitly so ``BENCH_serve.json`` is unambiguous.

Latency is arrival-to-completion as the front-end observes it: queueing
delay + batching linger + transport + shard execution.  Saturation
throughput is completed requests over the span from first batch launch
to last batch retirement (idle warm-up excluded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..bench.reporting import format_table


@dataclass(frozen=True)
class ExchangeRecord:
    """One executed micro-batch exchange, in wall-clock seconds."""

    index: int
    size: int
    carried_in: int
    queue_depth: int
    rounds: int
    completed: int
    seconds: float  # scatter -> gather+commit wall time
    cross_units: int = 0
    shard_sizes: Tuple[int, ...] = ()


@dataclass
class ServeMetrics:
    """Accumulated measurements for one serve run."""

    workers: int = 0
    backend: str = ""
    exchanges: List[ExchangeRecord] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    blocked_offers: int = 0
    blocked_requests: int = 0
    max_queue_depth: int = 0  # sampled at exchange launch
    queue_max_depth: int = 0  # the queue's locked high-water mark
    interrupted: bool = False
    first_launch: Optional[float] = None
    last_retire: Optional[float] = None
    # per-tenant accounting (seconds; empty on untenanted runs)
    tenant_latencies: Dict[str, List[float]] = field(default_factory=dict)
    tenant_admission: Dict[str, Dict[str, int]] = field(default_factory=dict)
    tenant_weights: Dict[str, float] = field(default_factory=dict)
    tenant_slos: Dict[str, float] = field(default_factory=dict)

    @property
    def blocked(self) -> int:
        """Legacy alias for :attr:`blocked_offers`."""
        return self.blocked_offers

    # ------------------------------------------------------------------
    def record_exchange(self, record: ExchangeRecord, now: float) -> None:
        self.exchanges.append(record)
        self.max_queue_depth = max(self.max_queue_depth, record.queue_depth)
        if self.first_launch is None:
            self.first_launch = now - record.seconds
        self.last_retire = now

    def record_completion(self, latency: float, tenant: str = "") -> None:
        self.latencies.append(latency)
        if tenant:
            self.tenant_latencies.setdefault(tenant, []).append(latency)

    # ------------------------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """Measured-latency percentile in seconds (NaN with no
        completions — same no-fake-zeros rule as StreamMetrics)."""
        if not self.latencies:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies), q))

    @property
    def total_completed(self) -> int:
        return len(self.latencies)

    @property
    def busy_seconds(self) -> float:
        """First batch launch to last batch retirement."""
        if self.first_launch is None or self.last_retire is None:
            return 0.0
        return self.last_retire - self.first_launch

    @property
    def throughput(self) -> float:
        """Completed requests per measured busy second (NaN when the
        run never executed a batch)."""
        busy = self.busy_seconds
        if busy <= 0 or not self.latencies:
            return float("nan")
        return self.total_completed / busy

    def summary(self) -> Dict[str, object]:
        sizes = [e.size for e in self.exchanges]
        out: Dict[str, object] = {
            "workers": self.workers,
            "backend": self.backend,
            "interrupted": self.interrupted,
            "exchanges": len(self.exchanges),
            "completed": self.total_completed,
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "blocked_offers": self.blocked_offers,
            "blocked_requests": self.blocked_requests,
            "mean_batch_size": float(np.mean(sizes)) if sizes else 0.0,
            # Reconciled: the queue's locked high-water mark dominates
            # the exchange-launch samples (each launch drains first).
            "max_queue_depth": max(self.max_queue_depth, self.queue_max_depth),
            "max_queue_depth_sampled": self.max_queue_depth,
            "cross_shard_units": sum(e.cross_units for e in self.exchanges),
            "busy_seconds": self.busy_seconds,
            "throughput_rps": self.throughput,
            "p50_latency_ms": 1e3 * self.latency_percentile(50),
            "p99_latency_ms": 1e3 * self.latency_percentile(99),
        }
        if self.tenant_latencies or self.tenant_admission:
            out["jain_fairness"] = self.jain_fairness()
            out["tenants"] = self.tenant_summary()
        return out

    # ------------------------------------------------------------------
    # per-tenant aggregates (wall-clock; latency cells in milliseconds)
    # ------------------------------------------------------------------
    def tenant_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant cells like StreamMetrics', but with measured
        latencies and SLO budgets converted to milliseconds (keys
        ``p50_latency_ms``/``p99_latency_ms``/``slo_ms``)."""
        from ..runtime.qos import tenant_summary_cells

        cells = tenant_summary_cells(
            self.tenant_latencies,
            self.tenant_admission,
            self.tenant_weights,
            self.tenant_slos,
        )
        out: Dict[str, Dict[str, object]] = {}
        for name, cell in cells.items():
            scaled = dict(cell)
            for key in ("p50_latency", "p99_latency", "slo"):
                if key in scaled:
                    scaled[f"{key}_ms"] = 1e3 * float(scaled.pop(key))
            out[name] = scaled
        return out

    def jain_fairness(self) -> float:
        """Jain's fairness index across tenants (SLO attainment when
        every tenant has a budget, weight-normalised throughput
        otherwise — see :func:`repro.runtime.qos.tenant_fairness`)."""
        from ..runtime.qos import tenant_fairness, tenant_summary_cells

        return tenant_fairness(
            tenant_summary_cells(
                self.tenant_latencies,
                self.tenant_admission,
                self.tenant_weights,
                self.tenant_slos,
            ),
            self.tenant_weights,
        )

    def tenant_table(self) -> str:
        """Per-tenant measured metrics rendered as a table."""
        headers = [
            "tenant", "offered", "admitted", "rejected", "blocked",
            "completed", "p50ms", "p99ms", "slo_ms", "attain%",
        ]
        rows = []
        for name, cell in self.tenant_summary().items():
            attain = cell.get("slo_attainment")
            rows.append([
                name,
                cell.get("offered", "—"),
                cell.get("admitted", "—"),
                cell.get("rejected", "—"),
                cell.get("blocked_requests", "—"),
                cell.get("completed", 0),
                _fmt(cell.get("p50_latency_ms", float("nan"))),
                _fmt(cell.get("p99_latency_ms", float("nan"))),
                _fmt(cell["slo_ms"]) if "slo_ms" in cell else "—",
                f"{100 * attain:.1f}" if attain is not None else "—",
            ])
        return format_table(headers, rows)

    # ------------------------------------------------------------------
    def exchange_table(self, max_rows: Optional[int] = None) -> str:
        records = self.exchanges
        if max_rows is not None and len(records) > max_rows:
            idx = np.linspace(0, len(records) - 1, max_rows).astype(int)
            records = [records[i] for i in sorted(set(idx))]
        headers = ["batch", "size", "carried", "depth", "rounds",
                   "lanes/shard", "cross", "ms"]
        rows = [
            [
                e.index, e.size, e.carried_in, e.queue_depth, e.rounds,
                ":".join(str(s) for s in e.shard_sizes),
                e.cross_units, f"{1e3 * e.seconds:.2f}",
            ]
            for e in records
        ]
        return format_table(headers, rows)

    def summary_table(self) -> str:
        # per-tenant cells render via tenant_table(), not as one row
        rows = [
            [k, _fmt(v)]
            for k, v in self.summary().items()
            if k != "tenants"
        ]
        return format_table(["metric", "value"], rows)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return "—" if np.isnan(v) else f"{v:,.3f}"
    return str(v)
