"""Asyncio front-end: admission, micro-batching, graceful shutdown.

The serving twin of :class:`~repro.runtime.service.StreamService`'s
simulated loop, reusing its parts unchanged — the
:class:`~repro.runtime.queue.BoundedQueue` (block/reject admission),
the :mod:`~repro.runtime.batcher` policies for target batch size, and
the :class:`~repro.runtime.carryover.CarryoverBuffer` (one lane per
conflict group per batch) — but driven by the event loop on a
monotonic wall clock:

* a **producer** task replays the workload's arrival offsets in real
  time and offers requests to the queue; a full queue blocks it
  (backpressure, latency grows) or sheds load (reject);
* the **serve loop** forms a micro-batch when enough work is ready or
  the head request has lingered ``linger`` seconds, then runs the
  blocking cluster exchange in a thread-pool executor so admission
  keeps running while the shard processes compute.

``request_stop()`` (wired to SIGINT/SIGTERM by :func:`run_serve`, and
to ``--duration``) stops admission, **drains** everything already
admitted — carried claim-losers included, so the merged end state stays
oracle-consistent — then returns a partial summary instead of dying
mid-batch.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..runtime.qos import TenantClass
from ..runtime.batcher import BatchPolicy, FixedBatcher
from ..runtime.carryover import CarryoverBuffer
from ..runtime.queue import BoundedQueue, Request
from .cluster import ProcessCluster
from .metrics import ExchangeRecord, ServeMetrics

#: Poll granularity for idle waits (seconds); batching decisions use
#: event wake-ups, this only bounds how stale a stop flag can get.
_IDLE_TICK = 0.02


class ServeFrontend:
    """Admission + micro-batching over one :class:`ProcessCluster`."""

    def __init__(
        self,
        cluster: ProcessCluster,
        *,
        batcher: Optional[BatchPolicy] = None,
        queue: Optional[BoundedQueue] = None,
        linger: float = 0.002,
    ) -> None:
        if linger < 0:
            raise ReproError(f"linger must be non-negative, got {linger}")
        self.cluster = cluster
        self.batcher = batcher if batcher is not None else FixedBatcher(512)
        self.queue = queue if queue is not None else BoundedQueue(8192)
        self.carry = CarryoverBuffer()
        self.linger = linger
        self.metrics = ServeMetrics(
            workers=cluster.shards,
            backend=cluster.coordinator.backend.name,
        )
        #: Requests retired in completion order (the oracle's workload).
        self.completed: List[Request] = []
        self.recorder = None
        self._stop = False
        self._stop_event: Optional[asyncio.Event] = None
        self._work = asyncio.Event()
        self._space = asyncio.Event()

    # ------------------------------------------------------------------
    def attach_recorder(self, recorder) -> None:
        """Attach a lifecycle-span recorder (see
        :class:`repro.obs.events.TraceRecorder`) — or detach with
        ``None``.  Wires the queue's admission observer, the cluster
        coordinator's migration observer, and the metrics summary's
        stage breakdown.  Purely observational: no timing path
        changes."""
        self.recorder = recorder
        self.queue.observer = recorder
        self.metrics.trace_recorder = recorder
        controller = getattr(self.cluster.coordinator, "controller", None)
        if controller is not None:
            controller.observer = recorder

    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Stop admitting, drain what's in flight, return partial
        metrics (idempotent; safe from signal handlers on the loop)."""
        self._stop = True
        self.metrics.interrupted = True
        if self._stop_event is not None:
            self._stop_event.set()
        self._work.set()
        self._space.set()

    # ------------------------------------------------------------------
    async def run(
        self,
        requests: Sequence[Request],
        *,
        duration: Optional[float] = None,
    ) -> ServeMetrics:
        """Serve ``requests`` (arrival offsets in seconds) to completion
        or until stopped; returns the populated metrics."""
        loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if self._stop:  # stop requested before the loop existed
            self._stop_event.set()
        t0 = time.perf_counter()

        def clock() -> float:
            return time.perf_counter() - t0

        if self.recorder is not None:
            # Re-anchor the recorder on this run's monotonic origin so
            # every event timestamp shares the frontend's clock.
            from ..obs.core import Clock

            self.recorder.clock = Clock(clock, "seconds")
        arrivals = sorted(requests, key=lambda r: (r.arrival, r.rid))
        timer = (
            loop.call_later(duration, self.request_stop)
            if duration is not None
            else None
        )
        producer = asyncio.create_task(self._produce(arrivals, clock))
        try:
            await self._serve_loop(clock, producer)
        finally:
            self._stop = True
            self._stop_event.set()
            await producer
            if timer is not None:
                timer.cancel()
        self.metrics.absorb_queue(self.queue)
        return self.metrics

    # ------------------------------------------------------------------
    async def _produce(self, arrivals: List[Request], clock) -> None:
        for req in arrivals:
            if self._stop:
                return
            delay = req.arrival - clock()
            if delay > 0:
                try:
                    await asyncio.wait_for(
                        self._stop_event.wait(), timeout=delay
                    )
                    return  # stop arrived while waiting for the arrival
                except asyncio.TimeoutError:
                    pass
            while not self._stop:
                if self.queue.offer(req, clock()):
                    self._work.set()
                    break
                if self.queue.admission == "reject":
                    break  # dropped and counted by the queue
                self._space.clear()
                # blocked: wait for a batch to free queue space
                try:
                    await asyncio.wait_for(
                        self._space.wait(), timeout=_IDLE_TICK
                    )
                except asyncio.TimeoutError:
                    pass

    # ------------------------------------------------------------------
    async def _serve_loop(self, clock, producer: "asyncio.Task") -> None:
        loop = asyncio.get_running_loop()
        index = 0
        while True:
            ready = self.carry.depth + self.queue.depth
            if ready == 0:
                if producer.done() or self._stop:
                    break  # admitted work fully drained
                self._work.clear()
                try:
                    await asyncio.wait_for(
                        self._work.wait(), timeout=_IDLE_TICK
                    )
                except asyncio.TimeoutError:
                    pass
                continue

            # -- wait for a fuller batch? ------------------------------
            filling = not (producer.done() or self._stop)
            target = self.batcher.target_size()
            if ready < target and filling:
                oldest = self.queue.oldest_enqueued()
                now = clock()
                deadline = (oldest if oldest is not None else now) + self.linger
                # Deadline-aware release (QoS runs): never linger past
                # the point where the most urgent queued SLO class must
                # launch to stay inside its budget.
                slo_release = self.queue.earliest_deadline()
                if slo_release is not None:
                    deadline = min(
                        deadline, slo_release - self.batcher.slo_margin
                    )
                if now < deadline:
                    await asyncio.sleep(min(self.linger, deadline - now))
                    if self.recorder is not None:
                        self.recorder.linger_wait(now, clock())
                    continue

            # -- form and execute one micro-batch exchange -------------
            carried = self.carry.drain_ready()
            take = max(0, target - len(carried))
            batch = carried + self.queue.take(take)
            self._space.set()
            depth = self.queue.depth
            t_start = clock()
            result = await loop.run_in_executor(
                None, self.cluster.execute, batch
            )
            t_end = clock()
            for req in result.completed:
                req.completed = t_end
                self.metrics.record_completion(req.latency, tenant=req.tenant)
                self.completed.append(req)
            self.carry.put(result.carried)
            self.metrics.record_exchange(
                ExchangeRecord(
                    index=index,
                    size=len(batch),
                    carried_in=len(carried),
                    queue_depth=depth,
                    rounds=result.rounds,
                    completed=len(result.completed),
                    seconds=t_end - t_start,
                    cross_units=result.cross_units,
                    shard_sizes=result.shard_sizes,
                ),
                t_end,
            )
            if self.recorder is not None:
                self.recorder.record_batch(index, batch, result, t_start, t_end)
            self.batcher.observe(
                len(batch),
                result.rounds,
                result.multiplicity,
                result.filtered,
                carried=len(carried),
            )
            index += 1


# ----------------------------------------------------------------------
# one-call orchestration (CLI and benchmarks)
# ----------------------------------------------------------------------
@dataclass
class ServeReport:
    """Everything one serve run produced."""

    metrics: ServeMetrics
    #: First divergence between the merged worker end state and the
    #: one-shot scalar oracle over the completed requests, or None.
    divergence: Optional[object]
    #: Requests actually applied (the oracle's input; excludes rejected
    #: and still-carried lanes of an interrupted run).
    completed: List[Request]
    state_fingerprint: str
    #: True when SIGINT/SIGTERM (not --duration) stopped the run.
    signalled: bool = False
    #: The lifecycle-span recorder of a ``--trace`` run, or None.
    recorder: Optional[object] = None


def run_serve(
    *,
    workers: int,
    backend: str = "native",
    requests: int = 2000,
    rate: Optional[float] = None,
    duration: Optional[float] = None,
    skew: float = 1.2,
    kinds: Optional[Sequence[str]] = None,
    weights: Optional[Sequence[float]] = None,
    policy: str = "fixed",
    batch_size: int = 512,
    linger_ms: float = 2.0,
    queue_capacity: int = 8192,
    admission: str = "block",
    table_size: int = 509,
    n_cells: int = 64,
    key_space: int = 4096,
    partitioner: str = "hash",  # no-kind-lint
    seed: int = 0,
    install_signal_handlers: bool = True,
    bins: Optional[int] = None,
    rebalance: bool = False,
    rebalance_objective: str = "imbalance",
    migration: str = "all-at-once",
    tenants: Optional[Sequence["TenantClass"]] = None,
    qos: bool = False,
    qos_burst: float = 1.0,
    trace: bool = False,
    trace_out: Optional[str] = None,
) -> ServeReport:
    """Generate a workload, serve it through a K-process cluster, shut
    the cluster down cleanly, and verify the merged end state against
    the scalar oracle.  The one entry point the CLI, the benchmark and
    the tests all share.

    ``tenants`` switches the workload to a tenant-tagged mix (each
    tenant drawing keys with its own skew) and adds per-tenant metrics;
    ``qos=True`` additionally enables weighted per-tenant admission and
    deadline-aware batch release (``qos_burst`` scales the per-tenant
    depth caps).

    ``trace=True`` attaches a request-lifecycle span recorder (see
    :mod:`repro.obs.events`): the summary gains a per-stage latency
    decomposition and ``trace_out`` exports the event log as JSONL for
    ``python -m repro trace``.  Purely observational — admission,
    batching and execution paths are unchanged."""
    import math as _math
    import signal as _signal

    import numpy as np

    from ..audit.oracle import diff_stream_state
    from ..engine.spec import stream_mix_kinds
    from ..runtime.batcher import make_batcher
    from ..runtime.qos import QoSPolicy
    from .loadgen import timed_workload

    if qos and not tenants:
        raise ReproError("qos=True needs tenant classes (tenants=...)")
    if kinds is None:
        kinds = stream_mix_kinds()
    rng = np.random.default_rng(seed)
    workload = timed_workload(
        rng,
        requests,
        kinds=kinds,
        weights=weights,
        skew=skew,
        key_space=key_space,
        n_cells=n_cells,
        rate=rate,
        tenants=tenants,
    )
    if policy == "fixed":
        batcher = make_batcher("fixed", batch_size=batch_size)
    elif policy == "adaptive":
        batcher = make_batcher("adaptive", initial=batch_size)
    else:
        raise ReproError(
            f"serve supports the fixed/adaptive batch policies (wall-clock "
            f"linger replaces the cycle-driven deadline), got {policy!r}"
        )

    cluster = ProcessCluster.for_workload(
        workload,
        shards=workers,
        backend=backend,
        table_size=table_size,
        n_cells=n_cells,
        key_space=key_space,
        partitioner=partitioner,
        seed=seed,
        bins=bins,
        rebalance=rebalance,
        rebalance_objective=rebalance_objective,
        migration=migration,
    )
    try:
        policy = QoSPolicy(tenants, burst=qos_burst) if qos else None
        frontend = ServeFrontend(
            cluster,
            batcher=batcher,
            queue=BoundedQueue(queue_capacity, admission=admission, qos=policy),
            linger=linger_ms / 1e3,
        )
        recorder = None
        if trace or trace_out:
            from ..obs.core import Clock
            from ..obs.events import TraceRecorder

            recorder = TraceRecorder(Clock.wall(), sink=trace_out)
            frontend.attach_recorder(recorder)

        signalled = {"flag": False}

        def _on_signal() -> None:
            signalled["flag"] = True
            frontend.request_stop()

        async def _main() -> ServeMetrics:
            loop = asyncio.get_running_loop()
            installed: List[int] = []
            if install_signal_handlers:
                for sig in (_signal.SIGINT, _signal.SIGTERM):
                    try:
                        loop.add_signal_handler(sig, _on_signal)
                        installed.append(sig)
                    except (NotImplementedError, RuntimeError):
                        pass  # non-unix loop; Ctrl-C falls back to KI
            try:
                return await frontend.run(workload, duration=duration)
            finally:
                for sig in installed:
                    loop.remove_signal_handler(sig)

        try:
            metrics = asyncio.run(_main())
        except KeyboardInterrupt:
            # Non-unix fallback: the loop died under us; report what
            # completed before the interrupt (state already drained by
            # shutdown below).
            signalled["flag"] = True
            metrics = frontend.metrics
            metrics.interrupted = True
    finally:
        cluster.shutdown()
    if tenants:
        # The FIFO baseline has no QoSPolicy on the queue, but fairness
        # accounting still needs the configured weights and budgets.
        metrics.tenant_weights.update({t.name: t.share for t in tenants})
        for t in tenants:
            if _math.isfinite(t.slo):
                metrics.tenant_slos.setdefault(t.name, t.slo)
    divergence = diff_stream_state(
        cluster.coordinator,
        frontend.completed,
        table_size=table_size,
        n_cells=n_cells,
        key_space=key_space,
    )
    if recorder is not None:
        recorder.flush()
    return ServeReport(
        metrics=metrics,
        divergence=divergence,
        completed=frontend.completed,
        state_fingerprint=cluster.coordinator.state_fingerprint(),
        signalled=signalled["flag"],
        recorder=recorder,
    )
