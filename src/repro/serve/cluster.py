"""K shard processes behind the single-engine ``execute(batch)`` surface.

:class:`ProcessCluster` is the multi-process twin of
:class:`~repro.shard.coordinator.ShardCoordinator` — same router, same
two-phase claim/commit, same merged-state accessors — except the K
workers are OS processes computing concurrently in their own shared-
memory arenas instead of K in-process pipelines run back to back.

One ``execute`` call is one lockstep exchange:

1. **route** — the in-process :class:`~repro.shard.router.Router`
   splits the batch exactly as the simulated coordinator would;
2. **scatter** — each busy shard's sub-batch is encoded into its shared
   inbox (zero-copy rows) and a tiny ``batch`` message posted to its
   command queue.  All busy workers now run their FOL pipelines *at the
   same time* — the wall-clock analogue of the coordinator's
   ``max``-over-shards cycle accounting;
3. **gather** — each reply names how many completed/carried rows the
   worker wrote to its shared outbox; the rows are folded back onto the
   front-end's authoritative request objects by rid;
4. **claim/commit** — cross-shard tuples resolve first-come against the
   batch's cell set (identical code path), and each winner's two cell
   writes are computed by running the spec's ``commit_cross`` against a
   recording proxy: the proxy reads live cell values straight out of
   the owners' shared arenas but *records* the writes, which are then
   shipped to the owner processes as ``commit`` messages — the arena's
   single writer stays its owner, and claims guarantee the winners'
   addresses are disjoint so record-then-apply cannot reorder effects.

The front-end also keeps a **mirror** :class:`ShardWorker` per shard —
built with the identical layout, then rebound onto the worker's shared
arena — wrapped in a real :class:`ShardCoordinator`.  The mirrors never
execute batches; they give the merged-state accessors
(``list_values``/``chain_multisets``/``bst_inorder``) and the scalar
oracle (:func:`repro.audit.diff_stream_state`) a zero-copy, zero-change
view of the cluster's global end state.  Reads happen only between
exchanges, when every worker is idle at its command queue.

``shutdown`` is always safe to call (idempotent): it stops workers,
joins them, snapshots each arena into the mirror (so merged state stays
inspectable post-mortem), and unlinks every shared segment.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.spec import (
    MIGRATE_CELL,
    MIGRATE_CHAIN,
    count_by_kind,
    get_domain,
    get_spec,
    specs,
)
from ..errors import ReproError
from ..runtime.executor import BatchResult
from ..runtime.queue import Request
from ..shard.coordinator import ShardCoordinator
from ..shard.migration import MigrationController
from ..shard.partition import make_partition_map
from ..shard.rebalance import Rebalancer
from ..shard.router import Router
from ..shard.worker import ShardWorker
from . import transport
from .proc_worker import worker_main
from .transport import (
    MSG_BATCH,
    MSG_COMMIT,
    MSG_COMMITTED,
    MSG_DONE,
    MSG_ERROR,
    MSG_MIG_DONE,
    MSG_MIG_EXPORT,
    MSG_MIG_IMPORT,
    MSG_MIG_QUERY,
    MSG_MIG_ROOM,
    MSG_MIG_STATE,
    MSG_READY,
    MSG_STOP,
    MSG_STOPPED,
    ROW_COLS,
    ShmBlock,
    WorkerConfig,
)

#: Default seconds to wait for a worker reply before declaring it dead.
REPLY_TIMEOUT = 120.0


class _RecordingShard:
    """Stand-in for one worker in ``spec.commit_cross``: structural
    addresses and reads come from the mirror (live shared memory),
    writes are recorded for the owner process to apply."""

    class _Mem:
        def __init__(self, mirror_mem, writes):
            self._mem = mirror_mem
            self._writes = writes

        def peek(self, addr: int) -> int:
            # A commit may read an address an earlier recorded write in
            # the same exchange targeted; claims make winner addresses
            # disjoint, but stay correct if that ever changes.
            for a, v in reversed(self._writes):
                if a == int(addr):
                    return v
            return int(self._mem.peek(addr))

        def poke(self, addr: int, value: int) -> None:
            self._writes.append((int(addr), int(value)))

    class _VM:
        def __init__(self, mem):
            self.mem = mem

    def __init__(self, mirror: ShardWorker):
        self._mirror = mirror
        self.writes: List[Tuple[int, int]] = []
        self.vm = self._VM(self._Mem(mirror.vm.mem, self.writes))

    def cell_addr(self, cell: int) -> int:
        return self._mirror.cell_addr(cell)


class _CommitRecorder:
    """The ``coordinator`` argument ``commit_cross``/``carry_group``
    expect, backed by recording shards."""

    def __init__(self, mirrors: Sequence[ShardWorker]):
        self.workers = [_RecordingShard(m) for m in mirrors]

    def reset(self) -> None:
        for w in self.workers:
            w.writes.clear()

    def pending(self) -> List[Tuple[int, List[Tuple[int, int]]]]:
        return [
            (s, list(w.writes))
            for s, w in enumerate(self.workers)
            if w.writes
        ]


class ProcessCluster:
    """K shard worker processes + shared arenas + claim/commit bridge."""

    def __init__(
        self,
        *,
        shards: int,
        table_size: int = 509,
        n_cells: int = 64,
        key_space: int = 4096,
        capacities: Dict[str, int],
        carryover: bool = True,
        conflict_policy: str = "arbitrary",
        backend: str = "native",
        partitioner: str = "hash",  # no-kind-lint
        seed: int = 0,
        inbox_rows: int = 8192,
        reply_timeout: float = REPLY_TIMEOUT,
        bins: Optional[int] = None,
        rebalance: bool = False,
        rebalance_objective: str = "imbalance",
        migration: str = "all-at-once",
    ) -> None:
        from ..backend import get_backend
        from ..engine.spec import EngineContext, machine_words

        if shards <= 0:
            raise ReproError(f"worker count must be positive, got {shards}")
        get_backend(backend)  # fail fast on unknown names, in this process
        self.shards = shards
        self.table_size = table_size
        self.n_cells = n_cells
        self.key_space = key_space
        self.reply_timeout = reply_timeout
        self._alive = False
        ctx = EngineContext(
            table_size=table_size, n_cells=n_cells, key_space=key_space
        )
        words = machine_words(capacities, ctx)

        partition = make_partition_map(
            partitioner,
            shards,
            table_size=table_size,
            n_cells=n_cells,
            key_space=key_space,
            bins=bins,
        )
        self.router = Router(partition)

        # -- shared segments + worker processes ------------------------
        mp_ctx = mp.get_context()
        self._links = []
        for s in range(shards):
            state = ShmBlock.create((words,))
            inbox = ShmBlock.create((inbox_rows, ROW_COLS))
            outbox = ShmBlock.create((inbox_rows, ROW_COLS))
            cfg = WorkerConfig(
                shard_id=s,
                table_size=table_size,
                n_cells=n_cells,
                key_space=key_space,
                capacities=dict(capacities),
                carryover=carryover,
                conflict_policy=conflict_policy,
                backend=backend,
                seed=seed,
                words=words,
                inbox_rows=inbox_rows,
                state_name=state.name,
                inbox_name=inbox.name,
                outbox_name=outbox.name,
            )
            cmd_q = mp_ctx.Queue()
            res_q = mp_ctx.Queue()
            proc = mp_ctx.Process(
                target=worker_main,
                args=(cfg, cmd_q, res_q),
                name=f"repro-serve-shard-{s}",
                daemon=True,
            )
            self._links.append(
                {
                    "proc": proc,
                    "cmd": cmd_q,
                    "res": res_q,
                    "state": state,
                    "inbox": inbox,
                    "outbox": outbox,
                }
            )
        for link in self._links:
            link["proc"].start()
        self._alive = True
        try:
            for s in range(shards):
                self._expect(s, MSG_READY)
        except Exception:
            self.shutdown()
            raise

        # -- zero-copy mirrors over the workers' arenas ----------------
        mirrors = []
        for s, link in enumerate(self._links):
            mirror = ShardWorker(
                s,
                table_size=table_size,
                n_cells=n_cells,
                key_space=key_space,
                capacities=capacities,
                carryover=carryover,
                conflict_policy=conflict_policy,
                backend=backend,
                seed=seed,
            )
            mirror.vm.mem.words = link["state"].array
            mirrors.append(mirror)
        #: Real coordinator over the mirrors: merged-state accessors and
        #: the scalar oracle work on the live cluster state unchanged.
        self.coordinator = ShardCoordinator(mirrors, self.router)
        self._recorder = _CommitRecorder(mirrors)
        self._batch_id = 0
        self.exchanges = 0
        self.total_cross = 0

        # -- live migration across processes ---------------------------
        # Built after the mirror coordinator (whose constructor resets
        # the router's controller hook).  The cluster itself is the
        # controller's mover: exports run in the source process, imports
        # in the destination, the parent only relays between them.
        self.rebalancer = (
            Rebalancer(partition, objective=rebalance_objective)
            if rebalance
            else None
        )
        self.controller = (
            MigrationController(partition, strategy=migration)
            if rebalance
            else None
        )
        self.router.controller = self.controller
        self.total_migrations = 0
        self.migration_skips = 0

    # ------------------------------------------------------------------
    @classmethod
    def for_workload(
        cls,
        requests: Sequence[Request],
        *,
        shards: int,
        inbox_rows: Optional[int] = None,
        **kwargs,
    ) -> "ProcessCluster":
        """Size arenas and inboxes for ``requests`` the way
        :meth:`ShardCoordinator.for_workload` does: every worker can
        hold the whole workload (skew can land it all on one shard)."""
        counts = count_by_kind(requests)
        caps = {
            spec.name: spec.shard_capacity(counts.get(spec.name, 0))
            for spec in specs()
        }
        if inbox_rows is None:
            inbox_rows = max(4096, len(list(requests)) + 1024)
        return cls(
            shards=shards, capacities=caps, inbox_rows=inbox_rows, **kwargs
        )

    # ------------------------------------------------------------------
    def _expect(self, shard: int, tag: str, timeout: Optional[float] = None):
        """Next reply from ``shard``, which must carry ``tag``; raises
        on worker errors (with the child traceback) and timeouts."""
        import queue as _queue

        link = self._links[shard]
        timeout = self.reply_timeout if timeout is None else timeout
        try:
            msg = link["res"].get(timeout=timeout)
        except _queue.Empty:
            raise ReproError(
                f"shard {shard} did not reply within {timeout}s "
                f"(alive={link['proc'].is_alive()})"
            ) from None
        if msg[0] == MSG_ERROR:
            raise ReproError(f"shard {shard} failed:\n{msg[2]}")
        if msg[0] != tag:
            raise ReproError(
                f"shard {shard}: expected {tag!r} reply, got {msg[0]!r}"
            )
        return msg

    # ------------------------------------------------------------------
    def execute(self, batch: Sequence[Request]) -> BatchResult:
        """One lockstep exchange (see module docstring).  Matches the
        coordinator's ``execute`` contract; ``cycles`` stays 0.0 — this
        engine is measured in wall-clock seconds, not simulated cycles."""
        result = BatchResult()
        if not batch:
            return result
        if not self._alive:
            raise ReproError("cluster is shut down")
        per_shard, cross, parked = self.router.split(batch)
        # Parked lanes (bin mid-handoff) recirculate via the carryover
        # path and replay once the new owner has the bin's state.
        result.carried.extend(parked)
        result.parked = len(parked)

        # -- scatter: all busy shards compute concurrently -------------
        self._batch_id += 1
        busy: List[Tuple[int, List[Request]]] = []
        for s, sub in enumerate(per_shard):
            if not sub:
                continue
            n = transport.encode_requests(sub, self._links[s]["inbox"].array)
            self._links[s]["cmd"].put((MSG_BATCH, self._batch_id, n))
            busy.append((s, sub))

        # -- gather ----------------------------------------------------
        rounds = [0] * self.shards
        exec_spans = [0.0] * self.shards
        mults = [1]
        for s, sub in busy:
            msg = self._expect(s, MSG_DONE)
            _, _, batch_id, n_done, n_carried, r, m, exec_s = msg
            assert batch_id == self._batch_id
            out = self._links[s]["outbox"].array
            by_rid = {req.rid: req for req in sub}
            for i in range(n_done + n_carried):
                req = by_rid[int(out[i, transport.COL_RID])]
                transport.apply_row(req, out[i])
                (result.completed if i < n_done else result.carried).append(
                    req
                )
            rounds[s] = r
            exec_spans[s] = exec_s
            mults.append(m)

        # -- two-phase claim/commit over the message queues ------------
        if cross:
            t_claim = time.perf_counter()
            winners, losers = self.router.resolve_claims(cross)
            self._recorder.reset()
            for unit in winners:
                get_spec(unit.request.kind).commit_cross(self._recorder, unit)
                result.completed.append(unit.request)
            for unit in losers:
                req = unit.request
                req.group = get_spec(req.kind).carry_group(
                    self._recorder, unit
                )
                result.carried.append(req)
            commits = self._recorder.pending()
            for s, writes in commits:
                self._links[s]["cmd"].put((MSG_COMMIT, self._batch_id, writes))
            for s, _ in commits:
                self._expect(s, MSG_COMMITTED)
            self.total_cross += len(cross)
            result.cross_committed = tuple(u.request.rid for u in winners)
            result.exchange_span = time.perf_counter() - t_claim

        # -- inter-batch live migration (workers idle at their queues) -
        if self.rebalancer is not None:
            t_mig = time.perf_counter()
            self.controller.admit(self.rebalancer.plan())
            rep = self.controller.step(self)
            result.migrations = rep.completed
            self.total_migrations += rep.completed
            self.migration_skips += rep.skipped
            result.migration_span = time.perf_counter() - t_mig

        result.rounds = max(rounds)
        result.multiplicity = max(mults)
        result.shard_exec_spans = tuple(exec_spans)
        result.kind_counts = tuple(count_by_kind(batch).items())
        result.shard_sizes = tuple(len(sub) for sub in per_shard)
        result.shard_rounds = tuple(rounds)
        result.cross_units = len(cross)
        self.exchanges += 1
        return result

    # ------------------------------------------------------------------
    # migration (the MigrationController's mover hook, over the queues)
    # ------------------------------------------------------------------
    def migrate_index(
        self, domain: str, src: int, dst: int, index: int
    ) -> Optional[int]:
        """Move one domain index's state between worker *processes*;
        returns the words shipped, or ``None`` when the destination's
        node arena cannot take the chain (bin aborted, routing intact).

        Single-writer discipline holds throughout: the export mutates
        the source arena in the source process, the import mutates the
        destination arena in the destination process, and the parent
        only relays the payload between the two exchanges (both workers
        are idle at their command queues — nothing else is running).
        The chain keys are read zero-copy through the mirror (shared
        words, structural addresses identical), but the *capacity* check
        must go to the destination process: the mirror's bump allocator
        never advances, only the owner knows its headroom.
        """
        self._batch_id += 1
        xfer = self._batch_id
        style = get_domain(domain).migration
        if style == MIGRATE_CHAIN:
            mirror = self.coordinator.workers[src]
            keys = mirror.executor.table.chain(index)
            self._links[dst]["cmd"].put((MSG_MIG_QUERY, xfer, len(keys)))
            ok = self._expect(dst, MSG_MIG_ROOM)[3]
            if not ok:
                return None
            self._links[src]["cmd"].put(
                (MSG_MIG_EXPORT, xfer, style, index)
            )
            payload = self._expect(src, MSG_MIG_STATE)[3]
            self._links[dst]["cmd"].put(
                (MSG_MIG_IMPORT, xfer, style, index, payload)
            )
            self._expect(dst, MSG_MIG_DONE)
            return 2 * len(keys) + 1  # (key, next) records + head
        if style == MIGRATE_CELL:
            self._links[src]["cmd"].put(
                (MSG_MIG_EXPORT, xfer, style, index)
            )
            value = self._expect(src, MSG_MIG_STATE)[3]
            self._links[dst]["cmd"].put(
                (MSG_MIG_IMPORT, xfer, style, index, value)
            )
            self._expect(dst, MSG_MIG_DONE)
            return 1
        return 0  # MIGRATE_ROUTE: merge-on-read state, no payload

    # ------------------------------------------------------------------
    def shutdown(self, join_timeout: float = 10.0) -> None:
        """Stop workers, snapshot arenas into the mirrors, release every
        shared segment.  Idempotent; always leaves no segments behind."""
        if not self._alive:
            return
        self._alive = False
        for link in self._links:
            if link["proc"].is_alive():
                try:
                    link["cmd"].put((MSG_STOP,))
                except Exception:  # pragma: no cover - queue torn down
                    pass
        for s, link in enumerate(self._links):
            try:
                self._expect(s, MSG_STOPPED, timeout=join_timeout)
            except ReproError:
                pass  # worker already dead; join/terminate below
        for link in self._links:
            link["proc"].join(timeout=join_timeout)
            if link["proc"].is_alive():  # pragma: no cover - stuck worker
                link["proc"].terminate()
                link["proc"].join(timeout=join_timeout)
        # Keep merged state readable after the arenas are gone: swap
        # each mirror onto a private copy of its shard's final words.
        if hasattr(self, "coordinator"):
            for mirror, link in zip(self.coordinator.workers, self._links):
                mirror.vm.mem.words = link["state"].array.copy()
        for link in self._links:
            for key in ("state", "inbox", "outbox"):
                link[key].close()
                link[key].unlink()
            link["cmd"].close()
            link["res"].close()

    def __enter__(self) -> "ProcessCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self):  # pragma: no cover - backstop only
        try:
            self.shutdown()
        except Exception:
            pass
