"""The shard worker process: one OS process owning one shard's arena.

``worker_main`` is the child entry point (top-level so it pickles under
the ``spawn`` start method).  It rebuilds the exact
:class:`~repro.shard.worker.ShardWorker` the front-end's mirror was
built with — same table size, capacities and allocation order, hence
identical structural addresses (the invariant everything in
:mod:`repro.shard` rests on) — then moves the machine's words into the
shared segment the front-end created:

1. build the worker normally (its memory is a private ndarray);
2. copy the freshly initialised words into the shared segment;
3. rebind ``mem.words`` to the shared view.

Every executor access goes through the ``words`` attribute (including
the native backend's recorded-loop replay, which re-fetches it per
round), so after the rebind the worker computes *in place* in shared
memory: the front-end's mirror reads end states and cross-shard cell
values with zero copies and zero messages.

The control loop is lockstep message-driven — run a batch, apply a
commit, stop — and the worker only touches its own arena.  Cross-shard
commits arrive as explicit ``(addr, value)`` word writes from the
front-end's claim/commit resolution, preserving the single-writer
discipline: nobody but the owner process ever writes a shard's arena.

Workers ignore SIGINT/SIGTERM; shutdown is always a ``stop`` message
from the front-end (so Ctrl-C drains cleanly instead of killing
children mid-batch).
"""

from __future__ import annotations

import os
import signal
import time
import traceback

from . import transport
from .transport import (
    MSG_BATCH,
    MSG_COMMIT,
    MSG_COMMITTED,
    MSG_DONE,
    MSG_ERROR,
    MSG_MIG_DONE,
    MSG_MIG_EXPORT,
    MSG_MIG_IMPORT,
    MSG_MIG_QUERY,
    MSG_MIG_ROOM,
    MSG_MIG_STATE,
    MSG_READY,
    MSG_STOP,
    MSG_STOPPED,
    ROW_COLS,
    ShmBlock,
    WorkerConfig,
)


def worker_main(cfg: WorkerConfig, cmd_q, res_q) -> None:
    """Child process entry point (see module docstring)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    blocks = []
    try:
        from ..shard.worker import ShardWorker

        worker = ShardWorker(
            cfg.shard_id,
            table_size=cfg.table_size,
            n_cells=cfg.n_cells,
            key_space=cfg.key_space,
            capacities=cfg.capacities,
            carryover=cfg.carryover,
            conflict_policy=cfg.conflict_policy,
            backend=cfg.backend,
            seed=cfg.seed,
        )
        mem = worker.vm.mem
        if mem.words.size != cfg.words:
            raise RuntimeError(
                f"shard {cfg.shard_id}: layout mismatch — worker built "
                f"{mem.words.size} words, front-end allocated {cfg.words}"
            )
        state = ShmBlock.attach(cfg.state_name, (cfg.words,))
        inbox = ShmBlock.attach(cfg.inbox_name, (cfg.inbox_rows, ROW_COLS))
        outbox = ShmBlock.attach(cfg.outbox_name, (cfg.inbox_rows, ROW_COLS))
        blocks = [state, inbox, outbox]
        state.array[:] = mem.words  # publish the initial layout ...
        mem.words = state.array  # ... then compute in shared memory

        res_q.put((MSG_READY, cfg.shard_id, os.getpid()))
        while True:
            msg = cmd_q.get()
            tag = msg[0]
            if tag == MSG_BATCH:
                _, batch_id, n = msg
                batch = transport.decode_requests(inbox.array, n)
                t0 = time.perf_counter()
                result = worker.execute(batch)
                exec_s = time.perf_counter() - t0
                n_done = transport.encode_requests(
                    result.completed + result.carried, outbox.array
                )
                assert n_done == len(result.completed) + len(result.carried)
                res_q.put(
                    (
                        MSG_DONE,
                        cfg.shard_id,
                        batch_id,
                        len(result.completed),
                        len(result.carried),
                        result.rounds,
                        result.multiplicity,
                        exec_s,
                    )
                )
            elif tag == MSG_COMMIT:
                _, batch_id, writes = msg
                for addr, value in writes:
                    mem.words[int(addr)] = int(value)
                res_q.put((MSG_COMMITTED, cfg.shard_id, batch_id))
            elif tag == MSG_MIG_QUERY:
                # Capacity must be answered here: the front-end mirror's
                # bump allocator never advances (allocations happen in
                # this process), so only this side knows the headroom.
                _, xfer_id, n_keys = msg
                res_q.put(
                    (
                        MSG_MIG_ROOM,
                        cfg.shard_id,
                        xfer_id,
                        bool(worker.can_import_chain(int(n_keys))),
                    )
                )
            elif tag == MSG_MIG_EXPORT:
                from ..engine.spec import MIGRATE_CHAIN

                _, xfer_id, style, index = msg
                if style == MIGRATE_CHAIN:
                    payload = worker.executor.table.chain(int(index))
                    worker.export_chain(int(index))
                else:  # MIGRATE_CELL
                    payload = worker.export_cell(int(index))
                res_q.put((MSG_MIG_STATE, cfg.shard_id, xfer_id, payload))
            elif tag == MSG_MIG_IMPORT:
                from ..engine.spec import MIGRATE_CHAIN

                _, xfer_id, style, index, payload = msg
                if style == MIGRATE_CHAIN:
                    worker.import_chain(int(index), payload)
                else:  # MIGRATE_CELL
                    worker.import_cell(int(index), int(payload))
                res_q.put((MSG_MIG_DONE, cfg.shard_id, xfer_id))
            elif tag == MSG_STOP:
                res_q.put(
                    (MSG_STOPPED, cfg.shard_id, worker.batches, worker.lanes)
                )
                break
    except BaseException:  # report, don't die silently
        res_q.put((MSG_ERROR, cfg.shard_id, traceback.format_exc()))
    finally:
        # Rebind off the shared view before dropping the mappings, so
        # close() never trips over an exported buffer.
        try:
            if blocks:
                worker.vm.mem.words = blocks[0].array.copy()
            for block in blocks:
                block.close()
        except Exception:  # pragma: no cover - exit-path best effort
            pass
