"""Real-time load generation for the serving layer.

Thin adapter over the simulated runtime's workload generators
(:func:`~repro.runtime.service.open_loop_workload` /
:func:`~repro.runtime.service.closed_loop_workload`): same truncated
Zipf keys, same weighted kind mixes, same per-kind request shapes — the
only difference is the unit of ``Request.arrival``.  Here it is
**seconds** on the front-end's clock:

* **open loop** (``rate`` given) — Poisson arrivals at ``rate``
  requests/second (exponential gaps of mean ``1/rate``); the generator
  does not react to service speed, so an overloaded server shows up as
  queue growth and measured latency, exactly like the simulated open
  loop shows it in cycles;
* **closed loop** (``rate=None``) — every request ready at t=0 and the
  bounded admission queue is the only pacing: the saturation-throughput
  configuration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..runtime.qos import TenantClass, tenant_workload
from ..runtime.queue import Request
from ..runtime.service import closed_loop_workload, open_loop_workload


def timed_workload(
    rng: np.random.Generator,
    n: int,
    *,
    kinds: Sequence[str],
    weights: Optional[Sequence[float]] = None,
    skew: float = 1.2,
    key_space: int = 4096,
    n_cells: int = 64,
    max_delta: int = 9,
    rate: Optional[float] = None,
    tenants: Optional[Sequence[TenantClass]] = None,
) -> List[Request]:
    """``n`` requests with wall-clock arrival offsets in seconds (see
    module docstring for the open/closed-loop split).

    With ``tenants`` the stream becomes a tenant-tagged mix: each
    request draws its tenant by share and its key with *that tenant's*
    skew (``skew`` is ignored), and carries the tenant's SLO budget in
    seconds.  The untenanted path is byte-identical to before —
    tenanted generation lives in its own generator so fixed-seed
    workloads keep their RNG draw order."""
    if tenants is not None:
        return tenant_workload(
            rng,
            n,
            tenants,
            kinds=kinds,
            weights=weights,
            key_space=key_space,
            n_cells=n_cells,
            max_delta=max_delta,
            mean_gap=None if rate is None else 1.0 / rate,
        )
    common = dict(
        kinds=kinds,
        weights=weights,
        skew=skew,
        key_space=key_space,
        n_cells=n_cells,
        max_delta=max_delta,
    )
    if rate is None:
        return closed_loop_workload(rng, n, **common)
    return open_loop_workload(rng, n, mean_gap=1.0 / rate, **common)
