"""Zero-copy transport between the serve front-end and shard processes.

Two channels connect the front-end to each worker process:

* **shared memory** (:class:`ShmBlock`) for the bulk payloads — the
  worker's entire machine state (its arena of int64 words) plus an
  *inbox* and *outbox* of fixed-width request rows.  Batches are
  written into the inbox as a dense ``(rows, RO_COLS)`` int64 matrix
  and read back from the outbox without serialising a single Python
  object;
* **message queues** (``multiprocessing.Queue``) for the small control
  plane — "run inbox rows 0..n", "apply these commit words", "stop" —
  mirroring the claim/commit RTTs the simulated coordinator charges
  explicitly (see docs/sharding.md §3).

The request row codec is the wire format: one request is the ten int64
columns below.  ``kind`` travels as its index into
:func:`~repro.engine.spec.registered_kinds` — both sides import the
same registry, so the mapping is identical in every process and no
strings cross the boundary.  Only the *mutable* execution-state fields
come back (a completed or carried row is applied onto the front-end's
authoritative :class:`~repro.runtime.queue.Request` object by rid);
wall-clock timestamps never leave the front-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..runtime.queue import Request

#: Request-row columns (one request = one int64 row of these fields).
COL_RID = 0
COL_KIND = 1
COL_KEY = 2
COL_KEY2 = 3
COL_DELTA = 4
COL_ATTEMPTS = 5
COL_SLOT = 6
COL_NODE = 7
COL_GROUP = 8
COL_HOME = 9
ROW_COLS = 10

#: Control-plane message tags (front-end -> worker).
MSG_BATCH = "batch"
MSG_COMMIT = "commit"
MSG_STOP = "stop"
#: Live-migration handoff tags (front-end -> worker).  The front-end
#: orchestrates each index transfer as query-capacity (destination),
#: export (source), import (destination); state only ever moves between
#: the owner processes, never through the parent's hands as a write.
MSG_MIG_QUERY = "mig_query"
MSG_MIG_EXPORT = "mig_export"
MSG_MIG_IMPORT = "mig_import"
#: Control-plane message tags (worker -> front-end).
MSG_READY = "ready"
MSG_DONE = "done"
MSG_COMMITTED = "committed"
MSG_STOPPED = "stopped"
MSG_ERROR = "error"
#: Live-migration reply tags (worker -> front-end).
MSG_MIG_ROOM = "mig_room"
MSG_MIG_STATE = "mig_state"
MSG_MIG_DONE = "mig_done"

_WORD = np.int64


def kind_codes() -> Tuple[str, ...]:
    """The kind-name table both codec ends index into (registration
    order; identical in every process importing the registry)."""
    from ..engine.spec import registered_kinds

    return registered_kinds()


def encode_requests(reqs: Sequence[Request], rows: np.ndarray) -> int:
    """Write ``reqs`` into the leading rows of ``rows`` (an inbox/outbox
    view); returns the row count.  Raises when the batch outgrows the
    shared segment — sizing is the cluster's job, this is the seatbelt."""
    if len(reqs) > rows.shape[0]:
        raise ReproError(
            f"batch of {len(reqs)} requests exceeds the shared inbox "
            f"({rows.shape[0]} rows); raise inbox_rows"
        )
    codes = {name: i for i, name in enumerate(kind_codes())}
    for i, r in enumerate(reqs):
        row = rows[i]
        row[COL_RID] = r.rid
        row[COL_KIND] = codes[r.kind]
        row[COL_KEY] = r.key
        row[COL_KEY2] = r.key2
        row[COL_DELTA] = r.delta
        row[COL_ATTEMPTS] = r.attempts
        row[COL_SLOT] = r.slot
        row[COL_NODE] = r.node
        row[COL_GROUP] = r.group
        row[COL_HOME] = r.home
    return len(reqs)


def decode_requests(rows: np.ndarray, n: int) -> List[Request]:
    """Rebuild ``n`` requests from inbox rows (worker side).  The copies
    carry no timestamps — latency is stamped by the front-end on its
    authoritative objects."""
    names = kind_codes()
    out: List[Request] = []
    for i in range(n):
        row = rows[i]
        out.append(
            Request(
                rid=int(row[COL_RID]),
                kind=names[int(row[COL_KIND])],
                key=int(row[COL_KEY]),
                key2=int(row[COL_KEY2]),
                delta=int(row[COL_DELTA]),
                attempts=int(row[COL_ATTEMPTS]),
                slot=int(row[COL_SLOT]),
                node=int(row[COL_NODE]),
                group=int(row[COL_GROUP]),
                home=int(row[COL_HOME]),
            )
        )
    return out


def apply_row(req: Request, row: np.ndarray) -> None:
    """Fold one outbox row's mutable execution state back onto the
    front-end's request object (matched by rid upstream)."""
    req.attempts = int(row[COL_ATTEMPTS])
    req.slot = int(row[COL_SLOT])
    req.node = int(row[COL_NODE])
    req.group = int(row[COL_GROUP])
    req.home = int(row[COL_HOME])


# ----------------------------------------------------------------------
# shared-memory segments
# ----------------------------------------------------------------------
@dataclass
class ShmBlock:
    """One named shared-memory segment viewed as an int64 ndarray.

    The creator (always the front-end) owns the segment's lifetime and
    must :meth:`unlink` it; attachers (worker processes) only map it.
    On 3.10–3.12 ``SharedMemory(name=...)`` re-registers the segment
    with the attaching process's resource tracker (the opt-out only
    landed in 3.13).  Under ``spawn`` the attacher has its *own*
    tracker, which would unlink the segment when the worker exits —
    before the front-end has read the final state — so :meth:`attach`
    undoes that registration.  Under ``fork`` the workers inherit the
    front-end's tracker: the re-registration is a harmless duplicate
    and must *not* be undone (the front-end's unlink still needs it).
    """

    shm: shared_memory.SharedMemory
    array: np.ndarray
    owner: bool

    @classmethod
    def create(cls, shape: Tuple[int, ...]) -> "ShmBlock":
        size = int(np.prod(shape)) * np.dtype(_WORD).itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(size, 8))
        array = np.ndarray(shape, dtype=_WORD, buffer=shm.buf)
        array.fill(0)
        return cls(shm=shm, array=array, owner=True)

    @classmethod
    def attach(cls, name: str, shape: Tuple[int, ...]) -> "ShmBlock":
        import multiprocessing as mp

        shm = shared_memory.SharedMemory(name=name)
        if mp.get_start_method(allow_none=True) == "spawn":
            try:  # pragma: no cover - spawn-only (see class docstring)
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        array = np.ndarray(shape, dtype=_WORD, buffer=shm.buf)
        return cls(shm=shm, array=array, owner=False)

    @property
    def name(self) -> str:
        return self.shm.name

    def close(self) -> None:
        """Drop the mapping (views must be released first; the caller
        rebinds or copies anything it still needs)."""
        self.array = None  # release the exported buffer
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - a view leaked; leave mapped
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only; idempotent)."""
        if not self.owner:
            return
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


@dataclass
class WorkerConfig:
    """Everything a worker process needs to rebuild its shard (picklable
    and spawn-safe: the backend travels by registry name, shared
    segments by name, and the layout parameters by value — the worker
    reconstructs the exact :class:`~repro.shard.worker.ShardWorker` the
    front-end's mirror was built with, which is what makes structural
    addresses identical on both sides)."""

    shard_id: int
    table_size: int
    n_cells: int
    key_space: int
    capacities: dict
    carryover: bool
    conflict_policy: str
    backend: str
    seed: int
    words: int
    inbox_rows: int
    state_name: str
    inbox_name: str
    outbox_name: str
