"""Cycle ledger for the simulated machine.

A :class:`CycleCounter` is shared by the scalar unit, the vector unit and
(optionally) several data structures living in the same :class:`~repro.machine.memory.Memory`.
It keeps separate scalar/vector totals plus a per-category breakdown so
benches can report *where* the cycles went (gathers vs. ALU vs. start-up),
which is what the §4.1 discussion of the load-factor curve is about.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class CycleCounter:
    """Accumulates simulated cycles, split by unit and category."""

    scalar_cycles: float = 0.0
    vector_cycles: float = 0.0
    by_category: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    by_section: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    _section_stack: list = field(default_factory=list)
    vector_instructions: int = 0
    scalar_instructions: int = 0
    vector_elements: int = 0

    # ------------------------------------------------------------------
    def charge_scalar(self, cycles: float, category: str = "scalar") -> None:
        """Add ``cycles`` to the scalar unit's total."""
        self.scalar_cycles += cycles
        self.scalar_instructions += 1
        self.by_category[category] += cycles
        for name in self._section_stack:
            self.by_section[name] += cycles

    def charge_vector(self, cycles: float, n: int, category: str = "vector") -> None:
        """Add ``cycles`` for one vector instruction over ``n`` elements."""
        self.vector_cycles += cycles
        self.vector_instructions += 1
        self.vector_elements += max(n, 0)
        self.by_category[category] += cycles
        for name in self._section_stack:
            self.by_section[name] += cycles

    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """All cycles charged so far (scalar + vector)."""
        return self.scalar_cycles + self.vector_cycles

    def reset(self) -> None:
        """Zero every ledger (totals, categories, sections)."""
        self.scalar_cycles = 0.0
        self.vector_cycles = 0.0
        self.by_category.clear()
        self.by_section.clear()
        self.vector_instructions = 0
        self.scalar_instructions = 0
        self.vector_elements = 0

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Attribute all cycles charged inside the ``with`` block to
        ``name`` (sections nest; each level receives the charge)."""
        self._section_stack.append(name)
        try:
            yield
        finally:
            self._section_stack.pop()

    def snapshot(self) -> float:
        """Return the current total; use with :meth:`delta`."""
        return self.total

    def delta(self, snap: float) -> float:
        """Cycles charged since ``snap`` was taken."""
        return self.total - snap

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Human-readable multi-line summary of the ledger."""
        lines = [
            f"total cycles   : {self.total:,.0f}",
            f"  scalar       : {self.scalar_cycles:,.0f} ({self.scalar_instructions} ops)",
            f"  vector       : {self.vector_cycles:,.0f} "
            f"({self.vector_instructions} instrs, {self.vector_elements} elems)",
        ]
        if self.by_category:
            lines.append("by category:")
            for name, cyc in sorted(self.by_category.items(), key=lambda kv: -kv[1]):
                lines.append(f"  {name:<16s} {cyc:,.0f}")
        if self.by_section:
            lines.append("by section:")
            for name, cyc in sorted(self.by_section.items(), key=lambda kv: -kv[1]):
                lines.append(f"  {name:<16s} {cyc:,.0f}")
        return "\n".join(lines)
