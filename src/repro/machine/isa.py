"""An instruction-level backend for the simulated vector machine.

The paper's algorithms were ultimately *machine programs* (Fortran
compiled for the S-810 with forced vectorization).  The facade in
:mod:`repro.machine.vm` executes algorithms as Python calls; this module
provides the other altitude: a register-machine ISA with an interpreter,
so an algorithm can be written as an actual instruction sequence with
labels and branches, executed against the same :class:`Memory` and
charged through the same :class:`CostModel`.

Register model
--------------
* ``S0..S15`` — scalar registers (Python ints),
* ``V0..V15`` — vector registers (int64 arrays, variable length),
* ``M0..M7``  — mask registers (bool arrays).

Instruction set (a minimal S-810-flavoured subset)::

    SLI   sd, imm          scalar load-immediate
    SMOVE sd, sa           scalar copy
    SADD/SSUB/SMUL sd,sa,sb   scalar ALU (charged)
    VIOTA  vd, sa          vd := (0, 1, ..., S[sa]-1)
    VSPLAT vd, sa, sn      vd := S[sa] repeated S[sn] times
    VADDS/VSUBS/VMULS/VMODS/VANDS vd,va,sb   vector op scalar
    VADDV/VSUBV vd,va,vb   vector op vector
    VCMPES/VCMPNS md,va,sb  mask := (va == / != S[sb])
    VCMPEV/VCMPNV md,va,vb  mask := (va == / != vb)
    MNOT  md, ma           mask complement
    MCNT  sd, ma           population count (charged as reduce)
    VGATHER  vd, va        vd[i] := mem[va[i]]
    VSCATTER va, vb [, ma]  mem[va[i]] := vb[i] under ELS (masked form)
    VCOMPRESS vd, va, ma   pack true lanes
    VLEN  sd, va           sd := lane count of va (free: register state)
    JZ    sa, label        jump if S[sa] == 0 (charged as branch)
    JNZ   sa, label
    JMP   label
    HALT

Programs are lists of instruction tuples built by :class:`Assembler`
(which resolves labels).  :class:`Interpreter` executes them, reusing
the charged primitives of a :class:`VectorMachine` so ISA-level and
facade-level implementations of one algorithm are directly comparable
in cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import MachineError
from .vm import VectorMachine

Operand = Union[int, str]


class IsaError(MachineError):
    """Malformed program or bad register/label reference."""


@dataclass(frozen=True)
class Instr:
    """One assembled instruction: opcode + integer operands (labels
    already resolved to instruction indices)."""

    op: str
    args: Tuple[int, ...]


#: opcode -> expected operand count (after label resolution)
OPCODES: Dict[str, int] = {
    "SLI": 2, "SMOVE": 2, "SADD": 3, "SSUB": 3, "SMUL": 3,
    "VIOTA": 2, "VSPLAT": 3,
    "VADDS": 3, "VSUBS": 3, "VMULS": 3, "VMODS": 3, "VANDS": 3,
    "VADDV": 3, "VSUBV": 3,
    "VCMPES": 3, "VCMPNS": 3, "VCMPEV": 3, "VCMPNV": 3,
    "MNOT": 2, "MCNT": 2,
    "VGATHER": 2, "VSCATTER": 2, "VSCATTERM": 3,
    "VCOMPRESS": 3, "VLEN": 2,
    "JZ": 2, "JNZ": 2, "JMP": 1, "HALT": 0,
}

N_SREGS = 16
N_VREGS = 16
N_MREGS = 8


class Assembler:
    """Builds a program: ``emit`` instructions, ``label`` positions,
    then ``assemble`` resolves label references."""

    def __init__(self) -> None:
        self._items: List[Tuple[str, Tuple[Operand, ...]]] = []
        self._labels: Dict[str, int] = {}

    def label(self, name: str) -> "Assembler":
        if name in self._labels:
            raise IsaError(f"duplicate label {name!r}")
        self._labels[name] = len(self._items)
        return self

    def emit(self, op: str, *args: Operand) -> "Assembler":
        if op not in OPCODES:
            raise IsaError(f"unknown opcode {op!r}")
        if len(args) != OPCODES[op]:
            raise IsaError(
                f"{op} expects {OPCODES[op]} operands, got {len(args)}"
            )
        self._items.append((op, args))
        return self

    def assemble(self) -> List[Instr]:
        prog: List[Instr] = []
        for op, args in self._items:
            resolved = []
            for a in args:
                if isinstance(a, str):
                    if a not in self._labels:
                        raise IsaError(f"undefined label {a!r}")
                    resolved.append(self._labels[a])
                else:
                    resolved.append(int(a))
            prog.append(Instr(op, tuple(resolved)))
        return prog


class Interpreter:
    """Executes an assembled program against one :class:`VectorMachine`.

    All memory traffic and vector work is charged through the machine's
    existing primitives; scalar ALU/branch work is charged per
    instruction, so a program's cycle count is directly comparable with
    a facade-level implementation of the same algorithm.
    """

    def __init__(self, vm: VectorMachine, max_steps: int = 1_000_000) -> None:
        self.vm = vm
        self.max_steps = max_steps
        self.s = [0] * N_SREGS
        self.v: List[np.ndarray] = [np.zeros(0, dtype=np.int64) for _ in range(N_VREGS)]
        self.m: List[np.ndarray] = [np.zeros(0, dtype=bool) for _ in range(N_MREGS)]
        self.steps = 0

    # -- register checks -------------------------------------------------
    @staticmethod
    def _chk(idx: int, limit: int, kind: str) -> int:
        if not 0 <= idx < limit:
            raise IsaError(f"{kind} register {idx} out of range")
        return idx

    def run(self, program: List[Instr], scatter_policy: str = "arbitrary") -> int:
        """Execute until HALT; returns the number of steps executed."""
        vm = self.vm
        pc = 0
        n = len(program)
        start_steps = self.steps
        while True:
            if pc < 0 or pc >= n:
                raise IsaError(f"program counter {pc} outside program of {n}")
            self.steps += 1
            if self.steps - start_steps > self.max_steps:
                raise IsaError(f"exceeded {self.max_steps} steps — runaway loop?")
            ins = program[pc]
            op, a = ins.op, ins.args
            pc += 1

            if op == "HALT":
                return self.steps - start_steps
            elif op == "SLI":
                vm.counter.charge_scalar(vm.cost.scalar_alu, "scalar_alu")
                self.s[self._chk(a[0], N_SREGS, "S")] = a[1]
            elif op == "SMOVE":
                vm.counter.charge_scalar(vm.cost.scalar_alu, "scalar_alu")
                self.s[self._chk(a[0], N_SREGS, "S")] = self.s[self._chk(a[1], N_SREGS, "S")]
            elif op in ("SADD", "SSUB", "SMUL"):
                vm.counter.charge_scalar(vm.cost.scalar_alu, "scalar_alu")
                x = self.s[self._chk(a[1], N_SREGS, "S")]
                y = self.s[self._chk(a[2], N_SREGS, "S")]
                self.s[self._chk(a[0], N_SREGS, "S")] = (
                    x + y if op == "SADD" else x - y if op == "SSUB" else x * y
                )
            elif op == "VIOTA":
                self.v[self._chk(a[0], N_VREGS, "V")] = vm.iota(
                    self.s[self._chk(a[1], N_SREGS, "S")]
                )
            elif op == "VSPLAT":
                self.v[self._chk(a[0], N_VREGS, "V")] = vm.splat(
                    self.s[self._chk(a[2], N_SREGS, "S")],
                    self.s[self._chk(a[1], N_SREGS, "S")],
                )
            elif op in ("VADDS", "VSUBS", "VMULS", "VMODS", "VANDS"):
                fn = {"VADDS": vm.add, "VSUBS": vm.sub, "VMULS": vm.mul,
                      "VMODS": vm.mod, "VANDS": vm.bitand}[op]
                self.v[self._chk(a[0], N_VREGS, "V")] = fn(
                    self.v[self._chk(a[1], N_VREGS, "V")],
                    self.s[self._chk(a[2], N_SREGS, "S")],
                )
            elif op in ("VADDV", "VSUBV"):
                fn = vm.add if op == "VADDV" else vm.sub
                self.v[self._chk(a[0], N_VREGS, "V")] = fn(
                    self.v[self._chk(a[1], N_VREGS, "V")],
                    self.v[self._chk(a[2], N_VREGS, "V")],
                )
            elif op in ("VCMPES", "VCMPNS"):
                fn = vm.eq if op == "VCMPES" else vm.ne
                self.m[self._chk(a[0], N_MREGS, "M")] = fn(
                    self.v[self._chk(a[1], N_VREGS, "V")],
                    self.s[self._chk(a[2], N_SREGS, "S")],
                )
            elif op in ("VCMPEV", "VCMPNV"):
                fn = vm.eq if op == "VCMPEV" else vm.ne
                self.m[self._chk(a[0], N_MREGS, "M")] = fn(
                    self.v[self._chk(a[1], N_VREGS, "V")],
                    self.v[self._chk(a[2], N_VREGS, "V")],
                )
            elif op == "MNOT":
                self.m[self._chk(a[0], N_MREGS, "M")] = vm.mask_not(
                    self.m[self._chk(a[1], N_MREGS, "M")]
                )
            elif op == "MCNT":
                self.s[self._chk(a[0], N_SREGS, "S")] = vm.count_true(
                    self.m[self._chk(a[1], N_MREGS, "M")]
                )
            elif op == "VGATHER":
                self.v[self._chk(a[0], N_VREGS, "V")] = vm.gather(
                    self.v[self._chk(a[1], N_VREGS, "V")]
                )
            elif op == "VSCATTER":
                vm.scatter(
                    self.v[self._chk(a[0], N_VREGS, "V")],
                    self.v[self._chk(a[1], N_VREGS, "V")],
                    policy=scatter_policy,
                )
            elif op == "VSCATTERM":
                vm.scatter_masked(
                    self.v[self._chk(a[0], N_VREGS, "V")],
                    self.v[self._chk(a[1], N_VREGS, "V")],
                    self.m[self._chk(a[2], N_MREGS, "M")],
                    policy=scatter_policy,
                )
            elif op == "VCOMPRESS":
                self.v[self._chk(a[0], N_VREGS, "V")] = vm.compress(
                    self.v[self._chk(a[1], N_VREGS, "V")],
                    self.m[self._chk(a[2], N_MREGS, "M")],
                )
            elif op == "VLEN":
                # register-state read, no charge (like reading VL)
                self.s[self._chk(a[0], N_SREGS, "S")] = int(
                    self.v[self._chk(a[1], N_VREGS, "V")].size
                )
            elif op == "JZ":
                vm.counter.charge_scalar(vm.cost.scalar_branch, "scalar_branch")
                if self.s[self._chk(a[0], N_SREGS, "S")] == 0:
                    pc = a[1]
            elif op == "JNZ":
                vm.counter.charge_scalar(vm.cost.scalar_branch, "scalar_branch")
                if self.s[self._chk(a[0], N_SREGS, "S")] != 0:
                    pc = a[1]
            elif op == "JMP":
                vm.counter.charge_scalar(vm.cost.scalar_branch, "scalar_branch")
                pc = a[0]
            else:  # pragma: no cover — OPCODES guards this
                raise IsaError(f"unimplemented opcode {op}")
