"""The vector-unit facade: Fortran-90-style data-parallel primitives.

The paper's vectorized algorithms (Figures 8 and 12) are written in a
notation with parallel array assignment, ``where`` masking, ``countTrue``
and pack/compress (``A where M``).  :class:`VectorMachine` provides
exactly those primitives over NumPy arrays ("vector registers"), charging
every operation to the shared :class:`~repro.machine.counter.CycleCounter`
according to the machine's :class:`~repro.machine.cost_model.CostModel`.

Vectorized algorithms in this library are written **only** against this
facade plus :class:`~repro.machine.memory.Memory`'s vector port — they
contain no Python-level loops over data elements, mirroring the paper's
constraint that all innermost loops vectorize.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import VectorLengthError
from .cost_model import CostModel
from .counter import CycleCounter
from .memory import Memory

ArrayLike = Union[np.ndarray, int]


class VectorMachine:
    """Data-parallel primitive set bound to one :class:`Memory`.

    All register-level operations accept NumPy arrays and plain ints
    (ints broadcast, as vector-scalar instructions do on real hardware).
    """

    def __init__(self, memory: Memory) -> None:
        self.mem = memory
        self.cost: CostModel = memory.cost
        self.counter: CycleCounter = memory.counter

    # ------------------------------------------------------------------
    # invariant auditing (opt-in; zero cost when off)
    # ------------------------------------------------------------------
    @property
    def audit(self):
        """The attached :class:`repro.audit.InvariantAuditor`, or
        ``None`` (the default: no checks, no overhead)."""
        return self.mem.audit

    def attach_audit(self, auditor) -> None:
        """Attach an invariant auditor to this machine's memory; pass
        ``None`` to detach.  Audited runs check every scatter for ELS
        conformance and every FOL decomposition against Theorems 3-6,
        using uncharged reads — simulated cycle counts are unchanged."""
        self.mem.audit = auditor

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _lanes(*operands: ArrayLike) -> int:
        """Lane count of an operation; validates operand agreement."""
        n = None
        for op in operands:
            if isinstance(op, np.ndarray):
                if op.ndim != 1:
                    raise VectorLengthError(f"vector operand must be 1-D, got {op.shape}")
                if n is None:
                    n = op.size
                elif op.size != n:
                    raise VectorLengthError(
                        f"vector length mismatch: {n} vs {op.size}"
                    )
        if n is None:
            raise VectorLengthError("at least one operand must be a vector")
        return n

    def _charge_alu(self, n: int) -> None:
        self.counter.charge_vector(self.cost.vector_cost(n, self.cost.chime_alu), n, "v_alu")

    def _charge_compress(self, n: int) -> None:
        self.counter.charge_vector(
            self.cost.vector_cost(n, self.cost.chime_compress), n, "v_compress"
        )

    def _charge_reduce(self, n: int) -> None:
        self.counter.charge_vector(
            self.cost.vector_cost(n, self.cost.chime_reduce), n, "v_reduce"
        )

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def iota(self, n: int, start: int = 0, step: int = 1) -> np.ndarray:
        """Index-generation instruction: ``(start, start+step, ...)``.

        This is how FOL's default labels (the element subscripts,
        footnote 6 of the paper) are produced."""
        if n < 0:
            raise VectorLengthError(f"negative vector length {n}")
        self._charge_alu(n)
        return np.arange(start, start + n * step, step, dtype=np.int64)[:n]

    def splat(self, n: int, value: int) -> np.ndarray:
        """Broadcast a scalar into an ``n``-lane vector register."""
        if n < 0:
            raise VectorLengthError(f"negative vector length {n}")
        self._charge_alu(n)
        return np.full(n, value, dtype=np.int64)

    # ------------------------------------------------------------------
    # elementwise arithmetic (int64 registers)
    # ------------------------------------------------------------------
    def add(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._charge_alu(self._lanes(a, b))
        return np.asarray(np.add(a, b), dtype=np.int64)

    def sub(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._charge_alu(self._lanes(a, b))
        return np.asarray(np.subtract(a, b), dtype=np.int64)

    def mul(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._charge_alu(self._lanes(a, b))
        return np.asarray(np.multiply(a, b), dtype=np.int64)

    def floordiv(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._charge_alu(self._lanes(a, b))
        return np.asarray(np.floor_divide(a, b), dtype=np.int64)

    def mod(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._charge_alu(self._lanes(a, b))
        return np.asarray(np.mod(a, b), dtype=np.int64)

    def bitand(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._charge_alu(self._lanes(a, b))
        return np.asarray(np.bitwise_and(a, b), dtype=np.int64)

    def neg(self, a: np.ndarray) -> np.ndarray:
        self._charge_alu(self._lanes(a))
        return np.asarray(-a, dtype=np.int64)

    # ------------------------------------------------------------------
    # elementwise comparison -> mask registers (bool arrays)
    # ------------------------------------------------------------------
    def eq(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._charge_alu(self._lanes(a, b))
        return np.asarray(np.equal(a, b))

    def ne(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._charge_alu(self._lanes(a, b))
        return np.asarray(np.not_equal(a, b))

    def lt(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._charge_alu(self._lanes(a, b))
        return np.asarray(np.less(a, b))

    def le(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._charge_alu(self._lanes(a, b))
        return np.asarray(np.less_equal(a, b))

    def gt(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._charge_alu(self._lanes(a, b))
        return np.asarray(np.greater(a, b))

    def ge(self, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        self._charge_alu(self._lanes(a, b))
        return np.asarray(np.greater_equal(a, b))

    # ------------------------------------------------------------------
    # mask algebra
    # ------------------------------------------------------------------
    def mask_and(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self._charge_alu(self._lanes(a, b))
        return np.logical_and(a, b)

    def mask_or(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self._charge_alu(self._lanes(a, b))
        return np.logical_or(a, b)

    def mask_not(self, a: np.ndarray) -> np.ndarray:
        self._charge_alu(self._lanes(a))
        return np.logical_not(a)

    # ------------------------------------------------------------------
    # masked merge / compress / reductions (the Fortran-90 idioms)
    # ------------------------------------------------------------------
    def select(self, mask: np.ndarray, a: ArrayLike, b: ArrayLike) -> np.ndarray:
        """Elementwise merge: ``mask ? a : b`` (the ``where`` statement
        applied to register targets)."""
        self._charge_alu(self._lanes(mask))
        return np.asarray(np.where(mask, a, b), dtype=np.int64)

    def compress(self, a: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """``A where M`` — pack the lanes of ``a`` whose mask is true."""
        self._charge_compress(self._lanes(a, mask))
        return a[mask].copy()

    def count_true(self, mask: np.ndarray) -> int:
        """``countTrue(M)`` — population count of a mask register."""
        self._charge_reduce(self._lanes(mask))
        return int(np.count_nonzero(mask))

    def vsum(self, a: np.ndarray) -> int:
        self._charge_reduce(self._lanes(a))
        return int(a.sum())

    def vmax(self, a: np.ndarray) -> int:
        self._charge_reduce(self._lanes(a))
        return int(a.max())

    def vmin(self, a: np.ndarray) -> int:
        self._charge_reduce(self._lanes(a))
        return int(a.min())

    def any_true(self, mask: np.ndarray) -> bool:
        self._charge_reduce(self._lanes(mask))
        return bool(mask.any())

    def all_true(self, mask: np.ndarray) -> bool:
        self._charge_reduce(self._lanes(mask))
        return bool(mask.all())

    def cumsum_exclusive(self, a: np.ndarray) -> np.ndarray:
        """Exclusive prefix sum (used by the distribution counting
        sort's offset computation).  Charged at the scan chime — a 1991
        vector unit realises a scan as multiple recursive-doubling
        passes, so it is several times dearer than one elementwise op."""
        n = self._lanes(a)
        self.counter.charge_vector(
            self.cost.vector_cost(n, self.cost.chime_scan), n, "v_scan"
        )
        out = np.zeros(a.size, dtype=np.int64)
        np.cumsum(a[:-1], out=out[1:])
        return out

    # ------------------------------------------------------------------
    # memory-port conveniences (delegate to Memory, which charges)
    # ------------------------------------------------------------------
    def gather(self, addrs: np.ndarray) -> np.ndarray:
        """List-vector load through the bound memory."""
        return self.mem.gather(addrs)

    def scatter(
        self, addrs: np.ndarray, values: ArrayLike, policy: str = "arbitrary"
    ) -> None:
        """List-vector store (ELS condition) through the bound memory."""
        if not isinstance(values, np.ndarray):
            values = np.full(np.asarray(addrs).size, values, dtype=np.int64)
        self.mem.scatter(np.asarray(addrs), values, policy)

    def scatter_masked(
        self,
        addrs: np.ndarray,
        values: ArrayLike,
        mask: np.ndarray,
        policy: str = "arbitrary",
    ) -> None:
        """Masked list-vector store (``where M do mem[addr] := v``)."""
        if not isinstance(values, np.ndarray):
            values = np.full(np.asarray(addrs).size, values, dtype=np.int64)
        self.mem.scatter_masked(np.asarray(addrs), values, mask, policy)

    # ------------------------------------------------------------------
    def loop_overhead(self) -> None:
        """Charge the scalar-unit cost of one round of vector-loop
        control (the strip-mine / repeat-until bookkeeping between
        vector instructions)."""
        self.counter.charge_scalar(self.cost.scalar_branch, "scalar_branch")


def make_machine(
    mem_size: int,
    cost_model: Optional[CostModel] = None,
    seed: int = 0,
) -> VectorMachine:
    """Convenience constructor: memory + counter + vector unit in one call."""
    memory = Memory(mem_size, cost_model=cost_model, seed=seed)
    return VectorMachine(memory)
