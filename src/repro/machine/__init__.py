"""Simulated pipelined vector machine (the S-810 stand-in substrate).

Public surface:

* :class:`~repro.machine.cost_model.CostModel` — cycle costs + presets.
* :class:`~repro.machine.counter.CycleCounter` — the cycle ledger.
* :class:`~repro.machine.memory.Memory` — word-addressable storage with
  list-vector gather/scatter and ELS conflict policies.
* :class:`~repro.machine.vm.VectorMachine` — data-parallel primitives.
* :class:`~repro.machine.scalar.ScalarProcessor` — baseline charging.
* :func:`~repro.machine.vm.make_machine` — one-call construction.
"""

from .cost_model import CostModel
from .counter import CycleCounter
from .memory import CONFLICT_POLICIES, Memory
from .scalar import ScalarProcessor
from .trace import TraceEvent, Tracer
from .vm import VectorMachine, make_machine

__all__ = [
    "CostModel",
    "CycleCounter",
    "Memory",
    "CONFLICT_POLICIES",
    "ScalarProcessor",
    "Tracer",
    "TraceEvent",
    "VectorMachine",
    "make_machine",
]
