"""Cycle cost model of a pipelined vector supercomputer.

The paper evaluates FOL on a Hitachi S-810/20: a machine with a *weak*
scalar unit and a deeply pipelined vector unit whose instructions pay a
large start-up latency and then deliver results at one-or-few cycles per
element ("chime").  List-vector (indirect / gather-scatter) accesses run
at a slower chime than contiguous accesses.

We do not have an S-810, so every algorithm in this library runs against
a simulated machine that charges costs from a :class:`CostModel`.  The
*shape* of every reproduced figure comes from the algorithms' operation
counts; the cost model only sets the scalar:vector cost ratios, and is a
documented, swappable parameter (see DESIGN.md §2 and the cost-model
ablation bench).

Cost formula for a vector instruction over ``n`` elements::

    cycles = startup + chime * n

Scalar instructions cost a flat per-operation amount.  The scalar unit of
the S-810 era had no cache worth speaking of and a multi-cycle memory
path, hence ``scalar_mem`` is much larger than ``vector_chime_*``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Per-operation cycle costs for the simulated machine.

    Attributes
    ----------
    scalar_alu:
        Cycles for a scalar register-register ALU op (add, compare, ...).
    scalar_mem:
        Cycles for a scalar load or store at a *data-dependent* address
        (pointer chasing, hash probing): the full memory round trip with
        no pipelining, the access pattern symbolic code is made of.
    scalar_mem_seq:
        Cycles for a scalar load or store in a *sequential* scan
        (array initialisation, prefix sums): consecutive addresses
        pipeline through the memory banks, so this is much cheaper than
        ``scalar_mem`` — the S-810's scalar unit was slow at chasing
        pointers, not at marching through an array.
    scalar_branch:
        Cycles for a conditional branch / loop-control step.
    vector_startup:
        Fixed pipeline fill cost paid by every vector instruction.
    chime_contig:
        Per-element cycles for contiguous vector load/store.
    chime_gather:
        Per-element cycles for list-vector (indirect) load/store.
        On real hardware this is the slowest path; FOL leans on it.
    chime_alu:
        Per-element cycles for elementwise arithmetic/compare.
    chime_compress:
        Per-element cycles for compress/pack-under-mask operations.
    chime_reduce:
        Per-element cycles for reductions (count_true, sum, max).
    chime_scan:
        Per-element cycles for prefix-sum scans: a 1991 vector unit runs
        a scan as a multi-pass recursive doubling, hence several chimes.
    section_size:
        Vector-register length.  0 (default) models arbitrarily long
        vectors; a positive value strip-mines every vector instruction
        into ceil(n / section_size) sections, each paying the start-up
        cost — the realism knob for machines with short registers (see
        the strip-mining ablation bench).
    shard_claim_rtt:
        Cycles for one inter-shard control message round trip in the
        sharded engine (:mod:`repro.shard`): a claim or commit exchange
        between the coordinator and one owning worker.  Modelled on the
        latency of a processor-to-processor transfer on an early
        shared-nothing multi-vector machine — several memory round
        trips, so cross-shard unit processes are only worth it when the
        alternative is serialising a whole shard.
    shard_transfer_per_word:
        Per-word cycles for bulk inter-shard state transfer (migrating
        a key range's storage between workers, or carrying a cross-shard
        unit's operands).  Cheaper per word than a claim RTT because
        transfers stream/pipeline.
    """

    scalar_alu: float = 8.0
    scalar_mem: float = 45.0
    scalar_mem_seq: float = 6.0
    scalar_branch: float = 10.0
    vector_startup: float = 60.0
    chime_contig: float = 1.0
    chime_gather: float = 2.0
    chime_alu: float = 0.3
    chime_compress: float = 0.7
    chime_reduce: float = 0.5
    chime_scan: float = 2.5
    section_size: int = 0
    shard_claim_rtt: float = 180.0
    shard_transfer_per_word: float = 4.0

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def s810(cls) -> "CostModel":
        """Costs calibrated so the headline experiments land in the
        paper's bands (peak hashing acceleration ≈5x at table size 521
        and ≈12x at 4099; sorting acceleration ≈2.6–13x).

        The numbers are in units of scalar-unit clock cycles.  They are
        *not* microarchitecturally exact S-810 figures (those are not
        public at this granularity); they encode the three ratios that
        drive every result in the paper:

        * scalar random-address op : vector gather chime ≈ 20 : 1
          (a weak scalar unit chasing pointers vs. the IDP-heritage
          list-vector pipe)
        * scalar sequential op : vector contiguous chime ≈ 6 : 1
          (even the weak scalar unit pipelines a straight array scan)
        * vector ALU chime 0.3: dependent elementwise ops chain through
          parallel arithmetic pipes, so a chain of K ops does not cost
          K full passes
        * vector start-up : contiguous chime ≈ 35 : 1 (short vectors
          lose, which is what bends every load-factor curve)
        """
        return cls()

    @classmethod
    def uniform(cls) -> "CostModel":
        """A flatter machine (modest vector advantage) for the
        cost-model-sensitivity ablation: scalar ops cost the same as
        vector chimes, so only start-up amortisation differentiates."""
        return cls(
            scalar_alu=1.0,
            scalar_mem=2.0,
            scalar_mem_seq=1.0,
            scalar_branch=1.0,
            vector_startup=40.0,
            chime_contig=1.0,
            chime_gather=2.0,
            chime_alu=1.0,
            chime_compress=1.0,
            chime_reduce=1.0,
            chime_scan=2.0,
            shard_claim_rtt=4.0,
            shard_transfer_per_word=1.0,
        )

    @classmethod
    def free(cls) -> "CostModel":
        """Zero-cost model: use when only functional behaviour matters
        (most unit tests).  Keeps the accounting code paths exercised
        while making assertions about cycles trivially stable."""
        return cls(
            scalar_alu=0.0,
            scalar_mem=0.0,
            scalar_mem_seq=0.0,
            scalar_branch=0.0,
            vector_startup=0.0,
            chime_contig=0.0,
            chime_gather=0.0,
            chime_alu=0.0,
            chime_compress=0.0,
            chime_reduce=0.0,
            chime_scan=0.0,
            shard_claim_rtt=0.0,
            shard_transfer_per_word=0.0,
        )

    # ------------------------------------------------------------------
    # cost helpers
    # ------------------------------------------------------------------
    def vector_cost(self, n: int, chime: float) -> float:
        """Cycles for one vector instruction over ``n`` elements
        (strip-mined into sections when ``section_size`` is set)."""
        if n <= 0:
            # Zero-length vector ops still decode and fill the pipe.
            return self.vector_startup
        if self.section_size > 0:
            sections = -(-n // self.section_size)  # ceil division
            return sections * self.vector_startup + chime * n
        return self.vector_startup + chime * n

    @classmethod
    def s810_sectioned(cls, section_size: int = 256) -> "CostModel":
        """The calibrated model with finite vector registers: long
        vectors pay start-up once per ``section_size`` elements, so the
        acceleration curves saturate instead of growing with N — the
        ablation showing how much of Table 1's growth is start-up
        amortisation."""
        return cls(section_size=section_size)

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)
