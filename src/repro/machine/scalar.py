"""The scalar-unit facade used by every sequential baseline.

The paper's acceleration ratios compare vectorized code against ordinary
sequential (scalar) Fortran on the *same* machine.  Scalar code on a
1980s vector supercomputer paid a multi-cycle memory path per access and
had no out-of-order machinery, which is why the vector unit wins by an
order of magnitude on long vectors.

:class:`ScalarProcessor` lets a plain Python implementation of the
sequential algorithm charge realistic per-operation costs: each load,
store, ALU op and branch is one call.  The Python code is the *model* of
the scalar program; the ledger is the measurement.
"""

from __future__ import annotations

import numpy as np

from .cost_model import CostModel
from .counter import CycleCounter
from .memory import Memory


class ScalarProcessor:
    """Per-operation cycle charging for sequential baselines."""

    def __init__(self, memory: Memory) -> None:
        self.mem = memory
        self.cost: CostModel = memory.cost
        self.counter: CycleCounter = memory.counter

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def load(self, addr: int) -> int:
        """Scalar load (charged)."""
        return self.mem.sload(addr)

    def store(self, addr: int, value: int) -> None:
        """Scalar store (charged)."""
        self.mem.sstore(addr, value)

    def seq_load(self, addr: int) -> int:
        """Scalar load inside a sequential scan (cheaper: the address is
        the previous one plus a constant, so the banks pipeline)."""
        self.counter.charge_scalar(self.cost.scalar_mem_seq, "scalar_mem_seq")
        return self.mem.peek(addr)

    def seq_store(self, addr: int, value: int) -> None:
        """Scalar store inside a sequential scan (cheaper, see
        :meth:`seq_load`)."""
        self.counter.charge_scalar(self.cost.scalar_mem_seq, "scalar_mem_seq")
        self.mem.poke(addr, value)

    # ------------------------------------------------------------------
    # register ops
    # ------------------------------------------------------------------
    def alu(self, count: int = 1) -> None:
        """Charge ``count`` scalar ALU operations (adds, compares,
        address arithmetic).  Call sites keep the actual computation in
        plain Python and charge it here."""
        if count:
            self.counter.charge_scalar(self.cost.scalar_alu * count, "scalar_alu")

    def branch(self, count: int = 1) -> None:
        """Charge ``count`` conditional branches / loop-control steps."""
        if count:
            self.counter.charge_scalar(self.cost.scalar_branch * count, "scalar_branch")

    # ------------------------------------------------------------------
    # common fused idioms (sugar that keeps baselines readable)
    # ------------------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        """a + b with one ALU charge."""
        self.alu()
        return a + b

    def compare(self, a: int, b: int) -> bool:
        """a == b with one ALU charge."""
        self.alu()
        return a == b

    def less_equal(self, a: int, b: int) -> bool:
        """a <= b with one ALU charge."""
        self.alu()
        return a <= b

    def hash_mod(self, key: int, table_size: int) -> int:
        """``key mod size`` — one ALU op, the paper's example hash."""
        self.alu()
        return int(key) % int(table_size)

    def loop_iter(self) -> None:
        """Charge the overhead of one sequential loop iteration
        (induction update + branch)."""
        self.alu()
        self.branch()

    # ------------------------------------------------------------------
    def fill_array(self, base: int, n: int, value: int) -> None:
        """Sequential initialisation of ``n`` words — e.g. the
        distribution-counting sort's scalar pass zeroing its 2^16-entry
        count array.  A store plus amortised loop control per word, at
        the sequential-scan memory cost.

        Implemented with one NumPy write for wall-clock sanity, but
        charged as ``n`` scalar iterations, which is what the sequential
        program performs."""
        self.counter.charge_scalar(
            (self.cost.scalar_mem_seq + self.cost.scalar_alu) * n,
            "scalar_mem_seq",
        )
        self.mem.words[base : base + n] = value
