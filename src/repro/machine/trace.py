"""Instruction tracing for the simulated machine.

A :class:`Tracer` attaches to a :class:`~repro.machine.counter.CycleCounter`
and records one event per charged instruction: unit, category, lane
count and cycles.  Used by the instruction-mix ablation (what fraction
of an algorithm's cycles are gathers vs. ALU vs. start-up — the §4.1
discussion of *why* the load-factor curve bends) and by tests that
assert an algorithm issues no unexpected operation kinds.

Tracing works by interposition on the counter's charge methods, so it
needs no cooperation from Memory/VectorMachine and can be attached to a
machine mid-flight::

    with Tracer(vm.counter) as tr:
        vector_open_insert(vm, table, keys)
    print(tr.mix_report())
"""

from __future__ import annotations

from collections import Counter as MultiSet
from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One charged instruction."""

    unit: str  # "scalar" | "vector"
    category: str
    cycles: float
    lanes: int  # 0 for scalar ops


class Tracer:
    """Records every instruction charged to a counter while attached.

    Context-manager; re-entrant attachment is rejected to keep the
    interposition unambiguous.
    """

    def __init__(self, counter, max_events: Optional[int] = None) -> None:
        self.counter = counter
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self._orig_scalar: Optional[Callable] = None
        self._orig_vector: Optional[Callable] = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "Tracer":
        if self._orig_scalar is not None:
            raise RuntimeError("tracer already attached")
        self._orig_scalar = self.counter.charge_scalar
        self._orig_vector = self.counter.charge_vector

        def charge_scalar(cycles: float, category: str = "scalar") -> None:
            self._record(TraceEvent("scalar", category, cycles, 0))
            self._orig_scalar(cycles, category)

        def charge_vector(cycles: float, n: int, category: str = "vector") -> None:
            self._record(TraceEvent("vector", category, cycles, max(n, 0)))
            self._orig_vector(cycles, n, category)

        self.counter.charge_scalar = charge_scalar
        self.counter.charge_vector = charge_vector
        return self

    def __exit__(self, *exc) -> None:
        # Remove the instance overrides so lookup falls back to the
        # class methods — leaves the counter exactly as found.
        del self.counter.charge_scalar
        del self.counter.charge_vector
        self._orig_scalar = None
        self._orig_vector = None

    def _record(self, ev: TraceEvent) -> None:
        if self.max_events is None or len(self.events) < self.max_events:
            self.events.append(ev)

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def instruction_mix(self) -> dict[str, int]:
        """Instruction counts by category."""
        return dict(MultiSet(ev.category for ev in self.events))

    def cycles_by_category(self) -> dict[str, float]:
        """Cycles by category."""
        out: dict[str, float] = {}
        for ev in self.events:
            out[ev.category] = out.get(ev.category, 0.0) + ev.cycles
        return out

    def total_cycles(self) -> float:
        """Cycles recorded while attached."""
        return sum(ev.cycles for ev in self.events)

    def vector_lane_histogram(self, buckets=(1, 8, 64, 512, 4096)) -> dict[str, int]:
        """How many vector instructions ran at each lane-count scale —
        short vectors are where start-up dominates (Figure 10's rising
        edge in one histogram)."""
        out: dict[str, int] = {}
        lanes = [ev.lanes for ev in self.events if ev.unit == "vector"]
        lo = 0
        for hi in buckets:
            key = f"{lo + 1}-{hi}"
            out[key] = sum(1 for n in lanes if lo < n <= hi)
            lo = hi
        out[f">{buckets[-1]}"] = sum(1 for n in lanes if n > buckets[-1])
        return out

    def startup_fraction(self, startup_cost: float) -> float:
        """Fraction of recorded vector cycles that are pipeline fill
        (start-up) rather than element work."""
        vec = [ev for ev in self.events if ev.unit == "vector"]
        if not vec:
            return 0.0
        total = sum(ev.cycles for ev in vec)
        if total == 0:
            return 0.0
        return min(1.0, startup_cost * len(vec) / total)

    def mix_report(self) -> str:
        """Human-readable instruction-mix summary."""
        lines = [f"{len(self.events)} instructions, {self.total_cycles():,.0f} cycles"]
        mix = self.instruction_mix()
        cyc = self.cycles_by_category()
        for cat in sorted(cyc, key=lambda c: -cyc[c]):
            lines.append(f"  {cat:<16s} {mix[cat]:>7d} instrs  {cyc[cat]:>12,.0f} cycles")
        return "\n".join(lines)
