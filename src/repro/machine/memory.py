"""Word-addressable simulated main storage with list-vector access.

The paper's algorithms manipulate *pointer-linked* symbolic structures:
hash-table chains, cons cells, binary-tree nodes.  We model main storage
as a flat array of 64-bit words; a "pointer" in this library is a word
address (plain ``int``) into one :class:`Memory`.

The two operations that make FOL possible are provided here:

* :meth:`Memory.gather` — the list-vector *load* (``VLD`` indirect),
* :meth:`Memory.scatter` — the list-vector *store* (``VIST``/``VSTX``),
  with a pluggable **conflict policy** implementing the paper's
  *exclusive label storing* (ELS) condition: when several lanes of one
  scatter target the same address, exactly one lane's whole word
  survives (never an amalgam), and *which* lane is arbitrary.

Conflict policies
-----------------
``"arbitrary"``
    A seeded random lane wins per address.  This models the S-3800
    ``VIST`` instruction and parallel-pipe machines where the winning
    lane is unpredictable.  FOL only assumes the ELS condition, so all
    algorithms must be correct under this policy (property-tested).
``"last"``
    The highest-index lane wins — program order, modelling the slower
    ``VSTX`` instruction the paper's footnote 7 discusses for
    order-preserving variants.
``"first"``
    The lowest-index lane wins.  Useful in tests as the mirror image of
    ``"last"``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import MemoryFault, VectorLengthError
from .cost_model import CostModel
from .counter import CycleCounter

WORD_DTYPE = np.int64

#: Valid scatter conflict policies (see module docstring).
CONFLICT_POLICIES = ("arbitrary", "last", "first")


class Memory:
    """Flat, word-addressable simulated main storage.

    Parameters
    ----------
    size:
        Number of 64-bit words.
    cost_model:
        Cycle costs; defaults to :meth:`CostModel.s810`.
    counter:
        Shared cycle ledger; a fresh one is created if omitted.
    seed:
        Seed for the ``"arbitrary"`` scatter conflict policy.
    """

    def __init__(
        self,
        size: int,
        cost_model: Optional[CostModel] = None,
        counter: Optional[CycleCounter] = None,
        seed: int = 0,
    ) -> None:
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        self.size = int(size)
        self.words = np.zeros(self.size, dtype=WORD_DTYPE)
        self.cost = cost_model if cost_model is not None else CostModel.s810()
        self.counter = counter if counter is not None else CycleCounter()
        self._rng = np.random.default_rng(seed)
        #: Optional :class:`repro.audit.InvariantAuditor`.  When set,
        #: every scatter is checked against the ELS condition after it
        #: commits; audit reads are uncharged, and an unaudited run pays
        #: only this attribute test per scatter.
        self.audit = None
        #: Test-only failpoint (see :func:`repro.audit.fuzz.install_els_fault`):
        #: called as ``fn(memory, addrs, values)`` after the raw scatter
        #: and *before* the audit hook, so deliberate ELS violations are
        #: observable by the auditor.  Never set in production paths.
        self._scatter_fault = None

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def _check_addr(self, addr: int) -> int:
        addr = int(addr)
        if not 0 <= addr < self.size:
            raise MemoryFault(f"address {addr} outside memory of size {self.size}")
        return addr

    def _check_addrs(self, addrs: np.ndarray) -> np.ndarray:
        addrs = np.asarray(addrs, dtype=np.int64)
        if addrs.ndim != 1:
            raise VectorLengthError(f"address vector must be 1-D, got shape {addrs.shape}")
        if addrs.size:
            lo = int(addrs.min())
            hi = int(addrs.max())
            if lo < 0 or hi >= self.size:
                raise MemoryFault(
                    f"address vector range [{lo}, {hi}] outside memory of size {self.size}"
                )
        return addrs

    def _check_range(self, base: int, n: int) -> None:
        if n < 0:
            raise VectorLengthError(f"negative vector length {n}")
        if not (0 <= base and base + n <= self.size):
            raise MemoryFault(
                f"range [{base}, {base + n}) outside memory of size {self.size}"
            )

    # ------------------------------------------------------------------
    # scalar port (charged to the scalar unit)
    # ------------------------------------------------------------------
    def sload(self, addr: int) -> int:
        """Scalar load of one word."""
        addr = self._check_addr(addr)
        self.counter.charge_scalar(self.cost.scalar_mem, "scalar_mem")
        return int(self.words[addr])

    def sstore(self, addr: int, value: int) -> None:
        """Scalar store of one word."""
        addr = self._check_addr(addr)
        self.counter.charge_scalar(self.cost.scalar_mem, "scalar_mem")
        self.words[addr] = value

    # ------------------------------------------------------------------
    # vector port (charged to the vector unit)
    # ------------------------------------------------------------------
    def vload(self, base: int, n: int) -> np.ndarray:
        """Contiguous vector load of ``n`` words starting at ``base``."""
        self._check_range(base, n)
        self.counter.charge_vector(
            self.cost.vector_cost(n, self.cost.chime_contig), n, "v_contig"
        )
        return self.words[base : base + n].copy()

    def vstore(self, base: int, values: np.ndarray) -> None:
        """Contiguous vector store."""
        values = np.asarray(values, dtype=WORD_DTYPE)
        self._check_range(base, values.size)
        self.counter.charge_vector(
            self.cost.vector_cost(values.size, self.cost.chime_contig),
            values.size,
            "v_contig",
        )
        self.words[base : base + values.size] = values

    def fill(self, base: int, n: int, value: int) -> None:
        """Contiguous vector fill (broadcast store)."""
        self._check_range(base, n)
        self.counter.charge_vector(
            self.cost.vector_cost(n, self.cost.chime_contig), n, "v_contig"
        )
        self.words[base : base + n] = value

    def gather(self, addrs: np.ndarray) -> np.ndarray:
        """List-vector load: ``result[i] = mem[addrs[i]]``."""
        addrs = self._check_addrs(addrs)
        self.counter.charge_vector(
            self.cost.vector_cost(addrs.size, self.cost.chime_gather),
            addrs.size,
            "v_gather",
        )
        return self.words[addrs].copy()

    def scatter(
        self,
        addrs: np.ndarray,
        values: np.ndarray,
        policy: str = "arbitrary",
    ) -> None:
        """List-vector store: ``mem[addrs[i]] = values[i]`` under the ELS
        condition — for duplicated addresses exactly one lane survives,
        chosen by ``policy`` (see module docstring)."""
        addrs = self._check_addrs(addrs)
        values = np.asarray(values, dtype=WORD_DTYPE)
        if values.shape != addrs.shape:
            raise VectorLengthError(
                f"scatter length mismatch: {addrs.size} addresses, {values.size} values"
            )
        self.counter.charge_vector(
            self.cost.vector_cost(addrs.size, self.cost.chime_gather),
            addrs.size,
            "v_scatter",
        )
        self._raw_scatter(addrs, values, policy)
        if self._scatter_fault is not None:
            self._scatter_fault(self, addrs, values)
        if self.audit is not None:
            self.audit.on_scatter(addrs, values, self)

    def _raw_scatter(self, addrs: np.ndarray, values: np.ndarray, policy: str) -> None:
        """Scatter without charging (used by masked composites that have
        already been charged as a single instruction)."""
        if policy == "last":
            # NumPy fancy-assignment keeps the last write per address.
            self.words[addrs] = values
        elif policy == "first":
            self.words[addrs[::-1]] = values[::-1]
        elif policy == "arbitrary":
            order = self._rng.permutation(addrs.size)
            self.words[addrs[order]] = values[order]
        else:
            raise ValueError(
                f"unknown conflict policy {policy!r}; expected one of {CONFLICT_POLICIES}"
            )

    def scatter_masked(
        self,
        addrs: np.ndarray,
        values: np.ndarray,
        mask: np.ndarray,
        policy: str = "arbitrary",
    ) -> None:
        """Masked list-vector store: lanes with ``mask[i]`` false are
        suppressed.  Charged as one instruction over the full lane count
        (masked-off lanes still flow through the pipe, as on real
        hardware)."""
        addrs = self._check_addrs(addrs)
        values = np.asarray(values, dtype=WORD_DTYPE)
        mask = np.asarray(mask, dtype=bool)
        if not (addrs.shape == values.shape == mask.shape):
            raise VectorLengthError(
                "scatter_masked length mismatch: "
                f"{addrs.size} addrs, {values.size} values, {mask.size} mask"
            )
        self.counter.charge_vector(
            self.cost.vector_cost(addrs.size, self.cost.chime_gather),
            addrs.size,
            "v_scatter",
        )
        live_addrs, live_values = addrs[mask], values[mask]
        self._raw_scatter(live_addrs, live_values, policy)
        if self._scatter_fault is not None:
            self._scatter_fault(self, live_addrs, live_values)
        if self.audit is not None:
            self.audit.on_scatter(live_addrs, live_values, self)

    # ------------------------------------------------------------------
    # debug / test access (never charged)
    # ------------------------------------------------------------------
    def peek(self, addr: int) -> int:
        """Read one word without charging cycles (test/debug only)."""
        return int(self.words[self._check_addr(addr)])

    def poke(self, addr: int, value: int) -> None:
        """Write one word without charging cycles (test/debug only)."""
        self.words[self._check_addr(addr)] = value

    def peek_range(self, base: int, n: int) -> np.ndarray:
        """Read a range without charging cycles (test/debug only)."""
        self._check_range(base, n)
        return self.words[base : base + n].copy()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Memory(size={self.size}, cycles={self.counter.total:,.0f})"
