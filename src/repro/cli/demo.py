"""``repro demo`` — the one-screen FOL tour."""

from __future__ import annotations


def run(args) -> int:
    import numpy as np

    from .. import fol1, make_machine
    from ..core.theorems import check_all
    from ..hashing import ChainedHashTable, vector_chained_insert
    from ..mem import BumpAllocator

    vm = make_machine(32_768, seed=42)
    v = np.array([100, 200, 100, 300, 100, 200], dtype=np.int64)
    dec = fol1(vm, v)
    check_all(dec)
    print(f"FOL1 over {v.tolist()}: M = {dec.m} sets "
          f"{[vm_set.tolist() for vm_set in dec.sets]} (all theorems hold)")

    table = ChainedHashTable(BumpAllocator(vm.mem), 127, 1000)
    keys = np.random.default_rng(0).integers(0, 5000, size=1000)
    rounds = vector_chained_insert(vm, table, keys)
    print(f"chained multiple hashing: 1000 keys in {rounds} FOL rounds, "
          f"{vm.counter.total:,.0f} simulated cycles")
    print(vm.counter.report())
    return 0
