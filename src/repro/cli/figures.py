"""``repro figures`` — regenerate paper tables/figures."""

from __future__ import annotations


def run(args) -> int:
    from ..bench.figures import main as figures_main

    figures_main(list(args.names) + ["--seed", str(args.seed)])
    return 0
