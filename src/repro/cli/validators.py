"""Shared argparse types and small parsers for the ``repro`` CLI.

Every subcommand module imports its input validation from here, so a
bad value always produces the same clean exit-2 argparse error (or
:class:`~repro.errors.ReproError`) instead of a traceback.
"""

from __future__ import annotations

import argparse

#: Largest accepted Zipf skew: beyond this the truncated distribution is
#: numerically degenerate (rank-1 mass ~ 1.0) and run times explode.
MAX_SKEW = 8.0


def positive_int(text: str) -> int:
    """argparse type: an int >= 1 (clean exit 2 on 0/negative input)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def positive_float(text: str) -> float:
    """argparse type: a float > 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def nonneg_float(text: str) -> float:
    """argparse type: a float >= 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {value}")
    return value


def skew(text: str) -> float:
    """argparse type: a Zipf skew in [0, MAX_SKEW]."""
    value = nonneg_float(text)
    if value > MAX_SKEW:
        raise argparse.ArgumentTypeError(
            f"skew must be at most {MAX_SKEW}, got {value}"
        )
    return value


def parse_mix(text: str):
    """Parse ``--mix kind=weight,...`` into (kinds, weights).  Unknown
    kinds and malformed entries raise :class:`ReproError` (exit 2)."""
    from ..engine.spec import get_spec
    from ..errors import ReproError

    kinds, weights = [], []
    for entry in (e.strip() for e in text.split(",") if e.strip()):
        name, sep, weight = entry.partition("=")
        if not sep:
            raise ReproError(
                f"malformed mix entry {entry!r}; expected kind=weight"
            )
        get_spec(name.strip())  # raises listing registered kinds
        try:
            w = float(weight)
        except ValueError:
            raise ReproError(f"mix weight {weight!r} is not a number")
        if w < 0:
            raise ReproError(f"mix weight for {name!r} is negative: {w}")
        kinds.append(name.strip())
        weights.append(w)
    if not kinds:
        raise ReproError("empty workload mix")
    if sum(weights) <= 0:
        raise ReproError("workload mix weights sum to zero")
    return tuple(kinds), tuple(weights)


def parse_kinds_or_mix(args, *, default_kinds=None):
    """Resolve the shared ``--kinds`` / ``--mix`` pair into
    ``(kinds, weights)``; ``--mix`` wins, unknown kinds raise."""
    from ..engine.spec import get_spec

    if args.mix is not None:
        return parse_mix(args.mix)
    if args.kinds is not None:
        kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
        for kind in kinds:
            get_spec(kind)  # unknown kind -> ReproError naming the registry
        return kinds, None
    return default_kinds, None
