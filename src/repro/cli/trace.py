"""``repro trace`` — render a lifecycle trace JSONL file.

Pure post-processing: loads the events a ``--trace-out`` run flushed
and prints the :mod:`repro.obs.report` views (stage decomposition +
histograms, per-tenant breakdown, top-k slowest requests)."""

from __future__ import annotations


def run(args) -> int:
    from ..errors import ReproError
    from ..obs.report import render_trace_report

    try:
        text = render_trace_report(args.file, top=args.top, bins=args.bins)
    except FileNotFoundError:
        raise ReproError(f"trace file not found: {args.file}")
    except ValueError as exc:
        raise ReproError(str(exc))
    print(text)
    return 0
