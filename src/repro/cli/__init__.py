"""The ``repro`` command-line package.

One module per subcommand (``stream``, ``serve``, ``audit``,
``trace``, ``figures``, ``demo``, ``info``), shared argparse types in
:mod:`repro.cli.validators`, and the parser assembly in
:mod:`repro.cli.parser` (whose module docstring is the ``--help``
text).  :mod:`repro.__main__` is a thin shim over :func:`main` so
``python -m repro`` and ``from repro.__main__ import main`` keep
working unchanged.

Subcommand modules expose ``run(args) -> int``; heavy imports live
inside those functions so ``--help`` stays fast and a broken optional
subsystem cannot take down the whole CLI.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from .parser import SUBCOMMANDS, build_parser

__all__ = ["SUBCOMMANDS", "build_parser", "main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on bad input (e.g. an unknown subcommand) and
        # 0 for --help; normalise the error path to help + status 2 so
        # the CLI never silently falls through.
        code = exc.code if isinstance(exc.code, int) else 2
        if code == 0:
            return 0
        parser.print_help()
        return 2

    if args.command == "figures":
        from .figures import run

        return run(args)

    if args.command == "demo":
        from .demo import run

        return run(args)

    if args.command == "info":
        from .info import run

        return run(args)

    if args.command in ("stream", "serve", "audit", "trace"):
        from importlib import import_module

        from ..errors import ReproError

        module = import_module(f".{args.command}", __package__)
        try:
            return module.run(args)
        except ReproError as exc:
            print(f"repro {args.command}: {exc}", file=sys.stderr)
            return 2

    parser.print_help()
    return 2
