"""Command-line entry point: ``python -m repro``.

Subcommands
-----------
``figures [names...]``
    Regenerate the paper's tables/figures (delegates to
    :mod:`repro.bench.figures`; default: all).
``demo``
    One-screen tour: FOL1 on a shared index vector, the theorem checks,
    and a chained multiple-hashing run with its cycle breakdown.
``stream``
    Run the streaming micro-batch FOL service (:mod:`repro.runtime`)
    over a generated workload and print per-batch metrics.
``serve``
    Run the real multi-process serving layer (:mod:`repro.serve`): one
    shared-memory shard process per worker, asyncio admission and
    batching, measured wall-clock latency, oracle-checked end state.
``audit``
    Fuzz the FOL pipelines under the runtime invariant auditor and the
    scalar differential oracles (:mod:`repro.audit`); exits non-zero
    with a shrunk counterexample on any failure.
``trace``
    Render a lifecycle trace file (``--trace-out`` JSONL from a stream
    or serve run): stage histograms, per-tenant breakdown, slowest
    requests (:mod:`repro.obs.report`).
``info``
    Print the library version, the calibrated cost model, and the
    experiment registry.

An unknown or missing subcommand prints help and exits with status 2.
"""

from __future__ import annotations

import argparse

from .validators import (
    MAX_SKEW,
    nonneg_float,
    positive_float,
    positive_int,
    skew,
)

#: (name, one-line help) per subcommand — single source for the parser
#: and the ``repro info`` listing.
SUBCOMMANDS = (
    ("figures", "regenerate paper tables/figures"),
    ("demo", "one-screen FOL tour"),
    ("info", "version, cost model, kinds, backends, subcommands"),
    ("stream", "run the streaming micro-batch FOL service (simulated clock)"),
    ("serve", "run the multi-process serving layer (measured wall-clock)"),
    ("audit", "fuzz the FOL pipelines under invariant auditing"),
    ("trace", "render a lifecycle trace JSONL (stages, tenants, slowest)"),
)
_HELP = dict(SUBCOMMANDS)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command")

    fig = sub.add_parser("figures", help=_HELP["figures"])
    fig.add_argument("names", nargs="*", default=[])
    fig.add_argument("--seed", type=int, default=0)

    sub.add_parser("demo", help=_HELP["demo"])
    sub.add_parser("info", help=_HELP["info"])

    stream = sub.add_parser("stream", help=_HELP["stream"])
    stream.add_argument("--requests", type=positive_int, default=5000,
                        help="number of requests in the workload")
    stream.add_argument("--policy", choices=("fixed", "deadline", "adaptive"),
                        default="adaptive", help="batch-sizing policy")
    stream.add_argument("--batch-size", type=positive_int, default=256,
                        help="fixed/initial batch size (max size for deadline)")
    stream.add_argument("--deadline", type=positive_float, default=2000.0,
                        help="deadline policy: max head-of-line wait in cycles")
    stream.add_argument("--skew", type=skew, default=0.0,
                        help=f"Zipf key skew (0 = uniform, max {MAX_SKEW})")
    stream.add_argument("--kinds", default="hash",  # no-kind-lint
                        help="comma-separated request kinds; registered kinds "
                             "are listed by `repro info` (uniform mix)")
    stream.add_argument("--mix", default=None, metavar="KIND=W,...",
                        help="weighted workload mix, e.g. hash=3,xfer=1 "
                             "(overrides --kinds; weights need not sum to 1)")
    from ..backend import registered_backends

    stream.add_argument("--backend", choices=registered_backends(),
                        default="sim",
                        help="execution backend: sim = calibrated S-810 "
                             "cycle model, native = raw NumPy wall-clock "
                             "(see docs/backends.md)")
    stream.add_argument("--no-recorded-loop", action="store_true",
                        help="native backend only: interpret each FOL "
                             "round op-by-op instead of replaying the "
                             "recorded fused round (ablation)")
    stream.add_argument("--recorded-loop", choices=("on", "off", "auto"),
                        default=None,
                        help="native backend only: force the fused "
                             "recorded round (on, the default), the "
                             "op-by-op interpreter (off), or calibrate "
                             "per plan shape once and keep the faster "
                             "path (auto)")
    stream.add_argument("--queue-capacity", type=positive_int, default=4096)
    stream.add_argument("--admission", choices=("block", "reject"),
                        default="block", help="full-queue policy")
    stream.add_argument("--no-carryover", action="store_true",
                        help="retry filtered lanes in-batch (paper §3.2) "
                             "instead of carrying them to the next batch")
    stream.add_argument("--closed-loop", action="store_true",
                        help="all requests ready at t=0 (throughput mode)")
    stream.add_argument("--mean-gap", type=positive_float, default=40.0,
                        help="open loop: mean inter-arrival gap in cycles")
    stream.add_argument("--table-size", type=positive_int, default=509)
    stream.add_argument("--key-space", type=positive_int, default=4096)
    stream.add_argument("--shards", type=positive_int, default=1,
                        help="partition the address space across K workers "
                             "(owner-computes; batch cost = max over shards)")
    from ..shard.migration import PACING_STRATEGIES
    from ..shard.partition import PARTITIONERS
    from ..shard.rebalance import REBALANCE_OBJECTIVES

    stream.add_argument("--partitioner", choices=tuple(PARTITIONERS),
                        default=None,  # resolved to hash; None flags explicit use
                        help="initial shard assignment (needs --shards > 1; "
                             "default hash)")
    stream.add_argument("--rebalance", action="store_true",
                        help="migrate hot routing bins between micro-batches "
                             "(Megaphone-style; needs --shards > 1)")
    stream.add_argument("--bins", type=positive_int, default=None,
                        help="routing bins N per domain (needs --shards > 1; "
                             "default 64 per shard, must be >= shards)")
    stream.add_argument("--migration", choices=PACING_STRATEGIES,
                        default=None,  # resolved to all-at-once
                        help="bin handoff pacing (needs --rebalance; "
                             "default all-at-once)")
    stream.add_argument("--tenants", default=None, metavar="NAME=SHARE[:DIST],...",
                        help="tag requests with tenant classes, e.g. "
                             "A=0.7:zipf1.2,B=0.3:uniform (DIST defaults to "
                             "uniform; replaces the global --skew draw)")
    stream.add_argument("--slo", default=None, metavar="NAME=CYCLES,...",
                        help="per-tenant latency budget in simulated cycles "
                             "(needs --tenants)")
    stream.add_argument("--qos", action="store_true",
                        help="SLO-aware admission: weighted per-tenant depth "
                             "caps + weighted-fair dequeue + deadline-aware "
                             "batch release (needs --tenants)")
    stream.add_argument("--qos-burst", type=positive_float, default=1.0,
                        help="per-tenant depth cap multiplier under --qos "
                             "(cap = burst * capacity * share; < 1 reserves "
                             "headroom for light tenants)")
    stream.add_argument("--rebalance-objective", choices=REBALANCE_OBJECTIVES,
                        default=None,
                        help="migration planning objective (needs --rebalance; "
                             "default imbalance)")
    stream.add_argument("--print-batches", type=positive_int, default=20,
                        help="per-batch rows to print (subsampled)")
    stream.add_argument("--trace", action="store_true",
                        help="record and print the instruction mix and the "
                             "per-stage latency decomposition (sim backend)")
    stream.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write the lifecycle trace as JSONL to PATH "
                             "(render with `repro trace PATH`; implies the "
                             "lifecycle recorder, sim backend only)")
    stream.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser("serve", help=_HELP["serve"])
    serve.add_argument("--workers", type=positive_int, default=2,
                       help="shard worker processes (one shared-memory "
                            "arena each)")
    serve.add_argument("--backend", choices=registered_backends(),
                       default="native",
                       help="execution backend inside each worker process "
                            "(native = raw NumPy, the wall-clock path)")
    serve.add_argument("--requests", type=positive_int, default=2000,
                       help="workload size (pre-generated, replayed in "
                            "real time)")
    serve.add_argument("--rate", type=positive_float, default=None,
                       help="open-loop offered load in requests/second "
                            "(default: closed loop, everything ready at t=0)")
    serve.add_argument("--duration", type=positive_float, default=None,
                       help="stop admitting after S seconds, drain, and "
                            "print the partial summary")
    serve.add_argument("--skew", type=skew, default=1.2,
                       help=f"Zipf key skew (max {MAX_SKEW})")
    serve.add_argument("--kinds", default=None,
                       help="comma-separated request kinds (default: the "
                            "registry's stream mix; see `repro info`)")
    serve.add_argument("--mix", default=None, metavar="KIND=W,...",
                       help="weighted workload mix (overrides --kinds)")
    serve.add_argument("--policy", choices=("fixed", "adaptive"),
                       default="fixed",
                       help="batch-sizing policy (wall-clock linger replaces "
                            "the cycle-driven deadline policy)")
    serve.add_argument("--batch-size", type=positive_int, default=512,
                       help="fixed/initial micro-batch target")
    serve.add_argument("--linger-ms", type=nonneg_float, default=2.0,
                       help="max head-of-line wait for a fuller batch")
    serve.add_argument("--queue-capacity", type=positive_int, default=8192)
    serve.add_argument("--admission", choices=("block", "reject"),
                       default="block", help="full-queue policy")
    serve.add_argument("--table-size", type=positive_int, default=509)
    serve.add_argument("--key-space", type=positive_int, default=4096)
    serve.add_argument("--n-cells", type=positive_int, default=64)
    serve.add_argument("--partitioner", choices=tuple(PARTITIONERS),
                       default="hash",  # partitioner name  # no-kind-lint
                       help="initial shard assignment")
    serve.add_argument("--rebalance", action="store_true",
                       help="migrate hot routing bins between exchanges "
                            "(live, across the worker processes)")
    serve.add_argument("--bins", type=positive_int, default=None,
                       help="routing bins N per domain (default 64 per "
                            "worker, must be >= workers)")
    serve.add_argument("--migration", choices=PACING_STRATEGIES,
                       default=None,  # resolved to all-at-once
                       help="bin handoff pacing (needs --rebalance; "
                            "default all-at-once)")
    serve.add_argument("--tenants", default=None, metavar="NAME=SHARE[:DIST],...",
                       help="tag requests with tenant classes, e.g. "
                            "A=0.7:zipf1.2,B=0.3:uniform (DIST defaults to "
                            "uniform; replaces the global --skew draw)")
    serve.add_argument("--slo", default=None, metavar="NAME=BUDGET,...",
                       help="per-tenant latency budget with unit suffix, e.g. "
                            "A=50ms,B=0.2s (needs --tenants)")
    serve.add_argument("--qos", action="store_true",
                       help="SLO-aware admission: weighted per-tenant depth "
                            "caps + weighted-fair dequeue + deadline-aware "
                            "batch release (needs --tenants)")
    serve.add_argument("--qos-burst", type=positive_float, default=1.0,
                       help="per-tenant depth cap multiplier under --qos "
                            "(cap = burst * capacity * share)")
    serve.add_argument("--rebalance-objective", choices=REBALANCE_OBJECTIVES,
                       default=None,
                       help="migration planning objective (needs --rebalance; "
                            "default imbalance)")
    serve.add_argument("--print-batches", type=positive_int, default=20,
                       help="exchange rows to print (subsampled)")
    serve.add_argument("--trace", action="store_true",
                       help="record request lifecycle spans and print the "
                            "per-stage latency decomposition (wall clock)")
    serve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write the lifecycle trace as JSONL to PATH "
                            "(render with `repro trace PATH`; implies "
                            "--trace)")
    serve.add_argument("--seed", type=int, default=0)

    audit = sub.add_parser("audit", help=_HELP["audit"])
    audit.add_argument("--suite", choices=("core", "stream", "shard", "all"),
                       default="all", help="which pipeline family to fuzz")
    audit.add_argument("--seed", type=int, default=0,
                       help="base seed (every case derives from it)")
    audit.add_argument("--cases", type=positive_int, default=100,
                       help="generated cases per suite")
    audit.add_argument("--max-lanes", type=positive_int, default=96,
                       help="largest generated input size")
    audit.add_argument("--artifact", default=None, metavar="PATH",
                       help="write a JSON report (counterexamples included) "
                            "to PATH on failure")

    trace = sub.add_parser("trace", help=_HELP["trace"])
    trace.add_argument("file", metavar="FILE",
                       help="a lifecycle trace JSONL written by "
                            "`repro stream/serve --trace-out`")
    trace.add_argument("--top", type=positive_int, default=10,
                       help="slowest requests to list")
    trace.add_argument("--bins", type=positive_int, default=8,
                       help="histogram buckets per stage")
    return parser
