"""``repro stream`` — the streaming micro-batch FOL service."""

from __future__ import annotations

from .validators import parse_kinds_or_mix


def run(args) -> int:
    import time

    import numpy as np

    from ..backend import get_backend
    from ..errors import ReproError
    from ..runtime import (
        BoundedQueue,
        QoSPolicy,
        StreamService,
        apply_slos,
        closed_loop_workload,
        make_batcher,
        open_loop_workload,
        parse_slo,
        parse_tenants,
        tenant_workload,
    )

    # Flag combinations that would otherwise be silently ignored are
    # hard errors (exit 2), not no-ops.
    if args.shards == 1:
        if args.rebalance:
            raise ReproError(
                "--rebalance migrates state between shards and needs "
                "--shards > 1"
            )
        if args.partitioner is not None:
            raise ReproError(
                "--partitioner chooses the shard assignment and needs "
                "--shards > 1"
            )
        if args.bins is not None:
            raise ReproError(
                "--bins sizes the routing-bin level and needs --shards > 1"
            )
    if args.migration is not None and not args.rebalance:
        raise ReproError(
            "--migration paces live bin handoff and needs --rebalance"
        )
    if args.rebalance_objective is not None and not args.rebalance:
        raise ReproError(
            "--rebalance-objective steers migration planning and needs "
            "--rebalance"
        )
    if args.tenants is None:
        if args.slo is not None:
            raise ReproError("--slo assigns per-tenant budgets and needs "
                             "--tenants")
        if args.qos:
            raise ReproError("--qos admits per tenant class and needs "
                             "--tenants")
    tenants = None
    if args.tenants is not None:
        tenants = parse_tenants(args.tenants)
        if args.slo is not None:
            tenants = apply_slos(tenants, parse_slo(args.slo, unit="cycles"))
    partitioner = args.partitioner or "hash"  # partitioner name  # no-kind-lint
    migration = args.migration or "all-at-once"
    objective = args.rebalance_objective or "imbalance"

    backend = get_backend(args.backend)
    if args.no_recorded_loop and args.recorded_loop not in (None, "off"):
        raise ReproError(
            "--no-recorded-loop is shorthand for --recorded-loop off; "
            f"it conflicts with --recorded-loop {args.recorded_loop}"
        )
    loop_choice = "off" if args.no_recorded_loop else args.recorded_loop
    if loop_choice is not None:
        if not hasattr(backend, "recorded_loop"):
            raise ReproError(
                f"--recorded-loop only applies to the native backend, "
                f"not {backend.name!r}"
            )
        backend.recorded_loop = {
            "on": True, "off": False, "auto": "auto"
        }[loop_choice]
    if not backend.calibrated:
        # Cycle-only features would silently measure zero on an
        # uncalibrated backend; refuse them up front.
        if args.trace or args.trace_out:
            raise ReproError(
                "--trace records the simulated instruction mix, which the "
                f"{backend.name!r} backend does not charge; use --backend sim"
            )
        if args.policy == "deadline":
            raise ReproError(
                "the deadline batch policy is driven by simulated cycles, "
                f"which the {backend.name!r} backend does not charge; use "
                "--backend sim or --policy fixed/adaptive"
            )

    kinds, weights = parse_kinds_or_mix(args)
    rng = np.random.default_rng(args.seed)
    if tenants is not None:
        requests = tenant_workload(
            rng,
            args.requests,
            tenants,
            kinds=kinds,
            weights=weights,
            key_space=args.key_space,
            mean_gap=None if args.closed_loop else args.mean_gap,
        )
    else:
        common = dict(
            kinds=kinds, weights=weights, skew=args.skew,
            key_space=args.key_space,
        )
        if args.closed_loop:
            requests = closed_loop_workload(rng, args.requests, **common)
        else:
            requests = open_loop_workload(
                rng, args.requests, mean_gap=args.mean_gap, **common
            )

    if args.policy == "fixed":
        batcher = make_batcher("fixed", batch_size=args.batch_size)
    elif args.policy == "deadline":
        batcher = make_batcher(
            "deadline", deadline=args.deadline, max_size=args.batch_size
        )
    else:
        batcher = make_batcher("adaptive", initial=args.batch_size)

    policy = QoSPolicy(tenants, burst=args.qos_burst) if args.qos else None
    queue = BoundedQueue(
        args.queue_capacity, admission=args.admission, qos=policy
    )
    if args.shards > 1:
        from ..shard import ShardCoordinator

        coordinator = ShardCoordinator.for_workload(
            requests,
            shards=args.shards,
            partitioner=partitioner,
            rebalance=args.rebalance,
            table_size=args.table_size,
            key_space=args.key_space,
            carryover=not args.no_carryover,
            backend=backend,
            seed=args.seed,
            bins=args.bins,
            migration=migration,
            rebalance_objective=objective,
        )
        service = StreamService(coordinator, batcher=batcher, queue=queue)
    else:
        service = StreamService.for_workload(
            requests,
            batcher=batcher,
            queue=queue,
            table_size=args.table_size,
            carryover=not args.no_carryover,
            trace=args.trace,
            backend=backend,
            seed=args.seed,
        )
    recorder = None
    if args.trace or args.trace_out:
        from ..obs import Clock, TraceRecorder

        recorder = TraceRecorder(
            Clock.simulated(lambda: service.now), sink=args.trace_out
        )
        service.attach_recorder(recorder)
    t0 = time.perf_counter()
    interrupted = False
    try:
        metrics = service.run(requests)
    except KeyboardInterrupt:
        # Partial summary instead of a traceback: the metrics object
        # already holds every batch that finished before the interrupt.
        interrupted = True
        metrics = service.metrics
        metrics.rejected = queue.stats.rejected
        metrics.blocked_offers = queue.stats.blocked_offers
        metrics.blocked_requests = queue.stats.blocked_requests
        metrics.queue_max_depth = queue.stats.max_depth
    wall = time.perf_counter() - t0
    if tenants is not None:
        # FIFO baseline runs still report weights/SLOs so the tenant
        # table and fairness index are comparable with --qos runs.
        for t in tenants:
            metrics.tenant_weights.setdefault(t.name, t.share)
            if np.isfinite(t.slo):
                metrics.tenant_slos.setdefault(t.name, t.slo)

    mode = "retry-in-batch" if args.no_carryover else "carryover"
    loop = "closed" if args.closed_loop else "open"
    shard_note = (
        f", shards={args.shards} ({partitioner}"
        f"{f', bins={args.bins}' if args.bins is not None else ''}"
        f"{f', rebalance/{migration}' if args.rebalance else ''})"
        if args.shards > 1 else ""
    )
    if weights is not None:
        mix_note = ",".join(f"{k}={w:g}" for k, w in zip(kinds, weights))
    else:
        mix_note = ",".join(kinds)
    rl = getattr(backend, "recorded_loop", None)
    if backend.calibrated or not rl:
        loop_note = ""
    elif rl == "auto":
        loop_note = ", auto loop"
    else:
        loop_note = ", recorded loop"
    print(f"stream: {args.requests} requests, kinds={mix_note}, "
          f"skew={args.skew}, policy={batcher.name}, {mode}, {loop} loop, "
          f"backend={backend.name}{loop_note}{shard_note}")
    if interrupted:
        print(f"\ninterrupted — partial summary "
              f"({metrics.total_completed} of {args.requests} completed)")
    print()
    print(metrics.batch_table(max_rows=args.print_batches))
    if args.shards > 1:
        print()
        print(metrics.shard_table(max_rows=args.print_batches))
    print()
    print(metrics.summary_table())
    if tenants is not None:
        print()
        qos_note = (
            f"qos admission (burst={args.qos_burst:g})" if args.qos
            else "global FIFO admission"
        )
        print(f"per-tenant summary ({qos_note}, latency in cycles):")
        print(metrics.tenant_table())
    print()
    rate = args.requests / wall if wall > 0 else float("inf")
    print(f"wall-clock: {wall:.3f} s on the {backend.name!r} backend "
          f"({rate:,.0f} requests/sec)")
    if metrics.instruction_mix is not None:
        print()
        print("instruction mix (cycles by category):")
        for cat, cyc in sorted(
            metrics.instruction_mix.items(), key=lambda kv: -kv[1]
        ):
            print(f"  {cat:<16s} {cyc:>14,.0f}")
    if recorder is not None:
        print()
        print("request lifecycle stages (latency decomposition, cycles):")
        print(recorder.stage_table())
        sink = recorder.flush()
        if sink is not None:
            print(f"\nlifecycle trace written to {sink} "
                  f"(render with `python -m repro trace {sink}`)")
    return 130 if interrupted else 0
