"""``repro serve`` — the multi-process serving layer."""

from __future__ import annotations

import sys

from .validators import parse_kinds_or_mix


def run(args) -> int:
    from ..errors import ReproError
    from ..serve import run_serve

    if args.migration is not None and not args.rebalance:
        raise ReproError(
            "--migration paces live bin handoff and needs --rebalance"
        )
    if args.rebalance_objective is not None and not args.rebalance:
        raise ReproError(
            "--rebalance-objective steers migration planning and needs "
            "--rebalance"
        )
    if args.tenants is None:
        if args.slo is not None:
            raise ReproError("--slo assigns per-tenant budgets and needs "
                             "--tenants")
        if args.qos:
            raise ReproError("--qos admits per tenant class and needs "
                             "--tenants")
    tenants = None
    if args.tenants is not None:
        from ..runtime import apply_slos, parse_slo, parse_tenants

        tenants = parse_tenants(args.tenants)
        if args.slo is not None:
            tenants = apply_slos(tenants, parse_slo(args.slo, unit="seconds"))
    migration = args.migration or "all-at-once"
    objective = args.rebalance_objective or "imbalance"
    kinds, weights = parse_kinds_or_mix(args)

    report = run_serve(
        workers=args.workers,
        backend=args.backend,
        requests=args.requests,
        rate=args.rate,
        duration=args.duration,
        skew=args.skew,
        kinds=kinds,
        weights=weights,
        policy=args.policy,
        batch_size=args.batch_size,
        linger_ms=args.linger_ms,
        queue_capacity=args.queue_capacity,
        admission=args.admission,
        table_size=args.table_size,
        n_cells=args.n_cells,
        key_space=args.key_space,
        partitioner=args.partitioner,
        seed=args.seed,
        bins=args.bins,
        rebalance=args.rebalance,
        migration=migration,
        rebalance_objective=objective,
        tenants=tenants,
        qos=args.qos,
        qos_burst=args.qos_burst,
        trace=args.trace,
        trace_out=args.trace_out,
    )
    m = report.metrics
    loop = "closed loop" if args.rate is None else f"open loop @ {args.rate:g}/s"
    mix_note = (
        ",".join(f"{k}={w:g}" for k, w in zip(kinds, weights))
        if kinds is not None and weights is not None
        else ",".join(kinds) if kinds is not None else "stream mix"
    )
    print(f"serve: {args.workers} worker processes, backend={args.backend}, "
          f"{args.requests} requests, kinds={mix_note}, skew={args.skew}, "
          f"{loop}, policy={args.policy}, linger={args.linger_ms:g}ms")
    if m.interrupted:
        print(f"\nstopped early — drained partial summary "
              f"({m.total_completed} of {args.requests} completed)")
    print()
    print(m.exchange_table(max_rows=args.print_batches))
    print()
    print(m.summary_table())
    if tenants is not None:
        print()
        qos_note = (
            f"qos admission (burst={args.qos_burst:g})" if args.qos
            else "global FIFO admission"
        )
        print(f"per-tenant summary ({qos_note}, latency in ms):")
        print(m.tenant_table())
    if report.recorder is not None:
        print()
        print("request lifecycle stages (latency decomposition, wall clock):")
        print(report.recorder.stage_table())
        if args.trace_out:
            print(f"\nlifecycle trace written to {args.trace_out} "
                  f"(render with `python -m repro trace {args.trace_out}`)")
    print()
    if report.divergence is not None:
        print(f"ORACLE DIVERGENCE: {report.divergence}", file=sys.stderr)
        return 1
    print(f"merged end state matches the scalar oracle over "
          f"{len(report.completed)} completed requests "
          f"(fingerprint {report.state_fingerprint[:16]})")
    return 130 if report.signalled else 0
