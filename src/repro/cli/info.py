"""``repro info`` — version, cost model, registries."""

from __future__ import annotations


def run(args) -> int:
    from .. import CostModel, __version__
    from ..backend import backend_summaries
    from ..bench.figures import EXPERIMENTS
    from ..engine.spec import specs
    from .parser import SUBCOMMANDS

    print(f"repro {__version__}")
    print(f"cost model (s810): {CostModel.s810()}")
    print("subcommands:")
    for name, help_line in SUBCOMMANDS:
        print(f"  {name:<8s} {help_line}")
    print("workload kinds:")
    for spec in specs():
        arity = f" (arity {spec.arity})" if spec.arity != 1 else ""
        print(f"  {spec.name:<6s} domain={spec.domain}{arity}  "
              f"{spec.description}")
    print("backends:")
    for name, calibrated, doc in backend_summaries():
        tag = "calibrated cycles" if calibrated else "wall-clock only"
        print(f"  {name:<6s} [{tag}]  {doc}")
    print("experiments:", ", ".join(sorted(set(EXPERIMENTS))))
    return 0
