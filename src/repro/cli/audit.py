"""``repro audit`` — fuzz the FOL pipelines under invariant auditing."""

from __future__ import annotations


def run(args) -> int:
    import json

    from ..audit import run_suite

    suites = ("core", "stream", "shard") if args.suite == "all" else (args.suite,)
    reports = []
    failed = False
    for suite in suites:
        report = run_suite(
            suite, seed=args.seed, cases=args.cases, max_lanes=args.max_lanes
        )
        reports.append(report)
        s = report.stats
        print(
            f"audit {suite}: {report.cases} cases, "
            f"{s.scatters} scatters ({s.conflicts} conflicting groups), "
            f"{s.rounds} rounds, {s.claims} claims, "
            f"{s.decompositions + s.tuple_decompositions} decompositions -> "
            f"{'OK' if report.ok else f'{len(report.failures)} FAILURES'}"
        )
        for failure in report.failures:
            failed = True
            print(f"  FAIL {failure.case.describe()}")
            print(f"       {failure.message}")
            print(
                f"       shrunk to {len(failure.keys)} lanes "
                f"(from {failure.shrunk_from}): {failure.keys}"
            )
    if failed and args.artifact:
        with open(args.artifact, "w", encoding="utf-8") as fh:
            json.dump([r.as_dict() for r in reports], fh, indent=2)
        print(f"counterexample report written to {args.artifact}")
    return 1 if failed else 0
