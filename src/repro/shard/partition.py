"""Address-space partitioning: which shard owns which conflict address.

Owner-computes sharding needs a *total* map from every address a unit
process can touch to the single worker that owns it.  The conflict
addresses fall into independent **domains** — small dense index
spaces, one :class:`~repro.engine.spec.RoutingDomain` per registered
spec's ``domain`` attribute (chain slots, cell numbers, key
residues...).  The workload registry declares them; this module only
materialises one owner array per domain, so a newly registered kind
is routable with no edits here.

Routing is **two-level**, following Megaphone: each domain's indices
map statically onto ``N`` bins (``N`` ≫ K shards by default, see
:data:`DEFAULT_BINS_PER_SHARD`), and only the bin → shard assignment is
mutable.  A :class:`RoutingTable` holds both levels explicitly so that
live migration can re-home a whole bin (:meth:`RoutingTable.move_bin`)
— hot regions split across many bins, and moving one never touches
cold state.  The two assignment strategies are :func:`hash_partition`
(round-robin interleave: balanced under uniform *and* most skewed
workloads, since adjacent hot ranks land on different shards) and
:func:`range_partition` (contiguous blocks: the locality-friendly
layout real systems prefer, and the one a Zipf-hot prefix turns into a
hot shard — the regime :mod:`repro.shard.rebalance` exists for).  Both
levels use the same strategy, which keeps the composed index → shard
map identical to the classic one-level map in the important cases:
``hash`` composes to exactly ``i % K`` whenever K divides N (always
true for the N = 64·K default *and* the N = K degenerate config), and
``range`` is exact at N = K — the golden-parity surface."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from ..errors import ReproError


def hash_partition(size: int, shards: int) -> np.ndarray:
    """Round-robin owners: index ``i`` belongs to shard ``i % shards``."""
    _check(size, shards)
    return (np.arange(size, dtype=np.int64) % shards).astype(np.int64)


def range_partition(size: int, shards: int) -> np.ndarray:
    """Contiguous owners: the index space is cut into ``shards`` blocks
    of near-equal length (first ``size % shards`` blocks one longer)."""
    _check(size, shards)
    base, extra = divmod(size, shards)
    lengths = [base + (1 if s < extra else 0) for s in range(shards)]
    return np.repeat(np.arange(shards, dtype=np.int64), lengths)


def _check(size: int, shards: int) -> None:
    if size <= 0:
        raise ReproError(f"partition domain size must be positive, got {size}")
    if shards <= 0:
        raise ReproError(f"shard count must be positive, got {shards}")


#: Named initial-assignment strategies (CLI ``--partitioner`` choices).
#: "hash" here names the round-robin strategy, not the request kind.
PARTITIONERS: Dict[str, Callable[[int, int], np.ndarray]] = {
    "hash": hash_partition,  # no-kind-lint
    "range": range_partition,
}

#: Default routing bins per shard (N = 64·K), the Megaphone-style
#: over-partitioning factor: fine enough to split hot regions, coarse
#: enough that per-bin bookkeeping stays negligible.
DEFAULT_BINS_PER_SHARD = 64


class RoutingTable:
    """Two-level owner map for one domain, supporting live re-routing.

    ``bin_of[i]`` is the *static* bin index ``i`` hashes into, and
    ``bin_owner[b]`` is the *mutable* shard owning bin ``b``; the
    composed per-index view is cached in ``owners``.  Alongside the map
    the table keeps an exponentially-decayed **per-bin** traffic count
    (updated by the router, decayed by the rebalancer), which is what
    hot-bin detection reads.

    Constructed with a bare owner array the table degenerates to one
    bin per index — the pre-bin behaviour, still used by tests and by
    callers that want index-granular control.
    """

    def __init__(
        self,
        owners: np.ndarray,
        shards: int,
        *,
        bin_of: Optional[np.ndarray] = None,
    ) -> None:
        owners = np.asarray(owners, dtype=np.int64)
        if owners.ndim != 1 or owners.size == 0:
            raise ReproError("routing table needs a non-empty 1-D owner array")
        if owners.min() < 0 or owners.max() >= shards:
            raise ReproError(
                f"owner array references shards outside [0, {shards})"
            )
        if bin_of is None:
            bin_of = np.arange(owners.size, dtype=np.int64)
        else:
            bin_of = np.asarray(bin_of, dtype=np.int64)
            if bin_of.ndim != 1 or bin_of.size == 0:
                raise ReproError(
                    "routing table needs a non-empty 1-D bin map"
                )
            if bin_of.min() < 0 or bin_of.max() >= owners.size:
                raise ReproError(
                    f"bin map references bins outside [0, {owners.size})"
                )
        self.bin_owner = owners
        self.bin_of = bin_of
        self.owners = self.bin_owner[self.bin_of]  # cached composition
        self.shards = shards
        self.traffic = np.zeros(self.bin_owner.size, dtype=np.float64)
        #: Per-tenant decayed per-bin traffic, lazily created the first
        #: time a tenant-tagged request is recorded (QoS-aware
        #: rebalancing reads it; untenanted runs never allocate it).
        self.tenant_traffic: Dict[str, np.ndarray] = {}
        self.moves = 0

    @property
    def size(self) -> int:
        return self.bin_of.size

    @property
    def n_bins(self) -> int:
        return self.bin_owner.size

    def owner_of(self, index: int) -> int:
        """Owning shard of ``index`` (callers pre-fold keys into range)."""
        return int(self.owners[index])

    def bin_index(self, index: int) -> int:
        """Static bin the domain index belongs to."""
        return int(self.bin_of[index])

    def bin_owner_of(self, b: int) -> int:
        """Shard currently owning bin ``b``."""
        return int(self.bin_owner[b])

    def fold(self, key: int) -> int:
        """Fold an arbitrary key into this domain's index range."""
        return int(key) % self.size

    def record(
        self, index: int, weight: float = 1.0, tenant: Optional[str] = None
    ) -> None:
        """Count routed traffic against index's bin (rebalancer input);
        a tenant tag additionally accumulates into that tenant's own
        per-bin counts for worst-tenant-aware planning."""
        b = self.bin_of[index]
        self.traffic[b] += weight
        if tenant:
            arr = self.tenant_traffic.get(tenant)
            if arr is None:
                arr = self.tenant_traffic.setdefault(
                    tenant, np.zeros(self.bin_owner.size, dtype=np.float64)
                )
            arr[b] += weight

    def decay(self, alpha: float) -> None:
        """Geometrically age the traffic counts (``alpha`` in (0, 1])."""
        self.traffic *= 1.0 - alpha
        for arr in self.tenant_traffic.values():
            arr *= 1.0 - alpha

    def move_bin(self, b: int, dest: int) -> int:
        """Re-home bin ``b`` to shard ``dest``; returns the old owner."""
        if not 0 <= dest < self.shards:
            raise ReproError(f"cannot move bin to unknown shard {dest}")
        old = int(self.bin_owner[b])
        self.bin_owner[b] = dest
        if old != dest:
            self.owners[self.bin_of == b] = dest
            self.moves += 1
        return old

    def move(self, index: int, dest: int) -> int:
        """Retarget the bin containing ``index`` (index-granular when the
        table is one-bin-per-index); returns the old owner."""
        return self.move_bin(int(self.bin_of[index]), dest)

    def shard_load(self, tenant: Optional[str] = None) -> np.ndarray:
        """Current per-shard traffic totals (length ``shards``); with a
        ``tenant`` only that tenant's recorded traffic is summed."""
        weights = (
            self.traffic
            if tenant is None
            else self.tenant_traffic.get(tenant)
        )
        if weights is None:
            return np.zeros(self.shards, dtype=np.float64)
        return np.bincount(
            self.bin_owner, weights=weights, minlength=self.shards
        )

    def indices_of(self, shard: int) -> np.ndarray:
        """Indices currently owned by ``shard``."""
        return np.nonzero(self.owners == shard)[0]

    def bins_of(self, shard: int) -> np.ndarray:
        """Bins currently owned by ``shard``."""
        return np.nonzero(self.bin_owner == shard)[0]

    def indices_in_bin(self, b: int) -> np.ndarray:
        """Domain indices that hash into bin ``b``."""
        return np.nonzero(self.bin_of == b)[0]


class PartitionMap:
    """One routing table per registered domain, in registration order.

    The iteration order of :meth:`items` (and therefore the float
    summation order of :meth:`shard_load`) is the domain registration
    order — part of the golden-parity surface for rebalance decisions.
    Tables are also reachable as attributes (``pm.hash``, ``pm.list``,
    ``pm.bst``...) for inspection and tests.
    """

    def __init__(self, tables: Mapping[str, RoutingTable]) -> None:
        tables = dict(tables)
        if not tables:
            raise ReproError("partition map needs at least one domain")
        shards = {t.shards for t in tables.values()}
        if len(shards) != 1:
            raise ReproError(
                f"partition map domains disagree on shard count: {shards}"
            )
        self.tables = tables

    def __getattr__(self, name: str) -> RoutingTable:
        tables = self.__dict__.get("tables")
        if tables is not None and name in tables:
            return tables[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @property
    def shards(self) -> int:
        return next(iter(self.tables.values())).shards

    def domain(self, name: str) -> RoutingTable:
        try:
            return self.tables[name]
        except KeyError:
            raise ReproError(
                f"unknown routing domain {name!r}; "
                f"expected one of {tuple(self.tables)}"
            ) from None

    def items(self) -> Iterable[Tuple[str, RoutingTable]]:
        yield from self.tables.items()

    def shard_load(self, tenant: Optional[str] = None) -> np.ndarray:
        """Per-shard decayed traffic summed over all domains (optionally
        restricted to one tenant's recorded traffic)."""
        total = np.zeros(self.shards, dtype=np.float64)
        for _, table in self.items():
            total += table.shard_load(tenant)
        return total

    def tenants(self) -> Tuple[str, ...]:
        """Tenant names with recorded traffic, in first-seen order per
        domain and domain registration order (deterministic)."""
        seen: Dict[str, None] = {}
        for _, table in self.items():
            for name in table.tenant_traffic:
                seen.setdefault(name, None)
        return tuple(seen)

    def total_moves(self) -> int:
        return sum(table.moves for _, table in self.items())


def make_partition_map(
    partitioner: str,
    shards: int,
    *,
    table_size: int,
    n_cells: int,
    key_space: int,
    bins: Optional[int] = None,
) -> PartitionMap:
    """Build the initial :class:`PartitionMap` for a K-shard engine:
    one two-level routing table per domain in the workload registry.

    ``bins`` is the target bin count ``N`` (default 64·K); a domain
    smaller than ``N`` gets one bin per index.  Both levels — index →
    bin and bin → shard — use the ``partitioner`` strategy, so the
    composed map matches the classic one-level assignment exactly for
    ``hash`` (any N with K | N) and for ``range`` at N = K.
    """
    if partitioner not in PARTITIONERS:
        raise ReproError(
            f"unknown partitioner {partitioner!r}; "
            f"expected one of {tuple(PARTITIONERS)}"
        )
    if bins is None:
        bins = DEFAULT_BINS_PER_SHARD * shards
    if bins <= 0:
        raise ReproError(f"bin count must be positive, got {bins}")
    if bins < shards:
        raise ReproError(
            f"bin count must be at least the shard count "
            f"({shards}), got {bins}"
        )
    from ..engine.spec import EngineContext, domains

    assign = PARTITIONERS[partitioner]
    ctx = EngineContext(
        table_size=table_size, n_cells=n_cells, key_space=key_space
    )
    tables = {}
    for name, dom in domains().items():
        size = dom.size(ctx)
        n_bins = min(bins, size)
        tables[name] = RoutingTable(
            assign(n_bins, shards), shards, bin_of=assign(size, n_bins)
        )
    return PartitionMap(tables)
