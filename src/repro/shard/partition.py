"""Address-space partitioning: which shard owns which conflict address.

Owner-computes sharding needs a *total* map from every address a unit
process can touch to the single worker that owns it.  The conflict
addresses fall into independent **domains** — small dense index
spaces, one :class:`~repro.engine.spec.RoutingDomain` per registered
spec's ``domain`` attribute (chain slots, cell numbers, key
residues...).  The workload registry declares them; this module only
materialises one owner array per domain, so a newly registered kind
is routable with no edits here.

A :class:`RoutingTable` is the explicit per-domain owner array — not a
pure function — so that live migration can retarget individual indices
(:meth:`RoutingTable.move`) without touching the rest of the map.  The
two initial assignments are :func:`hash_partition` (round-robin
interleave: balanced under uniform *and* most skewed workloads, since
adjacent hot ranks land on different shards) and
:func:`range_partition` (contiguous blocks: the locality-friendly
layout real systems prefer, and the one a Zipf-hot prefix turns into a
hot shard — the regime :mod:`repro.shard.rebalance` exists for).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Tuple

import numpy as np

from ..errors import ReproError


def hash_partition(size: int, shards: int) -> np.ndarray:
    """Round-robin owners: index ``i`` belongs to shard ``i % shards``."""
    _check(size, shards)
    return (np.arange(size, dtype=np.int64) % shards).astype(np.int64)


def range_partition(size: int, shards: int) -> np.ndarray:
    """Contiguous owners: the index space is cut into ``shards`` blocks
    of near-equal length (first ``size % shards`` blocks one longer)."""
    _check(size, shards)
    base, extra = divmod(size, shards)
    lengths = [base + (1 if s < extra else 0) for s in range(shards)]
    return np.repeat(np.arange(shards, dtype=np.int64), lengths)


def _check(size: int, shards: int) -> None:
    if size <= 0:
        raise ReproError(f"partition domain size must be positive, got {size}")
    if shards <= 0:
        raise ReproError(f"shard count must be positive, got {shards}")


#: Named initial-assignment strategies (CLI ``--partitioner`` choices).
#: "hash" here names the round-robin strategy, not the request kind.
PARTITIONERS: Dict[str, Callable[[int, int], np.ndarray]] = {
    "hash": hash_partition,  # no-kind-lint
    "range": range_partition,
}


class RoutingTable:
    """Explicit owner array for one domain, supporting live re-routing.

    ``owner[i]`` is the shard that owns index ``i``.  Alongside the
    owners the table keeps an exponentially-decayed per-index traffic
    count (updated by the router, decayed by the rebalancer), which is
    what hot-range detection reads.
    """

    def __init__(self, owners: np.ndarray, shards: int) -> None:
        owners = np.asarray(owners, dtype=np.int64)
        if owners.ndim != 1 or owners.size == 0:
            raise ReproError("routing table needs a non-empty 1-D owner array")
        if owners.min() < 0 or owners.max() >= shards:
            raise ReproError(
                f"owner array references shards outside [0, {shards})"
            )
        self.owners = owners
        self.shards = shards
        self.traffic = np.zeros(owners.size, dtype=np.float64)
        self.moves = 0

    @property
    def size(self) -> int:
        return self.owners.size

    def owner_of(self, index: int) -> int:
        """Owning shard of ``index`` (callers pre-fold keys into range)."""
        return int(self.owners[index])

    def fold(self, key: int) -> int:
        """Fold an arbitrary key into this domain's index range."""
        return int(key) % self.size

    def record(self, index: int, weight: float = 1.0) -> None:
        """Count routed traffic against ``index`` (rebalancer input)."""
        self.traffic[index] += weight

    def decay(self, alpha: float) -> None:
        """Geometrically age the traffic counts (``alpha`` in (0, 1])."""
        self.traffic *= 1.0 - alpha

    def move(self, index: int, dest: int) -> int:
        """Retarget ``index`` to shard ``dest``; returns the old owner."""
        if not 0 <= dest < self.shards:
            raise ReproError(f"cannot move index to unknown shard {dest}")
        old = int(self.owners[index])
        self.owners[index] = dest
        if old != dest:
            self.moves += 1
        return old

    def shard_load(self) -> np.ndarray:
        """Current per-shard traffic totals (length ``shards``)."""
        return np.bincount(
            self.owners, weights=self.traffic, minlength=self.shards
        )

    def indices_of(self, shard: int) -> np.ndarray:
        """Indices currently owned by ``shard``."""
        return np.nonzero(self.owners == shard)[0]


class PartitionMap:
    """One routing table per registered domain, in registration order.

    The iteration order of :meth:`items` (and therefore the float
    summation order of :meth:`shard_load`) is the domain registration
    order — part of the golden-parity surface for rebalance decisions.
    Tables are also reachable as attributes (``pm.hash``, ``pm.list``,
    ``pm.bst``...) for inspection and tests.
    """

    def __init__(self, tables: Mapping[str, RoutingTable]) -> None:
        tables = dict(tables)
        if not tables:
            raise ReproError("partition map needs at least one domain")
        shards = {t.shards for t in tables.values()}
        if len(shards) != 1:
            raise ReproError(
                f"partition map domains disagree on shard count: {shards}"
            )
        self.tables = tables

    def __getattr__(self, name: str) -> RoutingTable:
        tables = self.__dict__.get("tables")
        if tables is not None and name in tables:
            return tables[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @property
    def shards(self) -> int:
        return next(iter(self.tables.values())).shards

    def domain(self, name: str) -> RoutingTable:
        try:
            return self.tables[name]
        except KeyError:
            raise ReproError(
                f"unknown routing domain {name!r}; "
                f"expected one of {tuple(self.tables)}"
            ) from None

    def items(self) -> Iterable[Tuple[str, RoutingTable]]:
        yield from self.tables.items()

    def shard_load(self) -> np.ndarray:
        """Per-shard decayed traffic summed over all domains."""
        total = np.zeros(self.shards, dtype=np.float64)
        for _, table in self.items():
            total += table.shard_load()
        return total

    def total_moves(self) -> int:
        return sum(table.moves for _, table in self.items())


def make_partition_map(
    partitioner: str,
    shards: int,
    *,
    table_size: int,
    n_cells: int,
    key_space: int,
) -> PartitionMap:
    """Build the initial :class:`PartitionMap` for a K-shard engine:
    one owner array per domain in the workload registry."""
    if partitioner not in PARTITIONERS:
        raise ReproError(
            f"unknown partitioner {partitioner!r}; "
            f"expected one of {tuple(PARTITIONERS)}"
        )
    from ..engine.spec import EngineContext, domains

    assign = PARTITIONERS[partitioner]
    ctx = EngineContext(
        table_size=table_size, n_cells=n_cells, key_space=key_space
    )
    return PartitionMap(
        {
            name: RoutingTable(assign(dom.size(ctx), shards), shards)
            for name, dom in domains().items()
        }
    )
