"""Sharded multi-worker FOL engine (owner-computes partitioning).

The paper's FOL decomposition is single-pipeline: one index vector, one
work area, M sequential rounds (§3.2).  This package scales it out by
partitioning the *address space* across K simulated workers so that
every storage address has exactly one owning shard:

* ELS conflicts become shard-local — each worker runs its own FOL
  rounds over only the lanes it owns, concurrently with the others, so
  a micro-batch's cycle cost is the **max** over shards instead of the
  sum (:mod:`repro.shard.coordinator`);
* units whose L index vectors span shards (the FOL* ``"xfer"`` kind)
  are resolved by a two-phase claim/commit exchange charged as
  inter-shard cycles (:mod:`repro.shard.router`);
* hot shards are detected from per-shard metrics and their hottest key
  ranges migrated between micro-batches, Megaphone-style
  (:mod:`repro.shard.rebalance`).

Equivalence with one-shot FOL1 is property-tested in
``tests/test_shard_equivalence.py``; ``docs/sharding.md`` has the
correctness argument.
"""

from .coordinator import ShardCoordinator
from .partition import (
    PARTITIONERS,
    PartitionMap,
    RoutingTable,
    hash_partition,
    make_partition_map,
    range_partition,
)
from .rebalance import Migration, Rebalancer
from .router import CrossUnit, Router
from .worker import ShardWorker

__all__ = [
    "PARTITIONERS",
    "CrossUnit",
    "Migration",
    "PartitionMap",
    "Rebalancer",
    "Router",
    "RoutingTable",
    "ShardCoordinator",
    "ShardWorker",
    "hash_partition",
    "make_partition_map",
    "range_partition",
]
