"""Sharded multi-worker FOL engine (owner-computes partitioning).

The paper's FOL decomposition is single-pipeline: one index vector, one
work area, M sequential rounds (§3.2).  This package scales it out by
partitioning the *address space* across K simulated workers so that
every storage address has exactly one owning shard:

* ELS conflicts become shard-local — each worker runs its own FOL
  rounds over only the lanes it owns, concurrently with the others, so
  a micro-batch's cycle cost is the **max** over shards instead of the
  sum (:mod:`repro.shard.coordinator`);
* units whose L index vectors span shards (the FOL* ``"xfer"`` kind)
  are resolved by a two-phase claim/commit exchange charged as
  inter-shard cycles (:mod:`repro.shard.router`);
* every domain's indices hash statically into N ≫ K routing **bins**
  whose bin → shard assignment is the only mutable routing state
  (:mod:`repro.shard.partition`); hot bins are detected from per-bin
  traffic counters and re-homed *live* between micro-batches,
  Megaphone-style — planned by :mod:`repro.shard.rebalance`, paced and
  handed off (with pending-request parking) by
  :mod:`repro.shard.migration`.

Equivalence with one-shot FOL1 is property-tested in
``tests/test_shard_equivalence.py``; ``docs/sharding.md`` has the
correctness argument.
"""

from .coordinator import ShardCoordinator
from .migration import (
    PACING_STRATEGIES,
    BinTransfer,
    MigrationController,
    StepReport,
)
from .partition import (
    DEFAULT_BINS_PER_SHARD,
    PARTITIONERS,
    PartitionMap,
    RoutingTable,
    hash_partition,
    make_partition_map,
    range_partition,
)
from .rebalance import Migration, Rebalancer
from .router import CrossUnit, Router
from .worker import ShardWorker

__all__ = [
    "DEFAULT_BINS_PER_SHARD",
    "PACING_STRATEGIES",
    "PARTITIONERS",
    "BinTransfer",
    "CrossUnit",
    "Migration",
    "MigrationController",
    "PartitionMap",
    "Rebalancer",
    "Router",
    "RoutingTable",
    "ShardCoordinator",
    "ShardWorker",
    "StepReport",
    "hash_partition",
    "make_partition_map",
    "range_partition",
]
