"""One shard: a full FOL pipeline over the addresses it owns.

A :class:`ShardWorker` wraps the existing single-pipeline stack — its
own :class:`~repro.machine.vm.VectorMachine` and
:class:`~repro.runtime.executor.StreamExecutor` — and runs the
micro-batch slices the router sends it.  Because the router only sends
a worker lanes whose conflict addresses it owns, the worker's FOL
rounds are self-contained: its label writes can never collide with
another worker's, which is what lets the coordinator account the
shards' cycles as concurrent (``max``) rather than serial (``sum``).

All workers are built with **identical layouts** (same table size, same
arena capacities, same allocation order), so any structural address —
chain head, cell word, work-area slot — has the same numeric value on
every shard.  Two things depend on this:

* carryover conflict groups (:attr:`Request.group` holds an address)
  stay meaningful when a migration re-routes a lane to a new owner;
* migration can move a chain between shards by address-preserving
  re-linking rather than rewriting pointers.

The worker also provides the migration primitives
(:meth:`export_chain`/:meth:`import_chain`,
:meth:`export_cell`/:meth:`import_cell`) that
:mod:`repro.shard.rebalance` drives.  These use uncharged debug access:
the *simulated* cost of a migration is charged explicitly by the
coordinator from the cost model's ``shard_transfer_per_word`` /
``shard_claim_rtt`` fields, not by replaying the moves through a
worker's vector pipe (the transfer engine of a shared-nothing machine
is not its vector unit).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..engine.spec import EngineContext, machine_words, resolve_capacities
from ..lists.cells import encode_atom
from ..machine.cost_model import CostModel
from ..mem.arena import NIL
from ..runtime.executor import BatchResult, StreamExecutor
from ..runtime.queue import Request


class ShardWorker:
    """One owner-computes shard wrapping the single-pipeline executor."""

    def __init__(
        self,
        shard_id: int,
        *,
        table_size: int,
        n_cells: int,
        key_space: int = 4096,
        hash_capacity: Optional[int] = None,
        bst_capacity: Optional[int] = None,
        capacities: Optional[Dict[str, int]] = None,
        carryover: bool = True,
        conflict_policy: str = "arbitrary",
        cost_model: Optional[CostModel] = None,
        backend="sim",
        seed: int = 0,
    ) -> None:
        from ..backend import resolve_backend

        self.shard_id = shard_id
        backend = resolve_backend(backend)
        caps = resolve_capacities(
            capacities,
            {"hash_capacity": hash_capacity, "bst_capacity": bst_capacity},
        )
        ctx = EngineContext(
            table_size=table_size, n_cells=n_cells, key_space=key_space
        )
        vm = backend.make_machine(
            machine_words(caps, ctx), cost_model=cost_model, seed=seed
        )
        self.executor = StreamExecutor(
            vm,
            backend=backend,
            table_size=table_size,
            n_cells=n_cells,
            key_space=key_space,
            carryover=carryover,
            conflict_policy=conflict_policy,
            capacities=caps,
        )
        self.vm = vm
        self.batches = 0
        self.lanes = 0

    # ------------------------------------------------------------------
    # invariant auditing (opt-in; zero cost when off)
    # ------------------------------------------------------------------
    def attach_audit(self, auditor) -> None:
        """Attach an invariant auditor to this shard's machine (detach
        with ``None``); the coordinator attaches one per worker."""
        self.vm.attach_audit(auditor)

    @property
    def audit(self):
        return self.vm.audit

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, batch: Sequence[Request]) -> BatchResult:
        """Run this shard's slice of the micro-batch.  Carried lanes are
        stamped with this shard as their :attr:`Request.home` so the
        router can pin the ones holding shard-resident state (BST
        descents) back here next batch."""
        result = self.executor.execute(batch)
        for req in result.carried:
            req.home = self.shard_id
        self.batches += 1
        self.lanes += len(batch)
        return result

    # ------------------------------------------------------------------
    # migration primitives (uncharged here; coordinator charges cycles)
    # ------------------------------------------------------------------
    def export_chain(self, slot: int) -> List[int]:
        """Detach and return slot's chain keys (head first)."""
        table = self.executor.table
        keys = table.chain(slot)
        table.memory.poke(table.base + slot, NIL)
        return keys

    def can_import_chain(self, n_keys: int) -> bool:
        """True if the node arena can hold ``n_keys`` more records."""
        return self.executor.table.nodes.remaining >= n_keys

    def import_chain(self, slot: int, keys: List[int]) -> None:
        """Rebuild ``keys`` as this shard's chain for ``slot``, in front
        of whatever the slot already holds (order within the imported
        run is preserved; equivalence only needs the multiset)."""
        if not keys:
            return
        table = self.executor.table
        nodes = table.nodes
        off_key = nodes.offset("key")
        off_next = nodes.offset("next")
        ptrs = [nodes.alloc_one() for _ in keys]
        old_head = table.memory.peek(table.base + slot)
        for i, (ptr, key) in enumerate(zip(ptrs, keys)):
            nxt = ptrs[i + 1] if i + 1 < len(ptrs) else old_head
            table.memory.poke(ptr + off_key, int(key))
            table.memory.poke(ptr + off_next, int(nxt))
        table.memory.poke(table.base + slot, ptrs[0])

    def export_cell(self, cell: int) -> int:
        """Zero this shard's copy of ``cell`` and return the value it
        contributed (may be negative: cells hold signed deltas)."""
        executor = self.executor
        addr = int(executor._cell_ptrs[cell]) + executor.cells.cells.offset("car")
        value = -int(executor.vm.mem.peek(addr)) - 1
        executor.vm.mem.poke(addr, encode_atom(0))
        return value

    def import_cell(self, cell: int, value: int) -> None:
        """Fold ``value`` into this shard's copy of ``cell``."""
        executor = self.executor
        addr = int(executor._cell_ptrs[cell]) + executor.cells.cells.offset("car")
        executor.vm.mem.poke(addr, int(executor.vm.mem.peek(addr)) - int(value))

    def cell_addr(self, cell: int) -> int:
        """Word address of cell's value (for cross-shard commits)."""
        executor = self.executor
        return int(executor._cell_ptrs[cell]) + executor.cells.cells.offset("car")

    # ------------------------------------------------------------------
    # uncharged state inspection (merging and verification)
    # ------------------------------------------------------------------
    def chain_multisets(self) -> Dict[int, List[int]]:
        """Slot -> keys currently chained on this shard (all slots the
        shard has ever populated; empty chains omitted)."""
        table = self.executor.table
        out: Dict[int, List[int]] = {}
        for slot in range(table.size):
            keys = table.chain(slot)
            if keys:
                out[slot] = keys
        return out

    def bst_inorder(self) -> List[int]:
        return list(self.executor.tree.inorder())

    def check_bst(self) -> None:
        """Raise if this shard's tree violates the BST invariant."""
        self.executor.tree.check_bst_invariant()

    def cell_values(self) -> List[int]:
        return self.executor.list_values()

    @property
    def hash_nodes_used(self) -> int:
        return self.executor.table.nodes.allocated

    @property
    def total_cycles(self) -> float:
        return self.vm.counter.total
