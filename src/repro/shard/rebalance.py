"""Megaphone-style live migration planning: move hot *bins* off hot shards.

Owner-computes sharding is only as good as its partition.  Under a
skewed (Zipf) key stream a contiguous range partition concentrates the
hot ranks on one shard, and because a batch's cycle cost is the *max*
over shards, one hot shard sets the pace for all K — throughput decays
toward the single-shard level.  The fix, following the Megaphone design
in the related file set (`/root/related/LorenzSelv__megaphone/`), is to
re-partition *live*: detect the hot shard from per-shard load metrics
and re-home routing **bins** (the N ≫ K static groups every domain's
indices hash into, see :mod:`repro.shard.partition`) to colder shards
**between micro-batches**, while in-flight carryover lanes keep
flowing.

Detection and planning (:class:`Rebalancer`):

* the router records exponentially-decayed per-bin traffic in each
  :class:`~repro.shard.partition.RoutingTable`; per-shard sums of those
  counts are the load signal (decay keeps it reactive after the
  workload shifts);
* a shard is *hot* when its load exceeds ``threshold`` x the mean and
  the planner is off cooldown;
* the plan greedily moves the hot shard's hottest bins to the
  currently coldest shard, stopping at half the hot-cold gap.  A bin
  whose own traffic exceeds the remaining gap is skipped — moving it
  would just relocate the hotspot and the next plan would move it
  back (oscillation), the one pathology a single dominant key forces on
  *any* re-assignment scheme (the bin is the unit of re-homing, as the
  key range is in Megaphone);
* ``cooldown`` batches must pass between plans so a migration's effect
  is observed before the next one is sized.

Physical movement is the job of the
:class:`~repro.shard.migration.MigrationController` and the engine that
owns the workers (coordinator or process cluster); this module only
decides *what* moves.  Per domain: hash chains are re-linked into the
destination's node arena, list cells transfer their accumulated delta,
and BST/sort residues are re-routed without moving nodes — the
destination grows its own subtree for future inserts and the global
inorder stays the sorted merge of per-shard inorders
(``docs/sharding.md`` §4 has the correctness argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import ReproError
from .partition import PartitionMap


@dataclass(frozen=True)
class Migration:
    """One planned bin move: ``domain`` bin ``bin`` from ``src`` to ``dst``."""

    domain: str
    bin: int
    src: int
    dst: int
    traffic: float  # decayed traffic the bin carried when planned


class Rebalancer:
    """Detects hot shards and plans bin migrations between batches."""

    def __init__(
        self,
        partition: PartitionMap,
        *,
        threshold: float = 1.8,
        cooldown: int = 4,
        decay: float = 0.3,
        max_moves: int = 8,
    ) -> None:
        if threshold <= 1.0:
            raise ReproError(f"rebalance threshold must exceed 1, got {threshold}")
        if not 0.0 < decay <= 1.0:
            raise ReproError(f"traffic decay must be in (0, 1], got {decay}")
        self.partition = partition
        self.threshold = threshold
        self.cooldown = cooldown
        self.decay = decay
        self.max_moves = max_moves
        self._cool = 0
        self.plans = 0
        self.total_moves = 0

    # ------------------------------------------------------------------
    def plan(self) -> List[Migration]:
        """Inspect the decayed load and plan this inter-batch gap's
        migrations (empty most of the time).  Call once per micro-batch,
        after execution; traffic decay is applied here."""
        part = self.partition
        load = part.shard_load()
        moves: List[Migration] = []
        if self._cool > 0:
            self._cool -= 1
        elif part.shards > 1 and load.sum() > 0:
            mean = load.sum() / part.shards
            hot = int(np.argmax(load))
            cold = int(np.argmin(load))
            if load[hot] > self.threshold * mean and load[hot] > load[cold]:
                moves = self._plan_moves(hot, cold, float(load[hot] - load[cold]))
                if moves:
                    self.plans += 1
                    self.total_moves += len(moves)
                    self._cool = self.cooldown
        for _, table in part.items():
            table.decay(self.decay)
        return moves

    def _plan_moves(self, hot: int, cold: int, gap: float) -> List[Migration]:
        """Greedy: hot shard's hottest bins, largest first, until half
        the load gap has moved (moving more would overshoot and invert)."""
        budget = gap / 2.0
        candidates = []
        for name, table in self.partition.items():
            for b in table.bins_of(hot):
                t = float(table.traffic[b])
                if t > 0:
                    candidates.append((t, name, int(b)))
        candidates.sort(reverse=True)
        moves: List[Migration] = []
        for t, name, b in candidates:
            if len(moves) >= self.max_moves or budget <= 0:
                break
            if t > budget and moves:
                continue  # would overshoot; smaller candidates may fit
            if t > gap / 2.0 + 1e-9 and not moves:
                # A single bin hotter than half the gap: moving it just
                # relocates the hotspot.  FOL still serialises that one
                # address's conflicts on whichever shard owns it, so skew
                # this extreme is not migratable (Megaphone has the same
                # floor: one bin is the unit of re-assignment).
                continue
            moves.append(Migration(name, b, hot, cold, t))
            budget -= t
        return moves
