"""Megaphone-style live migration planning: move hot *bins* off hot shards.

Owner-computes sharding is only as good as its partition.  Under a
skewed (Zipf) key stream a contiguous range partition concentrates the
hot ranks on one shard, and because a batch's cycle cost is the *max*
over shards, one hot shard sets the pace for all K — throughput decays
toward the single-shard level.  The fix, following the Megaphone design
in the related file set (`/root/related/LorenzSelv__megaphone/`), is to
re-partition *live*: detect the hot shard from per-shard load metrics
and re-home routing **bins** (the N ≫ K static groups every domain's
indices hash into, see :mod:`repro.shard.partition`) to colder shards
**between micro-batches**, while in-flight carryover lanes keep
flowing.

Detection and planning (:class:`Rebalancer`):

* the router records exponentially-decayed per-bin traffic in each
  :class:`~repro.shard.partition.RoutingTable`; per-shard sums of those
  counts are the load signal (decay keeps it reactive after the
  workload shifts);
* a shard is *hot* when its load exceeds ``threshold`` x the mean and
  the planner is off cooldown;
* the plan greedily moves the hot shard's hottest bins to the
  currently coldest shard, stopping at half the hot-cold gap.  A bin
  whose own traffic exceeds the remaining gap is skipped — moving it
  would just relocate the hotspot and the next plan would move it
  back (oscillation), the one pathology a single dominant key forces on
  *any* re-assignment scheme (the bin is the unit of re-homing, as the
  key range is in Megaphone);
* ``cooldown`` batches must pass between plans so a migration's effect
  is observed before the next one is sized.

Physical movement is the job of the
:class:`~repro.shard.migration.MigrationController` and the engine that
owns the workers (coordinator or process cluster); this module only
decides *what* moves.  Per domain: hash chains are re-linked into the
destination's node arena, list cells transfer their accumulated delta,
and BST/sort residues are re-routed without moving nodes — the
destination grows its own subtree for future inserts and the global
inorder stays the sorted merge of per-shard inorders
(``docs/sharding.md`` §4 has the correctness argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import ReproError
from .partition import PartitionMap


@dataclass(frozen=True)
class Migration:
    """One planned bin move: ``domain`` bin ``bin`` from ``src`` to ``dst``."""

    domain: str
    bin: int
    src: int
    dst: int
    traffic: float  # decayed traffic the bin carried when planned


#: Planning objectives understood by :class:`Rebalancer`.
REBALANCE_OBJECTIVES = ("imbalance", "worst-tenant")


class Rebalancer:
    """Detects hot shards and plans bin migrations between batches.

    Two planning objectives:

    * ``"imbalance"`` (default) — minimise total-load imbalance: the
      hottest shard sheds its hottest bins to the coldest shard.
    * ``"worst-tenant"`` — minimise the *worst tenant's* p99 instead of
      mean imbalance: the planner finds the tenant whose own traffic is
      most concentrated on one shard (that concentration is what sets
      the tenant's tail latency, since a batch's cost is the max over
      shards), then moves the bins *that tenant* hammers off its hot
      shard, ranked by the tenant's per-bin traffic rather than the
      aggregate.  Total load may stay slightly imbalanced — the point
      is to stop one tenant's hotspot from hiding behind a globally
      balanced-looking load.  Falls back to ``"imbalance"`` while no
      tenant traffic has been recorded.
    """

    def __init__(
        self,
        partition: PartitionMap,
        *,
        threshold: float = 1.8,
        cooldown: int = 4,
        decay: float = 0.3,
        max_moves: int = 8,
        objective: str = "imbalance",
    ) -> None:
        if threshold <= 1.0:
            raise ReproError(f"rebalance threshold must exceed 1, got {threshold}")
        if not 0.0 < decay <= 1.0:
            raise ReproError(f"traffic decay must be in (0, 1], got {decay}")
        if objective not in REBALANCE_OBJECTIVES:
            raise ReproError(
                f"unknown rebalance objective {objective!r}; "
                f"expected one of {REBALANCE_OBJECTIVES}"
            )
        self.partition = partition
        self.threshold = threshold
        self.cooldown = cooldown
        self.decay = decay
        self.max_moves = max_moves
        self.objective = objective
        self._cool = 0
        self.plans = 0
        self.total_moves = 0

    # ------------------------------------------------------------------
    def plan(self) -> List[Migration]:
        """Inspect the decayed load and plan this inter-batch gap's
        migrations (empty most of the time).  Call once per micro-batch,
        after execution; traffic decay is applied here."""
        part = self.partition
        moves: List[Migration] = []
        if self._cool > 0:
            self._cool -= 1
        elif part.shards > 1:
            tenant = None
            if self.objective == "worst-tenant":
                tenant = self._worst_tenant()
            load = part.shard_load(tenant)
            if load.sum() > 0:
                mean = load.sum() / part.shards
                hot = int(np.argmax(load))
                cold = int(np.argmin(load))
                if load[hot] > self.threshold * mean and load[hot] > load[cold]:
                    moves = self._plan_moves(
                        hot, cold, float(load[hot] - load[cold]), tenant=tenant
                    )
                    if moves:
                        self.plans += 1
                        self.total_moves += len(moves)
                        self._cool = self.cooldown
        for _, table in part.items():
            table.decay(self.decay)
        return moves

    def _worst_tenant(self) -> "str | None":
        """Tenant whose traffic is most concentrated on a single shard
        (max-over-mean of its per-shard load), or None when no tenant
        traffic is recorded yet — the imbalance fallback."""
        part = self.partition
        worst, worst_ratio = None, 0.0
        for name in part.tenants():
            load = part.shard_load(name)
            total = load.sum()
            if total <= 0:
                continue
            ratio = float(load.max() / (total / part.shards))
            if ratio > worst_ratio:
                worst, worst_ratio = name, ratio
        return worst

    def _plan_moves(
        self,
        hot: int,
        cold: int,
        gap: float,
        tenant: "str | None" = None,
    ) -> List[Migration]:
        """Greedy: hot shard's hottest bins, largest first, until half
        the load gap has moved (moving more would overshoot and invert).
        Under the worst-tenant objective the bin heat is the *tenant's*
        per-bin traffic, so the plan moves what that tenant touches."""
        budget = gap / 2.0
        candidates = []
        for name, table in self.partition.items():
            heat = (
                table.traffic
                if tenant is None
                else table.tenant_traffic.get(tenant)
            )
            if heat is None:
                continue
            for b in table.bins_of(hot):
                t = float(heat[b])
                if t > 0:
                    candidates.append((t, name, int(b)))
        candidates.sort(reverse=True)
        moves: List[Migration] = []
        for t, name, b in candidates:
            if len(moves) >= self.max_moves or budget <= 0:
                break
            if t > budget and moves:
                continue  # would overshoot; smaller candidates may fit
            if t > gap / 2.0 + 1e-9 and not moves:
                # A single bin hotter than half the gap: moving it just
                # relocates the hotspot.  FOL still serialises that one
                # address's conflicts on whichever shard owns it, so skew
                # this extreme is not migratable (Megaphone has the same
                # floor: one bin is the unit of re-assignment).
                continue
            moves.append(Migration(name, b, hot, cold, t))
            budget -= t
        return moves
