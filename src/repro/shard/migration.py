"""Live bin migration: pacing, pending-request buffering, handoff.

The :class:`~repro.shard.rebalance.Rebalancer` decides *which* bins
should move; this module decides *how fast* they move and keeps the
owner-computes discipline intact while they are in flight.  The
controller sits between the planner and the engine that owns the
workers (the in-process :class:`~repro.shard.coordinator.
ShardCoordinator` or the multi-process :class:`~repro.serve.cluster.
ProcessCluster`) and drives one **mover** callback per domain index:

    ``mover.migrate_index(domain, src, dst, index) -> words | None``

The mover performs the physical, address-preserving state transfer
(chain re-link, cell delta fold, or nothing for route-only domains)
and returns the words shipped, or ``None`` when the destination
refused (a full node arena), which aborts the bin's transfer.  Every
intermediate state is merge-correct — global chains are per-slot
multiset unions and cells are sums over shards, so a half-moved bin
never corrupts the merged view — but the routing flip
(:meth:`~repro.shard.partition.RoutingTable.move_bin`) happens only
once the whole bin has landed.

**Pending-request buffering**: while a bin is in flight, requests
routed to it are *parked* instead of executed (the router asks
:meth:`MigrationController.in_flight` per routed index).  Parked lanes
ride the carryover path — they re-enter the next micro-batch, get
parked again if the bin is still moving, and replay on the new owner
once it flips.  That preserves both the single-writer discipline (no
lane ever executes against a bin whose state is split mid-transfer)
and claim/commit correctness: a cross-shard tuple touching an
in-flight bin is parked *before* the claim phase, so there is no claim
to drop or double-apply across the handoff.

Three pacing strategies (CLI ``--migration``), per inter-batch gap:

* ``all-at-once`` — every planned bin transfers completely in the gap
  it was planned; maximum reconfiguration spike, minimum time-to-home.
* ``batched`` — at most ``bins_per_gap`` whole bins per gap; later
  bins stay queued (and their requests parked) until their turn.
* ``fluid`` — at most ``indices_per_gap`` index transfers per gap,
  spread FIFO across the queued bins; a bin flips the moment its last
  index lands.  Smoothest cycle profile, longest handoff window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..errors import ReproError
from .partition import PartitionMap
from .rebalance import Migration

#: Pacing strategies understood by :class:`MigrationController`
#: (the CLI ``--migration`` choices).
PACING_STRATEGIES = ("all-at-once", "batched", "fluid")


@dataclass
class BinTransfer:
    """One bin's in-flight transfer: the plan plus remaining indices."""

    move: Migration
    indices: List[int]  # domain indices not yet shipped
    total: int  # indices the bin held when admitted

    @property
    def key(self) -> Tuple[str, int]:
        return (self.move.domain, self.move.bin)


@dataclass
class StepReport:
    """What one inter-batch migration step did (the cycle-charge input)."""

    words: int = 0  # state words shipped this gap
    rtts: int = 0  # control round trips (bins engaged this gap)
    completed: int = 0  # bins that finished and flipped ownership
    skipped: int = 0  # bins aborted (destination refused)
    flipped: List[BinTransfer] = field(default_factory=list)


class MigrationController:
    """Paces planned bin moves across inter-batch gaps and tracks which
    bins are in flight (the router's parking signal)."""

    def __init__(
        self,
        partition: PartitionMap,
        *,
        strategy: str = "all-at-once",
        bins_per_gap: int = 2,
        indices_per_gap: int = 16,
    ) -> None:
        if strategy not in PACING_STRATEGIES:
            raise ReproError(
                f"unknown migration strategy {strategy!r}; "
                f"expected one of {PACING_STRATEGIES}"
            )
        if bins_per_gap <= 0:
            raise ReproError(
                f"bins per gap must be positive, got {bins_per_gap}"
            )
        if indices_per_gap <= 0:
            raise ReproError(
                f"indices per gap must be positive, got {indices_per_gap}"
            )
        self.partition = partition
        self.strategy = strategy
        self.bins_per_gap = bins_per_gap
        self.indices_per_gap = indices_per_gap
        self._queue: List[BinTransfer] = []
        self._in_flight: Dict[Tuple[str, int], BinTransfer] = {}
        self.bins_admitted = 0
        self.bins_completed = 0
        self.bins_skipped = 0
        self.parked_requests = 0
        #: Optional lifecycle-trace recorder (see repro.obs.events);
        #: notified after every step that engaged at least one bin.
        self.observer = None

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Bins admitted but not yet flipped or aborted."""
        return len(self._in_flight)

    def in_flight(self, domain: str, index: int) -> bool:
        """True when the bin owning this domain index is mid-handoff
        (the router parks requests that route to it)."""
        if not self._in_flight:
            return False
        table = self.partition.domain(domain)
        return (domain, int(table.bin_of[index])) in self._in_flight

    def note_parked(self, n: int = 1) -> None:
        self.parked_requests += n

    # ------------------------------------------------------------------
    def admit(self, moves: Sequence[Migration]) -> None:
        """Queue freshly planned bin moves.  A bin already in flight, or
        one whose owner changed since the plan, is dropped (stale)."""
        for mv in moves:
            key = (mv.domain, mv.bin)
            if key in self._in_flight:
                continue
            table = self.partition.domain(mv.domain)
            if table.bin_owner_of(mv.bin) != mv.src:
                continue  # stale plan; ownership moved under the planner
            indices = [int(i) for i in table.indices_in_bin(mv.bin)]
            transfer = BinTransfer(mv, indices, len(indices))
            self._queue.append(transfer)
            self._in_flight[key] = transfer
            self.bins_admitted += 1

    # ------------------------------------------------------------------
    def step(self, mover) -> StepReport:
        """Advance the queued transfers by one inter-batch gap under the
        configured pacing; flips each bin's routing the moment its last
        index lands.  Always makes progress when anything is queued, so
        parked requests are never stranded."""
        report = StepReport()
        if not self._queue:
            return report
        bins_budget = (
            self.bins_per_gap if self.strategy == "batched" else None
        )
        index_budget = (
            self.indices_per_gap if self.strategy == "fluid" else None
        )
        queue, self._queue = self._queue, []
        bins_engaged = 0
        for transfer in queue:
            out_of_budget = (
                bins_budget is not None and bins_engaged >= bins_budget
            ) or (index_budget is not None and index_budget <= 0)
            if out_of_budget:
                self._queue.append(transfer)  # keeps FIFO order
                continue
            mv = transfer.move
            moved_any = False
            aborted = False
            while transfer.indices:
                if index_budget is not None and index_budget <= 0:
                    break
                idx = transfer.indices[0]
                words = mover.migrate_index(mv.domain, mv.src, mv.dst, idx)
                if words is None:
                    aborted = True
                    break
                transfer.indices.pop(0)
                moved_any = True
                report.words += int(words)
                if index_budget is not None:
                    index_budget -= 1
            if aborted:
                del self._in_flight[transfer.key]
                report.skipped += 1
                self.bins_skipped += 1
                bins_engaged += 1
                report.rtts += 1  # the refused probe still cost a trip
                continue
            if transfer.indices:
                self._queue.append(transfer)  # fluid: resumes next gap
            else:
                table = self.partition.domain(mv.domain)
                table.move_bin(mv.bin, mv.dst)
                del self._in_flight[transfer.key]
                report.completed += 1
                report.flipped.append(transfer)
                self.bins_completed += 1
            if moved_any or not transfer.indices:
                bins_engaged += 1
                report.rtts += 1
        if self.observer is not None and (report.rtts or report.completed):
            self.observer.migration_step(report)
        return report
