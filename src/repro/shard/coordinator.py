"""The K-shard engine behind the single-executor interface.

:class:`ShardCoordinator` exposes the same ``execute(batch) ->
BatchResult`` surface as :class:`~repro.runtime.executor.StreamExecutor`,
so :class:`~repro.runtime.service.StreamService` drives it unchanged —
the admission queue, batching policy and coordinator-level carryover
buffer all work exactly as in the single-pipeline runtime.  Inside one
``execute`` call:

1. **route** — the :class:`~repro.shard.router.Router` splits the batch
   into per-shard sub-batches plus cross-shard ``"xfer"`` units;
2. **local execution** — each busy worker runs its slice through its
   own FOL pipeline.  The workers are independent machines over
   disjoint address sets, so the batch's local cost is
   ``max`` over per-shard cycle deltas — the makespan of K concurrent
   pipelines — not their sum;
3. **claim/commit** — cross-shard units that won their first-come
   claims commit (the coordinator applies both cell updates on the
   owners' memories); losers are carried like any filtered lane.
   The exchange is charged explicitly: one overlapped claim RTT and
   one commit RTT (``shard_claim_rtt``) per batch that has cross
   units, plus ``shard_transfer_per_word`` for the claim (2 words) and
   commit (3 words: delta + two cell addresses) payloads;
4. **rebalance** (optional) — between batches the
   :class:`~repro.shard.rebalance.Rebalancer` plans hot-*bin* moves and
   the :class:`~repro.shard.migration.MigrationController` paces them
   (``all-at-once`` / ``batched`` / ``fluid``); the coordinator is the
   controller's *mover* (:meth:`migrate_index`), performing the
   physical per-index transfers (chain re-link, cell delta transfer,
   BST re-route) and charging one control RTT per bin engaged per gap
   plus the per-word transfer cost of the moved state.  Requests routed
   to a bin that is mid-handoff are parked by the router and ride the
   carryover path until the bin flips (see
   :mod:`repro.shard.migration`).  Migration cycles are attributed to
   the batch that just finished, i.e. the inter-batch gap they occupy.

Merged state accessors (:meth:`list_values`, :meth:`chain_multisets`,
:meth:`bst_inorder`) define the global state a K-shard engine
represents: per-cell values are *sums* of the shards' contributions,
chains are per-slot multiset unions, and the BST is the sorted merge
of per-shard inorders.  The equivalence property tests compare these
against one-shot FOL1 on a single pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..engine.spec import (
    MIGRATE_CELL,
    MIGRATE_CHAIN,
    count_by_kind,
    get_domain,
    get_spec,
    specs,
)
from ..errors import AuditError, ReproError
from ..machine.cost_model import CostModel
from ..runtime.executor import BatchResult
from ..runtime.queue import Request
from .migration import PACING_STRATEGIES, MigrationController
from .partition import make_partition_map
from .rebalance import Rebalancer
from .router import Router
from .worker import ShardWorker

#: Claim/commit payload sizes in words (see docs/sharding.md §3).
_CLAIM_WORDS = 2
_COMMIT_WORDS = 3


class ShardCoordinator:
    """Owner-computes execution of micro-batches across K workers."""

    def __init__(
        self,
        workers: List[ShardWorker],
        router: Router,
        *,
        cost_model: Optional[CostModel] = None,
        rebalancer: Optional[Rebalancer] = None,
        controller: Optional[MigrationController] = None,
    ) -> None:
        if not workers:
            raise ReproError("shard coordinator needs at least one worker")
        self.workers = workers
        self.router = router
        self.shards = len(workers)
        self.backend = workers[0].executor.backend
        self.cost = cost_model if cost_model is not None else CostModel.s810()
        self.rebalancer = rebalancer
        if rebalancer is not None and controller is None:
            controller = MigrationController(router.partition)
        self.controller = controller
        router.controller = controller
        # Cycles charged outside any single worker's counter (cross-shard
        # exchanges and migrations); the per-worker counters hold only
        # shard-local pipeline work.
        self.exchange_cycles = 0.0
        self.migration_cycles = 0.0
        self.total_cross = 0
        self.total_migrations = 0
        self.migration_skips = 0
        # One auditor per worker when auditing (each worker has its own
        # memory); None means no checks and no overhead.
        self._audits: Optional[List] = None

    # ------------------------------------------------------------------
    @classmethod
    def for_workload(
        cls,
        requests: Sequence[Request],
        *,
        shards: int,
        partitioner: str = "hash",  # no-kind-lint
        rebalance: bool = False,
        table_size: int = 509,
        n_cells: int = 64,
        key_space: int = 4096,
        carryover: bool = True,
        conflict_policy: str = "arbitrary",
        cost_model: Optional[CostModel] = None,
        backend="sim",
        seed: int = 0,
        rebalance_threshold: float = 1.8,
        rebalance_cooldown: int = 4,
        rebalance_max_moves: int = 8,
        rebalance_objective: str = "imbalance",
        bins: Optional[int] = None,
        migration: str = "all-at-once",
    ) -> "ShardCoordinator":
        """Build a K-shard engine sized for ``requests``.

        Workers get identical layouts (a requirement — see
        :mod:`repro.shard.worker`): every worker's arenas are sized for
        the *whole* workload, since routing skew or migration can land
        any fraction of it on one shard.  Hash node arenas get extra
        headroom because chain migration re-allocates nodes at the
        destination (bump arenas never reclaim the source's records).
        """
        from ..backend import resolve_backend

        if shards <= 0:
            raise ReproError(f"shard count must be positive, got {shards}")
        if migration not in PACING_STRATEGIES:
            raise ReproError(
                f"unknown migration strategy {migration!r}; "
                f"expected one of {PACING_STRATEGIES}"
            )
        backend = resolve_backend(backend)
        counts = count_by_kind(requests)
        caps = {
            spec.name: spec.shard_capacity(counts.get(spec.name, 0))
            for spec in specs()
        }
        workers = [
            ShardWorker(
                s,
                table_size=table_size,
                n_cells=n_cells,
                key_space=key_space,
                capacities=caps,
                carryover=carryover,
                conflict_policy=conflict_policy,
                cost_model=cost_model,
                backend=backend,
                seed=seed,
            )
            for s in range(shards)
        ]
        partition = make_partition_map(
            partitioner,
            shards,
            table_size=table_size,
            n_cells=n_cells,
            key_space=key_space,
            bins=bins,
        )
        rebalancer = (
            Rebalancer(
                partition,
                threshold=rebalance_threshold,
                cooldown=rebalance_cooldown,
                max_moves=rebalance_max_moves,
                objective=rebalance_objective,
            )
            if rebalance
            else None
        )
        controller = (
            MigrationController(partition, strategy=migration)
            if rebalance
            else None
        )
        return cls(
            workers,
            Router(partition),
            cost_model=cost_model,
            rebalancer=rebalancer,
            controller=controller,
        )

    # ------------------------------------------------------------------
    @property
    def vm(self):
        """Worker 0's machine (interface compatibility; per-shard cycle
        ledgers live on each worker, coordinator overheads on
        :attr:`exchange_cycles` / :attr:`migration_cycles`)."""
        return self.workers[0].vm

    # ------------------------------------------------------------------
    # invariant auditing (opt-in; zero cost when off)
    # ------------------------------------------------------------------
    def attach_audit(self, auditor) -> None:
        """Enable invariant auditing across the sharded engine.

        ``auditor`` is a template/aggregate: each worker gets a *fresh*
        :class:`~repro.audit.InvariantAuditor` of the same class (the
        workers own separate memories), and :meth:`audit_summary` merges
        their counters into ``auditor``.  Pass ``None`` to detach."""
        if auditor is None:
            self._audits = None
            for w in self.workers:
                w.attach_audit(None)
            return
        self._audits = [type(auditor)() for _ in self.workers]
        for w, aud in zip(self.workers, self._audits):
            w.attach_audit(aud)
        self._audit_root = auditor

    @property
    def audit(self):
        """The aggregate auditor passed to :meth:`attach_audit` (with
        worker counters merged on access), or ``None``."""
        if self._audits is None:
            return None
        root = self._audit_root
        root.stats = type(root.stats)()
        root.conflict_log = []
        for aud in self._audits:
            root.merge(aud)
        return root

    def _audit_routing(self, per_shard: List[List[Request]]) -> None:
        """Owner-computes invariant: every lane landed on the shard that
        owns its conflict indices (a spec may instead pin a lane to the
        shard holding its resumable state — see WorkloadSpec.pin_shard)."""
        part = self.router.partition
        for s, sub in enumerate(per_shard):
            for req in sub:
                get_spec(req.kind).routing_audit(req, part, s)

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def execute(self, batch: Sequence[Request]) -> BatchResult:
        result = BatchResult()
        if not batch:
            return result
        per_shard, cross, parked = self.router.split(batch)
        if self._audits is not None:
            self._audit_routing(per_shard)
        # Parked lanes (bin mid-handoff) recirculate via the carryover
        # path and replay once the new owner has the bin's state.
        result.carried.extend(parked)
        result.parked = len(parked)

        # -- concurrent shard-local execution --------------------------
        local_cycles = [0.0] * self.shards
        local_rounds = [0] * self.shards
        mults = [1]
        for s, sub in enumerate(per_shard):
            if not sub:
                continue
            r = self.workers[s].execute(sub)
            result.completed.extend(r.completed)
            result.carried.extend(r.carried)
            local_cycles[s] = r.cycles
            local_rounds[s] = r.rounds
            mults.append(r.multiplicity)

        # -- two-phase claim/commit for cross-shard tuples -------------
        exchange = 0.0
        if cross:
            winners, losers = self.router.resolve_claims(cross)
            result.cross_committed = tuple(u.request.rid for u in winners)
            for unit in winners:
                get_spec(unit.request.kind).commit_cross(self, unit)
                result.completed.append(unit.request)
            for unit in losers:
                req = unit.request
                req.group = get_spec(req.kind).carry_group(self, unit)
                result.carried.append(req)
            if self.backend.calibrated:
                exchange = 2 * self.cost.shard_claim_rtt
                exchange += self.cost.shard_transfer_per_word * (
                    _CLAIM_WORDS * len(cross) + _COMMIT_WORDS * len(winners)
                )
            self.exchange_cycles += exchange
            self.total_cross += len(cross)

        # -- inter-batch live migration --------------------------------
        migration = 0.0
        n_moves = 0
        if self.rebalancer is not None:
            self.controller.admit(self.rebalancer.plan())
            rep = self.controller.step(self)
            if self.backend.calibrated:
                migration = self.cost.shard_claim_rtt * rep.rtts
                migration += self.cost.shard_transfer_per_word * rep.words
            self.migration_cycles += migration
            n_moves = rep.completed
            self.total_migrations += rep.completed
            self.migration_skips += rep.skipped

        result.rounds = max(local_rounds)
        result.multiplicity = max(mults)
        result.cycles = max(local_cycles) + exchange + migration
        result.exchange_span = exchange
        result.migration_span = migration
        result.shard_exec_spans = tuple(local_cycles)
        result.kind_counts = tuple(count_by_kind(batch).items())
        result.shard_sizes = tuple(len(sub) for sub in per_shard)
        result.shard_cycles = tuple(local_cycles)
        result.shard_rounds = tuple(local_rounds)
        result.cross_units = len(cross)
        result.migrations = n_moves
        return result

    # ------------------------------------------------------------------
    # migration (the MigrationController's mover hook)
    # ------------------------------------------------------------------
    def migrate_index(
        self, domain: str, src: int, dst: int, index: int
    ) -> Optional[int]:
        """Physically move one domain index's state ``src`` → ``dst``;
        returns the words shipped, or ``None`` to abort the bin.

        A chain transfer that would overflow the destination's node
        arena refuses (``None``) — bump arenas never reclaim the
        source's records, so repeated migration spends headroom and the
        engine degrades to a frozen partition rather than failing.  The
        routing flip is the controller's job, *after* the whole bin has
        landed; every intermediate state is merge-correct (chains are
        per-slot multiset unions, cells are sums over shards).
        """
        src_w = self.workers[src]
        dst_w = self.workers[dst]
        style = get_domain(domain).migration
        auditing = self._audits is not None
        if style == MIGRATE_CHAIN:
            keys = src_w.executor.table.chain(index)
            if not dst_w.can_import_chain(len(keys)):
                return None
            if auditing:
                before = sorted(
                    k for w in self.workers
                    for k in w.executor.table.chain(index)
                )
            src_w.export_chain(index)
            dst_w.import_chain(index, keys)
            if auditing:
                after = sorted(
                    k for w in self.workers
                    for k in w.executor.table.chain(index)
                )
                if before != after:
                    raise AuditError(
                        f"chain migration of slot {index} "
                        f"{src}->{dst} changed the key multiset: "
                        f"{before} -> {after}"
                    )
            return 2 * len(keys) + 1  # (key, next) records + head
        if style == MIGRATE_CELL:
            if auditing:
                before_total = sum(
                    w.cell_values()[index] for w in self.workers
                )
            value = src_w.export_cell(index)
            dst_w.import_cell(index, value)
            if auditing:
                after_total = sum(
                    w.cell_values()[index] for w in self.workers
                )
                if before_total != after_total:
                    raise AuditError(
                        f"cell migration of cell {index} "
                        f"{src}->{dst} changed the global value: "
                        f"{before_total} -> {after_total}"
                    )
            return 1
        return 0  # MIGRATE_ROUTE: merge-on-read state, no payload

    # ------------------------------------------------------------------
    # merged state (uncharged; equivalence tests and verification)
    # ------------------------------------------------------------------
    def list_values(self) -> List[int]:
        """Global cell values: per-cell sum of shard contributions."""
        totals = np.zeros(self.workers[0].executor.n_cells, dtype=np.int64)
        for w in self.workers:
            totals += np.asarray(w.cell_values(), dtype=np.int64)
        return [int(v) for v in totals]

    def chain_multisets(self) -> Dict[int, List[int]]:
        """Global chains: per-slot sorted multiset union over shards."""
        merged: Dict[int, List[int]] = {}
        for w in self.workers:
            for slot, keys in w.chain_multisets().items():
                merged.setdefault(slot, []).extend(keys)
        return {slot: sorted(keys) for slot, keys in merged.items()}

    def bst_inorder(self) -> List[int]:
        """Global BST contents: sorted merge of per-shard inorders.
        Also validates every shard's tree along the way."""
        out: List[int] = []
        for w in self.workers:
            w.check_bst()
            out.extend(w.bst_inorder())
        return sorted(out)

    def state_fingerprint(self) -> str:
        """SHA-256 chain over the workers' machine states, in shard
        order (uncharged; cross-backend parity for sharded runs)."""
        import hashlib

        digest = hashlib.sha256()
        for w in self.workers:
            digest.update(w.executor.state_fingerprint().encode("ascii"))
        return digest.hexdigest()
