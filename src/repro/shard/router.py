"""Batch routing: split each micro-batch by owning shard.

The router turns one micro-batch into K shard-local sub-batches plus a
(usually short) list of **cross-shard units** — ``"xfer"`` tuples whose
two cells live on different owners.  Everything else is single-address
and lands wholly inside one shard, which is the point of
owner-computes: the FOL rounds a shard runs over its sub-batch touch
only addresses it owns, so no two shards can conflict and the rounds
run concurrently.

Routing is spec-driven (:mod:`repro.engine`): each request kind's
:class:`~repro.engine.spec.WorkloadSpec` names its routing domain and
maps the request to the domain indices its unit process touches
(:meth:`~repro.engine.spec.WorkloadSpec.route_indices`).  A request
whose indices share one owner is shard-local; an arity-2 request whose
two indices have different owners becomes a :class:`CrossUnit`,
resolved by the coordinator's two-phase claim/commit (see
:meth:`Router.resolve_claims` and ``docs/sharding.md`` §3).

A spec may also *pin* a lane (:meth:`~repro.engine.spec.WorkloadSpec.
pin_shard`): a carried BST lane owns a pre-built node and a descent
slot in one shard's memory (``Request.home``), so it stays there even
if a migration has since re-routed its key residue.  Hash and list
carryovers hold no shard-resident state (their ``group`` is a layout
address, identical across the uniformly-built workers) and re-route
freely.

When a :class:`~repro.shard.migration.MigrationController` is attached
(:attr:`Router.controller`), a request routed to a bin that is
mid-handoff is **parked**: returned in the split's third list instead
of any shard's sub-batch.  Parked lanes ride the carryover path and
re-enter the next micro-batch, replaying on the new owner once the bin
flips.  Parking happens *before* the claim phase ever sees the
request, so an in-flight bin can never acquire — or lose — a
cross-shard claim mid-transfer.  Pinned lanes bypass parking: their
state lives on the pinned shard regardless of the routing map.

The claim phase is first-come over this batch's cross-unit cell set:
of the cross units competing for a cell, the earliest in batch order
wins both of its claims or is carried to the next micro-batch — the
same one-winner-per-address-per-round discipline FOL's filtering gives
shard-local lanes (losers recirculate through the carryover buffer and
retry against fresh arrivals).  Claim/commit cycles are charged from
the :class:`~repro.machine.cost_model.CostModel`'s ``shard_claim_rtt``
/ ``shard_transfer_per_word`` fields by the coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..engine.spec import get_spec
from ..errors import ReproError
from ..runtime.queue import Request
from .partition import PartitionMap


@dataclass
class CrossUnit:
    """An arity-2 tuple whose two indices have different owners."""

    request: Request
    src_index: int  # domain index of ``key``
    dst_index: int  # domain index of ``key2``
    src_shard: int
    dst_shard: int


class Router:
    """Splits micro-batches by owner and resolves cross-shard claims."""

    def __init__(self, partition: PartitionMap) -> None:
        self.partition = partition
        self.shards = partition.shards
        self.controller = None  # optional MigrationController (parking)
        self.cross_routed = 0
        self.cross_won = 0
        self.cross_carried = 0
        self.parked_total = 0

    # ------------------------------------------------------------------
    def split(
        self, batch: Sequence[Request]
    ) -> Tuple[List[List[Request]], List[CrossUnit], List[Request]]:
        """Partition ``batch`` into per-shard sub-batches (batch order
        preserved within each shard), the cross-shard units, and the
        requests parked because their bin is mid-handoff."""
        per_shard: List[List[Request]] = [[] for _ in range(self.shards)]
        cross: List[CrossUnit] = []
        parked: List[Request] = []
        ctl = self.controller
        for req in batch:
            spec = get_spec(req.kind)
            table = self.partition.domain(spec.domain)
            indices = spec.route_indices(req, table.fold)
            for idx in indices:  # traffic counts feed the rebalancer
                table.record(idx, tenant=req.tenant or None)
            pinned = spec.pin_shard(req)
            if pinned >= 0:
                per_shard[pinned].append(req)
                continue
            if ctl is not None and ctl.pending and any(
                ctl.in_flight(spec.domain, idx) for idx in indices
            ):
                if req.group < 0:
                    # A unique group keeps parked lanes from serialising
                    # through the carryover buffer's one-per-group gate.
                    req.group = -(2 + req.rid)
                parked.append(req)
                self.parked_total += 1
                ctl.note_parked()
                continue
            owners = [table.owner_of(idx) for idx in indices]
            if len(set(owners)) == 1:
                per_shard[owners[0]].append(req)
            elif len(indices) == 2:
                self.cross_routed += 1
                cross.append(
                    CrossUnit(req, indices[0], indices[1], owners[0], owners[1])
                )
            else:  # pragma: no cover - no arity > 2 kinds registered
                raise ReproError(
                    f"router cannot place arity-{len(indices)} request "
                    f"kind {req.kind!r} spanning shards {sorted(set(owners))}"
                )
        return per_shard, cross, parked

    # ------------------------------------------------------------------
    def resolve_claims(
        self, cross: Sequence[CrossUnit]
    ) -> Tuple[List[CrossUnit], List[CrossUnit]]:
        """Phase one of the cross-shard exchange: first-come claims over
        the batch's cross-unit cells.  Returns ``(winners, losers)``;
        winners hold both cells and may commit, losers are carried."""
        taken: set = set()
        winners: List[CrossUnit] = []
        losers: List[CrossUnit] = []
        for unit in cross:
            if unit.src_index in taken or unit.dst_index in taken:
                losers.append(unit)
            else:
                taken.add(unit.src_index)
                taken.add(unit.dst_index)
                winners.append(unit)
        self.cross_won += len(winners)
        self.cross_carried += len(losers)
        return winners, losers
