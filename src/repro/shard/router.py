"""Batch routing: split each micro-batch by owning shard.

The router turns one micro-batch into K shard-local sub-batches plus a
(usually short) list of **cross-shard units** — ``"xfer"`` tuples whose
two cells live on different owners.  Everything else is single-address
and lands wholly inside one shard, which is the point of
owner-computes: the FOL rounds a shard runs over its sub-batch touch
only addresses it owns, so no two shards can conflict and the rounds
run concurrently.

Routing rules per request kind:

* ``"hash"`` — domain ``"hash"``, index ``key % table_size`` (the chain
  head is the conflict address, so ownership follows slots, not keys);
* ``"list"`` — domain ``"list"``, index ``key`` (cell number);
* ``"bst"`` — domain ``"bst"``, index ``key % key_space`` **unless**
  the lane was carried by a shard in a previous batch: a carried BST
  lane owns a pre-built node and a descent slot in that shard's memory
  (``Request.home``), so it stays pinned there even if a migration has
  since re-routed its key residue.  Hash and list carryovers hold no
  shard-resident state (their ``group`` is a layout address, identical
  across the uniformly-built workers) and re-route freely.
* ``"xfer"`` — domain ``"list"`` twice (``key`` and ``key2``).  Same
  owner: a shard-local L = 2 tuple, executed by the worker's FOL*
  round.  Different owners: a :class:`CrossUnit`, resolved by the
  coordinator's two-phase claim/commit (see
  :meth:`Router.resolve_claims` and ``docs/sharding.md`` §3).

The claim phase is first-come over this batch's cross-unit cell set:
of the cross units competing for a cell, the earliest in batch order
wins both of its claims or is carried to the next micro-batch — the
same one-winner-per-address-per-round discipline FOL's filtering gives
shard-local lanes (losers recirculate through the carryover buffer and
retry against fresh arrivals).  Claim/commit cycles are charged from
the :class:`~repro.machine.cost_model.CostModel`'s ``shard_claim_rtt``
/ ``shard_transfer_per_word`` fields by the coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import ReproError
from ..mem.arena import NIL
from ..runtime.queue import Request
from .partition import PartitionMap


@dataclass
class CrossUnit:
    """An ``"xfer"`` tuple whose two cells have different owners."""

    request: Request
    src_index: int  # list-domain index of ``key``
    dst_index: int  # list-domain index of ``key2``
    src_shard: int
    dst_shard: int


class Router:
    """Splits micro-batches by owner and resolves cross-shard claims."""

    def __init__(self, partition: PartitionMap) -> None:
        self.partition = partition
        self.shards = partition.shards
        self.cross_routed = 0
        self.cross_won = 0
        self.cross_carried = 0

    # ------------------------------------------------------------------
    def split(
        self, batch: Sequence[Request]
    ) -> Tuple[List[List[Request]], List[CrossUnit]]:
        """Partition ``batch`` into per-shard sub-batches (batch order
        preserved within each shard) plus the cross-shard units."""
        per_shard: List[List[Request]] = [[] for _ in range(self.shards)]
        cross: List[CrossUnit] = []
        for req in batch:
            if req.kind == "hash":
                table = self.partition.hash
                idx = table.fold(req.key)
                table.record(idx)
                per_shard[table.owner_of(idx)].append(req)
            elif req.kind == "bst":
                table = self.partition.bst
                idx = table.fold(req.key)
                table.record(idx)
                if req.node != NIL and req.home >= 0:
                    per_shard[req.home].append(req)  # pinned carryover
                else:
                    per_shard[table.owner_of(idx)].append(req)
            elif req.kind == "list":
                table = self.partition.list
                idx = table.fold(req.key)
                table.record(idx)
                per_shard[table.owner_of(idx)].append(req)
            elif req.kind == "xfer":
                table = self.partition.list
                si, di = table.fold(req.key), table.fold(req.key2)
                table.record(si)
                table.record(di)
                so, do = table.owner_of(si), table.owner_of(di)
                if so == do:
                    per_shard[so].append(req)
                else:
                    self.cross_routed += 1
                    cross.append(CrossUnit(req, si, di, so, do))
            else:  # pragma: no cover - Request.__post_init__ rejects these
                raise ReproError(f"router cannot place request kind {req.kind!r}")
        return per_shard, cross

    # ------------------------------------------------------------------
    def resolve_claims(
        self, cross: Sequence[CrossUnit]
    ) -> Tuple[List[CrossUnit], List[CrossUnit]]:
        """Phase one of the cross-shard exchange: first-come claims over
        the batch's cross-unit cells.  Returns ``(winners, losers)``;
        winners hold both cells and may commit, losers are carried."""
        taken: set = set()
        winners: List[CrossUnit] = []
        losers: List[CrossUnit] = []
        for unit in cross:
            if unit.src_index in taken or unit.dst_index in taken:
                losers.append(unit)
            else:
                taken.add(unit.src_index)
                taken.add(unit.dst_index)
                winners.append(unit)
        self.cross_won += len(winners)
        self.cross_carried += len(losers)
        return winners, losers
