"""repro — a reproduction of Kanada's *Filtering-Overwritten-Label*
method for vector processing of shared symbolic data (Supercomputing
'91 / Parallel Computing 1993).

Layers
------
* :mod:`repro.machine` — simulated pipelined vector processor (the
  S-810 stand-in): memory with list-vector gather/scatter under the ELS
  condition, data-parallel primitives, and a cycle cost model.
* :mod:`repro.mem` — region allocator and typed record arenas (the
  pointer-linked heap symbolic structures live in).
* :mod:`repro.core` — the paper's contribution: FOL1 and FOL*, label
  strategies, validated decompositions, executable theorems.
* :mod:`repro.hashing`, :mod:`repro.sorting`, :mod:`repro.trees`,
  :mod:`repro.lists` — the paper's §4 applications with scalar baselines.
* :mod:`repro.apps` — §5 related-work reproductions (vectorized GC,
  maze routing).
* :mod:`repro.bench` — paired runners + regeneration of every figure.
* :mod:`repro.runtime` — streaming micro-batch service: bounded
  admission queue, pluggable batch sizing, cross-batch carryover of
  filtered lanes, per-batch metrics.

Quickstart
----------
>>> import numpy as np
>>> from repro import make_machine, fol1
>>> vm = make_machine(1024)
>>> dec = fol1(vm, np.array([5, 9, 5, 7, 5]))   # address 5 shared 3x
>>> dec.m                                        # minimal decomposition
3
"""

from .core import (
    Decomposition,
    TupleDecomposition,
    fol1,
    fol_star,
    max_multiplicity,
    reference_decomposition,
)
from .errors import (
    AuditError,
    DeadlockError,
    DecompositionError,
    LabelError,
    MachineError,
    MemoryFault,
    PhantomNodeError,
    ReproError,
    RewriteError,
    TableFullError,
)
from .machine import (
    CostModel,
    CycleCounter,
    Memory,
    ScalarProcessor,
    TraceEvent,
    Tracer,
    VectorMachine,
    make_machine,
)
from .mem import NIL, BumpAllocator, RecordArena

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # machine
    "CostModel",
    "CycleCounter",
    "Memory",
    "ScalarProcessor",
    "Tracer",
    "TraceEvent",
    "VectorMachine",
    "make_machine",
    # heap
    "NIL",
    "BumpAllocator",
    "RecordArena",
    # core
    "fol1",
    "fol_star",
    "Decomposition",
    "TupleDecomposition",
    "max_multiplicity",
    "reference_decomposition",
    # errors
    "AuditError",
    "ReproError",
    "MachineError",
    "MemoryFault",
    "LabelError",
    "DecompositionError",
    "DeadlockError",
    "TableFullError",
    "RewriteError",
    "PhantomNodeError",
]
