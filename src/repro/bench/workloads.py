"""Seeded workload generators for every experiment.

The paper's workloads are uniformly random keys (hashing, sorting, BST)
plus synthetic structures (right-comb operation trees, mazes).  All
generators take an explicit :class:`numpy.random.Generator` so every
figure is reproducible bit-for-bit from its seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def unique_keys(rng: np.random.Generator, n: int, key_max: int = 2**31) -> np.ndarray:
    """``n`` distinct non-negative keys below ``key_max``."""
    if n > key_max:
        raise ValueError(f"cannot draw {n} distinct keys below {key_max}")
    return rng.choice(key_max, size=n, replace=False).astype(np.int64)


def keys_for_load_factor(
    rng: np.random.Generator, table_size: int, load_factor: float
) -> np.ndarray:
    """Distinct keys sized so entering them fills ``table_size`` entries
    to ``load_factor`` (Figure 9/10's x-axis)."""
    if not 0.0 <= load_factor <= 1.0:
        raise ValueError(f"load factor must be in [0, 1], got {load_factor}")
    n = int(round(table_size * load_factor))
    return unique_keys(rng, n)


def duplicated_addresses(
    rng: np.random.Generator,
    n: int,
    n_distinct: int,
    addr_base: int = 1,
) -> np.ndarray:
    """Index vector of ``n`` addresses drawn from ``n_distinct`` distinct
    values — the knob for FOL's sharing rate (Theorems 4 vs 6: pass
    ``n_distinct=n`` for no sharing, ``n_distinct=1`` for worst case)."""
    if n_distinct <= 0 or n_distinct > n:
        raise ValueError(f"n_distinct must be in [1, {n}], got {n_distinct}")
    pool = addr_base + rng.choice(10 * n_distinct, size=n_distinct, replace=False)
    # guarantee every distinct address appears at least once
    v = np.concatenate([pool, rng.choice(pool, size=n - n_distinct, replace=True)])
    return rng.permutation(v).astype(np.int64)


def multiplicity_vector(
    rng: np.random.Generator, n_distinct: int, multiplicity: int, addr_base: int = 1
) -> np.ndarray:
    """Every distinct address repeated exactly ``multiplicity`` times —
    fixes FOL1's M exactly (Lemma 3)."""
    pool = addr_base + np.arange(n_distinct, dtype=np.int64)
    v = np.repeat(pool, multiplicity)
    return rng.permutation(v)


def sort_values(
    rng: np.random.Generator, n: int, vmax: int, duplicates: float = 0.0
) -> np.ndarray:
    """``n`` sortable values in [0, vmax); ``duplicates`` in [0, 1)
    shrinks the distinct-value pool to force collisions."""
    if duplicates:
        pool_size = max(1, int(n * (1.0 - duplicates)))
        pool = rng.integers(0, vmax, size=pool_size)
        return rng.choice(pool, size=n).astype(np.int64)
    return rng.integers(0, vmax, size=n).astype(np.int64)


def bst_keys(
    rng: np.random.Generator, n_initial: int, n_insert: int, key_max: int = 10**6
) -> tuple[np.ndarray, np.ndarray]:
    """Figure 14's workload: ``n_initial`` keys to pre-build the tree
    and ``n_insert`` uniformly random keys to enter."""
    initial = rng.integers(0, key_max, size=n_initial).astype(np.int64)
    inserts = rng.integers(0, key_max, size=n_insert).astype(np.int64)
    return initial, inserts


def random_maze(
    rng: np.random.Generator, height: int, width: int, wall_density: float = 0.25
) -> np.ndarray:
    """Random grid with open corners (source/target)."""
    grid = (rng.random((height, width)) < wall_density).astype(np.int64)
    grid[0, 0] = 0
    grid[height - 1, width - 1] = 0
    return grid


def shared_lists(
    arena,
    rng: np.random.Generator,
    n_lists: int,
    list_len: int,
    shared_len: int,
    value_max: int = 1000,
    uniform_lengths: bool = False,
) -> list[int]:
    """Build ``n_lists`` lists that all share one ``shared_len``-cell
    suffix (Figure 3a generalised).  Returns the head pointers.

    By default the private prefixes get *varied* lengths (between half
    and double ``list_len``), so lists reach the shared suffix on
    different lock-step waves — the realistic low-sharing regime FOL
    targets.  ``uniform_lengths=True`` makes every list arrive at the
    shared suffix on the same wave: maximum per-wave duplication, FOL's
    worst case (useful for the sequentiality ablation)."""
    shared = arena.from_values(rng.integers(0, value_max, size=shared_len).tolist())
    heads = []
    for _ in range(n_lists):
        if uniform_lengths:
            own_len = list_len
        else:
            own_len = int(rng.integers(max(1, list_len // 2), 2 * list_len + 1))
        own = rng.integers(0, value_max, size=own_len).tolist()
        heads.append(arena.from_values(own, tail=shared))
    return heads


def comb_values(n_leaves: int) -> Sequence[int]:
    """Leaf values 1..n for a right-comb operation tree."""
    return list(range(1, n_leaves + 1))
