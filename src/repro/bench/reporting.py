"""Plain-text tables and series for the regenerated figures, plus the
machine-readable bench-result writer (``BENCH_*.json`` at repo root)."""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Mapping, Sequence, Union

# The table renderer and its NaN-safe cell formatter live on the
# observability spine now; re-exported here because every bench and
# figure module (and years of call sites) import them from this module.
from ..obs.core import fmt_cell as _fmt  # noqa: F401
from ..obs.core import format_table  # noqa: F401


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Tiny ASCII plot of one series (for the load-factor curves)."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    cells = [blocks[min(int((v - lo) / span * (len(blocks) - 1)), len(blocks) - 1)]
             for v in values]
    return "".join(cells)


def _json_safe(value):
    """Replace NaN/Inf floats with None, recursively.

    ``json.dumps`` would happily emit bare ``NaN``/``Infinity`` tokens,
    which are not JSON and break strict parsers downstream; undefined
    metrics (e.g. latency percentiles of a run with no completions) must
    surface as ``null``.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, Mapping):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def write_json(path: Union[str, Path], payload: Mapping) -> Path:
    """Write one bench's results as deterministic, diff-friendly JSON.

    The perf trajectory of this repo accumulates in ``BENCH_*.json``
    files at the repo root (one per bench, overwritten per run, CI
    uploads them as artifacts), so keys are sorted and floats should be
    pre-rounded by the caller to keep diffs meaningful.  Non-finite
    floats are written as ``null`` (see :func:`_json_safe`).

    Every payload is stamped with a ``meta`` envelope (schema version +
    package version) unless the caller supplied its own; the common
    shape across benches is enforced by ``tools/check_bench_schema.py``.
    """
    from .. import __version__

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(payload)
    payload.setdefault("meta", {"schema": 1, "version": __version__})
    path.write_text(
        json.dumps(_json_safe(payload), indent=2, sort_keys=True) + "\n"
    )
    return path


def banner(title: str) -> str:
    """Section header used between regenerated figures."""
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


def print_section(title: str, body: str) -> None:
    """Print one experiment section."""
    print(banner(title))
    print(body)
