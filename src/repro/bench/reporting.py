"""Plain-text tables and series for the regenerated figures, plus the
machine-readable bench-result writer (``BENCH_*.json`` at repo root)."""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, List, Mapping, Sequence, Union


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Right-aligned ASCII table."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if math.isnan(cell):
            return "—"  # undefined metric (e.g. no completions)
        if cell >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.2f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Tiny ASCII plot of one series (for the load-factor curves)."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    cells = [blocks[min(int((v - lo) / span * (len(blocks) - 1)), len(blocks) - 1)]
             for v in values]
    return "".join(cells)


def _json_safe(value):
    """Replace NaN/Inf floats with None, recursively.

    ``json.dumps`` would happily emit bare ``NaN``/``Infinity`` tokens,
    which are not JSON and break strict parsers downstream; undefined
    metrics (e.g. latency percentiles of a run with no completions) must
    surface as ``null``.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, Mapping):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def write_json(path: Union[str, Path], payload: Mapping) -> Path:
    """Write one bench's results as deterministic, diff-friendly JSON.

    The perf trajectory of this repo accumulates in ``BENCH_*.json``
    files at the repo root (one per bench, overwritten per run, CI
    uploads them as artifacts), so keys are sorted and floats should be
    pre-rounded by the caller to keep diffs meaningful.  Non-finite
    floats are written as ``null`` (see :func:`_json_safe`).

    Every payload is stamped with a ``meta`` envelope (schema version +
    package version) unless the caller supplied its own; the common
    shape across benches is enforced by ``tools/check_bench_schema.py``.
    """
    from .. import __version__

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(payload)
    payload.setdefault("meta", {"schema": 1, "version": __version__})
    path.write_text(
        json.dumps(_json_safe(payload), indent=2, sort_keys=True) + "\n"
    )
    return path


def banner(title: str) -> str:
    """Section header used between regenerated figures."""
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


def print_section(title: str, body: str) -> None:
    """Print one experiment section."""
    print(banner(title))
    print(body)
