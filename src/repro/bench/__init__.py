"""Benchmark harness: workload generators, paired scalar/vector runners,
and regeneration of every table/figure in the paper's evaluation."""

from .runner import (
    PairResult,
    run_address_calc_pair,
    run_bst_pair,
    run_chained_hashing_pair,
    run_distribution_pair,
    run_gc_pair,
    run_lists_pair,
    run_maze_pair,
    run_open_hashing_pair,
    run_rewrite_pair,
)

__all__ = [
    "PairResult",
    "run_open_hashing_pair",
    "run_chained_hashing_pair",
    "run_address_calc_pair",
    "run_distribution_pair",
    "run_bst_pair",
    "run_rewrite_pair",
    "run_gc_pair",
    "run_maze_pair",
    "run_lists_pair",
]
