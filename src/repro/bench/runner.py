"""Paired scalar/vector experiment runners.

Each ``run_*_pair`` function builds two *independent* simulated machines
with the same cost model and workload seed, runs the sequential baseline
on one and the vectorized algorithm on the other, verifies both produce
equivalent results, and returns a :class:`PairResult` holding the two
cycle counts — the quantity behind every figure in the paper
("acceleration ratio means the ratio of the vectorized total execution
time and the original sequential execution time", footnote 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..apps.gc import CopyingHeap, scalar_collect, vector_collect
from ..apps.maze import MazeGrid, check_path, scalar_route, vector_route
from ..errors import ReproError
from ..hashing.open_addressing import vector_multiple_hashing_open
from ..hashing.probes import get_probe
from ..hashing.scalar import scalar_multiple_hashing_open
from ..hashing.table import ChainedHashTable, OpenHashTable
from ..hashing.chained import vector_multiple_hashing_chained
from ..hashing.scalar import scalar_chained_insert
from ..lists.cells import ConsArena, encode_atom
from ..lists.rewrite import (
    scalar_map_add_per_reference,
    vector_map_add_per_reference,
)
from ..machine.cost_model import CostModel
from ..machine.memory import Memory
from ..machine.scalar import ScalarProcessor
from ..machine.vm import VectorMachine
from ..mem.arena import NIL, BumpAllocator
from ..sorting.address_calc import (
    AddressCalcWorkspace,
    scalar_address_calc_sort,
    vector_address_calc_sort,
)
from ..sorting.distribution import (
    DistributionWorkspace,
    scalar_distribution_sort,
    vector_distribution_sort,
)
from ..graphs.components import ParentForest, scalar_components, vector_components
from ..trees.bst import BinarySearchTree, scalar_bst_insert, vector_bst_insert
from ..trees.rebalance import (
    RebalanceWorkspace,
    scalar_rebalance,
    vector_rebalance,
)
from ..trees.rewrite import OpTreeArena, fol_star_rewrite_all, sequential_rewrite_all
from . import workloads


@dataclass
class PairResult:
    """Cycle counts of one scalar/vector pair plus run metadata."""

    name: str
    scalar_cycles: float
    vector_cycles: float
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def acceleration(self) -> float:
        """Scalar/vector cycle ratio (the paper's acceleration ratio)."""
        if self.vector_cycles == 0:
            return float("inf")
        return self.scalar_cycles / self.vector_cycles

    def __str__(self) -> str:
        ps = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return (
            f"{self.name}({ps}): scalar={self.scalar_cycles:,.0f} "
            f"vector={self.vector_cycles:,.0f} accel={self.acceleration:.2f}"
        )


def _machines(mem_words: int, cost: Optional[CostModel], seed: int):
    """A (vector, scalar) pair of fresh machines with shared settings."""
    cost = cost or CostModel.s810()
    vm = VectorMachine(Memory(mem_words, cost_model=cost, seed=seed))
    sp_mem = Memory(mem_words, cost_model=cost, seed=seed)
    sp = ScalarProcessor(sp_mem)
    return vm, sp


# ----------------------------------------------------------------------
# Figures 9 / 10: multiple hashing, open addressing
# ----------------------------------------------------------------------
def run_open_hashing_pair(
    table_size: int,
    load_factor: float,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    probe: str = "optimized",
    policy: str = "arbitrary",
) -> PairResult:
    """One point of Figures 9/10: enter keys into an empty table."""
    rng = np.random.default_rng(seed)
    keys = workloads.keys_for_load_factor(rng, table_size, load_factor)
    scalar_probe, vector_probe = get_probe(probe)
    mem_words = table_size + 64
    vm, sp = _machines(mem_words, cost, seed)

    # The paper benchmarks entering keys into an *empty* table; at load
    # factor -> 0 its measured time also -> 0, so the table
    # initialisation is setup, not measured work (charge_init=False).
    vt = OpenHashTable(BumpAllocator(vm.mem), table_size)
    vector_multiple_hashing_open(
        vm, vt, keys, probe=vector_probe, policy=policy, charge_init=False
    )

    st = OpenHashTable(BumpAllocator(sp.mem), table_size)
    scalar_multiple_hashing_open(sp, st, keys, probe=scalar_probe, charge_init=False)

    if not np.array_equal(np.sort(vt.stored_keys()), np.sort(st.stored_keys())):
        raise ReproError("scalar and vector hashing stored different key sets")

    return PairResult(
        "open_hashing",
        sp.counter.total,
        vm.counter.total,
        {"table_size": table_size, "load_factor": load_factor, "probe": probe,
         "n_keys": keys.size},
    )


def run_chained_hashing_pair(
    table_size: int,
    n_keys: int,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    key_max: Optional[int] = None,
    policy: str = "arbitrary",
) -> PairResult:
    """Chained multiple hashing (Figure 7) pair; duplicates allowed."""
    rng = np.random.default_rng(seed)
    key_max = key_max or 8 * n_keys
    keys = rng.integers(0, key_max, size=n_keys).astype(np.int64)
    mem_words = 2 * table_size + 2 * n_keys + 64
    vm, sp = _machines(mem_words, cost, seed)

    vt = ChainedHashTable(BumpAllocator(vm.mem), table_size, capacity=n_keys)
    vector_multiple_hashing_chained(vm, vt, keys, policy=policy)

    st = ChainedHashTable(BumpAllocator(sp.mem), table_size, capacity=n_keys)
    st.reset_scalar(sp)
    scalar_chained_insert(sp, st, keys)

    if not np.array_equal(np.sort(vt.stored_keys()), np.sort(st.stored_keys())):
        raise ReproError("scalar and vector chained hashing differ")

    return PairResult(
        "chained_hashing",
        sp.counter.total,
        vm.counter.total,
        {"table_size": table_size, "n_keys": n_keys},
    )


# ----------------------------------------------------------------------
# Table 1: O(N) sorting algorithms
# ----------------------------------------------------------------------
def run_address_calc_pair(
    n: int,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    vmax: int = 2**30,
    duplicates: float = 0.0,
    policy: str = "arbitrary",
) -> PairResult:
    """One Table 1 row for address-calculation sorting."""
    rng = np.random.default_rng(seed)
    a = workloads.sort_values(rng, n, vmax, duplicates)
    mem_words = 3 * n + 64
    vm, sp = _machines(mem_words, cost, seed)

    vws = AddressCalcWorkspace(BumpAllocator(vm.mem), n)
    out_v = vector_address_calc_sort(vm, vws, a, vmax=vmax, policy=policy)

    sws = AddressCalcWorkspace(BumpAllocator(sp.mem), n)
    out_s = scalar_address_calc_sort(sp, sws, a, vmax=vmax)

    expected = np.sort(a)
    if not (np.array_equal(out_v, expected) and np.array_equal(out_s, expected)):
        raise ReproError("address-calculation sort produced wrong output")

    return PairResult(
        "address_calc_sort",
        sp.counter.total,
        vm.counter.total,
        {"n": n, "duplicates": duplicates},
    )


def run_distribution_pair(
    n: int,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    key_range: int = 2**16,
    policy: str = "arbitrary",
) -> PairResult:
    """One Table 1 row for distribution counting sort."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, key_range, size=n).astype(np.int64)
    mem_words = 2 * key_range + n + 64
    vm, sp = _machines(mem_words, cost, seed)

    vws = DistributionWorkspace(BumpAllocator(vm.mem), key_range, n_max=max(n, 1))
    out_v = vector_distribution_sort(vm, vws, a, policy=policy)

    sws = DistributionWorkspace(BumpAllocator(sp.mem), key_range, n_max=max(n, 1))
    out_s = scalar_distribution_sort(sp, sws, a)

    expected = np.sort(a)
    if not (np.array_equal(out_v, expected) and np.array_equal(out_s, expected)):
        raise ReproError("distribution counting sort produced wrong output")

    return PairResult(
        "distribution_sort",
        sp.counter.total,
        vm.counter.total,
        {"n": n, "key_range": key_range},
    )


# ----------------------------------------------------------------------
# Figure 14: BST multi-insertion
# ----------------------------------------------------------------------
def run_bst_pair(
    n_initial: int,
    n_insert: int,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    policy: str = "arbitrary",
) -> PairResult:
    """One Figure 14 point: insert ``n_insert`` random keys into a
    pre-built tree of ``n_initial`` random keys (tree building is
    uncharged setup, as in the paper's benchmark)."""
    rng = np.random.default_rng(seed)
    initial, inserts = workloads.bst_keys(rng, n_initial, n_insert)
    capacity = n_initial + n_insert + 4
    mem_words = 3 * capacity + 64
    vm, sp = _machines(mem_words, cost, seed)

    vtree = BinarySearchTree(BumpAllocator(vm.mem), capacity)
    vtree.build(initial)
    vm.counter.reset()
    vector_bst_insert(vm, vtree, inserts, policy=policy)
    vtree.check_bst_invariant()

    stree = BinarySearchTree(BumpAllocator(sp.mem), capacity)
    stree.build(initial)
    sp.counter.reset()
    scalar_bst_insert(sp, stree, inserts)
    stree.check_bst_invariant()

    if sorted(vtree.inorder()) != sorted(stree.inorder()):
        raise ReproError("scalar and vector BSTs hold different key sets")

    return PairResult(
        "bst_insert",
        sp.counter.total,
        vm.counter.total,
        {"n_initial": n_initial, "n_insert": n_insert},
    )


# ----------------------------------------------------------------------
# §2 / §3.3: operation-tree rewriting
# ----------------------------------------------------------------------
def run_rewrite_pair(
    n_leaves: int,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    shape: str = "comb",
    policy: str = "arbitrary",
) -> PairResult:
    """Left-linearise an operation tree: FOL* waves vs sequential."""
    rng = np.random.default_rng(seed)
    values = workloads.comb_values(n_leaves)
    capacity = 2 * n_leaves + 4
    mem_words = 8 * capacity + 64
    vm, sp = _machines(mem_words, cost, seed)

    va = OpTreeArena(BumpAllocator(vm.mem), capacity)
    vroot = va.right_comb(values) if shape == "comb" else va.random_tree(values, rng)
    before = va.leaves_inorder(vroot)
    fol_star_rewrite_all(vm, va, vroot, policy=policy)
    if va.leaves_inorder(vroot) != before or not va.is_left_linear(vroot):
        raise ReproError("FOL* rewriting corrupted the tree")

    rng2 = np.random.default_rng(seed)
    sa = OpTreeArena(BumpAllocator(sp.mem), capacity)
    sroot = sa.right_comb(values) if shape == "comb" else sa.random_tree(values, rng2)
    sequential_rewrite_all(sp, sa, sroot)
    if sa.leaves_inorder(sroot) != before or not sa.is_left_linear(sroot):
        raise ReproError("sequential rewriting corrupted the tree")

    return PairResult(
        "tree_rewrite",
        sp.counter.total,
        vm.counter.total,
        {"n_leaves": n_leaves, "shape": shape},
    )


# ----------------------------------------------------------------------
# §5 extensions
# ----------------------------------------------------------------------
def run_gc_pair(
    n_cells: int,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    live_fraction: float = 0.6,
    policy: str = "arbitrary",
) -> PairResult:
    """Copy a random cons heap: vectorized vs Cheney-scan baseline."""
    def build(heap: CopyingHeap, rng: np.random.Generator) -> None:
        ptrs = []
        for i in range(n_cells):
            if ptrs and rng.random() < 0.5:
                car = int(rng.choice(ptrs))
            else:
                car = encode_atom(int(rng.integers(0, 1000)))
            cdr = int(rng.choice(ptrs)) if ptrs and rng.random() < 0.7 else NIL
            ptrs.append(heap.cons(car, cdr))
        n_roots = max(1, int(n_cells * live_fraction * 0.1))
        for p in rng.choice(ptrs, size=n_roots, replace=False):
            heap.add_root(int(p))

    mem_words = 8 * n_cells + 64
    vm, sp = _machines(mem_words, cost, seed)

    vheap = CopyingHeap(BumpAllocator(vm.mem), capacity=n_cells + 4)
    build(vheap, np.random.default_rng(seed))
    sig_before = vheap.structure_signature(vheap.roots(), vheap.from_cells)
    copied_v, _ = vector_collect(vm, vheap, policy=policy)
    if vheap.structure_signature(vheap.roots(), vheap.to_cells) != sig_before:
        raise ReproError("vector GC changed the reachable structure")

    sheap = CopyingHeap(BumpAllocator(sp.mem), capacity=n_cells + 4)
    build(sheap, np.random.default_rng(seed))
    copied_s = scalar_collect(sp, sheap)
    if copied_v != copied_s:
        raise ReproError(f"GC copied {copied_v} vs {copied_s} cells")

    return PairResult(
        "gc_copy",
        sp.counter.total,
        vm.counter.total,
        {"n_cells": n_cells, "copied": copied_v},
    )


def run_maze_pair(
    height: int,
    width: int,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    wall_density: float = 0.25,
    policy: str = "arbitrary",
) -> PairResult:
    """Route corner-to-corner: vector wavefront vs sequential BFS."""
    rng = np.random.default_rng(seed)
    grid = workloads.random_maze(rng, height, width, wall_density)
    src, dst = (0, 0), (height - 1, width - 1)
    mem_words = 4 * height * width + 64
    vm, sp = _machines(mem_words, cost, seed)

    vmz = MazeGrid(BumpAllocator(vm.mem), grid)
    pv = vector_route(vm, vmz, src, dst, policy=policy)

    smz = MazeGrid(BumpAllocator(sp.mem), grid)
    ps = scalar_route(sp, smz, src, dst)

    if (pv is None) != (ps is None):
        raise ReproError("vector and scalar routing disagree on reachability")
    if pv is not None:
        check_path(vmz, pv, src, dst)
        check_path(smz, ps, src, dst)
        if len(pv) != len(ps):
            raise ReproError(f"path lengths differ: {len(pv)} vs {len(ps)}")

    return PairResult(
        "maze_route",
        sp.counter.total,
        vm.counter.total,
        {"height": height, "width": width,
         "path_len": len(pv) if pv is not None else -1},
    )


def run_lists_pair(
    n_lists: int,
    list_len: int,
    shared_len: int,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    policy: str = "arbitrary",
    uniform_lengths: bool = False,
) -> PairResult:
    """Per-reference parallel list rewriting over shared suffixes.
    ``uniform_lengths=True`` forces every list to reach the shared
    suffix on the same wave — FOL's maximal-sharing worst case."""
    capacity = n_lists * (2 * list_len + 1) + shared_len + 8
    mem_words = 8 * capacity + 64
    vm, sp = _machines(mem_words, cost, seed)

    va = ConsArena(BumpAllocator(vm.mem), capacity)
    vheads = workloads.shared_lists(
        va, np.random.default_rng(seed), n_lists, list_len, shared_len,
        uniform_lengths=uniform_lengths,
    )
    vector_map_add_per_reference(vm, va, vheads, delta=7, policy=policy)

    sa = ConsArena(BumpAllocator(sp.mem), capacity)
    sheads = workloads.shared_lists(
        sa, np.random.default_rng(seed), n_lists, list_len, shared_len,
        uniform_lengths=uniform_lengths,
    )
    scalar_map_add_per_reference(sp, sa, sheads, delta=7)

    for hv, hs in zip(vheads, sheads):
        if va.to_values(hv) != sa.to_values(hs):
            raise ReproError("list rewriting results differ")

    return PairResult(
        "list_rewrite",
        sp.counter.total,
        vm.counter.total,
        {"n_lists": n_lists, "list_len": list_len, "shared_len": shared_len},
    )


def run_components_pair(
    n_nodes: int,
    n_edges: int,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    policy: str = "arbitrary",
) -> PairResult:
    """Connected components (§6 future work): FOL-elected parallel
    union vs sequential union-find."""
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n_nodes, size=n_edges)
    v = rng.integers(0, n_nodes, size=n_edges)
    mem_words = 2 * n_nodes + 64
    vm, sp = _machines(mem_words, cost, seed)

    vf = ParentForest(BumpAllocator(vm.mem), n_nodes)
    vector_components(vm, vf, u, v, policy=policy)

    sf = ParentForest(BumpAllocator(sp.mem), n_nodes)
    scalar_components(sp, sf, u, v)

    if vf.component_count() != sf.component_count():
        raise ReproError("component counts differ between implementations")

    return PairResult(
        "graph_components",
        sp.counter.total,
        vm.counter.total,
        {"n_nodes": n_nodes, "n_edges": n_edges,
         "components": vf.component_count()},
    )


def run_rebalance_pair(
    n_keys: int,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    shape: str = "random",
    policy: str = "arbitrary",
) -> PairResult:
    """BST rebalancing (§6 future work): the three-phase vector
    rebalance vs a sequential in-order rebuild."""
    rng = np.random.default_rng(seed)
    if shape == "descending":
        keys = np.arange(n_keys, 0, -1, dtype=np.int64)
    else:
        keys = rng.integers(0, 10**6, size=n_keys).astype(np.int64)
    capacity = n_keys + 2
    mem_words = 16 * capacity + 64
    vm, sp = _machines(mem_words, cost, seed)

    valloc = BumpAllocator(vm.mem)
    vtree = BinarySearchTree(valloc, capacity)
    vtree.build(keys)
    ws = RebalanceWorkspace(valloc, vtree)
    vm.counter.reset()
    vector_rebalance(vm, ws, policy=policy)
    vtree.check_bst_invariant()

    stree = BinarySearchTree(BumpAllocator(sp.mem), capacity)
    stree.build(keys)
    sp.counter.reset()
    scalar_rebalance(sp, stree)
    stree.check_bst_invariant()

    if vtree.depth() != stree.depth():
        raise ReproError("rebalanced depths differ between implementations")

    return PairResult(
        "bst_rebalance",
        sp.counter.total,
        vm.counter.total,
        {"n_keys": n_keys, "shape": shape, "depth": vtree.depth()},
    )


def run_join_pair(
    n_build: int,
    n_probe: int,
    key_range: int,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    table_size: int = 127,
    policy: str = "arbitrary",
) -> PairResult:
    """Vectorized hash join (the §1 database motivation) vs a
    sequential build-and-probe join."""
    from ..apps.join import JoinWorkspace, join_multiset, scalar_hash_join, vector_hash_join

    rng = np.random.default_rng(seed)
    bk = rng.integers(0, key_range, size=n_build).astype(np.int64)
    pk = rng.integers(0, key_range, size=n_probe).astype(np.int64)
    mem_words = 2 * table_size + 2 * n_build + 64
    vm, sp = _machines(mem_words, cost, seed)

    vws = JoinWorkspace(BumpAllocator(vm.mem), table_size, n_build)
    rv, sv = vector_hash_join(vm, vws, bk, pk, policy=policy)

    sws = JoinWorkspace(BumpAllocator(sp.mem), table_size, n_build)
    rs, ss = scalar_hash_join(sp, sws, bk, pk)

    if join_multiset(rv, sv) != join_multiset(rs, ss):
        raise ReproError("join results differ between implementations")

    return PairResult(
        "hash_join",
        sp.counter.total,
        vm.counter.total,
        {"n_build": n_build, "n_probe": n_probe, "matches": rv.size},
    )
