"""Regeneration of every table and figure in the paper's evaluation.

Each ``fig*``/``table*`` function returns structured rows and can print
the same series the paper plots, annotated with the paper's reported
values where it states them.  Run everything with::

    python -m repro.bench.figures           # all experiments
    python -m repro.bench.figures fig10 table1

The primary metric is simulated S-810 cycles (see DESIGN.md §2); the
acceleration ratio is the paper's footnote-9 definition, scalar/vector.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..machine.cost_model import CostModel
from . import runner
from .reporting import format_table, print_section, sparkline

#: Load factors sampled for Figures 9 and 10.
LOAD_FACTORS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98)

#: Paper's peak acceleration claims for Figure 10 (at load factor 0.5).
PAPER_FIG10_PEAKS = {521: 5.2, 4099: 12.3}

#: Paper's Table 1 acceleration ratios.
PAPER_TABLE1 = {
    "address_calc": {2**6: 2.62, 2**10: 7.65, 2**14: 12.84},
    "distribution": {2**6: 8.02, 2**10: 7.52, 2**14: 5.31},
}

#: Figure 14's initial tree sizes and insertion-count sweep.
FIG14_NI = (8, 32, 128, 512, 2048)
FIG14_COUNTS = (25, 50, 100, 200, 300, 400, 500)


@dataclass
class Series:
    """One regenerated experiment: labelled rows + a headline check."""

    name: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        body = format_table(self.headers, self.rows)
        if self.notes:
            body += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return body


# ----------------------------------------------------------------------
# Figures 9 and 10: multiple hashing into an empty table
# ----------------------------------------------------------------------
def fig9_10(
    table_sizes: Sequence[int] = (521, 4099),
    load_factors: Sequence[float] = LOAD_FACTORS,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    probe: str = "optimized",
    n_seeds: int = 3,
) -> Series:
    """CPU time (Figure 9) and acceleration ratio (Figure 10) of open-
    addressing multiple hashing vs. load factor, averaged over
    ``n_seeds`` key sets (collision patterns vary a lot per seed; the
    paper plotted single runs and its Figure 14 caveat applies here too)."""
    s = Series(
        "fig9_10",
        ["table_size", "load_factor", "scalar_cycles", "vector_cycles", "accel"],
    )
    peaks: Dict[int, float] = {}
    for size in table_sizes:
        accels = []
        for lf in load_factors:
            rs = [
                runner.run_open_hashing_pair(
                    size, lf, seed=seed + k, cost=cost, probe=probe
                )
                for k in range(n_seeds)
            ]
            sc = sum(r.scalar_cycles for r in rs) / len(rs)
            vc = sum(r.vector_cycles for r in rs) / len(rs)
            s.rows.append([size, lf, sc, vc, sc / vc])
            accels.append(sc / vc)
        peaks[size] = max(accels)
        s.notes.append(f"N={size}: accel curve {sparkline(accels)} peak={max(accels):.1f}")
    for size, paper_peak in PAPER_FIG10_PEAKS.items():
        if size in peaks:
            s.notes.append(
                f"paper peak accel N={size}: {paper_peak} (at lf 0.5); "
                f"measured peak: {peaks[size]:.1f}"
            )
    return s


# ----------------------------------------------------------------------
# Table 1: O(N) sorting algorithms
# ----------------------------------------------------------------------
def table1(
    sizes: Sequence[int] = (2**6, 2**10, 2**14),
    seed: int = 0,
    cost: Optional[CostModel] = None,
) -> Series:
    """CPU time and acceleration of address-calculation sorting and
    distribution counting sort."""
    s = Series(
        "table1",
        ["algorithm", "N", "scalar_cycles", "vector_cycles", "accel", "paper_accel"],
    )
    for n in sizes:
        r = runner.run_address_calc_pair(n, seed=seed, cost=cost)
        s.rows.append(
            ["address_calc", n, r.scalar_cycles, r.vector_cycles, r.acceleration,
             PAPER_TABLE1["address_calc"].get(n, "-")]
        )
    for n in sizes:
        r = runner.run_distribution_pair(n, seed=seed, cost=cost)
        s.rows.append(
            ["distribution", n, r.scalar_cycles, r.vector_cycles, r.acceleration,
             PAPER_TABLE1["distribution"].get(n, "-")]
        )
    s.notes.append("paper: ACS accel grows with N (2.62 -> 12.84); DCS shrinks (8.02 -> 5.31)")
    return s


# ----------------------------------------------------------------------
# Figure 14: BST multi-insertion
# ----------------------------------------------------------------------
def fig14(
    ni_values: Sequence[int] = FIG14_NI,
    insert_counts: Sequence[int] = FIG14_COUNTS,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    n_seeds: int = 3,
) -> Series:
    """Acceleration ratio of entering keys into a pre-built random BST,
    by initial size Ni and number of inserted keys (seed-averaged; the
    paper used one trial per point and flags the noise)."""
    s = Series("fig14", ["Ni", "n_insert", "scalar_cycles", "vector_cycles", "accel"])
    for ni in ni_values:
        accels = []
        for cnt in insert_counts:
            rs = [
                runner.run_bst_pair(ni, cnt, seed=seed + k, cost=cost)
                for k in range(n_seeds)
            ]
            sc = sum(r.scalar_cycles for r in rs) / len(rs)
            vc = sum(r.vector_cycles for r in rs) / len(rs)
            s.rows.append([ni, cnt, sc, vc, sc / vc])
            accels.append(sc / vc)
        s.notes.append(f"Ni={ni}: accel over insert counts {sparkline(accels)} "
                       f"max={max(accels):.1f}")
    s.notes.append("paper: ratios ~1-5, growing with both Ni and the insert count")
    return s


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------
def ablation_probe(
    table_sizes: Sequence[int] = (521, 4099),
    load_factors: Sequence[float] = (0.5, 0.7, 0.9, 0.98),
    seed: int = 0,
    cost: Optional[CostModel] = None,
) -> Series:
    """§4.1 claim: the optimized (key-dependent) probe beats the
    original (+1) probe at load factors 0.5–0.98."""
    s = Series(
        "ablation_probe",
        ["table_size", "load_factor", "accel_original", "accel_optimized"],
    )
    wins = 0
    total = 0
    for size in table_sizes:
        for lf in load_factors:
            ro = runner.run_open_hashing_pair(size, lf, seed=seed, cost=cost, probe="original")
            rp = runner.run_open_hashing_pair(size, lf, seed=seed, cost=cost, probe="optimized")
            s.rows.append([size, lf, ro.acceleration, rp.acceleration])
            total += 1
            wins += rp.acceleration >= ro.acceleration
    s.notes.append(f"optimized probe wins {wins}/{total} configurations "
                   "(paper: better across 0.5-0.98)")
    return s


def ablation_fol_scaling(
    sizes: Sequence[int] = (64, 256, 1024, 4096),
    seed: int = 0,
    cost: Optional[CostModel] = None,
) -> Series:
    """Theorems 4 and 6: FOL1 cycles scale linearly without sharing and
    quadratically when every element aliases one address."""
    import numpy as np

    from ..core.fol1 import fol1
    from ..machine.memory import Memory
    from ..machine.vm import VectorMachine

    s = Series("ablation_fol_scaling", ["n", "regime", "cycles", "cycles_per_n"])
    cost = cost or CostModel.s810()
    for n in sizes:
        rng = np.random.default_rng(seed)
        for regime, v in (
            ("no_sharing", rng.permutation(n).astype(np.int64) + 1),
            ("all_shared", np.ones(n, dtype=np.int64)),
        ):
            vm = VectorMachine(Memory(n + 64, cost_model=cost, seed=seed))
            fol1(vm, v)
            s.rows.append([n, regime, vm.counter.total, vm.counter.total / n])
    s.notes.append("no_sharing: cycles/n flat (Theorem 4, O(N)); "
                   "all_shared: cycles/n grows ~linearly in n (Theorem 6, O(N^2))")
    return s


def ablation_fol_star_l(
    l_values: Sequence[int] = (1, 2, 3, 4, 5, 6, 8),
    n: int = 512,
    seed: int = 0,
    cost: Optional[CostModel] = None,
) -> Series:
    """§3.3 claim: FOL* overhead grows with L (practical for L ≲ 5)."""
    import numpy as np

    from ..core.fol_star import fol_star
    from ..machine.memory import Memory
    from ..machine.vm import VectorMachine

    s = Series("ablation_fol_star_L", ["L", "n", "cycles", "cycles_per_tuple", "M"])
    cost = cost or CostModel.s810()
    rng = np.random.default_rng(seed)
    for l in l_values:
        # disjoint address ranges per vector with ~10% sharing inside each
        vs = []
        for k in range(l):
            base = 1 + k * 2 * n
            vs.append(base + rng.integers(0, int(n * 0.9), size=n).astype(np.int64))
        vm = VectorMachine(Memory(1 + 2 * n * (l + 1) + 64, cost_model=cost, seed=seed))
        dec = fol_star(vm, vs)
        s.rows.append([l, n, vm.counter.total, vm.counter.total / n, dec.m])
    s.notes.append("cycles/tuple grows with L; the paper deems L <= ~5 practical")
    return s


def ablation_cost_model(seed: int = 0) -> Series:
    """Which conclusions survive a different machine?  Re-run headline
    points under the flat `uniform` cost model."""
    s = Series(
        "ablation_cost_model",
        ["experiment", "cost_model", "accel"],
    )
    for name, cm in (("s810", CostModel.s810()), ("uniform", CostModel.uniform())):
        r = runner.run_open_hashing_pair(4099, 0.5, seed=seed, cost=cm)
        s.rows.append(["open_hashing N=4099 lf=0.5", name, r.acceleration])
        r = runner.run_address_calc_pair(2**10, seed=seed, cost=cm)
        s.rows.append(["address_calc N=1024", name, r.acceleration])
        r = runner.run_bst_pair(512, 300, seed=seed, cost=cm)
        s.rows.append(["bst Ni=512 n=300", name, r.acceleration])
    s.notes.append("under the flat model (scalar ops as cheap as vector chimes) "
                   "vectorization no longer pays: the paper's factor-of-ten wins "
                   "require the weak-scalar/strong-vector ratios of 1980s "
                   "supercomputers — the shape is algorithmic, the sign of the "
                   "win is the machine's")
    return s


def ablation_conflict_policy(seed: int = 0) -> Series:
    """FOL results must be equivalent under every ELS conflict policy."""
    s = Series(
        "ablation_conflict_policy",
        ["experiment", "policy", "accel"],
    )
    for policy in ("arbitrary", "last", "first"):
        r = runner.run_open_hashing_pair(521, 0.5, seed=seed, policy=policy)
        s.rows.append(["open_hashing N=521 lf=0.5", policy, r.acceleration])
        r = runner.run_bst_pair(128, 200, seed=seed, policy=policy)
        s.rows.append(["bst Ni=128 n=200", policy, r.acceleration])
    s.notes.append("all policies verify correct; cycle differences are noise-level")
    return s


# ----------------------------------------------------------------------
# §5 extensions
# ----------------------------------------------------------------------
def extensions(seed: int = 0, cost: Optional[CostModel] = None) -> Series:
    """Related-work reproductions: vectorized GC and maze routing, and
    the list/tree rewriting drivers."""
    s = Series(
        "extensions",
        ["experiment", "scalar_cycles", "vector_cycles", "accel"],
    )
    r = runner.run_gc_pair(2000, seed=seed, cost=cost)
    s.rows.append(["gc_copy 2000 cells", r.scalar_cycles, r.vector_cycles, r.acceleration])
    r = runner.run_maze_pair(48, 64, seed=seed, cost=cost)
    s.rows.append(["maze 48x64", r.scalar_cycles, r.vector_cycles, r.acceleration])
    r = runner.run_lists_pair(64, 24, 16, seed=seed, cost=cost)
    s.rows.append(["lists staggered sharing", r.scalar_cycles, r.vector_cycles, r.acceleration])
    r = runner.run_lists_pair(64, 24, 16, seed=seed, cost=cost, uniform_lengths=True)
    s.rows.append(["lists worst-case sharing", r.scalar_cycles, r.vector_cycles, r.acceleration])
    r = runner.run_rewrite_pair(128, seed=seed, cost=cost, shape="random")
    s.rows.append(["tree_rewrite random 128", r.scalar_cycles, r.vector_cycles, r.acceleration])
    r = runner.run_rewrite_pair(128, seed=seed, cost=cost, shape="comb")
    s.rows.append(["tree_rewrite comb 128", r.scalar_cycles, r.vector_cycles, r.acceleration])
    r = runner.run_chained_hashing_pair(521, 1024, seed=seed, cost=cost)
    s.rows.append(["chained_hash 1024 keys", r.scalar_cycles, r.vector_cycles, r.acceleration])
    r = runner.run_join_pair(512, 1024, key_range=600, seed=seed, cost=cost)
    s.rows.append(["hash_join 512x1024", r.scalar_cycles, r.vector_cycles, r.acceleration])
    r = runner.run_components_pair(1024, 2048, seed=seed, cost=cost)
    s.rows.append(["components 1k nodes/2k edges", r.scalar_cycles, r.vector_cycles, r.acceleration])
    r = runner.run_rebalance_pair(512, seed=seed, cost=cost)
    s.rows.append(["bst_rebalance 512 random", r.scalar_cycles, r.vector_cycles, r.acceleration])
    r = runner.run_rebalance_pair(256, seed=seed, cost=cost, shape="descending")
    s.rows.append(["bst_rebalance 256 left-vine", r.scalar_cycles, r.vector_cycles, r.acceleration])
    s.notes.append("worst-case rows (uniform arrival, right comb) are *meant* to lose: "
                   "§3.2 — sequential execution is better when most items cannot be "
                   "processed in parallel")
    s.notes.append("bst_rebalance (a §6 future-work item) loses decisively: rotation "
                   "sites chain along spines, so FOL* degenerates toward sequential "
                   "while paying full filtering overhead every wave — evidence the "
                   "paper's future work was genuinely hard, not an implementation gap")
    return s


# ----------------------------------------------------------------------
# streaming runtime: batch policies under key skew
# ----------------------------------------------------------------------
def stream_policies(seed: int = 0) -> Series:
    """Batch-sizing policy comparison for the streaming FOL service
    (`repro.runtime`): cycles/request by policy and Zipf key skew.
    A compact cut of ``benchmarks/bench_runtime_stream.py``."""
    import numpy as np

    from ..runtime import StreamService, closed_loop_workload, make_batcher

    s = Series(
        "stream_policies",
        ["policy", "skew", "cyc/request", "p99_latency", "batches"],
    )
    n = 1500
    for policy in ("fixed", "adaptive"):
        for skew in (0.0, 1.1):
            rng = np.random.default_rng(seed)
            requests = closed_loop_workload(rng, n, skew=skew)
            batcher = (make_batcher("fixed", batch_size=512) if policy == "fixed"
                       else make_batcher("adaptive", initial=256))
            service = StreamService.for_workload(
                requests, batcher=batcher, carryover=False, seed=seed
            )
            m = service.run(requests).summary()
            s.rows.append([
                policy, skew, round(m["cycles_per_request"], 1),
                round(m["p99_latency"], 0), m["batches"],
            ])
    s.notes.append("closed loop, in-batch retry; adaptive shrinks its batch "
                   "under skew to cut FOL rounds per batch (Theorem 5)")
    return s


#: Experiment registry for the CLI.
EXPERIMENTS: Dict[str, Callable[..., Series]] = {
    "fig9": fig9_10,
    "fig10": fig9_10,
    "table1": table1,
    "fig14": fig14,
    "ablation_probe": ablation_probe,
    "ablation_fol_scaling": ablation_fol_scaling,
    "ablation_fol_star_L": ablation_fol_star_l,
    "ablation_cost_model": ablation_cost_model,
    "ablation_conflict_policy": ablation_conflict_policy,
    "extensions": extensions,
    "stream_policies": stream_policies,
}


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point: regenerate named experiments (default: all)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", default=[],
                        help=f"subset of {sorted(set(EXPERIMENTS))}")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    names = args.experiments or list(dict.fromkeys(EXPERIMENTS))
    seen = set()
    for name in names:
        fn = EXPERIMENTS.get(name)
        if fn is None:
            parser.error(f"unknown experiment {name!r}")
        if fn in seen:
            continue
        seen.add(fn)
        series = fn(seed=args.seed)
        print_section(series.name, series.render())


if __name__ == "__main__":
    main()
