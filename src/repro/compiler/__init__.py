"""The vectorizing transformation layer: a loop IR, the Figure-2
classifier, and scalar/vector executors that insert FOL automatically
for shared-update loops."""

from .ast import (
    Affine,
    BinOp,
    CompileError,
    Const,
    Input,
    Lane,
    Let,
    Load,
    Loop,
    Store,
    Var,
    add,
    affine,
    const,
    inp,
    lane,
    load,
    mod,
    mul,
    sub,
    var,
)
from .vectorizer import (
    INDEPENDENT,
    READ_ONLY_SHARED,
    SHARED_FOL1,
    SHARED_FOL_STAR,
    Plan,
    classify,
    run_sequential,
    run_vectorized,
)

__all__ = [
    "Loop", "Let", "Store", "Load",
    "Const", "Lane", "Input", "Var", "BinOp", "Affine",
    "const", "lane", "inp", "var", "add", "sub", "mul", "mod", "load",
    "affine", "CompileError",
    "Plan", "classify", "run_sequential", "run_vectorized",
    "INDEPENDENT", "READ_ONLY_SHARED", "SHARED_FOL1", "SHARED_FOL_STAR",
]
