"""Loop IR for the vectorizing transformation.

The paper's methods are *program transformations*: Fortran loops over
symbolic data are vectorized, and FOL is what the transformation
inserts when a loop's stores may alias across iterations (§1: "The
symbolic vector-processing methods ... enable vector processing of
multiple dynamic data structures by vectorization, a program
transformation").

This module defines the miniature IR those transformations operate on:
one counted loop ``for i in 0..n-1`` whose body is straight-line code
over

* per-lane **inputs** (arrays indexed by ``i`` — Fortran's vectors),
* the **lane index** itself,
* integer arithmetic,
* **loads and stores** through computed addresses into named memory
  *regions* (Fortran arrays — refs in different regions never alias).

Expressions
-----------
``Const(c)`` · ``Lane()`` (the value of i) · ``Input(name)`` ·
``Var(name)`` (body-local) · ``BinOp(op, a, b)`` for
``+ - * // % &`` · ``Load(region, addr)``.

Statements
----------
``Let(name, expr)`` · ``Store(region, addr, value, guard=None)``.

The :func:`affine` analysis recognises address expressions of the form
``base + stride*i`` with load-free integer components — the class of
addresses a compiler can prove distinct across lanes (stride ≠ 0), which
is what separates Figure 2a from the shared cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ReproError


class CompileError(ReproError):
    """The loop IR is malformed (unknown variable, bad operator, ...)."""


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Expr:
    """Base class of IR expressions."""


@dataclass(frozen=True)
class Const(Expr):
    value: int


@dataclass(frozen=True)
class Lane(Expr):
    """The loop index i (a vector 0..n-1 after vectorization)."""


@dataclass(frozen=True)
class Input(Expr):
    """Per-lane input array value: ``name[i]``."""

    name: str


@dataclass(frozen=True)
class Var(Expr):
    """Body-local variable bound by a previous :class:`Let`."""

    name: str


BINOPS = ("+", "-", "*", "//", "%", "&")


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BINOPS:
            raise CompileError(f"unsupported operator {self.op!r}; use one of {BINOPS}")


@dataclass(frozen=True)
class Load(Expr):
    """Memory read: ``region[addr]``."""

    region: str
    addr: Expr


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Stmt:
    """Base class of IR statements."""


@dataclass(frozen=True)
class Let(Stmt):
    name: str
    expr: Expr


@dataclass(frozen=True)
class Store(Stmt):
    """Memory write: ``region[addr] := value`` (optionally guarded:
    lanes whose ``guard`` evaluates to 0 skip the store)."""

    region: str
    addr: Expr
    value: Expr
    guard: Optional[Expr] = None


@dataclass
class Loop:
    """``for i in 0..n-1: body`` over named inputs and memory regions."""

    body: List[Stmt]
    inputs: Tuple[str, ...] = ()
    commutative: bool = False
    """Declare that the loop's iterations commute (any execution order
    of same-cell updates yields an acceptable result — the paper's §3.2
    processing condition).  Without it the vectorizer must preserve
    sequential order exactly (footnote 7) and rejects plans it cannot
    order."""

    def __post_init__(self) -> None:
        declared = set(self.inputs)
        used = set()
        bound: set = set()
        for stmt in self.body:
            exprs = []
            if isinstance(stmt, Let):
                exprs.append(stmt.expr)
            elif isinstance(stmt, Store):
                exprs.extend([stmt.addr, stmt.value])
                if stmt.guard is not None:
                    exprs.append(stmt.guard)
            else:
                raise CompileError(f"unknown statement {stmt!r}")
            for e in exprs:
                for sub in walk(e):
                    if isinstance(sub, Input):
                        used.add(sub.name)
                    elif isinstance(sub, Var) and sub.name not in bound:
                        raise CompileError(
                            f"variable {sub.name!r} used before Let binding"
                        )
            if isinstance(stmt, Let):
                bound.add(stmt.name)
        missing = used - declared
        if missing:
            raise CompileError(f"inputs used but not declared: {sorted(missing)}")


# ----------------------------------------------------------------------
# traversal + analyses
# ----------------------------------------------------------------------
def walk(e: Expr):
    """Yield ``e`` and all sub-expressions, pre-order."""
    yield e
    if isinstance(e, BinOp):
        yield from walk(e.left)
        yield from walk(e.right)
    elif isinstance(e, Load):
        yield from walk(e.addr)


def contains_load(e: Expr) -> bool:
    """True if any sub-expression reads memory."""
    return any(isinstance(sub, Load) for sub in walk(e))


@dataclass(frozen=True)
class Affine:
    """``base + stride * i`` (lane-affine address form)."""

    base: int
    stride: int

    @property
    def lane_distinct(self) -> bool:
        """Distinct address per lane — the provably conflict-free case."""
        return self.stride != 0


def affine(e: Expr, env: Optional[Dict[str, "Affine"]] = None) -> Optional[Affine]:
    """Affine-in-lane analysis: return ``base + stride*i`` if ``e`` is
    provably of that form (constants, the lane index, +, -, and
    multiplication by a constant; Lets of affine expressions propagate
    through ``env``).  ``None`` means data-dependent."""
    env = env or {}
    if isinstance(e, Const):
        return Affine(e.value, 0)
    if isinstance(e, Lane):
        return Affine(0, 1)
    if isinstance(e, Var):
        return env.get(e.name)
    if isinstance(e, BinOp):
        l = affine(e.left, env)
        r = affine(e.right, env)
        if l is None or r is None:
            return None
        if e.op == "+":
            return Affine(l.base + r.base, l.stride + r.stride)
        if e.op == "-":
            return Affine(l.base - r.base, l.stride - r.stride)
        if e.op == "*":
            # affine only when one side is a pure constant
            if l.stride == 0:
                return Affine(l.base * r.base, l.base * r.stride)
            if r.stride == 0:
                return Affine(l.base * r.base, r.base * l.stride)
            return None
        return None  # // % & don't preserve lane-affineness in general
    return None  # Input, Load


def let_env_affine(body: List[Stmt]) -> Dict[str, Affine]:
    """Affine facts for every Let-bound variable (in binding order)."""
    env: Dict[str, Affine] = {}
    for stmt in body:
        if isinstance(stmt, Let):
            a = affine(stmt.expr, env)
            if a is not None:
                env[stmt.name] = a
    return env


# ----------------------------------------------------------------------
# ergonomic builders
# ----------------------------------------------------------------------
def const(c: int) -> Const:
    return Const(int(c))


def lane() -> Lane:
    return Lane()


def inp(name: str) -> Input:
    return Input(name)


def var(name: str) -> Var:
    return Var(name)


def add(a: Expr, b: Expr) -> BinOp:
    return BinOp("+", a, b)


def sub(a: Expr, b: Expr) -> BinOp:
    return BinOp("-", a, b)


def mul(a: Expr, b: Expr) -> BinOp:
    return BinOp("*", a, b)


def mod(a: Expr, b: Expr) -> BinOp:
    return BinOp("%", a, b)


def load(region: str, addr: Expr) -> Load:
    return Load(region, addr)
