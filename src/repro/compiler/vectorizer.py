"""The vectorizing transformation: classify a loop (Figure 2) and run
it data-parallel, inserting FOL where stores may alias.

Classification (paper §2, Figure 2)
-----------------------------------
* **independent** (Fig 2a): every store's address is lane-affine with a
  non-zero stride (provably distinct per lane).  Plain SIVP — one
  data-parallel pass, no filtering.
* **read_only_shared** (Fig 2b): loads may hit shared cells but every
  store is independent.  Also plain SIVP (reading shared data is safe).
* **shared_update**: at least one store address is data-dependent.  The
  transformation inserts FOL:

  - one data-dependent store → **ordered FOL1** (footnote 7), which
    replays same-cell stores in program order, so the vectorized loop
    is *exactly* equivalent to the sequential one;
  - several data-dependent stores → **FOL*** over the address tuple,
    which guarantees disjoint footprints per set but not program order
    across sets — the loop must declare ``commutative=True`` (the
    §3.2 processing condition) or vectorization is refused.

Safety restrictions (all checked, all raise :class:`CompileError`):

* store/guard addresses must be load-free (computable from the
  pre-state — the paper's index vectors are, too);
* a load from a region that is also data-dependently stored must be the
  read of a read-modify-write, i.e. its address must be structurally
  identical to one of that region's store addresses (histogram-style
  ``r[k] := r[k] + 1``); any other load/store aliasing would need a
  dependence the transformation cannot order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.fol_star import fol_star
from ..core.ordered import fol1_ordered
from ..machine.scalar import ScalarProcessor
from ..machine.vm import VectorMachine
from .ast import (
    Affine,
    BinOp,
    CompileError,
    Const,
    Expr,
    Input,
    Lane,
    Let,
    Load,
    Loop,
    Stmt,
    Store,
    Var,
    affine,
    contains_load,
    let_env_affine,
    walk,
)

#: Plan kinds, in the taxonomy of Figure 2.
INDEPENDENT = "independent"
READ_ONLY_SHARED = "read_only_shared"
SHARED_FOL1 = "shared_fol1"
SHARED_FOL_STAR = "shared_fol_star"


@dataclass
class Plan:
    """Result of classifying a :class:`Loop` for vectorization."""

    kind: str
    data_stores: List[Store] = field(default_factory=list)
    shared_loads: List[Load] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def needs_fol(self) -> bool:
        return self.kind in (SHARED_FOL1, SHARED_FOL_STAR)


def classify(loop: Loop) -> Plan:
    """Figure-2 classification + safety checking (see module docs)."""
    env = let_env_affine(loop.body)
    stores = [s for s in loop.body if isinstance(s, Store)]
    data_stores: List[Store] = []
    store_addrs_by_region: Dict[str, List[Expr]] = {}

    for s in stores:
        if contains_load(s.addr):
            raise CompileError("store addresses must be load-free")
        if s.guard is not None and contains_load(s.guard):
            raise CompileError("store guards must be load-free")
        a = affine(s.addr, env)
        if a is None or not a.lane_distinct:
            data_stores.append(s)
            store_addrs_by_region.setdefault(s.region, []).append(s.addr)

    # collect loads anywhere in the body
    loads: List[Load] = []
    for stmt in loop.body:
        exprs = [stmt.expr] if isinstance(stmt, Let) else [stmt.addr, stmt.value] + (
            [stmt.guard] if stmt.guard is not None else []
        )
        for e in exprs:
            loads.extend(sub for sub in walk(e) if isinstance(sub, Load))

    shared_loads = [ld for ld in loads if affine(ld.addr, env) is None
                    or not affine(ld.addr, env).lane_distinct]

    # loads from data-stored regions must be RMW reads
    for ld in loads:
        if ld.region in store_addrs_by_region:
            if not any(ld.addr == sa for sa in store_addrs_by_region[ld.region]):
                raise CompileError(
                    f"load from region {ld.region!r} at {ld.addr} may alias a "
                    f"data-dependent store at a different address; the "
                    f"transformation cannot order that dependence"
                )

    if not data_stores:
        kind = READ_ONLY_SHARED if shared_loads else INDEPENDENT
        return Plan(kind=kind, shared_loads=shared_loads,
                    notes=[f"figure 2{'b' if shared_loads else 'a'} case"])

    if len(data_stores) == 1:
        return Plan(
            kind=SHARED_FOL1,
            data_stores=data_stores,
            shared_loads=shared_loads,
            notes=["single shared store: ordered FOL1 (footnote 7), exact "
                   "sequential semantics"],
        )

    if not loop.commutative:
        raise CompileError(
            f"{len(data_stores)} data-dependent stores need FOL*, which "
            f"cannot preserve sequential order across sets; declare the "
            f"loop commutative=True if any order is acceptable (§3.2)"
        )
    return Plan(
        kind=SHARED_FOL_STAR,
        data_stores=data_stores,
        shared_loads=shared_loads,
        notes=[f"FOL* over L={len(data_stores)} store addresses"],
    )


# ----------------------------------------------------------------------
# sequential reference executor
# ----------------------------------------------------------------------
def run_sequential(
    sp: ScalarProcessor,
    loop: Loop,
    n: int,
    inputs: Dict[str, np.ndarray],
    regions: Dict[str, int],
) -> None:
    """Execute the loop one iteration at a time on the scalar unit —
    both the semantics oracle and the charged baseline."""
    _check_run_args(loop, n, inputs)

    def eval_expr(e: Expr, i: int, env: Dict[str, int]) -> int:
        if isinstance(e, Const):
            return e.value
        if isinstance(e, Lane):
            return i
        if isinstance(e, Input):
            return int(inputs[e.name][i])
        if isinstance(e, Var):
            return env[e.name]
        if isinstance(e, BinOp):
            sp.alu()
            l = eval_expr(e.left, i, env)
            r = eval_expr(e.right, i, env)
            return _apply(e.op, l, r)
        if isinstance(e, Load):
            addr = eval_expr(e.addr, i, env)
            sp.alu()  # region base addition
            return sp.load(regions[e.region] + addr)
        raise CompileError(f"unknown expression {e!r}")

    for i in range(n):
        env: Dict[str, int] = {}
        for stmt in loop.body:
            if isinstance(stmt, Let):
                env[stmt.name] = eval_expr(stmt.expr, i, env)
            else:
                if stmt.guard is not None:
                    sp.branch()
                    if eval_expr(stmt.guard, i, env) == 0:
                        continue
                addr = eval_expr(stmt.addr, i, env)
                value = eval_expr(stmt.value, i, env)
                sp.alu()
                sp.store(regions[stmt.region] + addr, value)
        sp.loop_iter()


_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1
_WORD_SIGN = 1 << (_WORD_BITS - 1)


def _wrap(x: int) -> int:
    """Two's-complement truncation to the machine word: the scalar
    reference must wrap exactly like the vector unit's int64 lanes, or
    an accumulating read-modify-write loop diverges between the two."""
    x &= _WORD_MASK
    return x - (1 << _WORD_BITS) if x >= _WORD_SIGN else x


def _apply(op: str, l: int, r: int) -> int:
    if op == "+":
        return _wrap(l + r)
    if op == "-":
        return _wrap(l - r)
    if op == "*":
        return _wrap(l * r)
    if op == "//":
        return _wrap(l // r)
    if op == "%":
        return _wrap(l % r)
    if op == "&":
        return _wrap(l & r)
    raise CompileError(f"unknown operator {op!r}")


# ----------------------------------------------------------------------
# vectorized executor
# ----------------------------------------------------------------------
_VEC_OPS = {
    "+": "add", "-": "sub", "*": "mul", "//": "floordiv", "%": "mod", "&": "bitand",
}


class _VecCtx:
    """Lane-parallel evaluation context for one parallel-processable set."""

    def __init__(self, vm, inputs, regions, positions):
        self.vm = vm
        self.inputs = inputs
        self.regions = regions
        self.positions = positions  # original lane ids of this set
        self.env: Dict[str, np.ndarray] = {}

    def eval(self, e: Expr) -> np.ndarray:
        vm = self.vm
        if isinstance(e, Const):
            return vm.splat(self.positions.size, e.value)
        if isinstance(e, Lane):
            return self.positions
        if isinstance(e, Input):
            # slice the already-resident input register down to the set
            full = self.inputs[e.name]
            self.vm.counter.charge_vector(
                vm.cost.vector_cost(self.positions.size, vm.cost.chime_alu),
                self.positions.size,
                "v_alu",
            )
            return full[self.positions]
        if isinstance(e, Var):
            return self.env[e.name]
        if isinstance(e, BinOp):
            return getattr(vm, _VEC_OPS[e.op])(self.eval(e.left), self.eval(e.right))
        if isinstance(e, Load):
            addrs = vm.add(self.eval(e.addr), self.regions[e.region])
            return vm.gather(addrs)
        raise CompileError(f"unknown expression {e!r}")

    def run_body(self, body: Sequence[Stmt], policy: str) -> None:
        vm = self.vm
        for stmt in body:
            if isinstance(stmt, Let):
                self.env[stmt.name] = self.eval(stmt.expr)
            else:
                addrs = vm.add(self.eval(stmt.addr), self.regions[stmt.region])
                values = self.eval(stmt.value)
                if stmt.guard is not None:
                    mask = vm.ne(self.eval(stmt.guard), 0)
                    vm.scatter_masked(addrs, values, mask, policy=policy)
                else:
                    vm.scatter(addrs, values, policy=policy)


def run_vectorized(
    vm: VectorMachine,
    loop: Loop,
    n: int,
    inputs: Dict[str, np.ndarray],
    regions: Dict[str, int],
    work_offset: Optional[int] = None,
    policy: str = "arbitrary",
) -> Plan:
    """Vectorize and execute the loop; returns the :class:`Plan` used.

    ``work_offset`` — required for shared-update plans: every address a
    data-dependent store can touch must have a scratch word at
    ``addr + work_offset`` for FOL's label traffic.
    """
    plan = classify(loop)
    _check_run_args(loop, n, inputs)
    if n == 0:
        return plan

    input_regs = {name: np.asarray(arr[:n], dtype=np.int64) for name, arr in inputs.items()}
    all_lanes = vm.iota(n)

    if not plan.needs_fol:
        _VecCtx(vm, input_regs, regions, all_lanes).run_body(loop.body, policy)
        return plan

    if work_offset is None:
        raise CompileError(
            f"plan {plan.kind} inserts FOL and needs a work_offset scratch region"
        )

    # compute the conflict address vector(s) from the pre-state
    pre = _VecCtx(vm, input_regs, regions, all_lanes)
    addr_vectors = [
        vm.add(pre.eval(s.addr), regions[s.region]) for s in plan.data_stores
    ]

    if plan.kind == SHARED_FOL1:
        dec = fol1_ordered(vm, addr_vectors[0], work_offset=work_offset)
        sets = dec.sets
    else:
        dec = fol_star(
            vm, addr_vectors, work_offset=work_offset, policy=policy,
            internal="isolate",
        )
        sets = dec.sets

    for s in sets:
        ctx = _VecCtx(vm, input_regs, regions, all_lanes[s])
        ctx.run_body(loop.body, policy)
        vm.loop_overhead()
    return plan


def _check_run_args(loop: Loop, n: int, inputs: Dict[str, np.ndarray]) -> None:
    for name in loop.inputs:
        if name not in inputs:
            raise CompileError(f"missing input array {name!r}")
        if len(inputs[name]) < n:
            raise CompileError(
                f"input {name!r} has {len(inputs[name])} elements, need {n}"
            )
