"""Distribution counting sort — paper §4.2 / Table 1.

The classical O(N + R) sort over keys in [0, R): count occurrences of
each key, prefix-sum the counts into starting offsets, then place each
key at its offset.  The paper vectorizes it "using the
overwrite-and-check technique" but omits the listing; our vector version
follows the §4.1 technique literally:

* **Counting** — multiple keys increment the same counter, so counting
  is a multiple-rewrite problem.  Per FOL round: scatter subscript
  labels into a work array indexed by key, gather back, and let the
  surviving lanes (one per *distinct* key value) gather-increment-scatter
  their counter; filtered lanes retry.  Rounds = max key multiplicity.
* **Offsets** — one exclusive prefix-sum scan over the counts.
* **Placement** — the same FOL loop, with survivors placing their key at
  the key's current offset and bumping the offset.

The scalar version is the textbook three-loop algorithm, charged per
operation.  Its cost is dominated by the O(R) initialisation and scan
when N ≪ R, which is exactly why the paper's acceleration ratio
*decreases* with N (8.02 → 5.31 between N = 2⁶ and 2¹⁴): the vector unit
wins biggest on the long R-length passes.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..machine.scalar import ScalarProcessor
from ..machine.vm import VectorMachine
from ..mem.arena import BumpAllocator

#: Paper setting: "the size of work array is 2^16, which is the range of
#: the data".
DEFAULT_RANGE = 2**16


class DistributionWorkspace:
    """Pre-allocated count/work/output regions for keys in [0, R)."""

    def __init__(
        self,
        allocator: BumpAllocator,
        key_range: int = DEFAULT_RANGE,
        n_max: int = 2**14,
        name: str = "dcs",
    ) -> None:
        if key_range <= 0:
            raise ValueError(f"key range must be positive, got {key_range}")
        if n_max <= 0:
            raise ValueError(f"n_max must be positive, got {n_max}")
        self.key_range = int(key_range)
        self.n_max = int(n_max)
        self.count_base = allocator.alloc(self.key_range, f"{name}.counts")
        self.work_base = allocator.alloc(self.key_range, f"{name}.work")
        self.out_base = allocator.alloc(self.n_max, f"{name}.out")
        self.memory = allocator.memory


def _check_keys(a: np.ndarray, key_range: int, n_max: int) -> np.ndarray:
    a = np.asarray(a, dtype=np.int64)
    if a.ndim != 1:
        raise ReproError(f"input must be a 1-D array, got shape {a.shape}")
    if a.size > n_max:
        raise ReproError(f"{a.size} elements exceed workspace capacity {n_max}")
    if a.size and (a.min() < 0 or a.max() >= key_range):
        raise ReproError(f"keys must lie in [0, {key_range})")
    return a


def scalar_distribution_sort(
    sp: ScalarProcessor,
    ws: DistributionWorkspace,
    a: np.ndarray,
) -> np.ndarray:
    """Sequential distribution counting sort; returns the sorted array."""
    a = _check_keys(a, ws.key_range, ws.n_max)
    n = a.size
    r = ws.key_range

    # 1. clear counters (the O(R) pass that dominates at small N)
    sp.fill_array(ws.count_base, r, 0)

    # 2. count occurrences
    for key in a:
        addr = ws.count_base + int(key)
        sp.alu()
        sp.store(addr, sp.load(addr) + 1)
        sp.alu()
        sp.loop_iter()

    # 3. exclusive prefix sum -> starting offsets (sequential scan, so
    # the cheap pipelined-scan memory cost applies)
    running = 0
    for i in range(r):
        c = sp.seq_load(ws.count_base + i)
        sp.seq_store(ws.count_base + i, running)
        running += c
        sp.alu(2)
    if running != n:
        raise ReproError(f"counted {running} keys, expected {n}")

    # 4. place each key at its offset, bumping the offset
    for key in a:
        addr = ws.count_base + int(key)
        sp.alu()
        pos = sp.load(addr)
        sp.store(ws.out_base + pos, int(key))
        sp.alu()
        sp.store(addr, pos + 1)
        sp.alu()
        sp.loop_iter()

    return ws.memory.peek_range(ws.out_base, n)


def _fol_rounds(
    vm: VectorMachine,
    keys: np.ndarray,
    work_base: int,
    apply_set,
    policy: str,
) -> int:
    """Overwrite-and-check driver shared by counting and placement:
    repeatedly elect one lane per distinct key value and hand the
    survivors (as positions into ``keys``) to ``apply_set``."""
    positions = vm.iota(keys.size)
    rounds = 0
    while positions.size:
        wa = vm.add(keys[positions], work_base)
        labels = positions  # subscripts are unique labels
        vm.scatter(wa, labels, policy=policy)
        readback = vm.gather(wa)
        survived = vm.eq(readback, labels)
        winners = vm.compress(positions, survived)
        if winners.size == 0:
            raise ReproError("overwrite-and-check made no progress")
        apply_set(winners)
        positions = vm.compress(positions, vm.mask_not(survived))
        vm.loop_overhead()
        rounds += 1
    return rounds


def vector_distribution_sort(
    vm: VectorMachine,
    ws: DistributionWorkspace,
    a: np.ndarray,
    policy: str = "arbitrary",
) -> np.ndarray:
    """Vectorized distribution counting sort; returns the sorted array."""
    a = _check_keys(a, ws.key_range, ws.n_max)
    n = a.size
    r = ws.key_range
    if n == 0:
        return a.copy()

    # 1. clear counters (one long vector fill — the big vector win)
    vm.mem.fill(ws.count_base, r, 0)

    # 2. count by overwrite-and-check rounds
    def bump_counts(winners: np.ndarray) -> None:
        addrs = vm.add(a[winners], ws.count_base)
        counts = vm.gather(addrs)
        vm.scatter(addrs, vm.add(counts, 1), policy=policy)

    _fol_rounds(vm, a, ws.work_base, bump_counts, policy)

    # 3. exclusive prefix sum over the counts (vector scan)
    counts = vm.mem.vload(ws.count_base, r)
    offsets = vm.cumsum_exclusive(counts)
    vm.mem.vstore(ws.count_base, offsets)

    # 4. place by overwrite-and-check rounds
    def place(winners: np.ndarray) -> None:
        key_addrs = vm.add(a[winners], ws.count_base)
        pos = vm.gather(key_addrs)
        vm.scatter(vm.add(pos, ws.out_base), a[winners], policy=policy)
        vm.scatter(key_addrs, vm.add(pos, 1), policy=policy)

    _fol_rounds(vm, a, ws.work_base, place, policy)

    return vm.mem.vload(ws.out_base, n)
