"""O(N) sorting algorithms vectorized with FOL (paper §4.2 / Table 1)."""

from .address_calc import (
    DEFAULT_VMAX,
    AddressCalcWorkspace,
    scalar_address_calc_sort,
    vector_address_calc_sort,
)
from .distribution import (
    DEFAULT_RANGE,
    DistributionWorkspace,
    scalar_distribution_sort,
    vector_distribution_sort,
)

__all__ = [
    "DEFAULT_VMAX",
    "DEFAULT_RANGE",
    "AddressCalcWorkspace",
    "DistributionWorkspace",
    "scalar_address_calc_sort",
    "vector_address_calc_sort",
    "scalar_distribution_sort",
    "vector_distribution_sort",
]
