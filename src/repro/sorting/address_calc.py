"""Address-calculation sorting (linear-probing sort) — paper §4.2.

Data are "hashed" with an **order-preserving** spreading function

    hash(a) = floor(2·n·a / Vmax)        (range [0, 2n))

into a work array ``C`` of size 3n whose empty entries hold
``unentered = Vmax`` (greater than any datum).  Colliding data shift the
displaced run one slot right, exactly like linear-probing insertion, so
``C`` stays sorted; packing the entered values yields the sorted array.

Note on the hash range: the paper's listings print
``int(float(2 * size(C) * A[i]) / Vmax)``, but with ``size(C) = 3n``
that addresses up to ``6n`` — outside ``C``.  The worked example of
Figure 13 (n = 4, C size 12, ``hash(x) = ⌊(8/100)·x⌋``) shows the
intended factor is ``2·n``, leaving the top third of ``C`` as overflow
slack; we follow the example.

Two implementations:

* :func:`scalar_address_calc_sort` — Figure 11, one datum at a time on
  the scalar unit.
* :func:`vector_address_calc_sort` — Figure 12, all data in parallel:
  part B finds insertion points with masked probing; part C inserts
  under an FOL overwrite check using **negated subscripts** ``−ι`` as
  labels (negative labels cannot collide with the non-negative data, so
  labels and data share ``C`` without a separate work area); part D
  shifts all displaced runs in lock-step; part E collects the filtered
  data for the next round; part F packs.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..machine.scalar import ScalarProcessor
from ..machine.vm import VectorMachine
from ..mem.arena import BumpAllocator

#: Default exclusive upper bound of sortable values.
DEFAULT_VMAX = 2**40


class AddressCalcWorkspace:
    """Pre-allocated work array ``C`` (with one guard word) reusable
    across sorts of up to ``n_max`` elements."""

    def __init__(self, allocator: BumpAllocator, n_max: int, name: str = "acs") -> None:
        if n_max <= 0:
            raise ValueError(f"n_max must be positive, got {n_max}")
        self.n_max = int(n_max)
        self.c_size = 3 * self.n_max
        self.base = allocator.alloc(self.c_size + 1, name)
        self.memory = allocator.memory


def _check_input(a: np.ndarray, vmax: int, n_max: int) -> np.ndarray:
    a = np.asarray(a, dtype=np.int64)
    if a.ndim != 1:
        raise ReproError(f"input must be a 1-D array, got shape {a.shape}")
    if a.size > n_max:
        raise ReproError(f"{a.size} elements exceed workspace capacity {n_max}")
    if a.size and (a.min() < 0 or a.max() >= vmax):
        raise ReproError(f"values must lie in [0, {vmax})")
    return a


def scalar_address_calc_sort(
    sp: ScalarProcessor,
    ws: AddressCalcWorkspace,
    a: np.ndarray,
    vmax: int = DEFAULT_VMAX,
) -> np.ndarray:
    """Figure 11: sequential linear-probing sort. Returns the sorted array."""
    a = _check_input(a, vmax, ws.n_max)
    n = a.size
    if n == 0:
        return a.copy()
    c_size = 3 * n
    unentered = vmax
    base = ws.base

    # initialise C
    sp.fill_array(base, c_size, unentered)

    for ai in a:
        ai = int(ai)
        # A. order-preserving "hash"
        sp.alu(3)  # multiply, divide, truncate
        h = (2 * n * ai) // vmax

        # B. find the entry to insert at: first slot with C[h] > ai
        while True:
            entry = sp.load(base + h)
            sp.branch()
            if entry > ai:
                break
            h += 1
            sp.alu()

        # C & D. insert and shift the displaced run one slot right
        w = sp.load(base + h)
        sp.store(base + h, ai)
        while w != unentered:
            sp.branch()
            h += 1
            sp.alu()
            x = sp.load(base + h)
            sp.store(base + h, w)
            w = x
        sp.branch()
        sp.loop_iter()

    # F. pack the entered values back into the result (sequential scan,
    # so the cheap pipelined-scan memory cost applies)
    out = np.empty(n, dtype=np.int64)
    count = 0
    for i in range(c_size):
        v = sp.seq_load(base + i)
        sp.branch()
        if v != unentered:
            out[count] = v
            count += 1
            sp.alu()
    if count != n:
        raise ReproError(f"packed {count} values, expected {n}")
    return out


def vector_address_calc_sort(
    vm: VectorMachine,
    ws: AddressCalcWorkspace,
    a: np.ndarray,
    vmax: int = DEFAULT_VMAX,
    policy: str = "arbitrary",
    validate_rounds: int | None = None,
) -> np.ndarray:
    """Figure 12: vectorized linear-probing sort via FOL.

    Returns the sorted array.  ``validate_rounds`` optionally caps the
    number of outer rounds (tests use it to prove termination bounds);
    the default allows n rounds, which Theorem 1 guarantees suffices.
    """
    a = _check_input(a, vmax, ws.n_max)
    n = a.size
    if n == 0:
        return a.copy()
    c_size = 3 * n
    unentered = vmax
    base = ws.base
    max_rounds = validate_rounds if validate_rounds is not None else n

    # initialise C (one vector fill; the +1 guard word stays unentered)
    vm.mem.fill(base, c_size + 1, unentered)

    # A. order-preserving "hash" of every datum at once
    rem = a.copy()
    hashed = vm.floordiv(vm.mul(rem, 2 * n), vmax)

    rounds = 0
    while True:
        rounds += 1
        if rounds > max_rounds:
            raise ReproError(f"address-calc sort exceeded {max_rounds} rounds")

        # B. advance each datum to the first slot with C[h] > a
        while True:
            caddr = vm.add(hashed, base)
            cvals = vm.gather(caddr)
            uninsertable = vm.le(cvals, rem)
            if vm.count_true(uninsertable) == 0:
                break
            hashed = vm.select(uninsertable, vm.add(hashed, 1), hashed)
            vm.loop_overhead()

        # C. insert under the FOL overwrite check: store the negated
        # subscripts -ι, read back, and let survivors store their data.
        caddr = vm.add(hashed, base)
        work = vm.gather(caddr)  # save the displaced values
        ids = vm.neg(vm.iota(rem.size, start=1))  # -1, -2, ..., -nrest
        vm.scatter(caddr, ids, policy=policy)
        readback = vm.gather(caddr)
        entered = vm.eq(readback, ids)
        vm.scatter_masked(caddr, rem, entered, policy=policy)

        # D. shift the displaced runs (only for successful inserts whose
        # slot held a real value).  All chains advance in lock-step from
        # distinct starts, so the scatters below are conflict-free.
        to_shift = vm.mask_and(entered, vm.ne(work, unentered))
        shift_vals = vm.compress(work, to_shift)
        shift_addr = vm.compress(vm.add(caddr, 1), to_shift)
        while shift_vals.size:
            nxt = vm.gather(shift_addr)
            vm.scatter(shift_addr, shift_vals, policy=policy)
            nonempty = vm.ne(nxt, unentered)
            shift_vals = vm.compress(nxt, nonempty)
            shift_addr = vm.compress(vm.add(shift_addr, 1), nonempty)
            vm.loop_overhead()

        # E. collect the filtered (not-yet-inserted) data
        not_entered = vm.mask_not(entered)
        nrest = vm.count_true(not_entered)
        if nrest == 0:
            break
        rem = vm.compress(rem, not_entered)
        hashed = vm.compress(hashed, not_entered)
        vm.loop_overhead()

    # F. pack the sorted data
    cvals = vm.mem.vload(base, c_size)
    entered_mask = vm.ne(cvals, unentered)
    out = vm.compress(cvals, entered_mask)
    if out.size != n:
        raise ReproError(f"packed {out.size} values, expected {n}")
    return out
