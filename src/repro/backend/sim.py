"""The calibrated-cycles backend: FOL plans on the S-810 cycle model.

This is the pre-backend execution path, verbatim, behind the
:class:`~repro.backend.Backend` interface.  :meth:`SimBackend.run_fol`
realises a plan's op program with the proven primitives — a
:func:`~repro.runtime.carryover.fol_round` /
:func:`~repro.runtime.carryover.tuple_round` per batch in carryover
mode, the paper's :func:`~repro.core.fol1.fol1` /
:func:`~repro.core.fol_star.fol_star` loops in retry mode — issuing
the *identical sequence of charged vector instructions* (and identical
``"arbitrary"``-policy rng draws) the kinds used to issue inline.
That equivalence is load-bearing: the golden cycle-parity tests
(``tests/test_engine_registry.py``) pin exact simulated cycle totals
and end-state hashes, and this module must never change either.
"""

from __future__ import annotations

from . import Backend, register_backend
from .plan import FolPlan


@register_backend
class SimBackend(Backend):
    """Calibrated S-810 cycle simulation (the reference backend)."""

    name = "sim"
    calibrated = True

    def make_machine(self, words: int, *, cost_model=None, seed: int = 0):
        from ..machine.vm import make_machine

        return make_machine(words, cost_model=cost_model, seed=seed)

    # ------------------------------------------------------------------
    def run_fol(self, executor, plan: FolPlan, reqs, result) -> int:
        from ..core.fol1 import fol1
        from ..core.fol_star import fol_star
        from ..core.labels import tuple_labels
        from ..engine.spec import _max_multiplicity
        from ..runtime.carryover import fol_round, tuple_round

        vm = executor.vm
        result.completed.extend(reqs[i] for i in plan.precompleted)
        live = plan.live
        if live.size:
            if executor.carryover:
                # One filtering round per batch; losers recirculate
                # through the service's carryover buffer.
                if plan.arity == 1:
                    labels = vm.iota(live.size)
                    winners, losers = fol_round(
                        vm, plan.addrs[0], labels,
                        work_offset=plan.work_offset, policy=plan.policy,
                    )
                else:
                    labels = tuple_labels(vm, live.size, plan.arity)
                    winners, losers = tuple_round(
                        vm, plan.addrs, labels,
                        work_offset=plan.work_offset, policy=plan.policy,
                    )
                plan.commit(vm, winners)
                result.completed.extend(reqs[i] for i in live[winners])
                for i in live[losers]:
                    reqs[i].group = plan.group_of(int(i))
                    result.carried.append(reqs[i])
                result.rounds += 1
            else:
                # Retry mode: the paper's in-batch loop-until-empty.
                if plan.arity == 1:
                    dec = fol1(
                        vm, plan.addrs[0],
                        work_offset=plan.work_offset, policy=plan.policy,
                        on_set=lambda s, _j: plan.commit(vm, s),
                    )
                else:
                    dec = fol_star(
                        vm, plan.addrs,
                        work_offset=plan.work_offset, policy=plan.policy,
                    )
                    for s in dec.sets:
                        plan.commit(vm, s)
                result.completed.extend(reqs[i] for i in live)
                result.rounds += dec.m
        return _max_multiplicity(plan.measure)
