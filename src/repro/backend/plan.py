"""The backend-neutral FOL plan IR.

A :class:`WorkloadSpec` used to *execute* its batch slice directly
against the cycle-model VM; now it *emits* a :class:`FolPlan` — a small
typed description of the kind's filtering round — and the executor's
:class:`~repro.backend.Backend` decides how to run it: the ``sim``
backend replays it through the calibrated S-810 primitives
(bit-identical to the pre-backend code paths, pinned by the golden
cycle-parity tests), while the ``native`` backend executes the same
plan as raw NumPy with no cycle accounting, optionally through a
drjit-style recorded loop.

The IR is deliberately tiny: FOL (paper §3.2/§3.3) is one fixed round
shape — scatter labels under ELS, gather them back, compare, split the
lanes — repeated either once per micro-batch (carryover mode) or until
the index vector drains (retry mode), followed by the kind's *commit*
(its "main processing": hash-chain link, cell bump, tuple transfer).
The typed ops below name exactly those steps:

=====================  ==============================================
op                     semantics
=====================  ==============================================
:class:`ScatterLabels` write each live lane's unique label to its
                       conflict address (+ ``work_offset``) under the
                       ELS conflict ``policy``; with ``scalar_tail``
                       (arity >= 2) the last tuple's labels are
                       written by scalar stores *after* the vector
                       scatters (§3.3 deadlock avoidance)
:class:`GatherBack`    read the labels back through the same addresses
:class:`CompareLabels` per-lane equality of readback vs. own label,
                       AND-reduced across the plan's L address vectors
:class:`FilterSurvivors`
                       split lane positions into (winners, losers);
                       winners hold distinct addresses (Lemma 2)
:class:`Commit`        run the kind's main processing on the winners
:class:`LoopUntilEmpty`
                       retry mode: repeat the body over the losers
                       until no lanes remain (§3.2 step 4)
=====================  ==============================================

Commit bodies stay per-kind closures (the paper amalgamates main
processing per application); they receive the backend's *ops facade*
— an object with the :class:`~repro.machine.vm.VectorMachine` surface
— so a commit written once runs on every backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..errors import ReproError


# ----------------------------------------------------------------------
# typed ops
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScatterLabels:
    """Write labels through the work area under the ELS condition."""

    work_offset: int = 0
    policy: str = "arbitrary"
    #: §3.3 deadlock remedy: write the last tuple's labels with scalar
    #: stores after the vector scatters (arity >= 2 plans only).
    scalar_tail: bool = False


@dataclass(frozen=True)
class GatherBack:
    """Read the labels back through the same work addresses."""


@dataclass(frozen=True)
class CompareLabels:
    """Survival mask: readback == own label, ANDed across vectors."""


@dataclass(frozen=True)
class FilterSurvivors:
    """Split live lane positions into (winners, losers)."""


@dataclass(frozen=True)
class Commit:
    """Run the kind's main processing on the winning lanes."""

    kind: str = ""


@dataclass(frozen=True)
class LoopUntilEmpty:
    """Repeat ``body`` over the losing lanes until none remain."""

    body: Tuple[object, ...] = ()


#: A commit hook: ``commit(ops, positions)`` where ``positions`` index
#: the plan's *live* lanes (winners of the round just filtered).
CommitFn = Callable[[object, np.ndarray], None]

#: Conflict-group address of a losing lane, by *request* position
#: (consumed by the carryover buffer's per-group dedup).
GroupFn = Callable[[int], int]


@dataclass
class FolPlan:
    """One kind's batch slice, described instead of executed.

    ``addrs`` holds L equal-length conflict-address vectors over the
    *live* lanes (``live`` maps live positions back to request
    positions); address generation is part of the spec's ``plan`` hook
    and runs through the executor's ops facade, so on the ``sim``
    backend it is charged exactly where the pre-backend code charged
    it.  ``precompleted`` lanes finish without filtering (e.g. ``xfer``
    self-transfers, which are net no-ops and internally-duplicated
    tuples in the §3.3 sense).
    """

    kind: str
    arity: int
    policy: str
    work_offset: int
    addrs: List[np.ndarray]
    commit: CommitFn
    group_of: GroupFn
    #: Uncharged diagnostic addresses for the batch's observed
    #: multiplicity M (Theorem 5) — all lanes, not just live ones.
    measure: np.ndarray
    live: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    precompleted: Sequence[int] = ()

    def __post_init__(self) -> None:
        if self.arity != len(self.addrs):
            raise ReproError(
                f"{self.kind!r} plan declares arity {self.arity} but "
                f"carries {len(self.addrs)} address vectors"
            )
        for v in self.addrs:
            if v.size != self.live.size:
                raise ReproError(
                    f"{self.kind!r} plan address vector of {v.size} lanes "
                    f"for {self.live.size} live lanes"
                )

    # ------------------------------------------------------------------
    def round_ops(self) -> Tuple[object, ...]:
        """The typed ops of one filtering round, in execution order."""
        return (
            ScatterLabels(
                work_offset=self.work_offset,
                policy=self.policy,
                scalar_tail=self.arity >= 2,
            ),
            GatherBack(),
            CompareLabels(),
            FilterSurvivors(),
        )

    def program(self, carryover: bool) -> Tuple[object, ...]:
        """The full op program for one batch: a single round + commit in
        carryover mode, or the round looped to exhaustion (§3.2 step 4)
        in retry mode."""
        body = self.round_ops() + (Commit(self.kind),)
        if carryover:
            return body
        return (LoopUntilEmpty(body),)


def identity_live(n: int) -> np.ndarray:
    """Live map for plans where every request lane filters (uncharged
    bookkeeping, not a vector instruction)."""
    return np.arange(n, dtype=np.int64)
