"""The native backend: FOL plans as raw NumPy, no cycle accounting.

Same plans, same end states, real wall-clock speed.  Three pieces:

* :class:`NativeMemory` / :class:`NativeOps` — the machine facade with
  every cycle charge and address check compiled out.  Crucially the
  ``"arbitrary"`` conflict policy still draws from the *same seeded
  rng in the same order* as the simulator (both funnel through
  :meth:`~repro.machine.memory.Memory._raw_scatter`), which is what
  makes end states bit-identical across backends under fixed seeds —
  the cross-backend parity suite depends on it.
* A drjit/Enoki-style **recorded loop**: the first time a plan shape
  (arity, work offset, policy) is seen, the round's typed op program
  (scatter labels → gather → compare → filter) is compiled into one
  fused closure over ``memory.words``; subsequent rounds replay the
  closure, amortising per-op Python dispatch.  ``recorded_loop=False``
  (the ``--no-recorded-loop`` ablation) interprets the same program
  op-by-op through the facade instead, and ``recorded_loop="auto"``
  races both paths once per plan shape on a scratch machine and keeps
  the winner (kinds that drive the facade directly — the BST
  claim-descend loop, the sort probe/shift rounds — never reach either
  path, so the mode is moot for them).  Both modes end bit-identical,
  so auto's per-plan choice never changes an answer.
* :class:`NativeBackend.run_fol` — carryover mode runs one recorded
  round per batch; retry mode replays it until the index vector drains
  (the plan's :class:`~repro.backend.plan.LoopUntilEmpty`).

Uncalibrated: the counter is a null ledger pinned at zero, simulated-
cycle features (tracing, deadline batching, cost-model overrides) are
rejected up front, and invariant auditing is unavailable (audit hooks
live on the charged scatter path).
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

import numpy as np

from ..errors import DeadlockError, ReproError
from ..machine.counter import CycleCounter
from ..machine.memory import WORD_DTYPE, Memory
from ..machine.vm import VectorMachine
from . import Backend, register_backend
from .plan import CompareLabels, FilterSurvivors, FolPlan, GatherBack, ScatterLabels


class NullCounter(CycleCounter):
    """A cycle ledger that ignores every charge (total stays 0.0)."""

    def charge_scalar(self, cycles: float, category: str = "scalar") -> None:
        self.scalar_instructions += 1

    def charge_vector(self, cycles: float, n: int, category: str = "vector") -> None:
        self.vector_instructions += 1


class NativeMemory(Memory):
    """Word storage with uncharged, unchecked access paths.

    Only :meth:`~repro.machine.memory.Memory._raw_scatter` is shared
    with the simulator — deliberately, so the ``"arbitrary"`` policy's
    permutation draws stay in lock-step between backends.
    """

    def __init__(self, size: int, seed: int = 0) -> None:
        super().__init__(size, counter=NullCounter(), seed=seed)

    # -- scalar port ----------------------------------------------------
    def sload(self, addr: int) -> int:
        return int(self.words[addr])

    def sstore(self, addr: int, value: int) -> None:
        self.words[int(addr)] = value

    # -- vector port ----------------------------------------------------
    def vload(self, base: int, n: int) -> np.ndarray:
        return self.words[base : base + n].copy()

    def vstore(self, base: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=WORD_DTYPE)
        self.words[base : base + values.size] = values

    def fill(self, base: int, n: int, value: int) -> None:
        self.words[base : base + n] = value

    def gather(self, addrs: np.ndarray) -> np.ndarray:
        # Fancy indexing already copies; no extra .copy() needed.
        return self.words[np.asarray(addrs, dtype=np.int64)]

    def scatter(self, addrs, values, policy: str = "arbitrary") -> None:
        self._raw_scatter(
            np.asarray(addrs, dtype=np.int64),
            np.asarray(values, dtype=WORD_DTYPE),
            policy,
        )

    def scatter_masked(self, addrs, values, mask, policy: str = "arbitrary") -> None:
        mask = np.asarray(mask, dtype=bool)
        self._raw_scatter(
            np.asarray(addrs, dtype=np.int64)[mask],
            np.asarray(values, dtype=WORD_DTYPE)[mask],
            policy,
        )


class NativeOps(VectorMachine):
    """The ops facade with all cycle charges compiled out."""

    def _charge_alu(self, n: int) -> None:
        pass

    def _charge_compress(self, n: int) -> None:
        pass

    def _charge_reduce(self, n: int) -> None:
        pass

    def loop_overhead(self) -> None:
        pass

    def attach_audit(self, auditor) -> None:
        if auditor is not None:
            raise ReproError(
                "invariant auditing needs the charged scatter path; "
                "run the sim backend to audit"
            )
        self.mem.audit = None


# ----------------------------------------------------------------------
# recorded-loop compilation
# ----------------------------------------------------------------------
def compile_round(round_ops: Tuple[object, ...]):
    """Compile one plan round (the typed op tuple from
    :meth:`FolPlan.round_ops`) into a fused closure.

    ``replay(mem, addr_vectors, label_vectors) -> (winners, losers)``
    performs the whole scatter→gather→compare→filter round with direct
    array code — one Python call per round instead of one per op.  The
    scatter still routes through ``mem._raw_scatter`` (rng parity);
    with ``scalar_tail`` the last tuple's labels land via scalar
    stores after the vector scatters, mirroring §3.3 exactly.
    """
    if len(round_ops) != 4 or not (
        isinstance(round_ops[0], ScatterLabels)
        and isinstance(round_ops[1], GatherBack)
        and isinstance(round_ops[2], CompareLabels)
        and isinstance(round_ops[3], FilterSurvivors)
    ):
        raise ReproError(
            f"cannot record round: unexpected op shape "
            f"{tuple(type(op).__name__ for op in round_ops)}"
        )
    scatter = round_ops[0]
    offset = int(scatter.work_offset)
    policy = scatter.policy
    scalar_tail = bool(scatter.scalar_tail)

    def replay(mem, addr_vectors, label_vectors):
        words = mem.words
        works = [v + offset for v in addr_vectors] if offset else addr_vectors
        if scalar_tail:
            for wa, lb in zip(works, label_vectors):
                mem._raw_scatter(wa[:-1], lb[:-1], policy)
            for wa, lb in zip(works, label_vectors):
                words[wa[-1]] = lb[-1]
        else:
            for wa, lb in zip(works, label_vectors):
                mem._raw_scatter(wa, lb, policy)
        survived = None
        for wa, lb in zip(works, label_vectors):
            mask = words[wa] == lb
            survived = mask if survived is None else survived & mask
        winners = np.flatnonzero(survived)
        if winners.size == 0:
            raise DeadlockError(
                "recorded FOL round produced no survivors — ELS condition violated"
            )
        return winners, np.flatnonzero(~survived)

    return replay


def _labels_for(n: int, arity: int) -> List[np.ndarray]:
    """Unique-across-vectors labels, uncharged (native has no ledger)."""
    return [
        np.arange(k * n, (k + 1) * n, dtype=np.int64) for k in range(arity)
    ]


#: Lanes and repeats for the one-shot auto-mode probe.  The probe runs
#: on a scratch machine with all-distinct addresses (every lane wins
#: its round), so it measures pure dispatch cost, never plan semantics.
CALIBRATION_LANES = 256
CALIBRATION_REPEATS = 5


@register_backend
class NativeBackend(Backend):
    """Raw-NumPy execution with recorded-loop replay (no cycle model)."""

    name = "native"
    calibrated = False

    def __init__(self, recorded_loop=True) -> None:
        if recorded_loop not in (True, False, "auto"):
            raise ReproError(
                f"recorded_loop must be True, False or 'auto', "
                f"got {recorded_loop!r}"
            )
        self.recorded_loop = recorded_loop
        self._rounds: Dict[Tuple[int, int, str], object] = {}
        #: Auto-mode calibration outcomes per plan shape:
        #: ``(arity, work_offset, policy) -> "recorded" | "interpreted"``.
        self._modes: Dict[Tuple[int, int, str], str] = {}

    def make_machine(self, words: int, *, cost_model=None, seed: int = 0):
        if cost_model is not None:
            raise ReproError(
                "the native backend has no cycle model; cost_model "
                "overrides only apply to the sim backend"
            )
        return NativeOps(NativeMemory(words, seed=seed))

    def _recorded(self, plan: FolPlan):
        key = (plan.arity, plan.work_offset, plan.policy)
        fn = self._rounds.get(key)
        if fn is None:
            fn = compile_round(plan.round_ops())
            self._rounds[key] = fn
        return fn

    @property
    def chosen_modes(self) -> Dict[str, str]:
        """Auto-mode calibration outcomes so far, keyed by plan shape
        (``"fol1/off17/arbitrary" -> "recorded"``).  Empty until the
        first plan runs under ``recorded_loop="auto"``."""
        return {
            f"fol{a}/off{o}/{p}": mode
            for (a, o, p), mode in sorted(self._modes.items())
        }

    def _calibrate(self, plan: FolPlan, key: Tuple[int, int, str]) -> str:
        """Race one fused replay against one interpreted round on a
        scratch machine (best of :data:`CALIBRATION_REPEATS`) and cache
        the winner for this plan shape.  All-distinct addresses keep
        every lane a winner, so neither path loops or deadlocks."""
        from ..core.labels import tuple_labels
        from ..runtime.carryover import fol_round, tuple_round

        arity, offset, policy = key
        replay = self._recorded(plan)
        n = CALIBRATION_LANES

        def scratch():
            ops = NativeOps(NativeMemory(arity * n + offset, seed=0))
            addrs = [
                np.arange(k * n, (k + 1) * n, dtype=np.int64)
                for k in range(arity)
            ]
            return ops, addrs

        best_rec = best_int = float("inf")
        for _ in range(CALIBRATION_REPEATS):
            ops, addrs = scratch()
            labels = _labels_for(n, arity)
            t0 = time.perf_counter()
            replay(ops.mem, addrs, labels)
            best_rec = min(best_rec, time.perf_counter() - t0)

            ops, addrs = scratch()
            t0 = time.perf_counter()
            if arity == 1:
                fol_round(
                    ops, addrs[0], ops.iota(n),
                    work_offset=offset, policy=policy,
                )
            else:
                tuple_round(
                    ops, addrs, tuple_labels(ops, n, arity),
                    work_offset=offset, policy=policy,
                )
            best_int = min(best_int, time.perf_counter() - t0)
        mode = "recorded" if best_rec <= best_int else "interpreted"
        self._modes[key] = mode
        return mode

    def _use_recorded(self, plan: FolPlan) -> bool:
        if self.recorded_loop != "auto":
            return bool(self.recorded_loop)
        key = (plan.arity, plan.work_offset, plan.policy)
        mode = self._modes.get(key)
        if mode is None:
            mode = self._calibrate(plan, key)
        return mode == "recorded"

    # ------------------------------------------------------------------
    def run_fol(self, executor, plan: FolPlan, reqs, result) -> int:
        from ..engine.spec import _max_multiplicity

        ops = executor.vm
        result.completed.extend(reqs[i] for i in plan.precompleted)
        live = plan.live
        if live.size:
            if self._use_recorded(plan):
                self._run_recorded(executor, ops, plan, reqs, result)
            else:
                self._run_interpreted(executor, ops, plan, reqs, result)
        return _max_multiplicity(plan.measure)

    # -- recorded: fused round, replayed --------------------------------
    def _run_recorded(self, executor, ops, plan, reqs, result) -> None:
        replay = self._recorded(plan)
        live = plan.live
        n = live.size
        labels = _labels_for(n, plan.arity)
        if executor.carryover:
            winners, losers = replay(ops.mem, plan.addrs, labels)
            plan.commit(ops, winners)
            result.completed.extend(reqs[i] for i in live[winners])
            for i in live[losers]:
                reqs[i].group = plan.group_of(int(i))
                result.carried.append(reqs[i])
            result.rounds += 1
        else:
            positions = np.arange(n, dtype=np.int64)
            rounds = 0
            max_rounds = n + plan.arity
            deferred: List[np.ndarray] = []
            while positions.size:
                if rounds >= max_rounds:
                    raise DeadlockError(
                        f"recorded loop exceeded {max_rounds} rounds with "
                        f"{positions.size} lanes remaining"
                    )
                sub_addrs = [v[positions] for v in plan.addrs]
                sub_labels = [x[positions] for x in labels]
                winners, losers = replay(ops.mem, sub_addrs, sub_labels)
                if plan.arity == 1:
                    # fol1 interleaves each set's main processing with
                    # the rounds; match its (rng-visible) order exactly.
                    plan.commit(ops, positions[winners])
                else:
                    # fol_star computes the whole decomposition first
                    # and commits the sets afterwards; commits draw from
                    # the shared rng, so the order is parity-critical.
                    deferred.append(positions[winners])
                positions = positions[losers]
                rounds += 1
            for s in deferred:
                plan.commit(ops, s)
            result.completed.extend(reqs[i] for i in live)
            result.rounds += rounds

    # -- interpreted: the same program, one facade call per op ----------
    def _run_interpreted(self, executor, ops, plan, reqs, result) -> None:
        from ..core.fol1 import fol1
        from ..core.fol_star import fol_star
        from ..core.labels import tuple_labels
        from ..runtime.carryover import fol_round, tuple_round

        live = plan.live
        if executor.carryover:
            if plan.arity == 1:
                winners, losers = fol_round(
                    ops, plan.addrs[0], ops.iota(live.size),
                    work_offset=plan.work_offset, policy=plan.policy,
                )
            else:
                winners, losers = tuple_round(
                    ops, plan.addrs, tuple_labels(ops, live.size, plan.arity),
                    work_offset=plan.work_offset, policy=plan.policy,
                )
            plan.commit(ops, winners)
            result.completed.extend(reqs[i] for i in live[winners])
            for i in live[losers]:
                reqs[i].group = plan.group_of(int(i))
                result.carried.append(reqs[i])
            result.rounds += 1
        else:
            if plan.arity == 1:
                dec = fol1(
                    ops, plan.addrs[0],
                    work_offset=plan.work_offset, policy=plan.policy,
                    on_set=lambda s, _j: plan.commit(ops, s),
                )
            else:
                dec = fol_star(
                    ops, plan.addrs,
                    work_offset=plan.work_offset, policy=plan.policy,
                )
                for s in dec.sets:
                    plan.commit(ops, s)
            result.completed.extend(reqs[i] for i in live)
            result.rounds += dec.m
