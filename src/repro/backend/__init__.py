"""Pluggable execution backends for FOL plans.

The workload registry (:mod:`repro.engine`) describes *what* each kind
does per micro-batch; a :class:`Backend` decides *how* it runs:

``sim``
    The calibrated S-810 cycle-model VM (:mod:`repro.backend.sim`).
    Bit-identical to the pre-backend execution paths — the golden
    cycle-parity tests pin its exact cycle totals and end-state hashes.
``native``
    Raw NumPy with no cycle accounting (:mod:`repro.backend.native`),
    including a drjit-style recorded loop that captures one FOL round
    and replays it fused.  Real wall-clock requests/sec; identical end
    states (the cross-backend parity suite proves it per kind).

Every executor owns one backend; specs emit backend-neutral
:class:`~repro.backend.plan.FolPlan`\\ s and the backend's
:meth:`Backend.run_fol` executes them.  Layers above the backend
(``repro.engine``, ``repro.runtime``, ``repro.shard``) must not import
:mod:`repro.machine.vm` directly — ``tools/check_backend_neutral.py``
enforces that in CI.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

from ..errors import ReproError


class Backend:
    """One way of executing FOL plans.

    Subclasses provide a machine (an object with the
    :class:`~repro.machine.vm.VectorMachine` surface — the *ops
    facade* specs and commits program against) and an executor for
    :class:`~repro.backend.plan.FolPlan`.
    """

    #: Registry name (the ``--backend`` CLI value).
    name: str = ""
    #: True when the backend charges a calibrated cycle model; cycle-only
    #: features (tracing, deadline batching, cost-model overrides) are
    #: rejected on uncalibrated backends instead of silently measuring 0.
    calibrated: bool = False

    def make_machine(self, words: int, *, cost_model=None, seed: int = 0):
        """Build this backend's ops facade over ``words`` of storage."""
        raise NotImplementedError

    def run_fol(self, executor, plan, reqs, result) -> int:
        """Execute one kind's :class:`~repro.backend.plan.FolPlan` for a
        batch slice; extends ``result`` and returns the observed
        multiplicity M (mirrors ``WorkloadSpec.run``)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
_BACKENDS: Dict[str, Type[Backend]] = {}


def register_backend(cls: Type[Backend]) -> Type[Backend]:
    """Register a backend class under its :attr:`Backend.name`."""
    if not cls.name:
        raise ReproError("backend needs a non-empty name")
    if cls.name in _BACKENDS:
        raise ReproError(f"backend {cls.name!r} registered twice")
    _BACKENDS[cls.name] = cls
    return cls


#: Presentation order for the built-ins: the reference backend leads
#: the ``--backend`` choices and the ``repro info`` listing regardless
#: of which backend module happened to import first.
_BUILTIN_ORDER = ("sim", "native")


def _ensure_builtins() -> None:
    # Deferred so importing repro.backend (e.g. from a kind module) does
    # not recurse through repro.runtime, which the sim backend wraps.
    if "sim" not in _BACKENDS or "native" not in _BACKENDS:
        from . import native, sim  # noqa: F401  (self-registering)


def registered_backends() -> Tuple[str, ...]:
    """Registered backend names: built-ins first (in presentation
    order), then third-party registrations in registration order."""
    _ensure_builtins()
    builtin = [n for n in _BUILTIN_ORDER if n in _BACKENDS]
    return tuple(builtin + [n for n in _BACKENDS if n not in _BUILTIN_ORDER])


def get_backend(name: str) -> Backend:
    """A fresh instance of the backend registered as ``name``
    (:class:`~repro.errors.ReproError` on unknown, naming the
    registered backends)."""
    _ensure_builtins()
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ReproError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(_BACKENDS)}"
        ) from None
    return cls()


def resolve_backend(backend) -> Backend:
    """Coerce a name or instance to a :class:`Backend` instance."""
    if isinstance(backend, Backend):
        return backend
    return get_backend(backend)


def backend_summaries() -> List[Tuple[str, bool, str]]:
    """(name, calibrated, one-line description) per registered backend
    (for ``repro info`` and docs)."""
    out = []
    for name in registered_backends():
        cls = _BACKENDS[name]
        doc = (cls.__doc__ or "").strip().splitlines()
        out.append((name, bool(cls.calibrated), doc[0] if doc else ""))
    return out


__all__ = [
    "Backend",
    "backend_summaries",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]
