"""The ``"sort"`` kind: streaming address-calculation sort (paper §4.2).

The worked example for "how to add a workload kind": this one module
registers a routing domain and a spec, and the stream service, the
K-shard engine, the scalar oracle, the fuzzer and the CLI all serve
the kind with no further edits (see ``docs/architecture.md``).

Each request contributes ``key`` (a value in ``[0, key_space)``) to a
persistent sorted set.  State is a :class:`SortStore`: the work array
``C`` of :func:`repro.sorting.vector_address_calc_sort`, kept *live*
across micro-batches — every batch runs one FOL insertion round
(order-preserving hash, masked probing, negated-subscript labels,
displaced-run shifting), so the store is sorted after every batch and
filtered lanes recirculate through the ordinary carryover path.

Routing is by value residue (order-preserving within the domain fold),
merge-on-read like the BST: each shard sorts the values it owns and
the global output is the sorted merge of per-shard stores, so
migration is routing-only (:data:`~repro.engine.spec.MIGRATE_ROUTE`).

Like ``bst``, this kind keeps a custom :meth:`SortSpec.run` rather
than emitting a :class:`~repro.backend.plan.FolPlan`: each insertion
round recomputes conflict addresses from the store's *current*
contents (hash, probe, displaced-run shift), so there is no fixed
address vector to hand a backend up front.  The hook programs only
the backend-supplied ops facade (``executor.vm``), so it runs on the
``native`` backend unchanged.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...errors import ReproError
from ..spec import (
    MIGRATE_ROUTE,
    EngineContext,
    RoutingDomain,
    WorkloadSpec,
    _max_multiplicity,
    register,
    register_domain,
)


class SortStore:
    """The live work array ``C`` of an incremental address-calc sort.

    ``C`` has ``3 * capacity`` slots plus one guard word; empty slots
    hold ``unentered = vmax`` (greater than any datum), and the
    insertion invariant of §4.2 keeps the entered values sorted.  The
    hash scale is fixed by ``capacity`` (not per-batch size) so the
    layout is stable across micro-batches.
    """

    def __init__(self, executor, allocator, capacity: int) -> None:
        self.capacity = max(capacity, 1)
        self.c_size = 3 * self.capacity
        self.vmax = executor.ctx.key_space
        self.unentered = self.vmax
        self.base = allocator.alloc(self.c_size + 1, "engine.sort")
        self.entered = 0
        self._mem = executor.vm.mem
        self._mem.fill(self.base, self.c_size + 1, self.unentered)

    def hash_of(self, vm, values: np.ndarray) -> np.ndarray:
        """Order-preserving spreading hash ``floor(2n·a / vmax)``."""
        return vm.floordiv(vm.mul(values, 2 * self.capacity), self.vmax)

    def values(self) -> List[int]:
        """Entered values, in sorted order (uncharged inspection)."""
        words = self.memory_words()
        return [int(v) for v in words[words != self.unentered]]

    def memory_words(self) -> np.ndarray:
        return np.asarray(self._mem.peek_range(self.base, self.c_size))


class SortSpec(WorkloadSpec):
    name = "sort"
    domain = "sort"
    description = "enter key into the streaming address-calculation sort"

    # -- sizing and shared state ---------------------------------------
    def state_words(self, capacity: int, ctx: EngineContext) -> int:
        # work array C (3n) + guard word
        return 3 * max(capacity, 1) + 1

    default_capacity = 64

    def build_state(self, executor, allocator, capacity: int):
        return SortStore(executor, allocator, capacity)

    # -- request construction -------------------------------------------
    def validate(self, req) -> None:
        if req.key < 0:
            raise ReproError(
                f"{self.name} request {req.rid} needs a non-negative "
                f"value, got {req.key}"
            )

    def fuzz_request(self, rid, key, ctx):
        from ...runtime.queue import Request

        return Request(rid=rid, kind=self.name, key=key)

    # -- execution ------------------------------------------------------
    def run(self, executor, reqs: List, result) -> int:
        store = executor.kind_state[self.name]
        vm = executor.vm
        values = np.asarray([r.key for r in reqs], dtype=np.int64)
        if values.size and values.max() >= store.vmax:
            raise ReproError(
                f"{self.name} values must lie in [0, {store.vmax})"
            )
        if store.entered + len(reqs) > store.capacity:
            raise ReproError(
                f"sort store holds {store.entered} values; entering "
                f"{len(reqs)} more exceeds capacity {store.capacity}"
            )
        lanes = np.arange(len(reqs), dtype=np.int64)
        rounds = 0
        multiplicity = 1
        limit = len(reqs) + 1
        while lanes.size:
            rounds += 1
            if rounds > limit:
                raise ReproError(f"sort round loop exceeded {limit} rounds")
            rem = values[lanes]
            entered, caddr, m = self._insert_round(
                vm, store, rem, executor.policy
            )
            multiplicity = max(multiplicity, m)
            won = lanes[entered]
            store.entered += int(won.size)
            result.completed.extend(reqs[i] for i in won)
            lost = lanes[~entered]
            if executor.carryover:
                # One FOL round per batch; filtered lanes recirculate
                # with the contested slot as their conflict group.
                lost_addrs = caddr[~entered]
                for i, addr in zip(lost, lost_addrs):
                    reqs[i].group = int(addr)
                    result.carried.append(reqs[i])
                break
            lanes = lost  # paper semantics: retry in-batch until entered
        result.rounds += rounds
        return multiplicity

    def _insert_round(self, vm, store, rem: np.ndarray, policy: str):
        """One §4.2 round: probe (B), FOL insert (C), shift (D).
        Returns ``(entered mask, probed conflict addresses, observed M)``."""
        base = store.base
        unentered = store.unentered
        hashed = store.hash_of(vm, rem)

        # B. advance each datum to the first slot with C[h] > a
        while True:
            caddr = vm.add(hashed, base)
            cvals = vm.gather(caddr)
            uninsertable = vm.le(cvals, rem)
            if vm.count_true(uninsertable) == 0:
                break
            hashed = vm.select(uninsertable, vm.add(hashed, 1), hashed)
            vm.loop_overhead()

        # C. insert under the FOL overwrite check: store the negated
        # subscripts -ι, read back, and let survivors store their data.
        caddr = vm.add(hashed, base)
        multiplicity = max(_max_multiplicity(caddr), 1)
        work = vm.gather(caddr)  # save the displaced values
        ids = vm.neg(vm.iota(rem.size, start=1))
        vm.scatter(caddr, ids, policy=policy)
        readback = vm.gather(caddr)
        entered = vm.eq(readback, ids)
        vm.scatter_masked(caddr, rem, entered, policy=policy)

        # D. shift the displaced runs (only for successful inserts whose
        # slot held a real value).  All chains advance in lock-step from
        # distinct starts, so the scatters below are conflict-free.
        to_shift = vm.mask_and(entered, vm.ne(work, unentered))
        shift_vals = vm.compress(work, to_shift)
        shift_addr = vm.compress(vm.add(caddr, 1), to_shift)
        while shift_vals.size:
            nxt = vm.gather(shift_addr)
            vm.scatter(shift_addr, shift_vals, policy=policy)
            nonempty = vm.ne(nxt, unentered)
            shift_vals = vm.compress(nxt, nonempty)
            shift_addr = vm.compress(vm.add(shift_addr, 1), nonempty)
            vm.loop_overhead()
        return entered, caddr, multiplicity

    # -- differential oracle --------------------------------------------
    def _engine_values(self, engine) -> List[int]:
        if hasattr(engine, "workers"):  # sharded coordinator
            merged: List[int] = []
            for w in engine.workers:
                merged.extend(w.executor.kind_state[self.name].values())
            return sorted(merged)
        return engine.kind_state[self.name].values()

    def oracle_diff(self, engine, requests, ctx: EngineContext):
        from ...audit.oracle import diff_sorted

        data = [r.key for r in self.requests_of(requests)]
        return diff_sorted(self._engine_values(engine), data)

    # -- core-kernel fuzzing --------------------------------------------
    def core_fuzz(self, vm, allocator, keys: np.ndarray, ctx: EngineContext):
        from ...audit.oracle import diff_sorted
        from ...sorting.address_calc import (
            AddressCalcWorkspace,
            vector_address_calc_sort,
        )

        ws = AddressCalcWorkspace(allocator, max(keys.size, 1))
        out = vector_address_calc_sort(vm, ws, keys, vmax=ctx.key_space)
        return diff_sorted(out, keys)


register_domain(
    RoutingDomain(
        SortSpec.domain, lambda ctx: ctx.key_space, migration=MIGRATE_ROUTE
    )
)
register(SortSpec())
