"""The ``"bst"`` kind: binary-search-tree insertion (paper §4.1).

Conflict address: the NIL slot a descent claims.  Routing is by key
residue (``key % key_space``): each shard grows its own tree over the
keys it owns and the global inorder is the sorted merge of per-shard
inorders, so migration is routing-only
(:data:`~repro.engine.spec.MIGRATE_ROUTE`).  A carried lane owns a
pre-built node and a descent slot in one shard's memory, so it stays
pinned to that shard (:meth:`BstSpec.pin_shard`) even if a migration
re-routed its residue.

This kind keeps a custom :meth:`BstSpec.run` instead of emitting a
:class:`~repro.backend.plan.FolPlan`: the descent interleaves claim
rounds with pointer-chasing traversal steps, and the conflict address
set changes *within* the batch as lanes descend — an irregular shape
the single-round plan IR deliberately does not model.  The hook
programs only the executor's backend-supplied ops facade
(``executor.vm``), so it runs unchanged — and uncharged — on the
``native`` backend.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...errors import ReproError
from ...mem.arena import NIL
from ...trees.bst import BinarySearchTree
from ..spec import EngineContext, WorkloadSpec, register


class BstSpec(WorkloadSpec):
    name = "bst"
    domain = "bst"
    state_attr = "tree"
    capacity_param = "bst_capacity"
    description = "insert key into the binary search tree"

    # -- sizing and shared state ---------------------------------------
    def state_words(self, capacity: int, ctx: EngineContext) -> int:
        # root word + (key, left, right) node records
        return 1 + 3 * max(capacity, 1)

    def build_state(self, executor, allocator, capacity: int):
        return BinarySearchTree(allocator, max(capacity, 1))

    # -- execution ------------------------------------------------------
    def run(self, executor, reqs: List, result) -> int:
        from ...runtime.queue import FRESH_SLOT

        vm = executor.vm
        tree = executor.tree
        nodes = tree.nodes
        off_key = nodes.offset("key")
        off_left = nodes.offset("left")
        off_right = nodes.offset("right")
        n = len(reqs)
        keys = np.asarray([r.key for r in reqs], dtype=np.int64)

        # Pre-build a node per *fresh* lane; carried lanes already own one.
        fresh = [i for i, r in enumerate(reqs) if r.node == NIL]
        if fresh:
            built = nodes.alloc_many(len(fresh))
            vm.iota(len(fresh))  # charge the address generation
            vm.scatter(vm.add(built, off_key), keys[fresh], policy=executor.policy)
            vm.scatter(vm.add(built, off_left), vm.splat(len(fresh), NIL), policy=executor.policy)
            vm.scatter(vm.add(built, off_right), vm.splat(len(fresh), NIL), policy=executor.policy)
            for i, ptr in zip(fresh, built):
                reqs[i].node = int(ptr)
        node_ptrs = np.asarray([r.node for r in reqs], dtype=np.int64)

        slots = np.asarray(
            [tree.root_addr if r.slot == FRESH_SLOT else r.slot for r in reqs],
            dtype=np.int64,
        )
        labels = vm.iota(n)
        active = vm.iota(n)
        claim_rounds = 0
        limit = 2 * (nodes.capacity + n) + 4
        steps = 0
        while active.size:
            steps += 1
            if steps > limit:
                raise ReproError(f"stream BST insert exceeded {limit} steps")
            cur_slots = slots[active]
            ptrs = vm.gather(cur_slots)
            at_nil = vm.eq(ptrs, NIL)

            if vm.any_true(at_nil):
                claim_rounds += 1
                lb = labels[active]
                vm.scatter_masked(cur_slots, lb, at_nil, policy=executor.policy)
                readback = vm.gather(cur_slots)
                won = vm.mask_and(at_nil, vm.eq(readback, lb))
                if vm.audit is not None:
                    vm.audit.on_claim(cur_slots, at_nil, won)
                vm.scatter_masked(cur_slots, node_ptrs[active], won, policy=executor.policy)
                if not vm.any_true(won):
                    raise ReproError("stream BST claim round made no progress")
                result.completed.extend(reqs[i] for i in active[won])
                if executor.carryover:
                    # Filtered claimants defer to the next batch, resuming
                    # at the slot the winner just filled.
                    lost = vm.mask_and(at_nil, vm.mask_not(won))
                    for i, slot in zip(active[lost], cur_slots[lost]):
                        reqs[i].slot = int(slot)
                        reqs[i].group = int(slot)
                        result.carried.append(reqs[i])
                    active = vm.compress(active, vm.mask_not(at_nil))
                else:
                    # Paper semantics: losers keep descending in-batch —
                    # next step they find the winner's node in the slot.
                    active = vm.compress(active, vm.mask_not(won))
                if active.size == 0:
                    break
                cur_slots = slots[active]
                ptrs = vm.gather(cur_slots)

            node_keys = vm.gather(vm.add(ptrs, off_key))
            go_left = vm.lt(keys[active], node_keys)
            child = vm.add(ptrs, vm.select(go_left, off_left, off_right))
            slots[active] = child
            vm.loop_overhead()

        result.rounds += claim_rounds
        return max(claim_rounds, 1)

    # -- routing --------------------------------------------------------
    def pin_shard(self, req) -> int:
        # A carried lane's pre-built node and descent slot live in one
        # shard's memory; it must resume there.
        if req.node != NIL and req.home >= 0:
            return req.home
        return -1

    # -- differential oracle --------------------------------------------
    def oracle_diff(self, engine, requests, ctx: EngineContext):
        from ...audit.oracle import diff_bst

        keys = [r.key for r in self.requests_of(requests)]
        if hasattr(engine, "bst_inorder"):  # sharded coordinator
            inorder = engine.bst_inorder()
        else:  # single-pipeline executor
            inorder = engine.tree.inorder()
        return diff_bst(inorder, keys)

    # -- core-kernel fuzzing --------------------------------------------
    def core_fuzz(self, vm, allocator, keys: np.ndarray, ctx: EngineContext):
        from ...audit.oracle import diff_bst
        from ...trees.bst import vector_bst_insert

        tree = BinarySearchTree(allocator, max(keys.size, 1))
        vector_bst_insert(vm, tree, keys)
        tree.check_bst_invariant()
        return diff_bst(tree.inorder(), keys)


register(BstSpec())
