"""The registered request kinds — the only modules that may spell
kind-string literals (enforced by ``tools/check_no_stray_kinds.py``).

The three core routing domains are declared here, *before* the kind
modules import, in the order the legacy ``PartitionMap`` iterated them
(load-bearing: :meth:`~repro.shard.partition.PartitionMap.shard_load`
sums per-domain float traffic in iteration order, and golden cycle
parity pins the resulting rebalance decisions bit-for-bit).  A kind
module may also register its own domain — ``sort`` does — which
appends after these.

Import order sets spec registration order, which fixes (a) executor
state allocation order (table → tree → cells → sort workspace; golden
layout parity) and (b) the default stream/fuzz mix cycle (the legacy
``hash, bst, list, xfer`` cycle extended with ``sort``).
"""

from ..spec import (
    MIGRATE_CELL,
    MIGRATE_CHAIN,
    MIGRATE_ROUTE,
    RoutingDomain,
    register_domain,
)

register_domain(
    RoutingDomain("hash", lambda ctx: ctx.table_size, migration=MIGRATE_CHAIN)
)
register_domain(
    RoutingDomain("list", lambda ctx: ctx.n_cells, migration=MIGRATE_CELL)
)
register_domain(
    RoutingDomain("bst", lambda ctx: ctx.key_space, migration=MIGRATE_ROUTE)
)

from . import hash as hash_kind  # noqa: E402
from . import bst as bst_kind  # noqa: E402
from . import cells as cells_kind  # noqa: E402
from . import xfer as xfer_kind  # noqa: E402
from . import sort as sort_kind  # noqa: E402

__all__ = ["hash_kind", "bst_kind", "cells_kind", "xfer_kind", "sort_kind"]
