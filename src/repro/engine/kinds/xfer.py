"""The ``"xfer"`` kind: atomic two-cell transfers — the L = 2 FOL* case.

Moves ``delta`` from cell ``key`` to cell ``key2``.  Each unit process
rewrites a *tuple* of two storage areas, so filtering is FOL* (§3.3),
not FOL1: a tuple completes only when both of its labels survive, and
each round's last tuple is written with scalar stores so the round
cannot deadlock.

The kind owns no state — it rides the ``"list"`` cell bank
(:mod:`repro.engine.kinds.cells`) and routes both of its cells through
the same domain.  When the two cells have different owners the router
emits a cross-shard unit, resolved by the coordinator's two-phase
claim/commit; :meth:`XferSpec.commit_cross` applies a winning unit on
both owners' memories and :meth:`XferSpec.carry_group` assigns the
conflict group for a claim loser.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...backend.plan import FolPlan
from ...errors import ReproError
from ..spec import EngineContext, WorkloadSpec, register
from .cells import cell_car_addrs


class XferSpec(WorkloadSpec):
    name = "xfer"
    arity = 2
    domain = "list"
    description = "move delta atomically between two shared list cells"

    # -- request construction and validation ---------------------------
    def validate(self, req) -> None:
        if req.key2 < 0:
            raise ReproError(
                f"{self.name} request {req.rid} needs a non-negative key2, "
                f"got {req.key2}"
            )

    def make_request(self, rid, key, key2, delta, arrival, ctx):
        from ...runtime.queue import Request

        return Request(
            rid=rid, kind=self.name, key=key % ctx.n_cells,
            key2=key2 % ctx.n_cells, delta=delta, arrival=arrival,
        )

    def fuzz_request(self, rid, key, ctx):
        from ...runtime.queue import Request

        return Request(
            rid=rid, kind=self.name, key=key % ctx.n_cells,
            key2=(key * 7 + rid) % ctx.n_cells, delta=1 + key % 5,
        )

    # -- execution ------------------------------------------------------
    def plan(self, executor, reqs: List) -> FolPlan:
        src_addrs = cell_car_addrs(
            executor, [r.key for r in reqs], f"{self.name} source"
        )
        dst_addrs = cell_car_addrs(
            executor, [r.key2 for r in reqs], f"{self.name} target"
        )
        deltas = np.asarray([r.delta for r in reqs], dtype=np.int64)

        # Self-transfers (key == key2) are net no-ops and internally
        # duplicated tuples in the §3.3 sense; retire them up front.
        loop_idx = [i for i, r in enumerate(reqs) if r.key == r.key2]
        live_idx = np.asarray(
            [i for i, r in enumerate(reqs) if r.key != r.key2], dtype=np.int64
        )

        # Atoms are sign-tagged negated: value -= d is word += d and
        # value += d is word -= d.  Gathers/scatters run sequentially
        # per round, so read-modify-write per parallel-processable set
        # is safe (no two tuples in a set share a cell).
        def apply(ops, live_positions: np.ndarray) -> None:
            positions = live_idx[live_positions]
            if positions.size == 0:
                return
            a_src = src_addrs[positions]
            a_dst = dst_addrs[positions]
            d = deltas[positions]
            ops.scatter(a_src, ops.add(ops.gather(a_src), d), policy=executor.policy)
            ops.scatter(a_dst, ops.sub(ops.gather(a_dst), d), policy=executor.policy)

        return FolPlan(
            kind=self.name,
            arity=2,
            policy=executor.policy,
            work_offset=executor.cells.work_offset,
            addrs=[src_addrs[live_idx], dst_addrs[live_idx]],
            commit=apply,
            group_of=lambda i: int(src_addrs[i]),
            measure=np.concatenate([src_addrs, dst_addrs]),
            live=live_idx,
            precompleted=loop_idx,
        )

    # -- routing --------------------------------------------------------
    def route_indices(self, req, fold):
        return (fold(req.key), fold(req.key2))

    # -- cross-shard claim/commit ---------------------------------------
    def carry_group(self, coordinator, unit) -> int:
        # Workers share one layout, so worker 0's cell address is the
        # conflict-group address on every shard.
        return coordinator.workers[0].cell_addr(unit.src_index)

    def commit_cross(self, coordinator, unit) -> None:
        """Apply one winning cross-shard transfer on both owners' cells
        (value -= delta at source, += delta at destination).  The cell
        words hold sign-tagged negated atoms, so value moves are word
        moves with flipped sign.  Applied with uncharged stores: the
        simulated cost is the commit payload charged by the
        coordinator's exchange accounting."""
        d = unit.request.delta
        src_w = coordinator.workers[unit.src_shard]
        dst_w = coordinator.workers[unit.dst_shard]
        a_src = src_w.cell_addr(unit.src_index)
        a_dst = dst_w.cell_addr(unit.dst_index)
        src_w.vm.mem.poke(a_src, int(src_w.vm.mem.peek(a_src)) + d)
        dst_w.vm.mem.poke(a_dst, int(dst_w.vm.mem.peek(a_dst)) - d)

    # -- differential oracle --------------------------------------------
    def cell_deltas(self, req):
        return ((req.key, -req.delta), (req.key2, req.delta))

    # oracle_diff stays None: the cell bank's owner (the "list" spec)
    # folds this kind's cell_deltas into its bank-wide diff.


register(XferSpec())
