"""The ``"hash"`` kind: chained-hash insertion (paper Figure 7).

Conflict address: the chain head of slot ``key % table_size``, so the
routing domain is the slot space and ownership follows slots, not keys.
Chain migration re-links address-preserved chains into the
destination's node arena (:data:`~repro.engine.spec.MIGRATE_CHAIN`),
which is why :meth:`HashSpec.shard_capacity` over-provisions nodes —
bump arenas never reclaim the source's records.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...backend.plan import FolPlan, identity_live
from ...hashing.table import ChainedHashTable
from ..spec import EngineContext, WorkloadSpec, register


class HashSpec(WorkloadSpec):
    name = "hash"
    domain = "hash"
    state_attr = "table"
    capacity_param = "hash_capacity"
    description = "insert key into the chained hash table"

    # -- sizing and shared state ---------------------------------------
    def state_words(self, capacity: int, ctx: EngineContext) -> int:
        # heads + label work area, then (key, next) node records
        return 2 * ctx.table_size + 2 * max(capacity, 1)

    def shard_capacity(self, n: int) -> int:
        # Chain migration re-allocates nodes at the destination, so
        # shard arenas get extra headroom (see ShardCoordinator).
        return 3 * max(n, 1) + 64

    def build_state(self, executor, allocator, capacity: int):
        return ChainedHashTable(
            allocator, executor.ctx.table_size, max(capacity, 1)
        )

    # -- execution ------------------------------------------------------
    def _head_addrs(self, executor, keys: np.ndarray) -> np.ndarray:
        table = executor.table
        hashed = executor.vm.mod(keys, table.size)
        return executor.vm.add(hashed, table.base)

    def _enter(
        self, executor, head_addrs: np.ndarray, keys: np.ndarray,
        positions: np.ndarray,
    ) -> None:
        """Figure 7 main processing for one parallel-processable set:
        allocate a node per lane and link it at its chain head."""
        vm = executor.vm
        table = executor.table
        nodes = table.nodes.alloc_many(positions.size)
        vm.iota(positions.size)  # charge the address generation
        key_field = table.nodes.offset("key")
        next_field = table.nodes.offset("next")
        heads = head_addrs[positions]
        vm.scatter(vm.add(nodes, key_field), keys[positions], policy=executor.policy)
        old_heads = vm.gather(heads)
        vm.scatter(vm.add(nodes, next_field), old_heads, policy=executor.policy)
        vm.scatter(heads, nodes, policy=executor.policy)

    def plan(self, executor, reqs: List) -> FolPlan:
        """Figure 7 as a plan: conflict addresses are the chain heads,
        the commit links one pre-allocated node per winning lane."""
        keys = np.asarray([r.key for r in reqs], dtype=np.int64)
        head_addrs = self._head_addrs(executor, keys)
        return FolPlan(
            kind=self.name,
            arity=1,
            policy=executor.policy,
            work_offset=executor.table.work_offset,
            addrs=[head_addrs],
            commit=lambda ops, s: self._enter(executor, head_addrs, keys, s),
            group_of=lambda i: int(head_addrs[i]),
            measure=head_addrs,
            live=identity_live(len(reqs)),
        )

    # -- differential oracle --------------------------------------------
    def oracle_diff(self, engine, requests, ctx: EngineContext):
        from ...audit.oracle import diff_hash

        keys = [r.key for r in self.requests_of(requests)]
        if hasattr(engine, "chain_multisets"):  # sharded coordinator
            chains = engine.chain_multisets()
        else:  # single-pipeline executor
            chains = {
                slot: ks
                for slot, ks in enumerate(engine.table.all_chains())
                if ks
            }
        return diff_hash(chains, keys, ctx.table_size)

    # -- core-kernel fuzzing --------------------------------------------
    def core_fuzz(self, vm, allocator, keys: np.ndarray, ctx: EngineContext):
        from ...audit.oracle import diff_hash
        from ...hashing.chained import vector_chained_insert

        table = ChainedHashTable(allocator, ctx.table_size, max(keys.size, 1))
        vector_chained_insert(vm, table, keys)
        chains = {
            slot: ks for slot, ks in enumerate(table.all_chains()) if ks
        }
        return diff_hash(chains, keys, ctx.table_size)


register(HashSpec())
