"""The ``"list"`` kind: shared list-cell bumps (paper §4.3 list ops).

State is a bank of cons cells, one per cell number, each holding a
sign-tagged negated atom; a request adds ``delta`` to cell ``key``.
The conflict address is the cell's car word, the routing domain is the
cell-number space, and migration transfers the shard's accumulated
value (:data:`~repro.engine.spec.MIGRATE_CELL`) — the global value of
a cell is the sum of shard contributions.

The cell bank is shared with the ``"xfer"`` kind
(:mod:`repro.engine.kinds.xfer`), which rewrites two cells per unit
process; :func:`cell_car_addrs` is the shared request → conflict
address map.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...backend.plan import FolPlan, identity_live
from ...errors import ReproError
from ...lists.cells import ConsArena, encode_atom
from ...mem.arena import NIL
from ..spec import EngineContext, WorkloadSpec, register


class CellBank:
    """The shared list cells: a cons arena plus one pointer per cell."""

    def __init__(self, allocator, n_cells: int) -> None:
        self.arena = ConsArena(allocator, max(n_cells, 1))
        # One cell per index, value 0 (sign-tagged negated atoms).
        self.ptrs = np.asarray(
            [self.arena.cons(encode_atom(0), NIL) for _ in range(n_cells)],
            dtype=np.int64,
        )


def cell_car_addrs(executor, cells: List[int], what: str) -> np.ndarray:
    """Vector of car-word addresses for ``cells`` (validates range)."""
    n_cells = executor.ctx.n_cells
    for c in cells:
        if not 0 <= c < n_cells:
            raise ReproError(
                f"{what} targets cell {c}, but only {n_cells} cells exist"
            )
    off_car = executor.cells.cells.offset("car")
    return executor.vm.add(executor._cell_ptrs[cells], off_car)


class ListSpec(WorkloadSpec):
    name = "list"
    domain = "list"
    description = "add delta to a shared list cell"

    # -- sizing and shared state ---------------------------------------
    def state_words(self, capacity: int, ctx: EngineContext) -> int:
        # cells + shadow work + marks (sized by the cell bank, not by
        # the workload — every batch reuses the same cells)
        return 6 * max(ctx.n_cells, 1)

    def build_state(self, executor, allocator, capacity: int):
        return CellBank(allocator, executor.ctx.n_cells)

    def state_aliases(self, state):
        return {"cells": state.arena, "_cell_ptrs": state.ptrs}

    # -- execution ------------------------------------------------------
    def plan(self, executor, reqs: List) -> FolPlan:
        car_addrs = cell_car_addrs(
            executor, [r.key for r in reqs], f"{self.name} request"
        )
        deltas = np.asarray([r.delta for r in reqs], dtype=np.int64)

        def bump(ops, positions: np.ndarray) -> None:
            addrs = car_addrs[positions]
            words = ops.gather(addrs)
            # Atoms are sign-tagged negated, so value += d is word -= d.
            ops.scatter(
                addrs, ops.sub(words, deltas[positions]), policy=executor.policy
            )

        return FolPlan(
            kind=self.name,
            arity=1,
            policy=executor.policy,
            work_offset=executor.cells.work_offset,
            addrs=[car_addrs],
            commit=bump,
            group_of=lambda i: int(car_addrs[i]),
            measure=car_addrs,
            live=identity_live(len(reqs)),
        )

    # -- request construction -------------------------------------------
    def make_request(self, rid, key, key2, delta, arrival, ctx):
        from ...runtime.queue import Request

        return Request(
            rid=rid, kind=self.name, key=key % ctx.n_cells,
            delta=delta, arrival=arrival,
        )

    def fuzz_request(self, rid, key, ctx):
        from ...runtime.queue import Request

        return Request(
            rid=rid, kind=self.name, key=key % ctx.n_cells, delta=1 + key % 5
        )

    # -- differential oracle --------------------------------------------
    def cell_deltas(self, req):
        return ((req.key, req.delta),)

    def oracle_diff(self, engine, requests, ctx: EngineContext):
        """Checks the whole cell bank: expected values are accumulated
        from *every* spec's ``cell_deltas`` (the bank is shared with
        tuple kinds), so this diff runs once for the bank owner."""
        from ...audit.oracle import diff_list
        from ..spec import specs

        deltas = []
        for spec in specs():
            for r in spec.requests_of(requests):
                deltas.extend(spec.cell_deltas(r))
        return diff_list(engine.list_values(), ctx.n_cells, deltas)


register(ListSpec())
