"""The workload registry: one declarative spec per request kind.

Before this layer existed every engine hard-coded the request kinds it
could serve: the stream executor, the shard router, the partition map,
the audit oracles, the fuzz generators and the CLI each carried their
own ``if kind == ... elif kind == ...`` chain, so adding one unit
process meant editing every layer in lock-step — and a kind any layer
forgot about failed at runtime, deep inside that layer.

A :class:`WorkloadSpec` declares a kind **once**, bundling everything
the engines need to serve it:

* the FOL planner/executor hook (:meth:`WorkloadSpec.run` — FOL1 for
  single-address kinds, FOL* for arity-L tuple kinds), plus the shared
  state it mutates (:meth:`WorkloadSpec.build_state`, sized by
  :meth:`WorkloadSpec.state_words`);
* its routing domain for owner-computes sharding (a
  :class:`RoutingDomain` naming the partition-key index space — chain
  slot, cell number, key residue — and how owned state migrates) and
  the request → index map (:meth:`WorkloadSpec.route_indices`);
* its scalar differential oracle (:meth:`WorkloadSpec.oracle_diff`)
  and routing-invariant audit hook (:meth:`WorkloadSpec.routing_audit`);
* its fuzz-generator and workload-mix constructors
  (:meth:`WorkloadSpec.fuzz_request`, :meth:`WorkloadSpec.make_request`)
  and CLI registration (:attr:`WorkloadSpec.description`, listed by
  ``python -m repro stream --help``).

Engines dispatch exclusively through :func:`get_spec`; kind-string
literals live only in the spec modules under ``repro/engine/kinds/``
(enforced by ``tools/check_no_stray_kinds.py`` in CI).  Registering a
new spec module makes the kind servable by the stream service, the
K-shard engine, the oracles, the fuzzer and the CLI with no further
edits — ``repro/engine/kinds/sort.py`` is the worked example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..errors import AuditError, ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..runtime.executor import BatchResult, StreamExecutor
    from ..runtime.queue import Request

#: How a routing domain's owned state moves during live rebalancing.
MIGRATE_CHAIN = "chain"  # address-preserving chain re-link (hash slots)
MIGRATE_CELL = "cell"  # value transfer between shard-local copies
MIGRATE_ROUTE = "route"  # routing-only: merge-on-read state, no payload


@dataclass(frozen=True)
class EngineContext:
    """The shared-state dimensions every layer sizes against."""

    table_size: int = 509
    n_cells: int = 64
    key_space: int = 4096


@dataclass(frozen=True)
class RoutingDomain:
    """One owner-computes index space (see :mod:`repro.shard.partition`).

    ``size`` maps the :class:`EngineContext` to the dense index range;
    ``migration`` names how the rebalancer moves an owned index's state
    (one of :data:`MIGRATE_CHAIN` / :data:`MIGRATE_CELL` /
    :data:`MIGRATE_ROUTE`).
    """

    name: str
    size: Callable[[EngineContext], int]
    migration: str = MIGRATE_ROUTE


def _max_multiplicity(addrs) -> int:
    """Uncharged diagnostic: a batch's observed M (Theorem 5)."""
    import numpy as np

    addrs = np.asarray(addrs)
    if addrs.size == 0:
        return 0
    _, counts = np.unique(addrs, return_counts=True)
    return int(counts.max())


class WorkloadSpec:
    """Base class for one request kind's declarative spec.

    Subclass per kind, override the hooks the kind needs, instantiate
    once and :func:`register` it.  The base implementations cover the
    common single-address (arity 1) case.
    """

    #: The kind string — declared here and nowhere else.
    name: str = ""
    #: FOL arity L: 1 for FOL1 kinds, >= 2 for FOL* tuple kinds.
    arity: int = 1
    #: Routing domain this kind's conflict addresses live in.
    domain: str = ""
    #: Executor attribute the built state is aliased to (compatibility
    #: surface for tests/tools that inspect ``executor.table`` etc.).
    state_attr: Optional[str] = None
    #: Legacy per-kind capacity keyword on executor/worker constructors.
    capacity_param: Optional[str] = None
    #: Capacity used when neither a workload count nor an explicit
    #: capacity is given (direct construction).
    default_capacity: int = 1
    #: Whether generated mixed-kind fuzz/workload streams include this
    #: kind by default.
    in_stream_mix: bool = True
    #: One-line summary for CLI help and docs.
    description: str = ""

    # -- sizing and shared state ---------------------------------------
    def state_words(self, capacity: int, ctx: EngineContext) -> int:
        """Memory words this kind's state needs for ``capacity`` lanes."""
        return 0

    def shard_capacity(self, n: int) -> int:
        """Per-worker capacity for ``n`` total requests of this kind
        (every worker must be able to absorb the whole workload — see
        :mod:`repro.shard.worker`)."""
        return max(n, 1)

    def build_state(
        self, executor: "StreamExecutor", allocator, capacity: int
    ) -> Optional[object]:
        """Allocate this kind's shared state on the executor's machine
        (or return None when the kind rides on another spec's state)."""
        return None

    def state_aliases(self, state) -> Dict[str, object]:
        """Executor attributes to alias the built state under (the
        compatibility surface tests and tools inspect)."""
        if state is None or self.state_attr is None:
            return {}
        return {self.state_attr: state}

    # -- execution ------------------------------------------------------
    def plan(self, executor: "StreamExecutor", reqs: List["Request"]):
        """Emit this kind's backend-neutral FOL plan for one batch slice
        (a :class:`~repro.backend.plan.FolPlan`), or ``None`` when the
        kind overrides :meth:`run` to drive the ops facade directly
        (irregular plans: the BST claim-descend loop, the sort's
        probe/shift rounds)."""
        return None

    def run(
        self, executor: "StreamExecutor", reqs: List["Request"],
        result: "BatchResult",
    ) -> int:
        """Drive one batch's worth of this kind through FOL; extends
        ``result`` and returns the observed pointer multiplicity M.

        The default dispatches the spec's :meth:`plan` to the
        executor's backend — specs only override this for plans the IR
        cannot express."""
        plan = self.plan(executor, reqs)
        if plan is None:
            raise NotImplementedError(
                f"spec {self.name!r} implements neither plan nor run"
            )
        return executor.backend.run_fol(executor, plan, reqs, result)

    # -- request construction and validation ---------------------------
    def validate(self, req: "Request") -> None:
        """Raise :class:`ReproError` on a malformed request."""

    def make_request(
        self, rid: int, key: int, key2: int, delta: int, arrival: float,
        ctx: EngineContext,
    ):
        """Build a workload-generator request from the generic draws."""
        from ..runtime.queue import Request

        return Request(
            rid=rid, kind=self.name, key=key, delta=delta, arrival=arrival
        )

    def fuzz_request(self, rid: int, key: int, ctx: EngineContext):
        """Build a deterministic fuzz request from a raw generated key
        (delta/targets must be fixed functions of ``rid``/``key`` so
        shrunk key vectors stay valid, comparable workloads)."""
        from ..runtime.queue import Request

        return Request(rid=rid, kind=self.name, key=key, delta=1 + key % 5)

    # -- routing --------------------------------------------------------
    def route_indices(
        self, req: "Request", fold: Callable[[int], int]
    ) -> Tuple[int, ...]:
        """Domain indices this request's unit process touches (one per
        index vector; length equals :attr:`arity`)."""
        return (fold(req.key),)

    def pin_shard(self, req: "Request") -> int:
        """Shard holding this lane's resumable state (-1 when the lane
        routes freely by ownership)."""
        return -1

    def routing_audit(self, req: "Request", partition, shard: int) -> None:
        """Owner-computes invariant: the lane must have landed on the
        shard that owns its conflict indices (or its pinned shard)."""
        table = partition.domain(self.domain)
        owners = {
            table.owner_of(i) for i in self.route_indices(req, table.fold)
        }
        if len(owners) > 1:
            raise AuditError(
                f"request {req.rid} ({self.name}) routed as shard-local "
                f"but its indices are owned by {sorted(owners)}"
            )
        if self.pin_shard(req) == shard:
            return
        owner = owners.pop()
        if owner != shard:
            raise AuditError(
                f"request {req.rid} ({self.name} key={req.key}) executed "
                f"on shard {shard} but is owned by {owner}"
            )

    # -- cross-shard tuples (arity >= 2 kinds only) ---------------------
    def carry_group(self, coordinator, unit) -> int:
        """Conflict-group address for a cross-shard claim loser."""
        raise ReproError(
            f"kind {self.name!r} has no cross-shard carry semantics"
        )

    def commit_cross(self, coordinator, unit) -> None:
        """Apply one winning cross-shard unit on the owners' memories."""
        raise ReproError(
            f"kind {self.name!r} has no cross-shard commit semantics"
        )

    # -- differential oracle --------------------------------------------
    def oracle_diff(
        self, engine, requests: List["Request"], ctx: EngineContext
    ):
        """Compare the engine's end state for this kind against the
        scalar oracle; returns a Divergence or None.  ``requests`` is
        the *whole* completed workload — the spec filters its share."""
        return None

    def cell_deltas(self, req: "Request") -> Tuple[Tuple[int, int], ...]:
        """(cell, delta) contributions this request makes to the shared
        cell bank (empty for kinds that do not touch it)."""
        return ()

    #: Direct-kernel fuzz hook: ``core_fuzz(vm, allocator, keys, ctx)``
    #: running this kind's one-shot kernel against its oracle, or None
    #: when the kind has no standalone kernel (see repro.audit.fuzz).
    core_fuzz = None

    # -- introspection ---------------------------------------------------
    def requests_of(self, requests) -> List["Request"]:
        """This spec's share of a mixed request stream."""
        return [r for r in requests if r.kind == self.name]


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
_SPECS: Dict[str, WorkloadSpec] = {}
_DOMAINS: Dict[str, RoutingDomain] = {}


def register_domain(domain: RoutingDomain) -> RoutingDomain:
    """Register (or return the existing) routing domain ``domain``.
    Kinds may share a domain; the first registration wins and a
    conflicting re-declaration is an error."""
    existing = _DOMAINS.get(domain.name)
    if existing is not None:
        if existing.migration != domain.migration:
            raise ReproError(
                f"routing domain {domain.name!r} re-registered with "
                f"migration {domain.migration!r} != {existing.migration!r}"
            )
        return existing
    _DOMAINS[domain.name] = domain
    return domain


def register(spec: WorkloadSpec) -> WorkloadSpec:
    """Add ``spec`` to the registry (import-time, one call per kind)."""
    if not spec.name:
        raise ReproError("workload spec needs a non-empty kind name")
    if spec.name in _SPECS:
        raise ReproError(f"request kind {spec.name!r} registered twice")
    if spec.domain not in _DOMAINS:
        raise ReproError(
            f"spec {spec.name!r} routes through unregistered domain "
            f"{spec.domain!r}; call register_domain first"
        )
    _SPECS[spec.name] = spec
    return spec


def get_spec(kind: str) -> WorkloadSpec:
    """The spec serving request kind ``kind`` (ReproError on unknown,
    naming the registered kinds)."""
    try:
        return _SPECS[kind]
    except KeyError:
        raise ReproError(
            f"unknown request kind {kind!r}; registered kinds: "
            f"{', '.join(registered_kinds())}"
        ) from None


def registered_kinds() -> Tuple[str, ...]:
    """Registered kind names, in registration order."""
    return tuple(_SPECS)


def specs() -> Tuple[WorkloadSpec, ...]:
    """All registered specs, in registration order."""
    return tuple(_SPECS.values())


def stream_mix_kinds() -> Tuple[str, ...]:
    """Kinds mixed into generated workloads/fuzz streams by default."""
    return tuple(s.name for s in _SPECS.values() if s.in_stream_mix)


def domains() -> Dict[str, RoutingDomain]:
    """Registered routing domains by name (registration order)."""
    return dict(_DOMAINS)


def get_domain(name: str) -> RoutingDomain:
    try:
        return _DOMAINS[name]
    except KeyError:
        raise ReproError(
            f"unknown routing domain {name!r}; registered domains: "
            f"{', '.join(_DOMAINS)}"
        ) from None


def resolve_capacities(
    explicit: Optional[Dict[str, int]], legacy_kwargs: Dict[str, Optional[int]]
) -> Dict[str, int]:
    """Merge an explicit per-kind capacity map with the legacy per-kind
    constructor keywords (``hash_capacity=...``) into one complete map,
    falling back to each spec's :attr:`~WorkloadSpec.default_capacity`."""
    out: Dict[str, int] = {}
    for spec in specs():
        cap = None
        if explicit is not None:
            cap = explicit.get(spec.name)
        if cap is None and spec.capacity_param is not None:
            cap = legacy_kwargs.get(spec.capacity_param)
        out[spec.name] = spec.default_capacity if cap is None else int(cap)
    return out


def machine_words(capacities: Dict[str, int], ctx: EngineContext) -> int:
    """Memory words a machine needs to host every registered kind's
    state at the given per-kind capacities (plus NIL and slack)."""
    words = 1  # NIL
    for spec in specs():
        words += spec.state_words(capacities.get(spec.name, 0), ctx)
    return words + 4096  # slack


def count_by_kind(requests) -> Dict[str, int]:
    """Single-pass request count per kind (replaces the one-``sum()``-
    per-kind scans the executors used to do)."""
    counts: Dict[str, int] = {}
    for req in requests:
        counts[req.kind] = counts.get(req.kind, 0) + 1
    return counts
