"""repro.engine — the workload registry every execution path shares.

A request kind is declared exactly once, as a :class:`WorkloadSpec` in
:mod:`repro.engine.kinds`.  The spec bundles everything the layers
above need:

* the FOL planner/executor hook (``run``: FOL1 for single-address
  kinds, FOL* for arity-L tuple kinds),
* shared-state construction and sizing (``build_state`` /
  ``state_words`` / ``shard_capacity``),
* the routing domain + per-request route indices for the K-shard
  engine, plus cross-shard claim/commit hooks for tuple kinds,
* the scalar differential oracle and invariant-audit hooks,
* fuzz-generator parameters and CLI/workload-mix registration.

The stream executor, the shard router/worker/coordinator, the audit
oracle, the fuzzer and the CLI all dispatch through :func:`get_spec` /
:func:`specs` — no kind literals outside ``engine/kinds/`` (enforced
by ``tools/check_no_stray_kinds.py``).

Import order below is deliberate: the spec machinery is re-exported
*before* ``kinds`` is imported, because kind modules import back from
``repro.engine.spec`` while registering themselves.
"""

from .spec import (
    MIGRATE_CELL,
    MIGRATE_CHAIN,
    MIGRATE_ROUTE,
    EngineContext,
    RoutingDomain,
    WorkloadSpec,
    _max_multiplicity,
    count_by_kind,
    domains,
    get_domain,
    get_spec,
    machine_words,
    register,
    register_domain,
    registered_kinds,
    resolve_capacities,
    specs,
    stream_mix_kinds,
)

from . import kinds  # noqa: E402  (self-registration side effects)

__all__ = [
    "MIGRATE_CELL",
    "MIGRATE_CHAIN",
    "MIGRATE_ROUTE",
    "EngineContext",
    "RoutingDomain",
    "WorkloadSpec",
    "count_by_kind",
    "domains",
    "get_domain",
    "get_spec",
    "kinds",
    "machine_words",
    "register",
    "register_domain",
    "registered_kinds",
    "resolve_capacities",
    "specs",
    "stream_mix_kinds",
]
