"""``python -m repro`` — thin shim over the :mod:`repro.cli` package.

The CLI itself (parser, validators, one module per subcommand) lives
in :mod:`repro.cli`; this module only re-exports :func:`main` and
:func:`build_parser` so ``python -m repro`` and the historical
``from repro.__main__ import main`` import path keep working.
"""

from __future__ import annotations

import sys

from .cli import SUBCOMMANDS, build_parser, main  # noqa: F401

if __name__ == "__main__":
    sys.exit(main())
