"""Command-line entry point: ``python -m repro``.

Subcommands
-----------
``figures [names...]``
    Regenerate the paper's tables/figures (delegates to
    :mod:`repro.bench.figures`; default: all).
``demo``
    One-screen tour: FOL1 on a shared index vector, the theorem checks,
    and a chained multiple-hashing run with its cycle breakdown.
``info``
    Print the library version, the calibrated cost model, and the
    experiment registry.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command")

    fig = sub.add_parser("figures", help="regenerate paper tables/figures")
    fig.add_argument("names", nargs="*", default=[])
    fig.add_argument("--seed", type=int, default=0)

    sub.add_parser("demo", help="one-screen FOL tour")
    sub.add_parser("info", help="version, cost model, experiment registry")

    args = parser.parse_args(argv)

    if args.command == "figures":
        from .bench.figures import main as figures_main

        figures_main(list(args.names) + ["--seed", str(args.seed)])
        return 0

    if args.command == "demo":
        _demo()
        return 0

    if args.command == "info":
        _info()
        return 0

    parser.print_help()
    return 1


def _demo() -> None:
    import numpy as np

    from . import fol1, make_machine
    from .core.theorems import check_all
    from .hashing import ChainedHashTable, vector_chained_insert
    from .mem import BumpAllocator

    vm = make_machine(32_768, seed=42)
    v = np.array([100, 200, 100, 300, 100, 200], dtype=np.int64)
    dec = fol1(vm, v)
    check_all(dec)
    print(f"FOL1 over {v.tolist()}: M = {dec.m} sets "
          f"{[vm_set.tolist() for vm_set in dec.sets]} (all theorems hold)")

    table = ChainedHashTable(BumpAllocator(vm.mem), 127, 1000)
    keys = np.random.default_rng(0).integers(0, 5000, size=1000)
    rounds = vector_chained_insert(vm, table, keys)
    print(f"chained multiple hashing: 1000 keys in {rounds} FOL rounds, "
          f"{vm.counter.total:,.0f} simulated cycles")
    print(vm.counter.report())


def _info() -> None:
    from . import CostModel, __version__
    from .bench.figures import EXPERIMENTS

    print(f"repro {__version__}")
    print(f"cost model (s810): {CostModel.s810()}")
    print("experiments:", ", ".join(sorted(set(EXPERIMENTS))))


if __name__ == "__main__":
    sys.exit(main())
