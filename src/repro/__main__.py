"""Command-line entry point: ``python -m repro``.

Subcommands
-----------
``figures [names...]``
    Regenerate the paper's tables/figures (delegates to
    :mod:`repro.bench.figures`; default: all).
``demo``
    One-screen tour: FOL1 on a shared index vector, the theorem checks,
    and a chained multiple-hashing run with its cycle breakdown.
``stream``
    Run the streaming micro-batch FOL service (:mod:`repro.runtime`)
    over a generated workload and print per-batch metrics.
``serve``
    Run the real multi-process serving layer (:mod:`repro.serve`): one
    shared-memory shard process per worker, asyncio admission and
    batching, measured wall-clock latency, oracle-checked end state.
``audit``
    Fuzz the FOL pipelines under the runtime invariant auditor and the
    scalar differential oracles (:mod:`repro.audit`); exits non-zero
    with a shrunk counterexample on any failure.
``info``
    Print the library version, the calibrated cost model, and the
    experiment registry.

An unknown or missing subcommand prints help and exits with status 2.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _positive_int(text: str) -> int:
    """argparse type: an int >= 1 (clean exit 2 on 0/negative input)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a float > 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _nonneg_float(text: str) -> float:
    """argparse type: a float >= 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {value}")
    return value


#: Largest accepted Zipf skew: beyond this the truncated distribution is
#: numerically degenerate (rank-1 mass ~ 1.0) and run times explode.
MAX_SKEW = 8.0


def _skew(text: str) -> float:
    """argparse type: a Zipf skew in [0, MAX_SKEW]."""
    value = _nonneg_float(text)
    if value > MAX_SKEW:
        raise argparse.ArgumentTypeError(
            f"skew must be at most {MAX_SKEW}, got {value}"
        )
    return value


#: (name, one-line help) per subcommand — single source for the parser
#: and the ``repro info`` listing.
SUBCOMMANDS = (
    ("figures", "regenerate paper tables/figures"),
    ("demo", "one-screen FOL tour"),
    ("info", "version, cost model, kinds, backends, subcommands"),
    ("stream", "run the streaming micro-batch FOL service (simulated clock)"),
    ("serve", "run the multi-process serving layer (measured wall-clock)"),
    ("audit", "fuzz the FOL pipelines under invariant auditing"),
)
_HELP = dict(SUBCOMMANDS)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command")

    fig = sub.add_parser("figures", help=_HELP["figures"])
    fig.add_argument("names", nargs="*", default=[])
    fig.add_argument("--seed", type=int, default=0)

    sub.add_parser("demo", help=_HELP["demo"])
    sub.add_parser("info", help=_HELP["info"])

    stream = sub.add_parser("stream", help=_HELP["stream"])
    stream.add_argument("--requests", type=_positive_int, default=5000,
                        help="number of requests in the workload")
    stream.add_argument("--policy", choices=("fixed", "deadline", "adaptive"),
                        default="adaptive", help="batch-sizing policy")
    stream.add_argument("--batch-size", type=_positive_int, default=256,
                        help="fixed/initial batch size (max size for deadline)")
    stream.add_argument("--deadline", type=_positive_float, default=2000.0,
                        help="deadline policy: max head-of-line wait in cycles")
    stream.add_argument("--skew", type=_skew, default=0.0,
                        help=f"Zipf key skew (0 = uniform, max {MAX_SKEW})")
    stream.add_argument("--kinds", default="hash",  # no-kind-lint
                        help="comma-separated request kinds; registered kinds "
                             "are listed by `repro info` (uniform mix)")
    stream.add_argument("--mix", default=None, metavar="KIND=W,...",
                        help="weighted workload mix, e.g. hash=3,xfer=1 "
                             "(overrides --kinds; weights need not sum to 1)")
    from .backend import registered_backends

    stream.add_argument("--backend", choices=registered_backends(),
                        default="sim",
                        help="execution backend: sim = calibrated S-810 "
                             "cycle model, native = raw NumPy wall-clock "
                             "(see docs/backends.md)")
    stream.add_argument("--no-recorded-loop", action="store_true",
                        help="native backend only: interpret each FOL "
                             "round op-by-op instead of replaying the "
                             "recorded fused round (ablation)")
    stream.add_argument("--recorded-loop", choices=("on", "off", "auto"),
                        default=None,
                        help="native backend only: force the fused "
                             "recorded round (on, the default), the "
                             "op-by-op interpreter (off), or calibrate "
                             "per plan shape once and keep the faster "
                             "path (auto)")
    stream.add_argument("--queue-capacity", type=_positive_int, default=4096)
    stream.add_argument("--admission", choices=("block", "reject"),
                        default="block", help="full-queue policy")
    stream.add_argument("--no-carryover", action="store_true",
                        help="retry filtered lanes in-batch (paper §3.2) "
                             "instead of carrying them to the next batch")
    stream.add_argument("--closed-loop", action="store_true",
                        help="all requests ready at t=0 (throughput mode)")
    stream.add_argument("--mean-gap", type=_positive_float, default=40.0,
                        help="open loop: mean inter-arrival gap in cycles")
    stream.add_argument("--table-size", type=_positive_int, default=509)
    stream.add_argument("--key-space", type=_positive_int, default=4096)
    stream.add_argument("--shards", type=_positive_int, default=1,
                        help="partition the address space across K workers "
                             "(owner-computes; batch cost = max over shards)")
    from .shard.migration import PACING_STRATEGIES
    from .shard.partition import PARTITIONERS
    from .shard.rebalance import REBALANCE_OBJECTIVES

    stream.add_argument("--partitioner", choices=tuple(PARTITIONERS),
                        default=None,  # resolved to hash; None flags explicit use
                        help="initial shard assignment (needs --shards > 1; "
                             "default hash)")
    stream.add_argument("--rebalance", action="store_true",
                        help="migrate hot routing bins between micro-batches "
                             "(Megaphone-style; needs --shards > 1)")
    stream.add_argument("--bins", type=_positive_int, default=None,
                        help="routing bins N per domain (needs --shards > 1; "
                             "default 64 per shard, must be >= shards)")
    stream.add_argument("--migration", choices=PACING_STRATEGIES,
                        default=None,  # resolved to all-at-once
                        help="bin handoff pacing (needs --rebalance; "
                             "default all-at-once)")
    stream.add_argument("--tenants", default=None, metavar="NAME=SHARE[:DIST],...",
                        help="tag requests with tenant classes, e.g. "
                             "A=0.7:zipf1.2,B=0.3:uniform (DIST defaults to "
                             "uniform; replaces the global --skew draw)")
    stream.add_argument("--slo", default=None, metavar="NAME=CYCLES,...",
                        help="per-tenant latency budget in simulated cycles "
                             "(needs --tenants)")
    stream.add_argument("--qos", action="store_true",
                        help="SLO-aware admission: weighted per-tenant depth "
                             "caps + weighted-fair dequeue + deadline-aware "
                             "batch release (needs --tenants)")
    stream.add_argument("--qos-burst", type=_positive_float, default=1.0,
                        help="per-tenant depth cap multiplier under --qos "
                             "(cap = burst * capacity * share; < 1 reserves "
                             "headroom for light tenants)")
    stream.add_argument("--rebalance-objective", choices=REBALANCE_OBJECTIVES,
                        default=None,
                        help="migration planning objective (needs --rebalance; "
                             "default imbalance)")
    stream.add_argument("--print-batches", type=_positive_int, default=20,
                        help="per-batch rows to print (subsampled)")
    stream.add_argument("--trace", action="store_true",
                        help="record and print the instruction mix")
    stream.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser("serve", help=_HELP["serve"])
    serve.add_argument("--workers", type=_positive_int, default=2,
                       help="shard worker processes (one shared-memory "
                            "arena each)")
    serve.add_argument("--backend", choices=registered_backends(),
                       default="native",
                       help="execution backend inside each worker process "
                            "(native = raw NumPy, the wall-clock path)")
    serve.add_argument("--requests", type=_positive_int, default=2000,
                       help="workload size (pre-generated, replayed in "
                            "real time)")
    serve.add_argument("--rate", type=_positive_float, default=None,
                       help="open-loop offered load in requests/second "
                            "(default: closed loop, everything ready at t=0)")
    serve.add_argument("--duration", type=_positive_float, default=None,
                       help="stop admitting after S seconds, drain, and "
                            "print the partial summary")
    serve.add_argument("--skew", type=_skew, default=1.2,
                       help=f"Zipf key skew (max {MAX_SKEW})")
    serve.add_argument("--kinds", default=None,
                       help="comma-separated request kinds (default: the "
                            "registry's stream mix; see `repro info`)")
    serve.add_argument("--mix", default=None, metavar="KIND=W,...",
                       help="weighted workload mix (overrides --kinds)")
    serve.add_argument("--policy", choices=("fixed", "adaptive"),
                       default="fixed",
                       help="batch-sizing policy (wall-clock linger replaces "
                            "the cycle-driven deadline policy)")
    serve.add_argument("--batch-size", type=_positive_int, default=512,
                       help="fixed/initial micro-batch target")
    serve.add_argument("--linger-ms", type=_nonneg_float, default=2.0,
                       help="max head-of-line wait for a fuller batch")
    serve.add_argument("--queue-capacity", type=_positive_int, default=8192)
    serve.add_argument("--admission", choices=("block", "reject"),
                       default="block", help="full-queue policy")
    serve.add_argument("--table-size", type=_positive_int, default=509)
    serve.add_argument("--key-space", type=_positive_int, default=4096)
    serve.add_argument("--n-cells", type=_positive_int, default=64)
    serve.add_argument("--partitioner", choices=tuple(PARTITIONERS),
                       default="hash",  # partitioner name  # no-kind-lint
                       help="initial shard assignment")
    serve.add_argument("--rebalance", action="store_true",
                       help="migrate hot routing bins between exchanges "
                            "(live, across the worker processes)")
    serve.add_argument("--bins", type=_positive_int, default=None,
                       help="routing bins N per domain (default 64 per "
                            "worker, must be >= workers)")
    serve.add_argument("--migration", choices=PACING_STRATEGIES,
                       default=None,  # resolved to all-at-once
                       help="bin handoff pacing (needs --rebalance; "
                            "default all-at-once)")
    serve.add_argument("--tenants", default=None, metavar="NAME=SHARE[:DIST],...",
                       help="tag requests with tenant classes, e.g. "
                            "A=0.7:zipf1.2,B=0.3:uniform (DIST defaults to "
                            "uniform; replaces the global --skew draw)")
    serve.add_argument("--slo", default=None, metavar="NAME=BUDGET,...",
                       help="per-tenant latency budget with unit suffix, e.g. "
                            "A=50ms,B=0.2s (needs --tenants)")
    serve.add_argument("--qos", action="store_true",
                       help="SLO-aware admission: weighted per-tenant depth "
                            "caps + weighted-fair dequeue + deadline-aware "
                            "batch release (needs --tenants)")
    serve.add_argument("--qos-burst", type=_positive_float, default=1.0,
                       help="per-tenant depth cap multiplier under --qos "
                            "(cap = burst * capacity * share)")
    serve.add_argument("--rebalance-objective", choices=REBALANCE_OBJECTIVES,
                       default=None,
                       help="migration planning objective (needs --rebalance; "
                            "default imbalance)")
    serve.add_argument("--print-batches", type=_positive_int, default=20,
                       help="exchange rows to print (subsampled)")
    serve.add_argument("--seed", type=int, default=0)

    audit = sub.add_parser("audit", help=_HELP["audit"])
    audit.add_argument("--suite", choices=("core", "stream", "shard", "all"),
                       default="all", help="which pipeline family to fuzz")
    audit.add_argument("--seed", type=int, default=0,
                       help="base seed (every case derives from it)")
    audit.add_argument("--cases", type=_positive_int, default=100,
                       help="generated cases per suite")
    audit.add_argument("--max-lanes", type=_positive_int, default=96,
                       help="largest generated input size")
    audit.add_argument("--artifact", default=None, metavar="PATH",
                       help="write a JSON report (counterexamples included) "
                            "to PATH on failure")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on bad input (e.g. an unknown subcommand) and
        # 0 for --help; normalise the error path to help + status 2 so
        # the CLI never silently falls through.
        code = exc.code if isinstance(exc.code, int) else 2
        if code == 0:
            return 0
        parser.print_help()
        return 2

    if args.command == "figures":
        from .bench.figures import main as figures_main

        figures_main(list(args.names) + ["--seed", str(args.seed)])
        return 0

    if args.command == "demo":
        _demo()
        return 0

    if args.command == "stream":
        from .errors import ReproError

        try:
            return _stream(args)
        except ReproError as exc:
            print(f"repro stream: {exc}", file=sys.stderr)
            return 2

    if args.command == "serve":
        from .errors import ReproError

        try:
            return _serve(args)
        except ReproError as exc:
            print(f"repro serve: {exc}", file=sys.stderr)
            return 2

    if args.command == "audit":
        from .errors import ReproError

        try:
            return _audit(args)
        except ReproError as exc:
            print(f"repro audit: {exc}", file=sys.stderr)
            return 2

    if args.command == "info":
        _info()
        return 0

    parser.print_help()
    return 2


def _demo() -> None:
    import numpy as np

    from . import fol1, make_machine
    from .core.theorems import check_all
    from .hashing import ChainedHashTable, vector_chained_insert
    from .mem import BumpAllocator

    vm = make_machine(32_768, seed=42)
    v = np.array([100, 200, 100, 300, 100, 200], dtype=np.int64)
    dec = fol1(vm, v)
    check_all(dec)
    print(f"FOL1 over {v.tolist()}: M = {dec.m} sets "
          f"{[vm_set.tolist() for vm_set in dec.sets]} (all theorems hold)")

    table = ChainedHashTable(BumpAllocator(vm.mem), 127, 1000)
    keys = np.random.default_rng(0).integers(0, 5000, size=1000)
    rounds = vector_chained_insert(vm, table, keys)
    print(f"chained multiple hashing: 1000 keys in {rounds} FOL rounds, "
          f"{vm.counter.total:,.0f} simulated cycles")
    print(vm.counter.report())


def _parse_mix(text: str):
    """Parse ``--mix kind=weight,...`` into (kinds, weights).  Unknown
    kinds and malformed entries raise :class:`ReproError` (exit 2)."""
    from .engine.spec import get_spec
    from .errors import ReproError

    kinds, weights = [], []
    for entry in (e.strip() for e in text.split(",") if e.strip()):
        name, sep, weight = entry.partition("=")
        if not sep:
            raise ReproError(
                f"malformed mix entry {entry!r}; expected kind=weight"
            )
        get_spec(name.strip())  # raises listing registered kinds
        try:
            w = float(weight)
        except ValueError:
            raise ReproError(f"mix weight {weight!r} is not a number")
        if w < 0:
            raise ReproError(f"mix weight for {name!r} is negative: {w}")
        kinds.append(name.strip())
        weights.append(w)
    if not kinds:
        raise ReproError("empty workload mix")
    if sum(weights) <= 0:
        raise ReproError("workload mix weights sum to zero")
    return tuple(kinds), tuple(weights)


def _stream(args) -> int:
    import time

    import numpy as np

    from .backend import get_backend
    from .engine.spec import get_spec
    from .errors import ReproError
    from .runtime import (
        BoundedQueue,
        QoSPolicy,
        StreamService,
        apply_slos,
        closed_loop_workload,
        make_batcher,
        open_loop_workload,
        parse_slo,
        parse_tenants,
        tenant_workload,
    )

    # Flag combinations that would otherwise be silently ignored are
    # hard errors (exit 2), not no-ops.
    if args.shards == 1:
        if args.rebalance:
            raise ReproError(
                "--rebalance migrates state between shards and needs "
                "--shards > 1"
            )
        if args.partitioner is not None:
            raise ReproError(
                "--partitioner chooses the shard assignment and needs "
                "--shards > 1"
            )
        if args.bins is not None:
            raise ReproError(
                "--bins sizes the routing-bin level and needs --shards > 1"
            )
    if args.migration is not None and not args.rebalance:
        raise ReproError(
            "--migration paces live bin handoff and needs --rebalance"
        )
    if args.rebalance_objective is not None and not args.rebalance:
        raise ReproError(
            "--rebalance-objective steers migration planning and needs "
            "--rebalance"
        )
    if args.tenants is None:
        if args.slo is not None:
            raise ReproError("--slo assigns per-tenant budgets and needs "
                             "--tenants")
        if args.qos:
            raise ReproError("--qos admits per tenant class and needs "
                             "--tenants")
    tenants = None
    if args.tenants is not None:
        tenants = parse_tenants(args.tenants)
        if args.slo is not None:
            tenants = apply_slos(tenants, parse_slo(args.slo, unit="cycles"))
    partitioner = args.partitioner or "hash"  # partitioner name  # no-kind-lint
    migration = args.migration or "all-at-once"
    objective = args.rebalance_objective or "imbalance"

    backend = get_backend(args.backend)
    if args.no_recorded_loop and args.recorded_loop not in (None, "off"):
        raise ReproError(
            "--no-recorded-loop is shorthand for --recorded-loop off; "
            f"it conflicts with --recorded-loop {args.recorded_loop}"
        )
    loop_choice = "off" if args.no_recorded_loop else args.recorded_loop
    if loop_choice is not None:
        if not hasattr(backend, "recorded_loop"):
            raise ReproError(
                f"--recorded-loop only applies to the native backend, "
                f"not {backend.name!r}"
            )
        backend.recorded_loop = {
            "on": True, "off": False, "auto": "auto"
        }[loop_choice]
    if not backend.calibrated:
        # Cycle-only features would silently measure zero on an
        # uncalibrated backend; refuse them up front.
        if args.trace:
            raise ReproError(
                "--trace records the simulated instruction mix, which the "
                f"{backend.name!r} backend does not charge; use --backend sim"
            )
        if args.policy == "deadline":
            raise ReproError(
                "the deadline batch policy is driven by simulated cycles, "
                f"which the {backend.name!r} backend does not charge; use "
                "--backend sim or --policy fixed/adaptive"
            )

    if args.mix is not None:
        kinds, weights = _parse_mix(args.mix)
    else:
        kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
        weights = None
        for kind in kinds:
            get_spec(kind)  # unknown kind -> ReproError naming the registry
    rng = np.random.default_rng(args.seed)
    if tenants is not None:
        requests = tenant_workload(
            rng,
            args.requests,
            tenants,
            kinds=kinds,
            weights=weights,
            key_space=args.key_space,
            mean_gap=None if args.closed_loop else args.mean_gap,
        )
    else:
        common = dict(
            kinds=kinds, weights=weights, skew=args.skew,
            key_space=args.key_space,
        )
        if args.closed_loop:
            requests = closed_loop_workload(rng, args.requests, **common)
        else:
            requests = open_loop_workload(
                rng, args.requests, mean_gap=args.mean_gap, **common
            )

    if args.policy == "fixed":
        batcher = make_batcher("fixed", batch_size=args.batch_size)
    elif args.policy == "deadline":
        batcher = make_batcher(
            "deadline", deadline=args.deadline, max_size=args.batch_size
        )
    else:
        batcher = make_batcher("adaptive", initial=args.batch_size)

    policy = QoSPolicy(tenants, burst=args.qos_burst) if args.qos else None
    queue = BoundedQueue(
        args.queue_capacity, admission=args.admission, qos=policy
    )
    if args.shards > 1:
        from .shard import ShardCoordinator

        coordinator = ShardCoordinator.for_workload(
            requests,
            shards=args.shards,
            partitioner=partitioner,
            rebalance=args.rebalance,
            table_size=args.table_size,
            key_space=args.key_space,
            carryover=not args.no_carryover,
            backend=backend,
            seed=args.seed,
            bins=args.bins,
            migration=migration,
            rebalance_objective=objective,
        )
        service = StreamService(coordinator, batcher=batcher, queue=queue)
    else:
        service = StreamService.for_workload(
            requests,
            batcher=batcher,
            queue=queue,
            table_size=args.table_size,
            carryover=not args.no_carryover,
            trace=args.trace,
            backend=backend,
            seed=args.seed,
        )
    t0 = time.perf_counter()
    interrupted = False
    try:
        metrics = service.run(requests)
    except KeyboardInterrupt:
        # Partial summary instead of a traceback: the metrics object
        # already holds every batch that finished before the interrupt.
        interrupted = True
        metrics = service.metrics
        metrics.rejected = queue.stats.rejected
        metrics.blocked_offers = queue.stats.blocked_offers
        metrics.blocked_requests = queue.stats.blocked_requests
        metrics.queue_max_depth = queue.stats.max_depth
    wall = time.perf_counter() - t0
    if tenants is not None:
        # FIFO baseline runs still report weights/SLOs so the tenant
        # table and fairness index are comparable with --qos runs.
        for t in tenants:
            metrics.tenant_weights.setdefault(t.name, t.share)
            if np.isfinite(t.slo):
                metrics.tenant_slos.setdefault(t.name, t.slo)

    mode = "retry-in-batch" if args.no_carryover else "carryover"
    loop = "closed" if args.closed_loop else "open"
    shard_note = (
        f", shards={args.shards} ({partitioner}"
        f"{f', bins={args.bins}' if args.bins is not None else ''}"
        f"{f', rebalance/{migration}' if args.rebalance else ''})"
        if args.shards > 1 else ""
    )
    if weights is not None:
        mix_note = ",".join(f"{k}={w:g}" for k, w in zip(kinds, weights))
    else:
        mix_note = ",".join(kinds)
    rl = getattr(backend, "recorded_loop", None)
    if backend.calibrated or not rl:
        loop_note = ""
    elif rl == "auto":
        loop_note = ", auto loop"
    else:
        loop_note = ", recorded loop"
    print(f"stream: {args.requests} requests, kinds={mix_note}, "
          f"skew={args.skew}, policy={batcher.name}, {mode}, {loop} loop, "
          f"backend={backend.name}{loop_note}{shard_note}")
    if interrupted:
        print(f"\ninterrupted — partial summary "
              f"({metrics.total_completed} of {args.requests} completed)")
    print()
    print(metrics.batch_table(max_rows=args.print_batches))
    if args.shards > 1:
        print()
        print(metrics.shard_table(max_rows=args.print_batches))
    print()
    print(metrics.summary_table())
    if tenants is not None:
        print()
        qos_note = (
            f"qos admission (burst={args.qos_burst:g})" if args.qos
            else "global FIFO admission"
        )
        print(f"per-tenant summary ({qos_note}, latency in cycles):")
        print(metrics.tenant_table())
    print()
    rate = args.requests / wall if wall > 0 else float("inf")
    print(f"wall-clock: {wall:.3f} s on the {backend.name!r} backend "
          f"({rate:,.0f} requests/sec)")
    if metrics.instruction_mix is not None:
        print()
        print("instruction mix (cycles by category):")
        for cat, cyc in sorted(
            metrics.instruction_mix.items(), key=lambda kv: -kv[1]
        ):
            print(f"  {cat:<16s} {cyc:>14,.0f}")
    return 130 if interrupted else 0


def _serve(args) -> int:
    from .engine.spec import get_spec
    from .errors import ReproError
    from .serve import run_serve

    if args.migration is not None and not args.rebalance:
        raise ReproError(
            "--migration paces live bin handoff and needs --rebalance"
        )
    if args.rebalance_objective is not None and not args.rebalance:
        raise ReproError(
            "--rebalance-objective steers migration planning and needs "
            "--rebalance"
        )
    if args.tenants is None:
        if args.slo is not None:
            raise ReproError("--slo assigns per-tenant budgets and needs "
                             "--tenants")
        if args.qos:
            raise ReproError("--qos admits per tenant class and needs "
                             "--tenants")
    tenants = None
    if args.tenants is not None:
        from .runtime import apply_slos, parse_slo, parse_tenants

        tenants = parse_tenants(args.tenants)
        if args.slo is not None:
            tenants = apply_slos(tenants, parse_slo(args.slo, unit="seconds"))
    migration = args.migration or "all-at-once"
    objective = args.rebalance_objective or "imbalance"
    if args.mix is not None:
        kinds, weights = _parse_mix(args.mix)
    elif args.kinds is not None:
        kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
        weights = None
        for kind in kinds:
            get_spec(kind)  # unknown kind -> ReproError naming the registry
    else:
        kinds, weights = None, None  # the registry's default stream mix

    report = run_serve(
        workers=args.workers,
        backend=args.backend,
        requests=args.requests,
        rate=args.rate,
        duration=args.duration,
        skew=args.skew,
        kinds=kinds,
        weights=weights,
        policy=args.policy,
        batch_size=args.batch_size,
        linger_ms=args.linger_ms,
        queue_capacity=args.queue_capacity,
        admission=args.admission,
        table_size=args.table_size,
        n_cells=args.n_cells,
        key_space=args.key_space,
        partitioner=args.partitioner,
        seed=args.seed,
        bins=args.bins,
        rebalance=args.rebalance,
        migration=migration,
        rebalance_objective=objective,
        tenants=tenants,
        qos=args.qos,
        qos_burst=args.qos_burst,
    )
    m = report.metrics
    loop = "closed loop" if args.rate is None else f"open loop @ {args.rate:g}/s"
    mix_note = (
        ",".join(f"{k}={w:g}" for k, w in zip(kinds, weights))
        if kinds is not None and weights is not None
        else ",".join(kinds) if kinds is not None else "stream mix"
    )
    print(f"serve: {args.workers} worker processes, backend={args.backend}, "
          f"{args.requests} requests, kinds={mix_note}, skew={args.skew}, "
          f"{loop}, policy={args.policy}, linger={args.linger_ms:g}ms")
    if m.interrupted:
        print(f"\nstopped early — drained partial summary "
              f"({m.total_completed} of {args.requests} completed)")
    print()
    print(m.exchange_table(max_rows=args.print_batches))
    print()
    print(m.summary_table())
    if tenants is not None:
        print()
        qos_note = (
            f"qos admission (burst={args.qos_burst:g})" if args.qos
            else "global FIFO admission"
        )
        print(f"per-tenant summary ({qos_note}, latency in ms):")
        print(m.tenant_table())
    print()
    if report.divergence is not None:
        print(f"ORACLE DIVERGENCE: {report.divergence}", file=sys.stderr)
        return 1
    print(f"merged end state matches the scalar oracle over "
          f"{len(report.completed)} completed requests "
          f"(fingerprint {report.state_fingerprint[:16]})")
    return 130 if report.signalled else 0


def _audit(args) -> int:
    import json

    from .audit import run_suite

    suites = ("core", "stream", "shard") if args.suite == "all" else (args.suite,)
    reports = []
    failed = False
    for suite in suites:
        report = run_suite(
            suite, seed=args.seed, cases=args.cases, max_lanes=args.max_lanes
        )
        reports.append(report)
        s = report.stats
        print(
            f"audit {suite}: {report.cases} cases, "
            f"{s.scatters} scatters ({s.conflicts} conflicting groups), "
            f"{s.rounds} rounds, {s.claims} claims, "
            f"{s.decompositions + s.tuple_decompositions} decompositions -> "
            f"{'OK' if report.ok else f'{len(report.failures)} FAILURES'}"
        )
        for failure in report.failures:
            failed = True
            print(f"  FAIL {failure.case.describe()}")
            print(f"       {failure.message}")
            print(
                f"       shrunk to {len(failure.keys)} lanes "
                f"(from {failure.shrunk_from}): {failure.keys}"
            )
    if failed and args.artifact:
        with open(args.artifact, "w", encoding="utf-8") as fh:
            json.dump([r.as_dict() for r in reports], fh, indent=2)
        print(f"counterexample report written to {args.artifact}")
    return 1 if failed else 0


def _info() -> None:
    from . import CostModel, __version__
    from .backend import backend_summaries
    from .bench.figures import EXPERIMENTS
    from .engine.spec import specs

    print(f"repro {__version__}")
    print(f"cost model (s810): {CostModel.s810()}")
    print("subcommands:")
    for name, help_line in SUBCOMMANDS:
        print(f"  {name:<8s} {help_line}")
    print("workload kinds:")
    for spec in specs():
        arity = f" (arity {spec.arity})" if spec.arity != 1 else ""
        print(f"  {spec.name:<6s} domain={spec.domain}{arity}  "
              f"{spec.description}")
    print("backends:")
    for name, calibrated, doc in backend_summaries():
        tag = "calibrated cycles" if calibrated else "wall-clock only"
        print(f"  {name:<6s} [{tag}]  {doc}")
    print("experiments:", ", ".join(sorted(set(EXPERIMENTS))))


if __name__ == "__main__":
    sys.exit(main())
