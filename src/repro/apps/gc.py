"""Vectorized copying garbage collection — the Appel–Bendiksen related
work the paper cites in §5 as implicitly containing an S₁-only FOL.

A stop-and-copy (Cheney-style) collector over the cons heap: live cells
reachable from a root set are copied wave-by-wave from *from-space* to
*to-space*; each copied cell leaves a **forwarding pointer** behind, and
every slot holding a from-space pointer is redirected through it.

Where FOL appears: one wave's frontier of pointer-holding slots may
contain many pointers to the *same* from-space cell (sharing, cycles).
Exactly one lane must copy the cell — electing it is one
overwrite-and-check round (scatter slot-labels into the cell's
forwarding word, gather back; survivors copy).  Losers don't retry with
S₂, S₃, … — they simply read the forwarding pointer the winner
installed, which is why the paper calls this "implicitly computing only
S₁" (§5).

Atoms are sign-tagged (negative words, :mod:`repro.lists.cells`), so a
vector compare splits pointers from atoms.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..machine.scalar import ScalarProcessor
from ..machine.vm import VectorMachine
from ..mem.arena import NIL, BumpAllocator, RecordArena
from ..lists.cells import CELL_FIELDS, is_atom


class CopyingHeap:
    """From-space + to-space cons heaps with a forwarding table."""

    def __init__(self, allocator: BumpAllocator, capacity: int, name: str = "gc") -> None:
        self.capacity = capacity
        self.from_cells = RecordArena(allocator, CELL_FIELDS, capacity, f"{name}.from")
        self.to_cells = RecordArena(allocator, CELL_FIELDS, capacity, f"{name}.to")
        # forwarding word per from-space cell, NIL = not yet copied
        self.fwd_base = allocator.alloc(capacity * 2, f"{name}.fwd")
        self.memory = allocator.memory
        # root slots live in memory too, so they are scatter targets
        self.root_base = allocator.alloc(capacity, f"{name}.roots")
        self.n_roots = 0

    # -- construction (uncharged) -----------------------------------------
    def cons(self, car: int, cdr: int) -> int:
        ptr = self.from_cells.alloc_one()
        self.from_cells.poke_field(ptr, "car", int(car))
        self.from_cells.poke_field(ptr, "cdr", int(cdr))
        return ptr

    def add_root(self, ptr: int) -> int:
        """Register a root; returns the root slot's address."""
        if self.n_roots >= self.capacity:
            raise ReproError("root table full")
        addr = self.root_base + self.n_roots
        self.memory.poke(addr, int(ptr))
        self.n_roots += 1
        return addr

    def roots(self) -> np.ndarray:
        """Current root pointers (uncharged)."""
        return self.memory.peek_range(self.root_base, self.n_roots)

    # -- address classification -------------------------------------------
    @property
    def fwd_offset(self) -> int:
        """Additive offset from a from-space cell to its forwarding word."""
        return self.fwd_base - self.from_cells.base

    def is_from_ptr(self, word: int) -> bool:
        """True if ``word`` points into from-space (uncharged)."""
        return word != NIL and word > 0 and self.from_cells.contains(word)

    # -- verification (uncharged) -------------------------------------------
    def structure_signature(self, roots: Sequence[int], arena: RecordArena) -> List:
        """Canonical form of the reachable graph: depth-first tour
        emitting atoms and back-reference ids, so two heaps can be
        compared for isomorphism including sharing and cycles."""
        ids: dict[int, int] = {}
        sig: List = []

        def walk(ptr: int) -> None:
            stack: List[Tuple[str, int]] = [("visit", int(ptr))]
            while stack:
                kind, p = stack.pop()
                if kind == "emit":
                    sig.append(p)
                    continue
                if p == NIL:
                    sig.append("nil")
                    continue
                if is_atom(p):
                    sig.append(("atom", p))
                    continue
                if p in ids:
                    sig.append(("ref", ids[p]))
                    continue
                ids[p] = len(ids)
                sig.append(("cell", ids[p]))
                car = arena.peek_field(p, "car")
                cdr = arena.peek_field(p, "cdr")
                stack.append(("visit", cdr))
                stack.append(("visit", car))

        for r in roots:
            walk(r)
        return sig


def vector_collect(
    vm: VectorMachine,
    heap: CopyingHeap,
    policy: str = "arbitrary",
) -> Tuple[int, int]:
    """Copy all live cells to to-space by vector operations, updating the
    root slots in place.  Returns ``(cells_copied, waves)``."""
    fwd_off = heap.fwd_offset
    from_base = heap.from_cells.base
    from_size = heap.from_cells.capacity * heap.from_cells.record_size
    off_car = heap.from_cells.offset("car")
    off_cdr = heap.from_cells.offset("cdr")

    # clear forwarding table (one vector fill)
    vm.mem.fill(heap.fwd_base, heap.capacity * 2, NIL)

    # frontier: addresses of slots that may hold from-space pointers
    slots = vm.iota(heap.n_roots, start=heap.root_base)
    copied = 0
    waves = 0
    while slots.size:
        waves += 1
        ptrs = vm.gather(slots)
        # classify: from-space pointer <=> within the from arena bounds
        is_ptr = vm.mask_and(vm.gt(ptrs, 0), vm.mask_and(
            vm.ge(ptrs, from_base), vm.lt(ptrs, from_base + from_size)))
        slots = vm.compress(slots, is_ptr)
        ptrs = vm.compress(ptrs, is_ptr)
        if slots.size == 0:
            break

        # cells not yet forwarded need a copier elected
        fwd_addrs = vm.add(ptrs, fwd_off)
        fwd = vm.gather(fwd_addrs)
        fresh = vm.eq(fwd, NIL)
        if vm.any_true(fresh):
            # one overwrite-and-check round (S1 only): lanes scatter
            # their subscript labels into the forwarding word
            labels = vm.iota(slots.size)
            vm.scatter_masked(fwd_addrs, vm.add(labels, 1), fresh, policy=policy)
            readback = vm.gather(fwd_addrs)
            winners = vm.mask_and(fresh, vm.eq(readback, vm.add(labels, 1)))
            w_ptrs = vm.compress(ptrs, winners)
            # allocate to-space cells and copy car/cdr
            new_cells = heap.to_cells.alloc_many(w_ptrs.size)
            vm.iota(w_ptrs.size)  # charge address generation
            car = vm.gather(vm.add(w_ptrs, off_car))
            cdr = vm.gather(vm.add(w_ptrs, off_cdr))
            vm.scatter(vm.add(new_cells, off_car), car, policy=policy)
            vm.scatter(vm.add(new_cells, off_cdr), cdr, policy=policy)
            # install real forwarding pointers (overwrites the labels;
            # losers re-read below and see the winner's value)
            vm.scatter(vm.add(w_ptrs, fwd_off), new_cells, policy=policy)
            copied += int(w_ptrs.size)

            # next wave's frontier: the fresh copies' own car/cdr slots
            next_slots = np.concatenate(
                [vm.add(new_cells, off_car), vm.add(new_cells, off_cdr)]
            )
        else:
            next_slots = np.empty(0, dtype=np.int64)

        # redirect every slot through the (now complete) forwarding table
        final_fwd = vm.gather(fwd_addrs)
        vm.scatter(slots, final_fwd, policy=policy)

        slots = next_slots
        vm.loop_overhead()

    return copied, waves


def scalar_collect(sp: ScalarProcessor, heap: CopyingHeap) -> int:
    """Sequential Cheney-style copy (baseline); returns cells copied."""
    fwd_off = heap.fwd_offset
    off_car = heap.from_cells.offset("car")
    off_cdr = heap.from_cells.offset("cdr")
    from_base = heap.from_cells.base
    from_size = heap.from_cells.capacity * heap.from_cells.record_size

    sp.fill_array(heap.fwd_base, heap.capacity * 2, NIL)

    def is_from_ptr(word: int) -> bool:
        sp.alu(2)
        return word > 0 and from_base <= word < from_base + from_size

    def forward(ptr: int) -> int:
        fwd = sp.load(ptr + fwd_off)
        sp.branch()
        if fwd != NIL:
            return fwd
        new = heap.to_cells.alloc_one()
        sp.alu()
        sp.store(new + off_car, sp.load(ptr + off_car))
        sp.store(new + off_cdr, sp.load(ptr + off_cdr))
        sp.store(ptr + fwd_off, new)
        return new

    copied_before = heap.to_cells.allocated
    # scan roots, then Cheney-scan the copied region
    for i in range(heap.n_roots):
        addr = heap.root_base + i
        word = sp.load(addr)
        if is_from_ptr(word):
            sp.store(addr, forward(word))
        sp.loop_iter()
    scan = copied_before
    while scan < heap.to_cells.allocated:
        cell = heap.to_cells.base + scan * heap.to_cells.record_size
        for off in (off_car, off_cdr):
            word = sp.load(cell + off)
            if is_from_ptr(word):
                sp.store(cell + off, forward(word))
            sp.branch()
        scan += 1
        sp.loop_iter()
    return heap.to_cells.allocated - copied_before
