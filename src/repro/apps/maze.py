"""Vectorized maze (Lee-algorithm) routing — the Suzuki et al. related
work the paper cites in §5 as using the S₁-only FOL technique.

A rectangular grid with blocked cells; breadth-first wavefront expansion
from the source assigns each reachable cell its distance, then a
backtrace from the target yields a shortest path.

Where FOL appears: several wavefront cells expand into the *same* free
neighbour in one step.  All of them scatter (distance, parent) into the
cell; the ELS condition keeps exactly one writer, and an
overwrite-and-check round elects that writer as the unique lane that
carries the neighbour into the next frontier (otherwise the frontier
would grow with duplicates and re-expand cells).  Only S₁ is needed —
losers' cells were reached at the same distance, so dropping them is
correct, exactly the §5 observation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ReproError
from ..machine.scalar import ScalarProcessor
from ..machine.vm import VectorMachine
from ..mem.arena import BumpAllocator

#: Cell states in the grid region.
FREE = 0
WALL = 1

#: Distance value for unreached cells.
UNREACHED = -1


class MazeGrid:
    """Grid + distance + parent + label regions in simulated memory."""

    def __init__(
        self,
        allocator: BumpAllocator,
        grid: np.ndarray,
        name: str = "maze",
    ) -> None:
        grid = np.asarray(grid)
        if grid.ndim != 2:
            raise ReproError(f"grid must be 2-D, got shape {grid.shape}")
        self.height, self.width = grid.shape
        self.n = self.height * self.width
        self.grid_base = allocator.alloc(self.n, f"{name}.grid")
        self.dist_base = allocator.alloc(self.n, f"{name}.dist")
        self.parent_base = allocator.alloc(self.n, f"{name}.parent")
        self.work_base = allocator.alloc(self.n, f"{name}.work")
        self.memory = allocator.memory
        self.memory.words[self.grid_base : self.grid_base + self.n] = np.where(
            grid.ravel() != 0, WALL, FREE
        )

    def idx(self, row: int, col: int) -> int:
        """Linear cell index of (row, col)."""
        return row * self.width + col

    def distances(self) -> np.ndarray:
        """Distance field as a 2-D array (uncharged)."""
        d = self.memory.peek_range(self.dist_base, self.n)
        return d.reshape(self.height, self.width)

    def reset(self) -> None:
        """Clear distance/parent fields (uncharged test helper)."""
        self.memory.words[self.dist_base : self.dist_base + self.n] = UNREACHED
        self.memory.words[self.parent_base : self.parent_base + self.n] = UNREACHED


def _neighbour_offsets(width: int) -> Tuple[int, ...]:
    """Linear-index deltas of the four von Neumann neighbours."""
    return (-width, width, -1, 1)


def vector_route(
    vm: VectorMachine,
    maze: MazeGrid,
    source: Tuple[int, int],
    target: Tuple[int, int],
    policy: str = "arbitrary",
) -> Optional[List[Tuple[int, int]]]:
    """Wavefront expansion by vector operations; returns the cell path
    from source to target (inclusive) or None if unreachable."""
    w, n = maze.width, maze.n
    src = maze.idx(*source)
    dst = maze.idx(*target)
    for name, cell in (("source", src), ("target", dst)):
        if maze.memory.peek(maze.grid_base + cell) == WALL:
            raise ReproError(f"{name} cell {cell} is a wall")

    # initialise fields with vector fills
    vm.mem.fill(maze.dist_base, n, UNREACHED)
    vm.mem.fill(maze.parent_base, n, UNREACHED)
    vm.mem.fill(maze.work_base, n, -1)
    vm.mem.sstore(maze.dist_base + src, 0)

    frontier = np.asarray([src], dtype=np.int64)
    dist = 0
    while frontier.size:
        dist += 1
        # expand four directions; boundary columns handled by masking
        cand_from: List[np.ndarray] = []
        cand_to: List[np.ndarray] = []
        col = vm.mod(frontier, w)
        for off in _neighbour_offsets(w):
            to = vm.add(frontier, off)
            ok = vm.mask_and(vm.ge(to, 0), vm.lt(to, n))
            if off == -1:
                ok = vm.mask_and(ok, vm.gt(col, 0))
            elif off == 1:
                ok = vm.mask_and(ok, vm.lt(col, w - 1))
            cand_to.append(vm.compress(to, ok))
            cand_from.append(vm.compress(frontier, ok))
        to_all = np.concatenate(cand_to)
        from_all = np.concatenate(cand_from)
        if to_all.size == 0:
            break

        # keep only free, unreached cells
        free = vm.eq(vm.gather(vm.add(to_all, maze.grid_base)), FREE)
        unseen = vm.eq(vm.gather(vm.add(to_all, maze.dist_base)), UNREACHED)
        keep = vm.mask_and(free, unseen)
        to_all = vm.compress(to_all, keep)
        from_all = vm.compress(from_all, keep)
        if to_all.size == 0:
            break

        # S1 election: one lane per duplicated neighbour survives
        labels = vm.iota(to_all.size)
        wa = vm.add(to_all, maze.work_base)
        vm.scatter(wa, labels, policy=policy)
        winners = vm.eq(vm.gather(wa), labels)
        to_w = vm.compress(to_all, winners)
        from_w = vm.compress(from_all, winners)

        # winners write distance and parent (conflict-free scatters)
        vm.scatter(vm.add(to_w, maze.dist_base), vm.splat(to_w.size, dist), policy=policy)
        vm.scatter(vm.add(to_w, maze.parent_base), from_w, policy=policy)

        frontier = to_w
        vm.loop_overhead()
        if maze.memory.peek(maze.dist_base + dst) != UNREACHED:
            break

    return _backtrace(maze, src, dst)


def scalar_route(
    sp: ScalarProcessor,
    maze: MazeGrid,
    source: Tuple[int, int],
    target: Tuple[int, int],
) -> Optional[List[Tuple[int, int]]]:
    """Sequential BFS baseline with per-operation charging."""
    w, n = maze.width, maze.n
    src = maze.idx(*source)
    dst = maze.idx(*target)
    for name, cell in (("source", src), ("target", dst)):
        if maze.memory.peek(maze.grid_base + cell) == WALL:
            raise ReproError(f"{name} cell {cell} is a wall")

    sp.fill_array(maze.dist_base, n, UNREACHED)
    sp.fill_array(maze.parent_base, n, UNREACHED)
    sp.store(maze.dist_base + src, 0)

    from collections import deque

    queue = deque([src])
    while queue:
        cur = queue.popleft()
        sp.branch()
        if cur == dst:
            break
        d = sp.load(maze.dist_base + cur)
        col = cur % w
        sp.alu()
        for off in _neighbour_offsets(w):
            sp.branch()
            to = cur + off
            sp.alu()
            if to < 0 or to >= n:
                continue
            if off == -1 and col == 0:
                continue
            if off == 1 and col == w - 1:
                continue
            if sp.load(maze.grid_base + to) != FREE:
                continue
            if sp.load(maze.dist_base + to) != UNREACHED:
                continue
            sp.store(maze.dist_base + to, d + 1)
            sp.alu()
            sp.store(maze.parent_base + to, cur)
            queue.append(to)
        sp.loop_iter()

    return _backtrace(maze, src, dst)


def _backtrace(maze: MazeGrid, src: int, dst: int) -> Optional[List[Tuple[int, int]]]:
    """Follow parent pointers from target to source (uncharged; both
    implementations share it so path checks compare like with like)."""
    if maze.memory.peek(maze.dist_base + dst) == UNREACHED:
        return None
    path = [dst]
    cur = dst
    for _ in range(maze.n + 1):
        if cur == src:
            path.reverse()
            return [(p // maze.width, p % maze.width) for p in path]
        cur = maze.memory.peek(maze.parent_base + cur)
        if cur == UNREACHED:
            raise ReproError("broken parent chain")
        path.append(cur)
    raise ReproError("backtrace did not terminate — parent cycle?")


def check_path(
    maze: MazeGrid, path: List[Tuple[int, int]], source, target
) -> None:
    """Validate a routed path: endpoints, 4-connectivity, no walls."""
    if not path or path[0] != tuple(source) or path[-1] != tuple(target):
        raise ReproError("path endpoints wrong")
    for (r1, c1), (r2, c2) in zip(path, path[1:]):
        if abs(r1 - r2) + abs(c1 - c2) != 1:
            raise ReproError(f"path not 4-connected at {(r1, c1)} -> {(r2, c2)}")
    for r, c in path:
        if maze.memory.peek(maze.grid_base + maze.idx(r, c)) == WALL:
            raise ReproError(f"path passes through wall at {(r, c)}")
