"""Vectorized hash join — the database workload the paper's §1 motivates
(the Hitachi IDP, "designed for database processing", is where this line
of symbolic vector processing started).

Equi-join of two relations R(key, payload) and S(key, payload):

* **Build** — R is entered into a chained hash table by FOL1 multiple
  hashing (Figure 7).  Duplicate keys are fine; they chain.
* **Probe** — all S rows walk the chains *in lock-step*: one gather
  fetches every probe's current node, one compare splits matches from
  non-matches, matched pairs are emitted, and every probe advances to
  ``node.next``.  Chain walking is read-only, so no FOL is needed
  (Figure 2b), but a probe can match *several* build rows — emission
  appends per wave, so the output is produced chain-position-major.

The scalar baseline is the ordinary build-and-probe hash join, charged
per operation.  Both sides emit the same multiset of (R-row, S-row)
pairs; tests verify against a Python dictionary join.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ReproError
from ..hashing.chained import vector_chained_insert
from ..hashing.table import ChainedHashTable
from ..machine.scalar import ScalarProcessor
from ..machine.vm import VectorMachine
from ..mem.arena import NIL, BumpAllocator


class JoinWorkspace:
    """Hash table sized for the build side of the join.

    The chained table's node arena doubles as the row store: node i of
    the arena corresponds to build row i (bump allocation preserves
    order), so the emitted "R row id" is recovered from the node
    address with pure arithmetic.
    """

    def __init__(
        self,
        allocator: BumpAllocator,
        table_size: int,
        build_capacity: int,
        name: str = "join",
    ) -> None:
        self.table = ChainedHashTable(
            allocator, table_size, capacity=build_capacity, name=name
        )

    def node_to_row(self, vm: VectorMachine, nodes: np.ndarray) -> np.ndarray:
        """Map node addresses back to build-row indices (one vector
        subtract + divide)."""
        arena = self.table.nodes
        return vm.floordiv(vm.sub(nodes, arena.base), arena.record_size)


def vector_hash_join(
    vm: VectorMachine,
    ws: JoinWorkspace,
    build_keys: np.ndarray,
    probe_keys: np.ndarray,
    policy: str = "arbitrary",
) -> Tuple[np.ndarray, np.ndarray]:
    """Join ``build_keys`` (R) with ``probe_keys`` (S) on equality.

    Returns ``(r_rows, s_rows)`` — parallel arrays of matching row
    indices, in chain-position-major order.
    """
    build_keys = np.asarray(build_keys, dtype=np.int64)
    probe_keys = np.asarray(probe_keys, dtype=np.int64)
    if build_keys.size > ws.table.nodes.remaining:
        raise ReproError(
            f"{build_keys.size} build rows exceed workspace capacity "
            f"{ws.table.nodes.remaining}"
        )

    # build phase: FOL1 multiple hashing
    if build_keys.size:
        vector_chained_insert(vm, ws.table, build_keys, policy=policy)

    if probe_keys.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty

    table = ws.table
    off_key = table.nodes.offset("key")
    off_next = table.nodes.offset("next")

    # probe phase: lock-step chain walking
    s_rows = vm.iota(probe_keys.size)
    hashed = vm.mod(probe_keys, table.size)
    cursors = vm.gather(vm.add(hashed, table.base))  # chain heads
    keys = probe_keys.copy()

    out_r: List[np.ndarray] = []
    out_s: List[np.ndarray] = []
    waves = 0
    limit = build_keys.size + 2
    while True:
        live = vm.ne(cursors, NIL)
        if not vm.any_true(live):
            break
        waves += 1
        if waves > limit:
            raise ReproError("probe chains longer than the build side — cycle?")
        cursors = vm.compress(cursors, live)
        keys = vm.compress(keys, live)
        s_rows = vm.compress(s_rows, live)

        node_keys = vm.gather(vm.add(cursors, off_key))
        hit = vm.eq(node_keys, keys)
        if vm.any_true(hit):
            match_nodes = vm.compress(cursors, hit)
            out_r.append(ws.node_to_row(vm, match_nodes))
            out_s.append(vm.compress(s_rows, hit))

        cursors = vm.gather(vm.add(cursors, off_next))
        vm.loop_overhead()

    if not out_r:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(out_r), np.concatenate(out_s)


def scalar_hash_join(
    sp: ScalarProcessor,
    ws: JoinWorkspace,
    build_keys: np.ndarray,
    probe_keys: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sequential build-and-probe hash join (baseline)."""
    from ..hashing.scalar import scalar_chained_insert

    build_keys = np.asarray(build_keys, dtype=np.int64)
    probe_keys = np.asarray(probe_keys, dtype=np.int64)
    table = ws.table
    scalar_chained_insert(sp, table, build_keys)

    off_key = table.nodes.offset("key")
    off_next = table.nodes.offset("next")
    arena = table.nodes
    out_r: List[int] = []
    out_s: List[int] = []
    for s_row, key in enumerate(probe_keys):
        key = int(key)
        h = sp.hash_mod(key, table.size)
        ptr = sp.load(table.base + h)
        while ptr != NIL:
            sp.branch()
            k = sp.load(ptr + off_key)
            sp.alu()
            if k == key:
                out_r.append((ptr - arena.base) // arena.record_size)
                out_s.append(s_row)
                sp.alu()
            ptr = sp.load(ptr + off_next)
            sp.loop_iter()
        sp.branch()
    return np.asarray(out_r, dtype=np.int64), np.asarray(out_s, dtype=np.int64)


def join_multiset(
    r_rows: np.ndarray, s_rows: np.ndarray
) -> List[Tuple[int, int]]:
    """Canonical form of a join result for comparisons (sorted pairs)."""
    return sorted(zip(r_rows.tolist(), s_rows.tolist()))
