"""Related-work applications (paper §5): vectorized copying GC and
vectorized maze routing, both S₁-only FOL specialisations."""

from .gc import CopyingHeap, scalar_collect, vector_collect
from .join import JoinWorkspace, join_multiset, scalar_hash_join, vector_hash_join
from .maze import (
    FREE,
    UNREACHED,
    WALL,
    MazeGrid,
    check_path,
    scalar_route,
    vector_route,
)

__all__ = [
    "CopyingHeap",
    "JoinWorkspace",
    "vector_hash_join",
    "scalar_hash_join",
    "join_multiset",
    "vector_collect",
    "scalar_collect",
    "MazeGrid",
    "vector_route",
    "scalar_route",
    "check_path",
    "FREE",
    "WALL",
    "UNREACHED",
]
