"""Scalar reference oracles with first-divergence state diffing.

Each oracle computes, in plain Python, the state a correct run must
leave behind — hash chains as per-slot key multisets, shared list cells
as integer values, a BST as its sorted key multiset, a sort as the
sorted input — and each ``diff_*`` function compares the vectorized
implementation's actual state against it, returning ``None`` on a match
or a :class:`Divergence` that names the **first** divergent cell, chain
or key.  The fuzz harness (:mod:`repro.audit.fuzz`) treats a divergence
exactly like an :class:`~repro.errors.AuditError`: a found bug, to be
shrunk and reported.

The oracles deliberately share no code with the vector paths: they are
the independent second implementation a differential test needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Divergence:
    """First point where actual state departed from the oracle."""

    where: str  # e.g. "chain slot 17", "cell 3", "inorder index 5"
    expected: object
    actual: object

    def __str__(self) -> str:
        return (
            f"first divergence at {self.where}: "
            f"expected {self.expected!r}, got {self.actual!r}"
        )


# ----------------------------------------------------------------------
# chained hash insert
# ----------------------------------------------------------------------
def hash_reference(keys: Sequence[int], table_size: int) -> Dict[int, List[int]]:
    """Expected per-slot key multisets after inserting ``keys`` into a
    chained table of ``table_size`` slots (sorted; chain order is
    legitimately policy-dependent, only the multiset is contractual)."""
    chains: Dict[int, List[int]] = {}
    for k in keys:
        chains.setdefault(int(k) % table_size, []).append(int(k))
    return {slot: sorted(ks) for slot, ks in chains.items()}


def diff_hash(
    actual_chains: Dict[int, List[int]],
    keys: Sequence[int],
    table_size: int,
) -> Optional[Divergence]:
    """Compare a table's chains (``slot -> keys``, any order) against
    the scalar oracle; names the first divergent slot."""
    expected = hash_reference(keys, table_size)
    actual = {
        slot: sorted(ks) for slot, ks in actual_chains.items() if ks
    }
    for slot in sorted(set(expected) | set(actual)):
        e = expected.get(slot, [])
        a = actual.get(slot, [])
        if e != a:
            return Divergence(f"chain slot {slot}", e, a)
    return None


# ----------------------------------------------------------------------
# shared list cells (bumps and transfers)
# ----------------------------------------------------------------------
def list_reference(
    n_cells: int, deltas: Sequence[Tuple[int, int]]
) -> List[int]:
    """Expected cell values after applying ``deltas`` in any order (the
    contributions commute).  Each entry is ``(cell, delta)`` meaning
    ``cell += delta`` — a request kind that touches the cell bank
    reports its contributions via
    :meth:`~repro.engine.spec.WorkloadSpec.cell_deltas` (a plain bump
    is one pair, a transfer is a ``-delta``/``+delta`` pair)."""
    values = [0] * n_cells
    for cell, delta in deltas:
        values[cell] += delta
    return values


def diff_list(
    actual_values: Sequence[int],
    n_cells: int,
    deltas: Sequence[Tuple[int, int]],
) -> Optional[Divergence]:
    """Compare actual cell values against the oracle; names the first
    divergent cell."""
    expected = list_reference(n_cells, deltas)
    for cell, (e, a) in enumerate(zip(expected, actual_values)):
        if int(e) != int(a):
            return Divergence(f"cell {cell}", int(e), int(a))
    if len(actual_values) != n_cells:
        return Divergence("cell count", n_cells, len(actual_values))
    return None


# ----------------------------------------------------------------------
# BST insert
# ----------------------------------------------------------------------
def diff_bst(
    actual_inorder: Sequence[int], keys: Sequence[int]
) -> Optional[Divergence]:
    """A correct multi-insertion leaves an inorder walk equal to the
    sorted key multiset; names the first divergent index."""
    expected = sorted(int(k) for k in keys)
    actual = [int(k) for k in actual_inorder]
    for i, (e, a) in enumerate(zip(expected, actual)):
        if e != a:
            return Divergence(f"inorder index {i}", e, a)
    if len(actual) != len(expected):
        return Divergence("inorder length", len(expected), len(actual))
    return None


# ----------------------------------------------------------------------
# address-calculation sort
# ----------------------------------------------------------------------
def diff_sorted(
    actual_output: Sequence[int], data: Sequence[int]
) -> Optional[Divergence]:
    """Compare a sort's output against ``sorted(data)``; names the first
    divergent rank."""
    expected = sorted(int(x) for x in data)
    actual = [int(x) for x in actual_output]
    for i, (e, a) in enumerate(zip(expected, actual)):
        if e != a:
            return Divergence(f"rank {i}", e, a)
    if len(actual) != len(expected):
        return Divergence("output length", len(expected), len(actual))
    return None


# ----------------------------------------------------------------------
# streaming / sharded end state
# ----------------------------------------------------------------------
def diff_stream_state(
    engine,
    requests,
    *,
    table_size: int,
    n_cells: int,
    key_space: int = 4096,
) -> Optional[Divergence]:
    """Differential check of a drained stream engine's whole state.

    ``engine`` is a :class:`~repro.runtime.executor.StreamExecutor` or a
    :class:`~repro.shard.coordinator.ShardCoordinator`.  Every request
    in ``requests`` must have completed (use the blocking admission
    policy when generating audited workloads).

    Dispatches through the workload registry: each registered spec's
    :meth:`~repro.engine.spec.WorkloadSpec.oracle_diff` checks the
    kind's end state against its scalar oracle, in registration order,
    and the first divergence wins.
    """
    from ..engine.spec import EngineContext, specs

    ctx = EngineContext(
        table_size=table_size, n_cells=n_cells, key_space=key_space
    )
    requests = list(requests)
    for spec in specs():
        d = spec.oracle_diff(engine, requests, ctx)
        if d is not None:
            return d
    return None
