"""Scalar reference oracles with first-divergence state diffing.

Each oracle computes, in plain Python, the state a correct run must
leave behind — hash chains as per-slot key multisets, shared list cells
as integer values, a BST as its sorted key multiset, a sort as the
sorted input — and each ``diff_*`` function compares the vectorized
implementation's actual state against it, returning ``None`` on a match
or a :class:`Divergence` that names the **first** divergent cell, chain
or key.  The fuzz harness (:mod:`repro.audit.fuzz`) treats a divergence
exactly like an :class:`~repro.errors.AuditError`: a found bug, to be
shrunk and reported.

The oracles deliberately share no code with the vector paths: they are
the independent second implementation a differential test needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Divergence:
    """First point where actual state departed from the oracle."""

    where: str  # e.g. "chain slot 17", "cell 3", "inorder index 5"
    expected: object
    actual: object

    def __str__(self) -> str:
        return (
            f"first divergence at {self.where}: "
            f"expected {self.expected!r}, got {self.actual!r}"
        )


# ----------------------------------------------------------------------
# chained hash insert
# ----------------------------------------------------------------------
def hash_reference(keys: Sequence[int], table_size: int) -> Dict[int, List[int]]:
    """Expected per-slot key multisets after inserting ``keys`` into a
    chained table of ``table_size`` slots (sorted; chain order is
    legitimately policy-dependent, only the multiset is contractual)."""
    chains: Dict[int, List[int]] = {}
    for k in keys:
        chains.setdefault(int(k) % table_size, []).append(int(k))
    return {slot: sorted(ks) for slot, ks in chains.items()}


def diff_hash(
    actual_chains: Dict[int, List[int]],
    keys: Sequence[int],
    table_size: int,
) -> Optional[Divergence]:
    """Compare a table's chains (``slot -> keys``, any order) against
    the scalar oracle; names the first divergent slot."""
    expected = hash_reference(keys, table_size)
    actual = {
        slot: sorted(ks) for slot, ks in actual_chains.items() if ks
    }
    for slot in sorted(set(expected) | set(actual)):
        e = expected.get(slot, [])
        a = actual.get(slot, [])
        if e != a:
            return Divergence(f"chain slot {slot}", e, a)
    return None


# ----------------------------------------------------------------------
# shared list cells (bumps and transfers)
# ----------------------------------------------------------------------
def list_reference(
    n_cells: int, ops: Sequence[Tuple[str, int, int, int]]
) -> List[int]:
    """Expected cell values after applying ``ops`` in any order (the
    operations commute).  Each op is ``(kind, key, key2, delta)`` with
    kind ``"list"`` (``cell[key] += delta``) or ``"xfer"``
    (``cell[key] -= delta; cell[key2] += delta``)."""
    values = [0] * n_cells
    for kind, key, key2, delta in ops:
        if kind == "list":
            values[key] += delta
        elif kind == "xfer":
            values[key] -= delta
            values[key2] += delta
        else:
            raise ValueError(f"unknown list op kind {kind!r}")
    return values


def diff_list(
    actual_values: Sequence[int],
    n_cells: int,
    ops: Sequence[Tuple[str, int, int, int]],
) -> Optional[Divergence]:
    """Compare actual cell values against the oracle; names the first
    divergent cell."""
    expected = list_reference(n_cells, ops)
    for cell, (e, a) in enumerate(zip(expected, actual_values)):
        if int(e) != int(a):
            return Divergence(f"cell {cell}", int(e), int(a))
    if len(actual_values) != n_cells:
        return Divergence("cell count", n_cells, len(actual_values))
    return None


# ----------------------------------------------------------------------
# BST insert
# ----------------------------------------------------------------------
def diff_bst(
    actual_inorder: Sequence[int], keys: Sequence[int]
) -> Optional[Divergence]:
    """A correct multi-insertion leaves an inorder walk equal to the
    sorted key multiset; names the first divergent index."""
    expected = sorted(int(k) for k in keys)
    actual = [int(k) for k in actual_inorder]
    for i, (e, a) in enumerate(zip(expected, actual)):
        if e != a:
            return Divergence(f"inorder index {i}", e, a)
    if len(actual) != len(expected):
        return Divergence("inorder length", len(expected), len(actual))
    return None


# ----------------------------------------------------------------------
# address-calculation sort
# ----------------------------------------------------------------------
def diff_sorted(
    actual_output: Sequence[int], data: Sequence[int]
) -> Optional[Divergence]:
    """Compare a sort's output against ``sorted(data)``; names the first
    divergent rank."""
    expected = sorted(int(x) for x in data)
    actual = [int(x) for x in actual_output]
    for i, (e, a) in enumerate(zip(expected, actual)):
        if e != a:
            return Divergence(f"rank {i}", e, a)
    if len(actual) != len(expected):
        return Divergence("output length", len(expected), len(actual))
    return None


# ----------------------------------------------------------------------
# streaming / sharded end state
# ----------------------------------------------------------------------
def diff_stream_state(
    engine,
    requests,
    *,
    table_size: int,
    n_cells: int,
) -> Optional[Divergence]:
    """Differential check of a drained stream engine's whole state.

    ``engine`` is a :class:`~repro.runtime.executor.StreamExecutor` or a
    :class:`~repro.shard.coordinator.ShardCoordinator` (both expose
    ``list_values``; chains/inorder are read per engine type).  Every
    request in ``requests`` must have completed (use the blocking
    admission policy when generating audited workloads).
    """
    hash_keys = [r.key for r in requests if r.kind == "hash"]
    bst_keys = [r.key for r in requests if r.kind == "bst"]
    ops = [
        (r.kind, r.key, r.key2, r.delta)
        for r in requests
        if r.kind in ("list", "xfer")
    ]

    if hasattr(engine, "chain_multisets"):  # sharded coordinator
        chains = engine.chain_multisets()
        inorder = engine.bst_inorder()
    else:  # single-pipeline executor
        chains = {
            slot: keys
            for slot, keys in enumerate(engine.table.all_chains())
            if keys
        }
        inorder = engine.tree.inorder()

    d = diff_hash(chains, hash_keys, table_size)
    if d is not None:
        return d
    d = diff_bst(inorder, bst_keys)
    if d is not None:
        return d
    return diff_list(engine.list_values(), n_cells, ops)
