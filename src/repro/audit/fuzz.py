"""Deterministic differential fuzzing of the FOL pipelines.

Every case is generated from an explicit seed, runs a *fresh* machine
with an :class:`~repro.audit.invariants.InvariantAuditor` attached, and
is double-checked against the scalar oracles in
:mod:`repro.audit.oracle`.  A failure — an :class:`AuditError` from the
invariant hooks, a :class:`Divergence` from an oracle, or any unexpected
exception — is **shrunk**: the key vector that provoked it is reduced by
greedy delta-debugging (drop chunks, halve the chunk, repeat) until no
smaller vector still fails, and the minimal input is reported in the
:class:`FuzzFailure`.

The generated inputs target FOL's hard regimes:

* ``dup_heavy`` — keys drawn from a tiny key space, so most lanes share
  a storage area (high pointer multiplicity M);
* ``zipf`` — skewed keys, a few hot addresses plus a long tail (the
  streaming benchmarks' stress shape);
* ``all_same`` — every lane targets one address (M == N, the worst case
  of Theorem 6);
* ``near_unique`` — almost no sharing, the M == 1 fast path plus a
  couple of planted duplicates.

Suites:

* ``core`` — direct kernels: every registered workload kind that
  declares a ``core_fuzz`` kernel (chained-hash insert, BST
  multi-insert, address-calculation sort, ...) plus raw FOL1
  decomposition;
* ``stream`` — full :class:`~repro.runtime.service.StreamService` runs
  (carryover, in-batch retry, and adaptive batching) over mixed
  request streams cycling through the registry's stream-mix kinds,
  tiny batches forcing carryover recirculation;
* ``shard`` — the K-shard engine with cross-shard transfers and an
  aggressive rebalancer, so claim/commit and live migration run under
  audit.

:func:`install_els_fault` is the test-only failpoint the acceptance
tests use: it arms :attr:`~repro.machine.memory.Memory._scatter_fault`
to corrupt one conflicting scatter with an amalgam word no lane wrote,
proving the auditor catches real ELS violations end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import AuditError, ReproError
from .invariants import AuditStats, InvariantAuditor
from .oracle import Divergence, diff_stream_state

#: Key patterns every suite cycles through.
PATTERNS = ("dup_heavy", "zipf", "all_same", "near_unique")

#: Scenarios per suite (cycled per case, crossed with PATTERNS).
#: Core scenarios come from the registry: every kind with a
#: ``core_fuzz`` kernel, plus raw FOL1 decomposition.
STREAM_SCENARIOS = ("carry", "retry", "adaptive")
SHARD_SCENARIOS = ("static", "rebalance")

SUITES = ("core", "stream", "shard")

#: Exclusive upper bound of generated keys (also the sort's Vmax).
KEY_SPACE = 4096

#: Fuzz-sized shared state: small enough that dup_heavy/zipf inputs
#: actually collide, large enough to exercise multi-slot behaviour.
TABLE_SIZE = 61
N_CELLS = 16


def core_scenarios() -> tuple:
    """Direct-kernel scenarios: registered kinds that declare a
    ``core_fuzz`` kernel, in registration order, plus ``"fol1"`` (raw
    decomposition — a scenario, not a request kind)."""
    from ..engine.spec import specs

    return tuple(
        s.name for s in specs() if s.core_fuzz is not None
    ) + ("fol1",)


def __getattr__(name: str):
    # Live view (PEP 562): kinds registered after this module imports
    # still appear.  Kept as an attribute for backwards compatibility.
    if name == "CORE_SCENARIOS":
        return core_scenarios()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# ----------------------------------------------------------------------
# input generation
# ----------------------------------------------------------------------
def generate_keys(
    rng: np.random.Generator, pattern: str, n: int, key_space: int = KEY_SPACE
) -> np.ndarray:
    """``n`` keys in ``[0, key_space)`` following ``pattern``."""
    if pattern == "dup_heavy":
        pool = max(1, n // 4)
        return rng.integers(0, min(pool, key_space), size=n).astype(np.int64)
    if pattern == "zipf":
        ranks = np.arange(1, key_space + 1, dtype=np.float64)
        p = ranks**-1.2
        p /= p.sum()
        return rng.choice(key_space, size=n, p=p).astype(np.int64)
    if pattern == "all_same":
        return np.full(n, int(rng.integers(0, key_space)), dtype=np.int64)
    if pattern == "near_unique":
        keys = rng.permutation(key_space)[:n].astype(np.int64)
        if n >= 2:
            keys[n - 1] = keys[0]  # plant one duplicate
        return keys
    raise ReproError(f"unknown fuzz pattern {pattern!r}; expected {PATTERNS}")


@dataclass(frozen=True)
class FuzzCase:
    """One deterministic generated case."""

    suite: str
    scenario: str
    pattern: str
    seed: int
    index: int
    n: int

    def describe(self) -> str:
        return (
            f"{self.suite}/{self.scenario} pattern={self.pattern} "
            f"n={self.n} seed={self.seed} case={self.index}"
        )


@dataclass
class FuzzFailure:
    """A failing case plus its shrunk counterexample."""

    case: FuzzCase
    message: str
    keys: List[int]
    shrunk_from: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "suite": self.case.suite,
            "scenario": self.case.scenario,
            "pattern": self.case.pattern,
            "seed": self.case.seed,
            "case": self.case.index,
            "message": self.message,
            "keys": self.keys,
            "lanes": len(self.keys),
            "shrunk_from": self.shrunk_from,
        }


@dataclass
class FuzzReport:
    """Outcome of a whole suite run."""

    suite: str
    cases: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    stats: AuditStats = field(default_factory=AuditStats)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> Dict[str, object]:
        return {
            "suite": self.suite,
            "cases": self.cases,
            "ok": self.ok,
            "failures": [f.as_dict() for f in self.failures],
            "audit_stats": self.stats.as_dict(),
        }


# ----------------------------------------------------------------------
# case runners — return a failure message, or None when the case holds
# ----------------------------------------------------------------------
def _fresh_machine(n: int):
    from ..machine.vm import make_machine
    from ..mem.arena import BumpAllocator

    words = 4 * TABLE_SIZE + 10 * max(n, 1) + 4096
    vm = make_machine(words)
    return vm, BumpAllocator(vm.mem)


def run_core_case(
    scenario: str,
    keys: Sequence[int],
    stats: Optional[AuditStats] = None,
    *,
    kinds: Optional[Sequence[str]] = None,
) -> Optional[str]:
    """Run one direct-kernel case under audit; returns failure text.
    ``kinds`` is accepted for a uniform runner signature and ignored —
    a core scenario *is* a single kind's kernel (or raw FOL1)."""
    keys = np.asarray(list(keys), dtype=np.int64)
    n = int(keys.size)
    vm, alloc = _fresh_machine(n)
    auditor = InvariantAuditor()
    vm.attach_audit(auditor)
    divergence: Optional[Divergence] = None
    try:
        if scenario == "fol1":
            from ..core.fol1 import fol1

            # Raw decomposition over a shared data area; the auditor
            # validates Theorems 3-6 on the finished decomposition and
            # we independently re-check M against the key multiset.
            area = alloc.alloc(TABLE_SIZE, "fuzz.fol1")
            addrs = area + (keys % TABLE_SIZE)
            dec = fol1(vm, addrs)
            if n:
                expected_m = int(
                    np.unique(addrs, return_counts=True)[1].max()
                )
                if dec.m != expected_m:
                    return (
                        f"FOL1 produced {dec.m} rounds but the maximum "
                        f"multiplicity is {expected_m} (Theorem 5)"
                    )
        else:
            from ..engine.spec import EngineContext, get_spec

            spec = get_spec(scenario)
            if spec.core_fuzz is None:
                raise ReproError(
                    f"kind {scenario!r} declares no core fuzz kernel"
                )
            ctx = EngineContext(
                table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE
            )
            divergence = spec.core_fuzz(vm, alloc, keys, ctx)
    except (AuditError, ReproError) as exc:
        return str(exc)
    finally:
        if stats is not None:
            stats_merge(stats, auditor.stats)
    return str(divergence) if divergence is not None else None


def _build_requests(
    keys: Sequence[int], kinds: Optional[Sequence[str]] = None
) -> List:
    """Deterministic mixed-kind request stream from a key vector (each
    lane's kind/targets are fixed functions of position and key — via
    each spec's ``fuzz_request`` — so any shrunk sub-vector is itself a
    valid, comparable workload).  ``kinds`` defaults to every kind in
    the registry's stream mix, cycled by lane position."""
    from ..engine.spec import EngineContext, get_spec, stream_mix_kinds

    if kinds is None:
        kinds = stream_mix_kinds()
    cycle = [get_spec(k) for k in kinds]
    ctx = EngineContext(
        table_size=TABLE_SIZE, n_cells=N_CELLS, key_space=KEY_SPACE
    )
    return [
        cycle[i % len(cycle)].fuzz_request(i, k, ctx)
        for i, k in enumerate(int(x) for x in keys)
    ]


def _drive_service(engine, reqs, batcher, stats: Optional[AuditStats]):
    """Run ``reqs`` through a StreamService over ``engine``; returns the
    failure message from audit or oracle, or None."""
    from ..runtime.service import StreamService

    service = StreamService(engine, batcher=batcher)
    try:
        service.run(reqs)
        divergence = diff_stream_state(
            engine,
            reqs,
            table_size=TABLE_SIZE,
            n_cells=N_CELLS,
            key_space=KEY_SPACE,
        )
    except (AuditError, ReproError) as exc:
        return str(exc)
    finally:
        if stats is not None and engine.audit is not None:
            stats_merge(stats, engine.audit.stats)
    return str(divergence) if divergence is not None else None


def run_stream_case(
    scenario: str,
    keys: Sequence[int],
    stats: Optional[AuditStats] = None,
    *,
    kinds: Optional[Sequence[str]] = None,
) -> Optional[str]:
    """Run one full-service case (single pipeline) under audit."""
    from ..runtime.batcher import AdaptiveBatcher, FixedBatcher
    from ..runtime.executor import StreamExecutor

    reqs = _build_requests(keys, kinds)
    if scenario == "carry":
        carryover, batcher = True, FixedBatcher(batch_size=7)
    elif scenario == "retry":
        carryover, batcher = False, FixedBatcher(batch_size=16)
    elif scenario == "adaptive":
        carryover = True
        batcher = AdaptiveBatcher(initial=8, min_size=2, max_size=64)
    else:
        raise ReproError(f"unknown stream scenario {scenario!r}")
    executor = StreamExecutor.for_workload(
        reqs, table_size=TABLE_SIZE, n_cells=N_CELLS, carryover=carryover
    )
    executor.attach_audit(InvariantAuditor())
    return _drive_service(executor, reqs, batcher, stats)


def run_shard_case(
    scenario: str,
    keys: Sequence[int],
    stats: Optional[AuditStats] = None,
    *,
    kinds: Optional[Sequence[str]] = None,
) -> Optional[str]:
    """Run one K-shard case (cross-shard xfers; optional migration)."""
    from ..runtime.batcher import FixedBatcher
    from ..shard.coordinator import ShardCoordinator

    reqs = _build_requests(keys, kinds)
    rebalance = scenario == "rebalance"
    if scenario not in SHARD_SCENARIOS:
        raise ReproError(f"unknown shard scenario {scenario!r}")
    coordinator = ShardCoordinator.for_workload(
        reqs,
        shards=3,
        table_size=TABLE_SIZE,
        n_cells=N_CELLS,
        key_space=KEY_SPACE,
        rebalance=rebalance,
        rebalance_threshold=1.1,
        rebalance_cooldown=1,
    )
    coordinator.attach_audit(InvariantAuditor())
    return _drive_service(coordinator, reqs, FixedBatcher(batch_size=7), stats)


def stats_merge(into: AuditStats, other: AuditStats) -> None:
    """Fold ``other``'s counters into ``into`` (suite-level totals)."""
    into.scatters += other.scatters
    into.scatter_lanes += other.scatter_lanes
    into.conflicts += other.conflicts
    into.rounds += other.rounds
    into.claims += other.claims
    into.decompositions += other.decompositions
    into.tuple_decompositions += other.tuple_decompositions
    for fan, count in other.conflict_fanout.items():
        into.conflict_fanout[fan] = into.conflict_fanout.get(fan, 0) + count


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def shrink_keys(
    still_fails: Callable[[List[int]], bool], keys: Sequence[int]
) -> List[int]:
    """Greedy delta-debugging: repeatedly drop chunks (halving the chunk
    size down to single lanes) while the predicate keeps failing.
    Deterministic, and each probe runs on a fresh machine, so the result
    is a genuinely minimal-ish reproducer."""
    keys = [int(k) for k in keys]
    improved = True
    while improved and len(keys) > 1:
        improved = False
        chunk = max(1, len(keys) // 2)
        while chunk >= 1:
            i = 0
            while i < len(keys) and len(keys) > 1:
                candidate = keys[:i] + keys[i + chunk :]
                if candidate and still_fails(candidate):
                    keys = candidate
                    improved = True
                else:
                    i += chunk
            chunk //= 2
    return keys


# ----------------------------------------------------------------------
# suite driver
# ----------------------------------------------------------------------
# Scenario lists are providers, not tuples: core's list is derived from
# the live registry, so it must be resolved at run time, after every
# kind module has registered.
_RUNNERS = {
    "core": (run_core_case, core_scenarios),
    "stream": (run_stream_case, lambda: STREAM_SCENARIOS),
    "shard": (run_shard_case, lambda: SHARD_SCENARIOS),
}

#: Stop collecting after this many (shrunk) failures per suite run.
MAX_FAILURES = 5


def run_suite(
    suite: str,
    *,
    seed: int,
    cases: int,
    max_lanes: int = 96,
    kinds: Optional[Sequence[str]] = None,
    on_progress: Optional[Callable[[int, FuzzCase], None]] = None,
) -> FuzzReport:
    """Run ``cases`` generated cases of ``suite``; shrink any failures.
    ``kinds`` restricts the stream/shard request mix to those kinds
    (default: the registry's whole stream mix); core cases ignore it."""
    if suite not in _RUNNERS:
        raise ReproError(f"unknown fuzz suite {suite!r}; expected {SUITES}")
    if cases <= 0:
        raise ReproError(f"case count must be positive, got {cases}")
    runner, scenario_provider = _RUNNERS[suite]
    scenarios = scenario_provider()
    report = FuzzReport(suite=suite)
    for index in range(cases):
        rng = np.random.default_rng([seed, index])
        pattern = PATTERNS[index % len(PATTERNS)]
        scenario = scenarios[(index // len(PATTERNS)) % len(scenarios)]
        n = int(rng.integers(1, max_lanes + 1))
        case = FuzzCase(
            suite=suite,
            scenario=scenario,
            pattern=pattern,
            seed=seed,
            index=index,
            n=n,
        )
        if on_progress is not None:
            on_progress(index, case)
        keys = generate_keys(rng, pattern, n)
        report.cases += 1
        message = runner(scenario, keys, report.stats, kinds=kinds)
        if message is None:
            continue
        shrunk = shrink_keys(
            lambda ks: runner(scenario, ks, kinds=kinds) is not None, keys
        )
        # Re-run the minimal input to report its (possibly simpler) error.
        final = runner(scenario, shrunk, kinds=kinds) or message
        report.failures.append(
            FuzzFailure(
                case=case,
                message=final,
                keys=[int(k) for k in shrunk],
                shrunk_from=n,
            )
        )
        if len(report.failures) >= MAX_FAILURES:
            break
    return report


# ----------------------------------------------------------------------
# test-only ELS failpoint
# ----------------------------------------------------------------------
def install_els_fault(memory, *, nth: int = 1, min_lanes: int = 2) -> None:
    """Arm a one-shot ELS violation on ``memory``.

    On the ``nth`` scatter containing an address targeted by at least
    ``min_lanes`` lanes, the first such address is overwritten with
    ``max(conflicting lane values) + 1`` — a word strictly greater than
    anything any lane wrote, i.e. a guaranteed amalgam.  The fault then
    disarms itself.  The corruption happens *between* the raw scatter
    and the audit hook, exactly where broken conflict-resolution
    hardware would bite, so a correctly wired auditor must raise
    :class:`~repro.errors.AuditError` on the very same scatter.
    """
    state = {"count": 0}

    def fault(mem, addrs, values):
        addrs = np.asarray(addrs)
        values = np.asarray(values)
        uniq, counts = np.unique(addrs, return_counts=True)
        conflicted = uniq[counts >= min_lanes]
        if conflicted.size == 0:
            return
        state["count"] += 1
        if state["count"] != nth:
            return
        target = int(conflicted[0])
        lane_values = values[addrs == target]
        mem.words[target] = int(lane_values.max()) + 1
        mem._scatter_fault = None

    memory._scatter_fault = fault
