"""Runtime invariant auditing for FOL's machine-level guarantees.

FOL's correctness proofs assume, rather than check, two families of
machine behaviour:

* **ELS** (exclusive label storing, paper §3.1): when several lanes of
  one list-vector store target the same address, exactly one lane's
  *whole word* survives — never an amalgam of bits from different lanes.
  Every theorem in §3.2 starts from this.
* **Decomposition output conditions** (Lemmas 1-2, Theorems 3-6): each
  round's surviving set is duplicate-free (parallel-processable), the
  union over rounds equals the input, rounds are pairwise disjoint, and
  the round count equals the observed maximum pointer multiplicity M.

:class:`InvariantAuditor` checks both *while the simulator runs*.  It is
attached to a :class:`~repro.machine.memory.Memory` (``mem.audit``), and
the hooked call sites — ``Memory.scatter``/``scatter_masked``, the FOL
cores, the carryover rounds, the stream executor's BST claims — invoke
it only when it is non-``None``, so an unaudited run pays a single
attribute test per scatter and zero simulated cycles either way (audit
reads use uncharged peeks and never touch the
:class:`~repro.machine.counter.CycleCounter`).

All failures raise :class:`~repro.errors.AuditError` with the conflicting
lane set spelled out, which is what the fuzz harness shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import AuditError

#: Cap on retained conflict records (the counters keep counting past it).
DEFAULT_CONFLICT_LOG = 64


@dataclass(frozen=True)
class ConflictRecord:
    """One observed scatter conflict: the lanes that raced one address."""

    address: int
    lanes: tuple  # lane indices within the scatter, ascending
    values: tuple  # the words those lanes tried to store
    survivor: int  # the word found in memory after the scatter

    def __str__(self) -> str:
        return (
            f"address {self.address}: lanes {list(self.lanes)} wrote "
            f"{list(self.values)}, word {self.survivor} survived"
        )


@dataclass
class AuditStats:
    """Counters the auditor accumulates over a run."""

    scatters: int = 0
    scatter_lanes: int = 0
    conflicts: int = 0  # conflicting address groups observed
    rounds: int = 0
    claims: int = 0
    decompositions: int = 0
    tuple_decompositions: int = 0
    conflict_fanout: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        out = {
            "scatters": self.scatters,
            "scatter_lanes": self.scatter_lanes,
            "conflicts": self.conflicts,
            "rounds": self.rounds,
            "claims": self.claims,
            "decompositions": self.decompositions,
            "tuple_decompositions": self.tuple_decompositions,
        }
        if self.conflict_fanout:
            out["conflict_fanout"] = {
                str(k): v for k, v in sorted(self.conflict_fanout.items())
            }
        return out


class InvariantAuditor:
    """Checks ELS and decomposition invariants as the machine executes.

    Attach with :meth:`repro.machine.vm.VectorMachine.attach_audit` (or
    set ``memory.audit`` directly); detach by setting it back to
    ``None``.  One auditor may serve several memories (the sharded
    engine attaches one per worker by default, but a shared instance
    only merges the counters — checks are per-call and stateless).
    """

    def __init__(self, *, conflict_log: int = DEFAULT_CONFLICT_LOG) -> None:
        self.stats = AuditStats()
        self.conflict_log: List[ConflictRecord] = []
        self._log_cap = conflict_log

    # ------------------------------------------------------------------
    # ELS: every indirect store
    # ------------------------------------------------------------------
    def on_scatter(self, addrs: np.ndarray, values: np.ndarray, memory) -> None:
        """Audit one executed list-vector store.

        Called by :class:`~repro.machine.memory.Memory` after the words
        were written (masked-off lanes already removed).  For every
        address the scatter touched, the word now in memory must equal
        the word *some* targeting lane wrote — exactly-one-survivor,
        never an amalgam.  Conflicting lane sets are recorded.
        """
        self.stats.scatters += 1
        n = int(addrs.size)
        self.stats.scatter_lanes += n
        if n == 0:
            return
        order = np.argsort(addrs, kind="stable")
        sa = addrs[order]
        sv = values[order]
        stored = memory.words[sa]  # uncharged debug read
        new_group = np.concatenate(([True], sa[1:] != sa[:-1]))
        starts = np.flatnonzero(new_group)
        sizes = np.diff(np.append(starts, n))
        # Per lane: is my word the one that survived at my address?
        ok = sv == stored
        group_ok = np.logical_or.reduceat(ok, starts)
        dup_groups = np.flatnonzero(sizes > 1)
        if dup_groups.size:
            self.stats.conflicts += int(dup_groups.size)
            for g in dup_groups:
                fan = int(sizes[g])
                self.stats.conflict_fanout[fan] = (
                    self.stats.conflict_fanout.get(fan, 0) + 1
                )
            if len(self.conflict_log) < self._log_cap:
                for g in dup_groups[: self._log_cap - len(self.conflict_log)]:
                    s = int(starts[g])
                    e = s + int(sizes[g])
                    self.conflict_log.append(
                        ConflictRecord(
                            address=int(sa[s]),
                            lanes=tuple(int(i) for i in order[s:e]),
                            values=tuple(int(v) for v in sv[s:e]),
                            survivor=int(stored[s]),
                        )
                    )
        if not group_ok.all():
            g = int(np.flatnonzero(~group_ok)[0])
            s = int(starts[g])
            e = s + int(sizes[g])
            raise AuditError(
                "ELS violated: scatter stored an amalgam — "
                f"address {int(sa[s])} received {sv[s:e].tolist()} from "
                f"lanes {order[s:e].tolist()} but holds {int(stored[s])}, "
                "which no lane wrote"
            )

    # ------------------------------------------------------------------
    # single filtering rounds (carryover mode)
    # ------------------------------------------------------------------
    def on_round(
        self, addrs: np.ndarray, winners: np.ndarray, losers: np.ndarray
    ) -> None:
        """Audit one FOL filtering round's winner/loser split.

        ``winners``/``losers`` are lane positions into ``addrs``.  Lemma
        2 plus ELS require: the split partitions the lanes, winners'
        addresses are pairwise distinct, and every distinct address has
        exactly one winning lane.
        """
        self.stats.rounds += 1
        n = int(addrs.size)
        seen = np.zeros(n, dtype=np.int64)
        np.add.at(seen, winners, 1)
        np.add.at(seen, losers, 1)
        if np.any(seen != 1):
            bad = np.flatnonzero(seen != 1)[:8].tolist()
            raise AuditError(
                f"round split is not a partition of the lanes: positions "
                f"{bad} appear {seen[bad].tolist()} times"
            )
        won_addrs = addrs[winners]
        uniq_won, counts = np.unique(won_addrs, return_counts=True)
        if np.any(counts > 1):
            dup = int(uniq_won[np.argmax(counts)])
            lanes = winners[won_addrs == dup]
            raise AuditError(
                f"round produced two winners for address {dup} "
                f"(lanes {lanes.tolist()}) — not parallel-processable"
            )
        missing = np.setdiff1d(np.unique(addrs), uniq_won)
        if missing.size:
            raise AuditError(
                f"round produced no winner for address {int(missing[0])} "
                f"although {int((addrs == missing[0]).sum())} lanes "
                "targeted it — ELS guarantees one survivor"
            )

    def on_claim(
        self, addrs: np.ndarray, attempted: np.ndarray, won: np.ndarray
    ) -> None:
        """Audit one masked claim round (BST NIL-slot claims): among the
        attempted lanes, exactly one winner per distinct address, and no
        lane won without attempting."""
        self.stats.claims += 1
        attempted = np.asarray(attempted, dtype=bool)
        won = np.asarray(won, dtype=bool)
        if np.any(won & ~attempted):
            lane = int(np.flatnonzero(won & ~attempted)[0])
            raise AuditError(
                f"claim round: lane {lane} won a slot it never attempted"
            )
        att_addrs = addrs[attempted]
        if att_addrs.size == 0:
            return
        won_addrs = addrs[won]
        uniq_att = np.unique(att_addrs)
        uniq_won, counts = np.unique(won_addrs, return_counts=True)
        if np.any(counts > 1):
            dup = int(uniq_won[np.argmax(counts)])
            raise AuditError(
                f"claim round: slot {dup} was claimed by "
                f"{int(counts.max())} lanes at once"
            )
        missing = np.setdiff1d(uniq_att, uniq_won)
        if missing.size:
            raise AuditError(
                f"claim round: slot {int(missing[0])} had claimants but "
                "no winner — ELS guarantees one survivor"
            )

    # ------------------------------------------------------------------
    # full decompositions (retry mode / one-shot FOL)
    # ------------------------------------------------------------------
    def on_decomposition(self, dec, *, partial: bool = False) -> None:
        """Audit a finished FOL1 decomposition against Theorems 3-6.

        ``partial`` marks a ``stop_after`` run, whose sets no longer
        cover the input: completeness and minimality are skipped but
        disjointness and parallel-processability still must hold.
        """
        self.stats.decompositions += 1
        try:
            if partial:
                dec.validate_partial()
            else:
                dec.validate()
        except Exception as exc:  # DecompositionError -> audit failure
            raise AuditError(f"decomposition audit failed: {exc}") from exc

    def on_tuple_decomposition(self, dec) -> None:
        """Audit a finished FOL* decomposition (§3.3 output conditions)."""
        self.stats.tuple_decompositions += 1
        try:
            dec.validate()
        except Exception as exc:
            raise AuditError(f"FOL* decomposition audit failed: {exc}") from exc

    # ------------------------------------------------------------------
    def merge(self, other: "InvariantAuditor") -> None:
        """Fold another auditor's counters into this one (per-shard
        auditors are merged for the CLI summary)."""
        s, o = self.stats, other.stats
        s.scatters += o.scatters
        s.scatter_lanes += o.scatter_lanes
        s.conflicts += o.conflicts
        s.rounds += o.rounds
        s.claims += o.claims
        s.decompositions += o.decompositions
        s.tuple_decompositions += o.tuple_decompositions
        for fan, count in o.conflict_fanout.items():
            s.conflict_fanout[fan] = s.conflict_fanout.get(fan, 0) + count
        room = self._log_cap - len(self.conflict_log)
        if room > 0:
            self.conflict_log.extend(other.conflict_log[:room])

    def summary(self) -> Dict[str, object]:
        return self.stats.as_dict()


def attach_everywhere(obj, auditor: Optional[InvariantAuditor]) -> InvariantAuditor:
    """Attach ``auditor`` (a fresh one if ``None``) to whatever ``obj``
    is — a :class:`~repro.machine.vm.VectorMachine`, a
    :class:`~repro.runtime.executor.StreamExecutor`, a
    :class:`~repro.shard.coordinator.ShardCoordinator` or a bare
    :class:`~repro.machine.memory.Memory` — and return it."""
    if auditor is None:
        auditor = InvariantAuditor()
    if hasattr(obj, "attach_audit"):
        obj.attach_audit(auditor)
    elif hasattr(obj, "audit"):
        obj.audit = auditor
    else:
        raise AuditError(f"cannot attach an auditor to {type(obj).__name__}")
    return auditor
