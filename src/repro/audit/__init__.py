"""Runtime invariant auditing and differential fuzzing.

Opt-in verification layer for the FOL reproduction: attach an
:class:`InvariantAuditor` to any machine (or executor, or the sharded
coordinator) and every indirect store, filtering round, BST claim and
finished decomposition is checked against the paper's machine-level
assumptions (ELS, Lemmas 1-2, Theorems 3-6) *as the simulator runs* —
at zero simulated cost, and with no overhead at all when detached.

:mod:`repro.audit.oracle` holds independent scalar reference
implementations with first-divergence diffing;
:mod:`repro.audit.fuzz` generates seeded adversarial workloads, runs
them under audit against the oracles, and shrinks any counterexample.

CLI: ``python -m repro audit [--suite core|stream|shard|all] [--seed N]
[--cases K]``.
"""

from .invariants import (
    AuditStats,
    ConflictRecord,
    InvariantAuditor,
    attach_everywhere,
)
from .oracle import (
    Divergence,
    diff_bst,
    diff_hash,
    diff_list,
    diff_sorted,
    diff_stream_state,
    hash_reference,
    list_reference,
)
from .fuzz import (
    FuzzCase,
    FuzzFailure,
    FuzzReport,
    PATTERNS,
    SUITES,
    generate_keys,
    install_els_fault,
    run_core_case,
    run_shard_case,
    run_stream_case,
    run_suite,
    shrink_keys,
)

__all__ = [
    "AuditStats",
    "ConflictRecord",
    "InvariantAuditor",
    "attach_everywhere",
    "Divergence",
    "diff_bst",
    "diff_hash",
    "diff_list",
    "diff_sorted",
    "diff_stream_state",
    "hash_reference",
    "list_reference",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "PATTERNS",
    "SUITES",
    "generate_keys",
    "install_els_fault",
    "run_core_case",
    "run_shard_case",
    "run_stream_case",
    "run_suite",
    "shrink_keys",
]
