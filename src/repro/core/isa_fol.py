"""FOL1 as an actual machine program.

The truest form of the paper's algorithm: §3.2's four steps written as
an instruction sequence for the ISA backend — scatter labels (``VIST``),
gather them back, compare, compress the survivors away, branch back.
Fifteen instructions in the loop body; the paper's claim that "the whole
process of this algorithm can be performed by vector operations" is a
statement about exactly this program.

Register conventions::

    S1 = staging base (index vector input)    V0 = remaining addresses
    S4 = n                                    V1 = remaining labels/positions
    S5 = remaining count                      V2 = read-back labels
    S7 = 1                                    V3 = round-number splat
    S9 = output base                          V4 = output addresses
    S10 = current round (0-based)             M0 = survived, M1 = filtered

Output: for each input position ``i``, ``mem[out_base + i]`` holds the
0-based index of the parallel-processable set S_{j+1} that position was
assigned to — a dense encoding of the decomposition.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import VectorLengthError
from ..machine.isa import Assembler, Instr, Interpreter
from ..machine.vm import VectorMachine
from .decomposition import Decomposition


def build_fol1_program() -> List[Instr]:
    """Assemble the FOL1 machine program (expects S1, S4, S7, S9 preset
    per the module docstring)."""
    a = Assembler()
    # load the index vector; labels are the subscripts (footnote 6)
    a.emit("VIOTA", 1, 4)          # V1 := 0..n-1  (labels = positions)
    a.emit("VADDS", 0, 1, 1)       # V0 := staging + positions
    a.emit("VGATHER", 0, 0)        # V0 := index vector

    a.label("round")
    a.emit("VLEN", 5, 0)
    a.emit("JZ", 5, "done")

    # step 1: write labels through the index vector (ELS scatter)
    a.emit("VSCATTER", 0, 1)
    # step 2: read back and compare
    a.emit("VGATHER", 2, 0)
    a.emit("VCMPEV", 0, 2, 1)      # M0 := survived

    # record the set number for the survivors
    a.emit("VSPLAT", 3, 10, 5)     # V3 := round, S5 lanes
    a.emit("VADDS", 4, 1, 9)       # V4 := out_base + position
    a.emit("VSCATTERM", 4, 3, 0)

    # step 3: delete the survivors from V
    a.emit("MNOT", 1, 0)
    a.emit("VCOMPRESS", 0, 0, 1)
    a.emit("VCOMPRESS", 1, 1, 1)
    a.emit("SADD", 10, 10, 7)
    a.emit("JMP", "round")

    a.label("done")
    a.emit("HALT")
    return a.assemble()


def isa_fol1(
    vm: VectorMachine,
    index_vector: np.ndarray,
    staging_base: int,
    out_base: int,
    policy: str = "arbitrary",
) -> Decomposition:
    """Run the FOL1 machine program over ``index_vector``.

    ``staging_base`` and ``out_base`` are memory regions of at least
    ``len(index_vector)`` words each (input staging and the per-position
    set-number output).  Returns the decoded :class:`Decomposition`.
    """
    v = np.asarray(index_vector, dtype=np.int64)
    if v.ndim != 1:
        raise VectorLengthError(f"index vector must be 1-D, got shape {v.shape}")
    dec = Decomposition(index_vector=v)
    if v.size == 0:
        return dec

    vm.mem.words[staging_base : staging_base + v.size] = v

    interp = Interpreter(vm, max_steps=40 * (v.size + 2))
    interp.s[1] = staging_base
    interp.s[4] = v.size
    interp.s[7] = 1
    interp.s[9] = out_base
    interp.run(build_fol1_program(), scatter_policy=policy)

    set_of = vm.mem.peek_range(out_base, v.size)
    m = interp.s[10]
    for j in range(m):
        dec.sets.append(np.flatnonzero(set_of == j).astype(np.int64))
    return dec
