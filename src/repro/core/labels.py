"""Label assignment strategies for FOL (paper §3.2 step 0, footnote 6).

FOL needs one unique label per index-vector element.  The paper notes:

* the cheapest label is the element's **subscript** in the index vector
  (or its byte displacement) — computable before execution;
* when the *values to be written* by main processing are themselves
  unique, they can double as labels, fusing label-writing with main
  processing (the §3.2 "simplified method"; used by the open-addressing
  hash of Figure 8, where keys are the labels);
* labels must fit one machine word so the ELS condition holds.

Every strategy returns an int64 vector; :func:`validate_unique` enforces
the precondition that FOL's correctness proofs rely on.
"""

from __future__ import annotations

import numpy as np

from ..errors import LabelError
from ..machine.vm import VectorMachine


def index_labels(vm: VectorMachine, n: int) -> np.ndarray:
    """Subscript labels 0..n-1 (footnote 6's default), generated with
    one vector iota instruction."""
    return vm.iota(n)


def negated_index_labels(vm: VectorMachine, n: int) -> np.ndarray:
    """Labels −1, −2, …, −n (the paper's ``−ι`` from Figure 12).

    Negative labels cannot collide with non-negative data values, which
    lets the address-calculation sort share the data array ``C`` between
    labels and sorted data without a separate work area."""
    return vm.neg(vm.iota(n, start=1))


def displacement_labels(vm: VectorMachine, n: int, base: int, stride: int) -> np.ndarray:
    """Byte/word displacement labels: ``base + i*stride`` — the other
    footnote-6 option; unique for any positive stride."""
    if stride <= 0:
        raise LabelError(f"displacement stride must be positive, got {stride}")
    return vm.iota(n, start=base, step=stride)


def key_labels(keys: np.ndarray) -> np.ndarray:
    """Use the written values themselves as labels (§3.2 simplification).

    Requires all keys distinct; raises :class:`LabelError` otherwise,
    because a duplicate label would make overwrite detection unsound
    (two lanes would both believe their write survived)."""
    keys = np.asarray(keys, dtype=np.int64)
    validate_unique(keys)
    return keys


def tuple_labels(vm: VectorMachine, n: int, l: int) -> list[np.ndarray]:
    """Labels for FOL* over ``l`` index vectors of ``n`` elements each:
    vector k gets labels ``k*n .. k*n + n - 1`` so uniqueness holds
    *across* vectors, as §3.3 step 0 requires."""
    if l <= 0:
        raise LabelError(f"need at least one index vector, got {l}")
    return [vm.iota(n, start=k * n) for k in range(l)]


def validate_unique(labels: np.ndarray) -> np.ndarray:
    """Raise :class:`LabelError` unless all labels are distinct."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise LabelError(f"labels must be a 1-D vector, got shape {labels.shape}")
    uniq = np.unique(labels)
    if uniq.size != labels.size:
        raise LabelError(
            f"labels are not unique: {labels.size - uniq.size} duplicates"
        )
    return labels


def min_label_bits(n: int) -> int:
    """Minimum work-area width in bits to hold one of ``n`` labels
    (paper: "the size must be log2 N bits or more")."""
    if n <= 1:
        return 1
    return int(np.ceil(np.log2(n)))
