"""FOL* — the Filtering-Overwritten-Label method for unit processes that
rewrite multiple data items (paper §3.3).

A unit process here rewrites a *tuple* of L data items, addressed by L
index vectors V¹ … Vᴸ of equal length (e.g. the associative-law tree
rewrite of §2 rewrites L = 2 nodes).  A tuple is parallel-processable in
a round only if **all L** of its labels survive overwriting.

Deadlock (paper §3.3): with parallel label writing in every vector, it is
possible that *no* tuple wins all of its L cells (tuple A beats B on one
cell, B beats A on another), leaving S_j empty forever.  The paper's
remedy, implemented here: each round writes the labels of all tuples but
the last with vector scatters, then writes the **last tuple's labels with
scalar stores after** the vector writes — so the last remaining tuple
always survives and every round makes progress.  The paper asserts the
last tuple's own L addresses are distinct ("no shared elements among the
last elements"); tuples violating that can never pass the L-fold check,
so :func:`fol_star` either rejects them up front (``internal="error"``)
or peels them into singleton sets processed alone (``internal="isolate"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..errors import DeadlockError, LabelError, VectorLengthError
from ..machine.vm import VectorMachine
from .decomposition import max_multiplicity
from .labels import tuple_labels


@dataclass
class TupleDecomposition:
    """FOL* output: parallel-processable sets of tuple positions.

    ``sets[j]`` holds positions i such that the tuples
    ⟨V¹[i], …, Vᴸ[i]⟩ may be processed in parallel within round j.
    """

    index_vectors: List[np.ndarray]
    sets: List[np.ndarray] = field(default_factory=list)

    @property
    def l(self) -> int:
        """Number of index vectors (items rewritten per unit process)."""
        return len(self.index_vectors)

    @property
    def n(self) -> int:
        """Number of tuples."""
        return int(self.index_vectors[0].size) if self.index_vectors else 0

    @property
    def m(self) -> int:
        """Number of output sets."""
        return len(self.sets)

    def cardinalities(self) -> List[int]:
        return [int(s.size) for s in self.sets]

    # ------------------------------------------------------------------
    def check_partition(self) -> None:
        """Every tuple appears in exactly one output set."""
        seen = np.zeros(self.n, dtype=np.int64)
        for s in self.sets:
            np.add.at(seen, s, 1)
        if np.any(seen != 1):
            bad = np.flatnonzero(seen != 1)
            raise DeadlockError(f"tuples not output exactly once: {bad[:10].tolist()}")

    def check_parallel_processable(self) -> None:
        """Within one set, no cell is touched by two *different* tuples
        (within-tuple duplication is the separate §3.3 precondition —
        tuples violating it may only appear in singleton sets, where
        they run alone)."""
        for j, s in enumerate(self.sets):
            if s.size == 0:
                continue
            stacked = np.stack([v[s] for v in self.index_vectors])  # L x |S|
            # dedupe within each tuple, then check across tuples
            per_tuple = [np.unique(stacked[:, i]) for i in range(s.size)]
            if s.size > 1 and any(u.size < stacked.shape[0] for u in per_tuple):
                raise DeadlockError(
                    f"FOL* set S_{j + 1} holds an internally-duplicated "
                    f"tuple together with others"
                )
            flat = np.concatenate(per_tuple)
            if np.unique(flat).size != flat.size:
                raise DeadlockError(
                    f"FOL* set S_{j + 1} rewrites a shared address twice"
                )

    def validate(self) -> "TupleDecomposition":
        """Run both output-condition checks; returns self."""
        self.check_partition()
        self.check_parallel_processable()
        return self


def internal_duplicate_mask(index_vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Mask of tuples whose own L addresses are not all distinct."""
    stacked = np.stack([np.asarray(v, dtype=np.int64) for v in index_vectors])
    l, n = stacked.shape
    dup = np.zeros(n, dtype=bool)
    for a in range(l):
        for b in range(a + 1, l):
            dup |= stacked[a] == stacked[b]
    return dup


def fol_star(
    vm: VectorMachine,
    index_vectors: Sequence[np.ndarray],
    *,
    labels: Optional[Sequence[np.ndarray]] = None,
    work_offset: int = 0,
    policy: str = "arbitrary",
    internal: str = "error",
    max_rounds: Optional[int] = None,
) -> TupleDecomposition:
    """Decompose tuples addressed by L index vectors into
    parallel-processable sets (paper §3.3's FOL* algorithm, including
    the scalar-tail deadlock avoidance).

    Parameters
    ----------
    vm, work_offset, policy, max_rounds:
        As in :func:`repro.core.fol1.fol1`.
    index_vectors:
        L equal-length address vectors; tuple i is ⟨V¹[i], …, Vᴸ[i]⟩.
    labels:
        L label vectors, unique *across* vectors (§3.3 step 0); defaults
        to ``tuple_labels``.
    internal:
        Handling of tuples whose own addresses collide: ``"error"``
        (paper's precondition — raise :class:`LabelError`) or
        ``"isolate"`` (emit each such tuple as its own singleton set
        first, then run FOL* on the rest).

    Returns
    -------
    TupleDecomposition
    """
    vs = [np.asarray(v, dtype=np.int64) for v in index_vectors]
    if not vs:
        raise VectorLengthError("FOL* needs at least one index vector")
    n = vs[0].size
    l = len(vs)
    for v in vs:
        if v.ndim != 1 or v.size != n:
            raise VectorLengthError("FOL* index vectors must be 1-D and equal length")

    dec = TupleDecomposition(index_vectors=vs)
    if n == 0:
        return dec

    # Step 0: unique labels across all vectors.
    if labels is None:
        labs = tuple_labels(vm, n, l)
    else:
        labs = [np.asarray(x, dtype=np.int64) for x in labels]
        if len(labs) != l or any(x.size != n for x in labs):
            raise VectorLengthError("need one label vector per index vector")
        flat = np.concatenate(labs)
        if np.unique(flat).size != flat.size:
            raise LabelError("FOL* labels must be unique across all vectors")

    if max_rounds is None:
        max_rounds = n + l

    positions = vm.iota(n)

    # Precondition on internally-duplicated tuples.
    internal_dup = internal_duplicate_mask(vs)
    if internal_dup.any():
        if internal == "error":
            bad = np.flatnonzero(internal_dup)
            raise LabelError(
                f"tuples rewrite one address twice (positions "
                f"{bad[:10].tolist()}); pass internal='isolate' to peel them"
            )
        if internal != "isolate":
            raise ValueError(f"internal must be 'error' or 'isolate', got {internal!r}")
        for p in np.flatnonzero(internal_dup):
            dec.sets.append(np.asarray([p], dtype=np.int64))
        positions = vm.compress(positions, vm.mask_not(internal_dup[positions]))

    work = [vm.add(v, work_offset) if work_offset else v for v in vs]

    rounds = len(dec.sets)
    while positions.size:
        if rounds >= max_rounds:
            raise DeadlockError(
                f"FOL* exceeded {max_rounds} rounds with {positions.size} "
                f"tuples remaining"
            )
        head = positions[:-1]  # written by vector instructions
        tail = int(positions[-1])  # written by scalar stores afterwards

        # Step 1: write labels — vector part then the scalar tail.
        for k in range(l):
            vm.scatter(work[k][head], labs[k][head], policy=policy)
        for k in range(l):
            vm.mem.sstore(int(work[k][tail]), int(labs[k][tail]))

        # Step 2: read back and AND the per-vector survival masks.
        survived = None
        for k in range(l):
            readback = vm.gather(work[k][positions])
            mask_k = vm.eq(readback, labs[k][positions])
            survived = mask_k if survived is None else vm.mask_and(survived, mask_k)

        s_j = vm.compress(positions, survived)
        if s_j.size == 0:
            raise DeadlockError(
                "FOL* round produced an empty set despite the scalar tail"
            )
        dec.sets.append(s_j)

        # Step 3: delete survivors.
        positions = vm.compress(positions, vm.mask_not(survived))
        vm.loop_overhead()
        rounds += 1

    if vm.audit is not None:
        vm.audit.on_tuple_decomposition(dec)
    return dec


def fol_star_lower_bound(index_vectors: Sequence[np.ndarray]) -> int:
    """A lower bound on the number of sets any decomposition needs: the
    maximum multiplicity of any address across all vectors (cf. Lemma 3;
    FOL* may exceed this bound — unlike FOL1 it is not minimal, because
    a tuple fails its round if *any* of its L cells is lost)."""
    flat = np.concatenate([np.asarray(v, dtype=np.int64) for v in index_vectors])
    return max_multiplicity(flat)
