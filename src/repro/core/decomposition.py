"""Decomposition result type and validators for FOL's output conditions.

FOL's contract (paper §3.2, Output + Lemmas 1–2, Theorems 3 and 5):

* the output sets partition the input multiset of index-vector elements
  (**disjoint decomposition condition**),
* within one output set no two elements point to the same storage area
  (**parallel-processability**, Lemma 2),
* cardinalities are non-increasing, |S₁| ≥ |S₂| ≥ … ≥ |S_M| (Theorem 3),
* M equals the maximum pointer multiplicity, which is the minimum
  possible number of sets (Lemma 3 + Theorem 5).

:class:`Decomposition` carries the output sets as *position* vectors
(indices into the original index vector) so that main processing can
slice any per-element payload (keys, labels, node pointers) with them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..errors import DecompositionError


@dataclass
class Decomposition:
    """Result of running FOL1/FOL* over an index vector.

    Attributes
    ----------
    index_vector:
        The original index vector V (addresses), unmodified.
    sets:
        ``sets[j]`` holds the positions (0-based indices into
        ``index_vector``) forming the parallel-processable set S_{j+1}.
    labels:
        The labels used during filtering (for diagnostics).
    """

    index_vector: np.ndarray
    sets: List[np.ndarray] = field(default_factory=list)
    labels: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of output sets (the paper's M)."""
        return len(self.sets)

    @property
    def n(self) -> int:
        """Number of input elements (the paper's N)."""
        return int(self.index_vector.size)

    def cardinalities(self) -> List[int]:
        """|S₁|, |S₂|, …, |S_M|."""
        return [int(s.size) for s in self.sets]

    def addresses(self, j: int) -> np.ndarray:
        """The storage addresses of set ``S_{j+1}`` (0-based ``j``)."""
        return self.index_vector[self.sets[j]]

    def __iter__(self):
        return iter(self.sets)

    # ------------------------------------------------------------------
    # validators (raise DecompositionError on violation)
    # ------------------------------------------------------------------
    def check_partition(self) -> None:
        """Disjoint decomposition condition (Lemma 1): every input
        position appears in exactly one output set."""
        if self.n == 0:
            if self.sets and any(s.size for s in self.sets):
                raise DecompositionError("non-empty sets for empty input")
            return
        seen = np.zeros(self.n, dtype=np.int64)
        for s in self.sets:
            if s.size and (s.min() < 0 or s.max() >= self.n):
                raise DecompositionError(
                    f"set positions out of range [0, {self.n}): {s}"
                )
            np.add.at(seen, s, 1)
        missing = np.flatnonzero(seen == 0)
        dup = np.flatnonzero(seen > 1)
        if missing.size:
            raise DecompositionError(f"positions never output: {missing[:10].tolist()}")
        if dup.size:
            raise DecompositionError(f"positions output twice: {dup[:10].tolist()}")

    def check_parallel_processable(self) -> None:
        """Lemma 2: within a set, all storage addresses are distinct."""
        for j, s in enumerate(self.sets):
            addrs = self.index_vector[s]
            if np.unique(addrs).size != addrs.size:
                raise DecompositionError(
                    f"set S_{j + 1} contains duplicate addresses — not "
                    f"parallel-processable"
                )

    def check_monotone_cardinalities(self) -> None:
        """Theorem 3: |S₁| ≥ |S₂| ≥ … ≥ |S_M|."""
        cards = self.cardinalities()
        for a, b in zip(cards, cards[1:]):
            if a < b:
                raise DecompositionError(f"cardinalities not non-increasing: {cards}")

    def check_minimal(self) -> None:
        """Theorem 5 (via Lemma 3): M equals the maximum multiplicity of
        any address in the input — the minimum achievable number of
        parallel-processable sets."""
        expected = max_multiplicity(self.index_vector)
        if self.m != expected:
            raise DecompositionError(
                f"M = {self.m} but maximum address multiplicity is {expected}"
            )

    def check_nonempty_sets(self) -> None:
        """Termination argument (Theorem 1): every round produced a
        non-empty set."""
        for j, s in enumerate(self.sets):
            if s.size == 0:
                raise DecompositionError(f"set S_{j + 1} is empty")

    def check_disjoint(self) -> None:
        """Pairwise disjointness alone (no completeness): every position
        appears in *at most* one set.  This is the half of Lemma 1 a
        partial (``stop_after``) decomposition must still satisfy."""
        if self.n == 0:
            return
        seen = np.zeros(self.n, dtype=np.int64)
        for s in self.sets:
            if s.size and (s.min() < 0 or s.max() >= self.n):
                raise DecompositionError(
                    f"set positions out of range [0, {self.n}): {s}"
                )
            np.add.at(seen, s, 1)
        dup = np.flatnonzero(seen > 1)
        if dup.size:
            raise DecompositionError(f"positions output twice: {dup[:10].tolist()}")

    def validate(self) -> "Decomposition":
        """Run every output-condition check; returns self for chaining."""
        self.check_partition()
        self.check_parallel_processable()
        self.check_nonempty_sets()
        self.check_monotone_cardinalities()
        self.check_minimal()
        return self

    def validate_partial(self) -> "Decomposition":
        """Checks applicable to a ``stop_after`` prefix S₁ … S_k: sets
        are pairwise disjoint, parallel-processable and non-empty, with
        non-increasing cardinalities; completeness and minimality are
        deliberately skipped (the prefix does not cover the input)."""
        self.check_disjoint()
        self.check_parallel_processable()
        self.check_nonempty_sets()
        self.check_monotone_cardinalities()
        return self


def max_multiplicity(index_vector: np.ndarray) -> int:
    """Maximum number of times any single address occurs in V."""
    v = np.asarray(index_vector)
    if v.size == 0:
        return 0
    _, counts = np.unique(v, return_counts=True)
    return int(counts.max())


def reference_decomposition(index_vector: np.ndarray) -> Decomposition:
    """Oracle decomposition used by tests: S_j = the j-th occurrence of
    each distinct address, in input order.

    This is what FOL produces under the ``"first"`` conflict policy and
    is, by construction, a minimal disjoint decomposition; property
    tests compare FOL's output *invariants* (not its exact sets, which
    legitimately vary with the conflict policy) against this oracle's.
    """
    v = np.asarray(index_vector, dtype=np.int64)
    dec = Decomposition(index_vector=v)
    if v.size == 0:
        return dec
    # occurrence rank of each element among equal addresses, stable order
    order = np.argsort(v, kind="stable")
    ranks = np.empty(v.size, dtype=np.int64)
    sorted_v = v[order]
    boundaries = np.flatnonzero(np.diff(sorted_v)) + 1
    starts = np.concatenate(([0], boundaries))
    within = np.arange(v.size) - np.repeat(starts, np.diff(np.concatenate((starts, [v.size]))))
    ranks[order] = within
    for j in range(int(ranks.max()) + 1):
        dec.sets.append(np.flatnonzero(ranks == j).astype(np.int64))
    return dec
