"""Executable statements of the paper's theorems (§3.2).

Each function checks one theorem/lemma against a concrete FOL run and
raises :class:`~repro.errors.DecompositionError` on violation.  They are
used by the property-based test-suite and by ``examples/quickstart.py``
to demonstrate that the implementation honours the paper's proofs:

* **Theorem 1** (termination): FOL1 terminates — checked implicitly by
  every call returning, plus :func:`check_round_progress`.
* **Lemma 1** (disjoint decomposition): :func:`check_theorem2_correctness`.
* **Lemma 2** (within-set distinctness): same.
* **Theorem 3**: |S₁| ≥ … ≥ |S_M|, and M = 1 without duplicates.
* **Theorem 4**: O(N) work when |S₁| ≫ Σ_{i≥2}|S_i| — checked as an
  operation-count bound via :func:`fol1_element_work`.
* **Lemma 3 / Theorem 5** (minimality): M = max multiplicity.
* **Theorem 6**: O(N²) worst case when every |S_i| = 1 — exact element
  count N(N+1)/2.
"""

from __future__ import annotations

import numpy as np

from ..errors import DecompositionError
from .decomposition import Decomposition, max_multiplicity


def check_theorem1_termination(dec: Decomposition) -> None:
    """Theorem 1: every round removed at least one element (FOL1
    terminated in at most N rounds)."""
    dec.check_nonempty_sets()
    if dec.m > dec.n:
        raise DecompositionError(f"{dec.m} rounds for {dec.n} elements")


def check_theorem2_correctness(dec: Decomposition) -> None:
    """Theorem 2 (via Lemmas 1 and 2): disjoint decomposition whose sets
    are each parallel-processable."""
    dec.check_partition()
    dec.check_parallel_processable()


def check_theorem3_monotone(dec: Decomposition) -> None:
    """Theorem 3: non-increasing cardinalities; M = 1 when the input has
    no duplicated addresses."""
    dec.check_monotone_cardinalities()
    if max_multiplicity(dec.index_vector) == 1 and dec.m not in (0, 1):
        raise DecompositionError(f"M = {dec.m} for duplicate-free input")


def check_theorem5_minimality(dec: Decomposition) -> None:
    """Theorem 5 + Lemma 3: M equals the maximum address multiplicity
    (no decomposition can use fewer sets)."""
    dec.check_minimal()


def fol1_element_work(dec: Decomposition) -> int:
    """Total vector elements processed across all FOL1 rounds:
    Σ_j (elements remaining at round j) = Σ_j Σ_{i≥j} |S_i|.

    This is the quantity the complexity theorems bound:

    * Theorem 4: ≈ N when |S₁| dominates,
    * Theorem 6: N(N+1)/2 when every set is a singleton.
    """
    cards = dec.cardinalities()
    remaining = sum(cards)
    total = 0
    for c in cards:
        total += remaining
        remaining -= c
    return total


def check_theorem4_linear(dec: Decomposition, slack: float = 3.0) -> None:
    """Theorem 4: when sharing is rare the element work is O(N) — we
    check work ≤ slack·N, which holds whenever |S₁| ≫ Σ_{i≥2}|S_i|."""
    n = dec.n
    if n == 0:
        return
    work = fol1_element_work(dec)
    if work > slack * n:
        raise DecompositionError(
            f"element work {work} exceeds {slack}·N = {slack * n:.0f}"
        )


def check_theorem6_quadratic(dec: Decomposition) -> None:
    """Theorem 6: with all-singleton sets (all N elements aliases of one
    address) the element work is exactly N(N+1)/2."""
    n = dec.n
    if any(c != 1 for c in dec.cardinalities()):
        raise DecompositionError("theorem 6 applies only to all-singleton runs")
    expected = n * (n + 1) // 2
    work = fol1_element_work(dec)
    if work != expected:
        raise DecompositionError(f"element work {work}, expected {expected}")


def check_all(dec: Decomposition) -> None:
    """Run every structural theorem check (1, 2, 3, 5) on one run."""
    check_theorem1_termination(dec)
    check_theorem2_correctness(dec)
    check_theorem3_monotone(dec)
    check_theorem5_minimality(dec)


def multiplicity_histogram(index_vector: np.ndarray) -> dict[int, int]:
    """How many addresses occur k times, for each k — useful when
    reasoning about which complexity regime (Theorem 4 vs 6) applies."""
    v = np.asarray(index_vector)
    if v.size == 0:
        return {}
    _, counts = np.unique(v, return_counts=True)
    ks, freq = np.unique(counts, return_counts=True)
    return {int(k): int(f) for k, f in zip(ks, freq)}
