"""Order-preserving FOL — the footnote 7 variant.

Plain FOL1 assumes "the execution order between the processings of two
arbitrary data items must not affect the correctness of the result".
Some algorithms violate that: when several updates target the same cell,
they must apply in **program order** (e.g. a sequence of assignments
where the last one must win, or appends that must keep order).

Footnote 7's construction: replace the ELS condition with the stronger
order-guaranteeing store (the S-3800's ``VSTX``, our ``"last"`` policy —
the highest-numbered lane survives).  Then in each FOL round the
*latest remaining* occurrence of every address survives, so for two
processings Pᵢ before Pⱼ of the same cell, dᵢ lands in a **later** set
than dⱼ: dᵢ ∈ S_k, dⱼ ∈ S_l with k > l, exactly the footnote's
relation.  Executing the sets in *reverse* order S_M … S₁ therefore
replays same-cell updates in program order, while different cells still
update in parallel within a set.

:func:`fol1_ordered` packages this: it runs FOL1 under the ordered
policy and returns the sets already reversed, ready to apply first to
last.  :func:`ordered_scatter` is the canonical application — a scatter
whose duplicate-address semantics equal a sequential loop's.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..machine.vm import VectorMachine
from .decomposition import Decomposition
from .fol1 import fol1


def fol1_ordered(
    vm: VectorMachine,
    index_vector: np.ndarray,
    *,
    labels: Optional[np.ndarray] = None,
    work_offset: int = 0,
    max_rounds: Optional[int] = None,
) -> Decomposition:
    """FOL1 with order preservation (footnote 7).

    Returns a :class:`Decomposition` whose sets, **applied in list
    order**, execute same-address processings in original program
    (index) order.  Requires the order-guaranteeing ``"last"`` scatter
    policy internally; there is no policy parameter because the whole
    point is that arbitrary-winner hardware cannot give this guarantee.

    Postcondition (tested): within the returned object, if positions
    ``i < j`` share an address, ``i`` appears in an earlier set than
    ``j``.
    """
    dec = fol1(
        vm,
        index_vector,
        labels=labels,
        work_offset=work_offset,
        policy="last",
        max_rounds=max_rounds,
    )
    # Under "last", round 1 keeps the *final* occurrence per address,
    # round 2 the one before it, and so on — reverse to get program
    # order.  (Cardinalities become non-decreasing; Theorem 3 applies
    # to the pre-reversal order.)
    dec.sets.reverse()
    return dec


def check_program_order(dec: Decomposition) -> None:
    """Validate the ordering postcondition of :func:`fol1_ordered`:
    same-address positions appear in strictly increasing set index as
    their position increases."""
    from ..errors import DecompositionError

    set_of = np.empty(dec.n, dtype=np.int64)
    for j, s in enumerate(dec.sets):
        set_of[s] = j
    v = dec.index_vector
    order = np.argsort(v, kind="stable")
    sv = v[order]
    for a, b in zip(order[:-1], order[1:]):
        if v[a] == v[b]:  # consecutive occurrences of one address
            lo, hi = (a, b) if a < b else (b, a)
            if set_of[lo] >= set_of[hi]:
                raise DecompositionError(
                    f"positions {lo} < {hi} share address {v[lo]} but land "
                    f"in sets {set_of[lo]} >= {set_of[hi]}"
                )
    _ = sv  # argsort used only for pairing


def ordered_scatter(
    vm: VectorMachine,
    addrs: np.ndarray,
    values: np.ndarray,
    work_offset: int = 0,
) -> int:
    """Scatter with sequential-loop semantics: for duplicate addresses
    the *last* value in program order ends up stored, and intermediate
    values are stored transiently in between (so read-modify-write
    chains layered on top observe each predecessor).  Returns the
    number of FOL rounds used.

    This is the minimal "algorithm where processing order must be
    preserved" from footnote 7: a plain ELS scatter would store an
    arbitrary occurrence; this one provably stores the final one, on
    hardware whose only ordered primitive is VSTX.
    """
    addrs = np.asarray(addrs, dtype=np.int64)
    values = np.asarray(values, dtype=np.int64)
    dec = fol1_ordered(vm, addrs, work_offset=work_offset)
    for s in dec.sets:
        vm.scatter(addrs[s], values[s], policy="last")
        vm.loop_overhead()
    return dec.m


def ordered_rmw_add(
    vm: VectorMachine,
    addrs: np.ndarray,
    deltas: np.ndarray,
    work_offset: int,
) -> int:
    """Read-modify-write accumulation with sequential semantics:
    ``mem[addrs[i]] += deltas[i]`` applied as if by a scalar loop.
    Because addition commutes the *final* contents match any order; the
    point of routing it through :func:`fol1_ordered` is that each
    intermediate sum also appears in memory in program order, which is
    observable by the per-set gather (and asserted in tests via the
    on-set trace).  Requires a disjoint work area (``work_offset``)
    since the target words hold live partial sums."""
    addrs = np.asarray(addrs, dtype=np.int64)
    deltas = np.asarray(deltas, dtype=np.int64)
    dec = fol1_ordered(vm, addrs, work_offset=work_offset)
    for s in dec.sets:
        a = addrs[s]
        cur = vm.gather(a)
        vm.scatter(a, vm.add(cur, deltas[s]), policy="last")
        vm.loop_overhead()
    return dec.m
