"""The paper's contribution: the Filtering-Overwritten-Label method.

* :func:`~repro.core.fol1.fol1` — FOL1, one rewritten item per unit
  process (§3.2).
* :func:`~repro.core.fol_star.fol_star` — FOL*, L rewritten items per
  unit process with scalar-tail deadlock avoidance (§3.3).
* :class:`~repro.core.decomposition.Decomposition` /
  :class:`~repro.core.fol_star.TupleDecomposition` — validated outputs.
* :mod:`~repro.core.labels` — label strategies (§3.2 step 0).
* :mod:`~repro.core.theorems` — executable Theorems 1–6.
"""

from .decomposition import Decomposition, max_multiplicity, reference_decomposition
from .fol1 import fol1, fol1_sets_of_addresses
from .fol_star import (
    TupleDecomposition,
    fol_star,
    fol_star_lower_bound,
    internal_duplicate_mask,
)
from .isa_fol import build_fol1_program, isa_fol1
from .ordered import (
    check_program_order,
    fol1_ordered,
    ordered_rmw_add,
    ordered_scatter,
)
from .labels import (
    displacement_labels,
    index_labels,
    key_labels,
    min_label_bits,
    negated_index_labels,
    tuple_labels,
    validate_unique,
)

__all__ = [
    "Decomposition",
    "TupleDecomposition",
    "fol1",
    "fol1_sets_of_addresses",
    "isa_fol1",
    "build_fol1_program",
    "fol_star",
    "fol_star_lower_bound",
    "internal_duplicate_mask",
    "max_multiplicity",
    "reference_decomposition",
    "fol1_ordered",
    "check_program_order",
    "ordered_scatter",
    "ordered_rmw_add",
    "index_labels",
    "negated_index_labels",
    "displacement_labels",
    "key_labels",
    "tuple_labels",
    "validate_unique",
    "min_label_bits",
]
