"""FOL1 — the Filtering-Overwritten-Label method, single item per unit
process (paper §3.2).

Given an index vector V whose elements are addresses of storage areas
(possibly with duplicates), FOL1 decomposes V into parallel-processable
sets S₁ … S_M using only vector instructions:

1. **Write labels** — scatter each element's unique label into the work
   area attached to its target address (list-vector store; the ELS
   condition guarantees one label per address survives intact).
2. **Detect overwriting** — gather the labels back through the same
   addresses and compare with the originals.  Surviving lanes form the
   next parallel-processable set.
3. **Update control variables** — delete surviving lanes from V
   (vector compress).
4. **Repeat** until V is empty.

The main processing (hash insert, tree link, …) is *not* part of FOL1
(the paper amalgamates it per-application for efficiency); callers either
consume the returned :class:`~repro.core.decomposition.Decomposition` or
supply ``on_set`` to process each set as soon as it is identified —
matching Figure 7's interleaving.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import DeadlockError, VectorLengthError
from ..machine.vm import VectorMachine
from .decomposition import Decomposition
from .labels import index_labels, validate_unique

#: Callback type: receives (positions, round_index) for each S_j.
SetCallback = Callable[[np.ndarray, int], None]


def fol1(
    vm: VectorMachine,
    index_vector: np.ndarray,
    *,
    labels: Optional[np.ndarray] = None,
    work_offset: int = 0,
    policy: str = "arbitrary",
    on_set: Optional[SetCallback] = None,
    max_rounds: Optional[int] = None,
    stop_after: Optional[int] = None,
) -> Decomposition:
    """Decompose ``index_vector`` into parallel-processable sets.

    Parameters
    ----------
    vm:
        The vector unit (all work is charged to its cycle counter).
    index_vector:
        Addresses of the storage areas to be rewritten; duplicates mark
        shared data.  Every address (+ ``work_offset``) must be a valid
        word address in ``vm.mem``.
    labels:
        Unique int64 labels, one per element.  Defaults to the element
        subscripts (footnote 6).  Uniqueness is validated.
    work_offset:
        Offset of the work area within each storage area.  The default
        of 0 models the common case where the work area *shares storage*
        with the data the main processing will overwrite anyway (§3.2's
        allocation discussion).
    policy:
        Scatter conflict policy; FOL is correct under any ELS-satisfying
        policy (``"arbitrary"``, ``"last"``, ``"first"``).
    on_set:
        If given, called with ``(positions, j)`` immediately after S_j is
        identified and *before* the next round's label writing — the
        paper's Figure 7 step 3 interleaving.  ``positions`` index into
        the original ``index_vector``.
    max_rounds:
        Safety valve for tests; ``None`` means N rounds (the worst case
        of Theorem 6, which is always sufficient by Theorem 1).
    stop_after:
        Stop after this many sets and return the *partial* decomposition
        (its sets no longer partition the input).  ``stop_after=1`` is
        the S₁-only specialisation the paper attributes to vectorized
        garbage collection and maze routing (§5): S₁ holds exactly one
        occurrence of every distinct address.

    Returns
    -------
    Decomposition
        The output sets as position vectors, in order S₁ … S_M.

    Raises
    ------
    DeadlockError
        If a round yields an empty set.  Impossible under a correct ELS
        scatter (Theorem 1's proof); kept as a defensive check so a
        broken conflict policy fails loudly instead of looping forever.
    """
    v = np.asarray(index_vector, dtype=np.int64)
    if v.ndim != 1:
        raise VectorLengthError(f"index vector must be 1-D, got shape {v.shape}")

    dec = Decomposition(index_vector=v)
    n = v.size
    if n == 0:
        return dec

    # Step 0: preprocessing — unique labels (default: subscripts).
    if labels is None:
        lab = index_labels(vm, n)
    else:
        lab = validate_unique(labels)
        if lab.size != n:
            raise VectorLengthError(
                f"{lab.size} labels for {n} index-vector elements"
            )
    dec.labels = lab

    if max_rounds is None:
        max_rounds = n

    # Work-area addresses; shared storage when work_offset == 0.
    if work_offset:
        work_addrs = vm.add(v, work_offset)
    else:
        work_addrs = v

    # `positions` plays the role of V with deletion done by compress;
    # holding positions rather than addresses lets callers slice any
    # per-element payload by S_j.
    positions = vm.iota(n)
    rounds = 0
    while positions.size:
        if rounds >= max_rounds:
            raise DeadlockError(
                f"FOL1 exceeded {max_rounds} rounds with {positions.size} "
                f"elements remaining — broken ELS scatter?"
            )
        wa = work_addrs[positions]
        lb = lab[positions]

        # Step 1: write labels (list-vector store under ELS).
        vm.scatter(wa, lb, policy=policy)
        # Step 2: read back through the same indices and compare.
        readback = vm.gather(wa)
        survived = vm.eq(readback, lb)

        s_j = vm.compress(positions, survived)
        if s_j.size == 0:
            raise DeadlockError(
                "FOL1 round produced an empty set — ELS condition violated"
            )
        dec.sets.append(s_j)
        if on_set is not None:
            on_set(s_j, rounds)
        if stop_after is not None and len(dec.sets) >= stop_after:
            if vm.audit is not None:
                vm.audit.on_decomposition(dec, partial=True)
            return dec

        # Step 3: delete survivors from V.
        positions = vm.compress(positions, vm.mask_not(survived))
        vm.loop_overhead()
        rounds += 1

    if vm.audit is not None:
        vm.audit.on_decomposition(dec)
    return dec


def fol1_sets_of_addresses(
    vm: VectorMachine,
    index_vector: np.ndarray,
    **kwargs,
) -> list[np.ndarray]:
    """Convenience wrapper returning the sets as *address* vectors
    (the paper's literal S_j = sets of data items) rather than position
    vectors."""
    dec = fol1(vm, index_vector, **kwargs)
    return [dec.addresses(j) for j in range(dec.m)]
