"""Batch-sizing policies for the streaming micro-batch loop.

The service asks its policy two questions each iteration: *how many
lanes should the next micro-batch carry* (:meth:`BatchPolicy.target_size`)
and *is it worth waiting for more arrivals before flushing*
(:meth:`BatchPolicy.wake_time`).  After every executed batch the policy
gets the batch's observed statistics back through
:meth:`BatchPolicy.observe`.

Three policies:

* :class:`FixedBatcher` — flush whenever ``batch_size`` lanes are ready.
* :class:`DeadlineBatcher` — flush at ``max_size`` lanes *or* when the
  oldest queued request has waited ``deadline`` cycles, whichever first
  (the latency-bounding policy).
* :class:`AdaptiveBatcher` — grows/shrinks the target from the observed
  pointer multiplicity M of recent batches.  FOL's round count equals M
  (Theorem 5), and every round pays the fixed vector start-up for its
  whole instruction sequence, so M is *the* cost driver: too much
  sharing per batch burns rounds, too little wastes start-up
  amortisation.  The policy holds an EMA of M inside a target band.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ReproError

#: Policy names accepted by :func:`make_batcher` and the CLI.
BATCH_POLICIES = ("fixed", "deadline", "adaptive")


class BatchPolicy:
    """Interface shared by all batch-sizing policies."""

    name = "base"

    #: Head-room subtracted from SLO deadlines in the deadline-aware
    #: release clip: a batch is released ``slo_margin`` clock units
    #: before the earliest queued deadline so its execution has a
    #: chance to finish inside the budget.
    slo_margin: float = 0.0

    def target_size(self) -> int:
        """Desired lane count for the next micro-batch."""
        raise NotImplementedError

    def wake_time(
        self,
        now: float,
        oldest_enqueued: Optional[float],
        next_arrival: float,
        earliest_deadline: Optional[float] = None,
    ) -> float:
        """When the service should re-examine the queue if it decides to
        wait for more arrivals.  Returning a time <= ``now`` means
        "don't wait, flush what is ready".  ``earliest_deadline`` is the
        soonest absolute SLO deadline among queued requests (QoS runs
        only); every policy clips its wait so a batch fires early rather
        than letting an SLO class's head-of-line request blow its
        budget while the policy holds out for a fuller batch."""
        return self._clip_to_deadline(next_arrival, now, earliest_deadline)

    def _clip_to_deadline(
        self, wake: float, now: float, earliest_deadline: Optional[float]
    ) -> float:
        """Deadline-aware release: never sleep past the point where the
        most urgent queued request must launch to meet its SLO."""
        if earliest_deadline is None:
            return wake
        release = earliest_deadline - self.slo_margin
        if release <= now:
            return now  # already at/past the release point: flush
        return min(wake, release)

    def observe(
        self,
        batch_size: int,
        rounds: int,
        multiplicity: int,
        filtered: int,
        carried: int = 0,
    ) -> None:
        """Feedback after a batch executes (``carried`` = how many of
        the batch's lanes were recirculated carryover, not fresh
        admissions); default policies ignore it."""


class FixedBatcher(BatchPolicy):
    """Constant target size; waits for a full batch while arrivals last."""

    name = "fixed"

    def __init__(self, batch_size: int = 256) -> None:
        if batch_size <= 0:
            raise ReproError(f"batch size must be positive, got {batch_size}")
        self.batch_size = batch_size

    def target_size(self) -> int:
        return self.batch_size


class DeadlineBatcher(BatchPolicy):
    """Flush at ``max_size`` lanes or after ``deadline`` cycles of
    head-of-line waiting, whichever comes first."""

    name = "deadline"

    def __init__(self, deadline: float = 2000.0, max_size: int = 512) -> None:
        if deadline < 0:
            raise ReproError(f"deadline must be non-negative, got {deadline}")
        if max_size <= 0:
            raise ReproError(f"max size must be positive, got {max_size}")
        self.deadline = deadline
        self.max_size = max_size

    def target_size(self) -> int:
        return self.max_size

    def wake_time(
        self,
        now: float,
        oldest_enqueued: Optional[float],
        next_arrival: float,
        earliest_deadline: Optional[float] = None,
    ) -> float:
        if oldest_enqueued is None:
            return self._clip_to_deadline(next_arrival, now, earliest_deadline)
        flush_at = oldest_enqueued + self.deadline
        if flush_at <= now:
            return now  # deadline already blown: flush immediately
        return self._clip_to_deadline(
            min(next_arrival, flush_at), now, earliest_deadline
        )


class AdaptiveBatcher(BatchPolicy):
    """Multiplicity-tracking batch sizing.

    Keeps an exponential moving average of each batch's observed FOL
    round count — in retry mode that *is* the pointer multiplicity M
    (Theorem 5); under carryover each batch issues a single round and
    the EMA sits below the band, which is equally informative.  When the
    EMA leaves the ``[m_low, m_high]`` band the target size is scaled
    geometrically: high sharing -> halve (fewer duplicates per batch,
    fewer filtering rounds), low sharing -> grow (longer vectors, better
    start-up amortisation; under carryover this drives the size toward
    ``max_size``, which is optimal because recirculation makes the
    per-batch round cost flat).

    Under a QoS run the adaptive policy additionally honours the
    deadline-aware release hook inherited from :class:`BatchPolicy`:
    waiting for a fuller batch is clipped at the earliest queued SLO
    deadline (minus :attr:`~BatchPolicy.slo_margin`), so M-EMA sizing
    never holds an urgent SLO class hostage to start-up amortisation.
    """

    name = "adaptive"

    def __init__(
        self,
        initial: int = 256,
        min_size: int = 16,
        max_size: int = 2048,
        m_low: float = 3.0,
        m_high: float = 8.0,
        grow: float = 1.5,
        shrink: float = 0.5,
        smoothing: float = 0.5,
    ) -> None:
        if not (0 < min_size <= initial <= max_size):
            raise ReproError(
                f"need 0 < min_size <= initial <= max_size, "
                f"got {min_size}/{initial}/{max_size}"
            )
        if m_low >= m_high:
            raise ReproError(f"m_low must be below m_high, got {m_low}/{m_high}")
        if not 0 < smoothing <= 1:
            raise ReproError(f"smoothing must be in (0, 1], got {smoothing}")
        if grow <= 1:
            raise ReproError(
                f"grow factor must exceed 1, got {grow} "
                "(a non-growing policy would pin the size forever)"
            )
        if not 0 < shrink < 1:
            raise ReproError(
                f"shrink factor must be in (0, 1), got {shrink} "
                "(>= 1 could never reduce the size, <= 0 would zero it)"
            )
        self._size = initial
        self.min_size = min_size
        self.max_size = max_size
        self.m_low = m_low
        self.m_high = m_high
        self.grow = grow
        self.shrink = shrink
        self.smoothing = smoothing
        self.m_ema: Optional[float] = None

    def target_size(self) -> int:
        return self._size

    def observe(
        self,
        batch_size: int,
        rounds: int,
        multiplicity: int,
        filtered: int,
        carried: int = 0,
    ) -> None:
        # Rounds, not raw multiplicity: under carryover the recirculating
        # lanes keep M high even though each batch only pays one round,
        # and shrinking on that signal would destroy start-up
        # amortisation.  In retry mode rounds == M exactly.
        #
        # Batches made up purely of carried lanes say nothing about the
        # arrival stream's sharing (they are the *tail* of earlier
        # conflicts draining), so they are kept out of the EMA — feeding
        # them in made a drain phase of N conflicting lanes drive the
        # target to min_size just as fresh traffic resumed.
        if batch_size > 0 and carried >= batch_size:
            return
        m = float(max(rounds, 1))
        if self.m_ema is None:
            self.m_ema = m
        else:
            self.m_ema = self.smoothing * m + (1.0 - self.smoothing) * self.m_ema
        if self.m_ema > self.m_high:
            self._size = max(self.min_size, int(self._size * self.shrink))
        elif self.m_ema < self.m_low:
            self._size = min(self.max_size, max(self._size + 1, int(self._size * self.grow)))


def make_batcher(policy: str, **kwargs) -> BatchPolicy:
    """Construct a policy by name (the CLI/bench entry point)."""
    if policy == "fixed":
        return FixedBatcher(**kwargs)
    if policy == "deadline":
        return DeadlineBatcher(**kwargs)
    if policy == "adaptive":
        return AdaptiveBatcher(**kwargs)
    raise ReproError(
        f"unknown batch policy {policy!r}; expected one of {BATCH_POLICIES}"
    )
