"""Micro-batch execution of symbolic updates against shared state.

One :class:`StreamExecutor` owns the per-kind shared state every batch
mutates, plus the ops facade its :class:`~repro.backend.Backend`
provides (the calibrated cycle-model VM on ``sim``, uncharged NumPy on
``native``).  The state, and the FOL plan that drives each batch
through it, come from the workload registry (:mod:`repro.engine`):
construction walks the registered
:class:`~repro.engine.spec.WorkloadSpec`\\ s in registration order —
building each kind's state (hash table, BST, cell bank, sort store) on
one bump allocator — and :meth:`StreamExecutor.execute` partitions the
batch by kind in a single pass and hands each slice to its spec's
``run`` hook, which emits a backend-neutral plan for the backend to
execute (or drives the facade directly for irregular kinds).

Two execution modes, chosen per executor:

* **carryover mode** (default) — one FOL round per kind per batch;
  surviving lanes get their main processing, the filtered lanes come
  back in the :class:`BatchResult` for the service to re-enqueue (see
  :mod:`repro.runtime.carryover` for why).
* **retry mode** (``carryover=False``) — the paper's §3.2 loop: FOL
  retries filtered lanes within the batch until all lanes complete, so
  the batch performs M full rounds.  This is the one-shot semantics the
  equivalence tests compare against, available per-service for
  benchmarking the two designs.

The per-kind algorithms (chained-hash enter, BST claim-descend, FOL*
two-cell transfer, list bumps, address-calc sort rounds) live in
``repro/engine/kinds/`` — this module no longer names any kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.spec import (
    EngineContext,
    _max_multiplicity,  # noqa: F401  (compat re-export; lives in engine)
    count_by_kind,
    get_spec,
    machine_words,
    resolve_capacities,
    specs,
)
from ..mem.arena import BumpAllocator
from .queue import Request


@dataclass
class BatchResult:
    """What one executed micro-batch did.

    The shard fields stay at their empty defaults for single-pipeline
    execution; the sharded coordinator (:mod:`repro.shard.coordinator`)
    fills them in so the metrics layer can report per-shard occupancy,
    concurrent rounds, cross-shard traffic and migrations.
    """

    completed: List[Request] = field(default_factory=list)
    carried: List[Request] = field(default_factory=list)
    rounds: int = 0
    multiplicity: int = 1
    cycles: float = 0.0
    kind_counts: Tuple[Tuple[str, int], ...] = ()
    shard_sizes: Tuple[int, ...] = ()
    shard_cycles: Tuple[float, ...] = ()
    shard_rounds: Tuple[int, ...] = ()
    cross_units: int = 0
    migrations: int = 0
    parked: int = 0  # lanes parked because their bin was mid-handoff
    # Phase spans for the lifecycle-trace decomposition, in the layer's
    # clock unit (simulated cycles under the coordinator, wall seconds
    # under the process cluster).  ``cycles`` stays the single source of
    # simulated cost — these only split it (execute = cycles − spans).
    exchange_span: float = 0.0  # claim/commit phase of this batch
    migration_span: float = 0.0  # migration phase of this batch
    shard_exec_spans: Tuple[float, ...] = ()  # worker-measured exec spans
    cross_committed: Tuple[int, ...] = ()  # rids committed cross-shard

    @property
    def size(self) -> int:
        return len(self.completed) + len(self.carried)

    @property
    def filtered(self) -> int:
        return len(self.carried)


class StreamExecutor:
    """Executes micro-batches of symbolic updates on shared state."""

    def __init__(
        self,
        vm,
        *,
        backend="sim",
        table_size: int = 509,
        hash_capacity: int = 4096,
        bst_capacity: int = 4096,
        n_cells: int = 64,
        key_space: int = 4096,
        carryover: bool = True,
        conflict_policy: str = "arbitrary",
        capacities: Optional[Dict[str, int]] = None,
    ) -> None:
        from ..backend import resolve_backend

        self.vm = vm
        self.backend = resolve_backend(backend)
        self.carryover = carryover
        self.policy = conflict_policy
        self.ctx = EngineContext(
            table_size=table_size, n_cells=n_cells, key_space=key_space
        )
        self.n_cells = n_cells
        self.capacities = resolve_capacities(
            capacities,
            {"hash_capacity": hash_capacity, "bst_capacity": bst_capacity},
        )
        alloc = BumpAllocator(vm.mem)
        # Build every registered kind's shared state, in registration
        # order (the allocation order is part of the golden layout).
        self.kind_state: Dict[str, object] = {}
        for spec in specs():
            state = spec.build_state(self, alloc, self.capacities[spec.name])
            if state is not None:
                self.kind_state[spec.name] = state
            for attr, value in spec.state_aliases(state).items():
                setattr(self, attr, value)

    # ------------------------------------------------------------------
    # convenient construction
    # ------------------------------------------------------------------
    @classmethod
    def for_workload(
        cls,
        requests: Sequence[Request],
        *,
        table_size: int = 509,
        n_cells: int = 64,
        key_space: int = 4096,
        carryover: bool = True,
        conflict_policy: str = "arbitrary",
        cost_model=None,
        backend="sim",
        seed: int = 0,
    ) -> "StreamExecutor":
        """Build an executor (and its machine) sized for ``requests``,
        on the given execution backend (name or instance)."""
        from ..backend import resolve_backend

        backend = resolve_backend(backend)
        counts = count_by_kind(requests)
        caps = {s.name: max(counts.get(s.name, 0), 1) for s in specs()}
        ctx = EngineContext(
            table_size=table_size, n_cells=n_cells, key_space=key_space
        )
        vm = backend.make_machine(
            machine_words(caps, ctx), cost_model=cost_model, seed=seed
        )
        return cls(
            vm,
            backend=backend,
            table_size=table_size,
            n_cells=n_cells,
            key_space=key_space,
            carryover=carryover,
            conflict_policy=conflict_policy,
            capacities=caps,
        )

    # ------------------------------------------------------------------
    # invariant auditing (opt-in; zero cost when off)
    # ------------------------------------------------------------------
    def attach_audit(self, auditor) -> None:
        """Attach an invariant auditor to this executor's machine (or
        detach with ``None``).  See :mod:`repro.audit.invariants`."""
        self.vm.attach_audit(auditor)

    @property
    def audit(self):
        return self.vm.audit

    # ------------------------------------------------------------------
    # uncharged state inspection (verification/tests)
    # ------------------------------------------------------------------
    def list_values(self) -> List[int]:
        """Current decoded value of every shared list cell."""
        off_car = self.cells.cells.offset("car")
        return [
            -int(self.vm.mem.peek(int(p) + off_car)) - 1 for p in self._cell_ptrs
        ]

    def state_fingerprint(self) -> str:
        """SHA-256 over the machine's entire word storage (uncharged).

        Identical layouts make this directly comparable across
        backends: the cross-backend parity suite asserts sim and native
        runs of one workload end bit-identical."""
        import hashlib

        words = self.vm.mem.peek_range(0, self.vm.mem.size)
        return hashlib.sha256(words.tobytes()).hexdigest()

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def execute(self, batch: Sequence[Request]) -> BatchResult:
        """Run one micro-batch; returns completions, carryovers and the
        batch's cycle/round/multiplicity accounting."""
        result = BatchResult()
        if not batch:
            return result
        start = self.vm.counter.snapshot()
        # Single-pass partition by kind, first-appearance order (the
        # dispatch order is part of the golden cycle sequence).
        by_kind: Dict[str, List[Request]] = {}
        for req in batch:
            by_kind.setdefault(req.kind, []).append(req)
        mults = [1]
        for kind, reqs in by_kind.items():
            mults.append(get_spec(kind).run(self, reqs, result))
        result.multiplicity = max(mults)
        result.cycles = self.vm.counter.delta(start)
        result.kind_counts = tuple((k, len(v)) for k, v in by_kind.items())
        return result
