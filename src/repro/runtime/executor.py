"""Micro-batch execution of symbolic updates against shared state.

One :class:`StreamExecutor` owns the per-application state every batch
mutates — a :class:`~repro.hashing.table.ChainedHashTable`, a
:class:`~repro.trees.bst.BinarySearchTree` and a bank of shared list
cells in a :class:`~repro.lists.cells.ConsArena` — plus the
:class:`~repro.machine.vm.VectorMachine` all vector work is charged to.

Each batch is split by request kind and driven through FOL:

* **carryover mode** (default) — one :func:`~repro.runtime.carryover.fol_round`
  per kind per batch; surviving lanes get their main processing, the
  filtered lanes come back in the :class:`BatchResult` for the service
  to re-enqueue (see :mod:`repro.runtime.carryover` for why).
* **retry mode** (``carryover=False``) — the paper's §3.2 loop: FOL1
  retries filtered lanes within the batch until all lanes complete, so
  the batch performs M full rounds.  This is the one-shot semantics the
  equivalence tests compare against, available per-service for
  benchmarking the two designs.

BST insertion is intrinsically multi-round (lanes descend, then claim a
NIL slot — `repro.trees.bst`); in carryover mode a lane gets *one* claim
attempt per batch: it descends to its NIL slot, scatters its label, and
if overwritten it records the slot and carries over, resuming the
descent next batch from the very slot the winning lane just filled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.fol1 import fol1
from ..core.fol_star import fol_star
from ..core.labels import tuple_labels
from ..errors import ReproError
from ..hashing.table import ChainedHashTable
from ..lists.cells import ConsArena, encode_atom
from ..machine.vm import VectorMachine, make_machine
from ..mem.arena import NIL, BumpAllocator
from ..trees.bst import BST_FIELDS, BinarySearchTree
from .carryover import fol_round, tuple_round
from .queue import FRESH_SLOT, Request


@dataclass
class BatchResult:
    """What one executed micro-batch did.

    The shard fields stay at their empty defaults for single-pipeline
    execution; the sharded coordinator (:mod:`repro.shard.coordinator`)
    fills them in so the metrics layer can report per-shard occupancy,
    concurrent rounds, cross-shard traffic and migrations.
    """

    completed: List[Request] = field(default_factory=list)
    carried: List[Request] = field(default_factory=list)
    rounds: int = 0
    multiplicity: int = 1
    cycles: float = 0.0
    shard_sizes: Tuple[int, ...] = ()
    shard_cycles: Tuple[float, ...] = ()
    shard_rounds: Tuple[int, ...] = ()
    cross_units: int = 0
    migrations: int = 0

    @property
    def size(self) -> int:
        return len(self.completed) + len(self.carried)

    @property
    def filtered(self) -> int:
        return len(self.carried)


def _max_multiplicity(addrs: np.ndarray) -> int:
    """Uncharged diagnostic: the batch's observed M (Theorem 5)."""
    if addrs.size == 0:
        return 0
    _, counts = np.unique(addrs, return_counts=True)
    return int(counts.max())


class StreamExecutor:
    """Executes micro-batches of symbolic updates on shared state."""

    def __init__(
        self,
        vm: VectorMachine,
        *,
        table_size: int = 509,
        hash_capacity: int = 4096,
        bst_capacity: int = 4096,
        n_cells: int = 64,
        carryover: bool = True,
        conflict_policy: str = "arbitrary",
    ) -> None:
        self.vm = vm
        self.carryover = carryover
        self.policy = conflict_policy
        alloc = BumpAllocator(vm.mem)
        self.table = ChainedHashTable(alloc, table_size, max(hash_capacity, 1))
        self.tree = BinarySearchTree(alloc, max(bst_capacity, 1))
        self.cells = ConsArena(alloc, max(n_cells, 1))
        self.n_cells = n_cells
        # The shared list cells every "list" request targets, value 0.
        self._cell_ptrs = np.asarray(
            [self.cells.cons(encode_atom(0), NIL) for _ in range(n_cells)],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    # convenient construction
    # ------------------------------------------------------------------
    @classmethod
    def for_workload(
        cls,
        requests: Sequence[Request],
        *,
        table_size: int = 509,
        n_cells: int = 64,
        carryover: bool = True,
        conflict_policy: str = "arbitrary",
        cost_model=None,
        seed: int = 0,
    ) -> "StreamExecutor":
        """Build an executor (and its machine) sized for ``requests``."""
        n_hash = sum(1 for r in requests if r.kind == "hash")
        n_bst = sum(1 for r in requests if r.kind == "bst")
        words = (
            1  # NIL
            + 2 * table_size  # heads + label work area
            + 2 * max(n_hash, 1)  # (key, next) nodes
            + 1 + 3 * max(n_bst, 1)  # root word + (key, left, right) nodes
            + 6 * max(n_cells, 1)  # cells + shadow work + marks
            + 4096  # slack
        )
        vm = make_machine(words, cost_model=cost_model, seed=seed)
        return cls(
            vm,
            table_size=table_size,
            hash_capacity=max(n_hash, 1),
            bst_capacity=max(n_bst, 1),
            n_cells=n_cells,
            carryover=carryover,
            conflict_policy=conflict_policy,
        )

    # ------------------------------------------------------------------
    # invariant auditing (opt-in; zero cost when off)
    # ------------------------------------------------------------------
    def attach_audit(self, auditor) -> None:
        """Attach an invariant auditor to this executor's machine (or
        detach with ``None``).  See :mod:`repro.audit.invariants`."""
        self.vm.attach_audit(auditor)

    @property
    def audit(self):
        return self.vm.audit

    # ------------------------------------------------------------------
    # uncharged state inspection (verification/tests)
    # ------------------------------------------------------------------
    def list_values(self) -> List[int]:
        """Current decoded value of every shared list cell."""
        off_car = self.cells.cells.offset("car")
        return [
            -int(self.vm.mem.peek(int(p) + off_car)) - 1 for p in self._cell_ptrs
        ]

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def execute(self, batch: Sequence[Request]) -> BatchResult:
        """Run one micro-batch; returns completions, carryovers and the
        batch's cycle/round/multiplicity accounting."""
        result = BatchResult()
        if not batch:
            return result
        start = self.vm.counter.snapshot()
        by_kind: Dict[str, List[Request]] = {}
        for req in batch:
            by_kind.setdefault(req.kind, []).append(req)
        mults = [1]
        for kind, reqs in by_kind.items():
            if kind == "hash":
                m = self._run_hash(reqs, result)
            elif kind == "bst":
                m = self._run_bst(reqs, result)
            elif kind == "xfer":
                m = self._run_xfer(reqs, result)
            else:
                m = self._run_list(reqs, result)
            mults.append(m)
        result.multiplicity = max(mults)
        result.cycles = self.vm.counter.delta(start)
        return result

    # -- chained hash inserts ------------------------------------------
    def _hash_head_addrs(self, keys: np.ndarray) -> np.ndarray:
        hashed = self.vm.mod(keys, self.table.size)
        return self.vm.add(hashed, self.table.base)

    def _hash_enter(
        self, head_addrs: np.ndarray, keys: np.ndarray, positions: np.ndarray
    ) -> None:
        """Figure 7 main processing for one parallel-processable set:
        allocate a node per lane and link it at its chain head."""
        vm = self.vm
        nodes = self.table.nodes.alloc_many(positions.size)
        vm.iota(positions.size)  # charge the address generation
        key_field = self.table.nodes.offset("key")
        next_field = self.table.nodes.offset("next")
        heads = head_addrs[positions]
        vm.scatter(vm.add(nodes, key_field), keys[positions], policy=self.policy)
        old_heads = vm.gather(heads)
        vm.scatter(vm.add(nodes, next_field), old_heads, policy=self.policy)
        vm.scatter(heads, nodes, policy=self.policy)

    def _run_hash(self, reqs: List[Request], result: BatchResult) -> int:
        vm = self.vm
        keys = np.asarray([r.key for r in reqs], dtype=np.int64)
        head_addrs = self._hash_head_addrs(keys)
        if self.carryover:
            labels = vm.iota(keys.size)
            winners, losers = fol_round(
                vm, head_addrs, labels,
                work_offset=self.table.work_offset, policy=self.policy,
            )
            self._hash_enter(head_addrs, keys, winners)
            result.completed.extend(reqs[i] for i in winners)
            for i in losers:
                reqs[i].group = int(head_addrs[i])
                result.carried.append(reqs[i])
            result.rounds += 1
        else:
            dec = fol1(
                vm, head_addrs,
                work_offset=self.table.work_offset, policy=self.policy,
                on_set=lambda s, _j: self._hash_enter(head_addrs, keys, s),
            )
            result.completed.extend(reqs)
            result.rounds += dec.m
        return _max_multiplicity(head_addrs)

    # -- BST inserts ----------------------------------------------------
    def _run_bst(self, reqs: List[Request], result: BatchResult) -> int:
        vm = self.vm
        tree = self.tree
        nodes = tree.nodes
        off_key = nodes.offset("key")
        off_left = nodes.offset("left")
        off_right = nodes.offset("right")
        n = len(reqs)
        keys = np.asarray([r.key for r in reqs], dtype=np.int64)

        # Pre-build a node per *fresh* lane; carried lanes already own one.
        fresh = [i for i, r in enumerate(reqs) if r.node == NIL]
        if fresh:
            built = nodes.alloc_many(len(fresh))
            vm.iota(len(fresh))  # charge the address generation
            vm.scatter(vm.add(built, off_key), keys[fresh], policy=self.policy)
            vm.scatter(vm.add(built, off_left), vm.splat(len(fresh), NIL), policy=self.policy)
            vm.scatter(vm.add(built, off_right), vm.splat(len(fresh), NIL), policy=self.policy)
            for i, ptr in zip(fresh, built):
                reqs[i].node = int(ptr)
        node_ptrs = np.asarray([r.node for r in reqs], dtype=np.int64)

        slots = np.asarray(
            [tree.root_addr if r.slot == FRESH_SLOT else r.slot for r in reqs],
            dtype=np.int64,
        )
        labels = vm.iota(n)
        active = vm.iota(n)
        claim_rounds = 0
        limit = 2 * (nodes.capacity + n) + 4
        steps = 0
        while active.size:
            steps += 1
            if steps > limit:
                raise ReproError(f"stream BST insert exceeded {limit} steps")
            cur_slots = slots[active]
            ptrs = vm.gather(cur_slots)
            at_nil = vm.eq(ptrs, NIL)

            if vm.any_true(at_nil):
                claim_rounds += 1
                lb = labels[active]
                vm.scatter_masked(cur_slots, lb, at_nil, policy=self.policy)
                readback = vm.gather(cur_slots)
                won = vm.mask_and(at_nil, vm.eq(readback, lb))
                if vm.audit is not None:
                    vm.audit.on_claim(cur_slots, at_nil, won)
                vm.scatter_masked(cur_slots, node_ptrs[active], won, policy=self.policy)
                if not vm.any_true(won):
                    raise ReproError("stream BST claim round made no progress")
                result.completed.extend(reqs[i] for i in active[won])
                if self.carryover:
                    # Filtered claimants defer to the next batch, resuming
                    # at the slot the winner just filled.
                    lost = vm.mask_and(at_nil, vm.mask_not(won))
                    for i, slot in zip(active[lost], cur_slots[lost]):
                        reqs[i].slot = int(slot)
                        reqs[i].group = int(slot)
                        result.carried.append(reqs[i])
                    active = vm.compress(active, vm.mask_not(at_nil))
                else:
                    # Paper semantics: losers keep descending in-batch —
                    # next step they find the winner's node in the slot.
                    active = vm.compress(active, vm.mask_not(won))
                if active.size == 0:
                    break
                cur_slots = slots[active]
                ptrs = vm.gather(cur_slots)

            node_keys = vm.gather(vm.add(ptrs, off_key))
            go_left = vm.lt(keys[active], node_keys)
            child = vm.add(ptrs, vm.select(go_left, off_left, off_right))
            slots[active] = child
            vm.loop_overhead()

        result.rounds += claim_rounds
        return max(claim_rounds, 1)

    # -- two-cell transfers (the L = 2 FOL* unit process) --------------
    def _cell_car_addrs(self, cells: List[int], what: str) -> np.ndarray:
        for c in cells:
            if not 0 <= c < self.n_cells:
                raise ReproError(
                    f"{what} targets cell {c}, but only {self.n_cells} cells exist"
                )
        off_car = self.cells.cells.offset("car")
        return self.vm.add(self._cell_ptrs[cells], off_car)

    def _run_xfer(self, reqs: List[Request], result: BatchResult) -> int:
        """Move ``delta`` from cell ``key`` to cell ``key2``: each unit
        process rewrites a *tuple* of two storage areas, so filtering is
        FOL* (§3.3), not FOL1 — a tuple completes only when both of its
        labels survive, and each round's last tuple is written with
        scalar stores so the round cannot deadlock."""
        vm = self.vm
        src_addrs = self._cell_car_addrs([r.key for r in reqs], "xfer source")
        dst_addrs = self._cell_car_addrs([r.key2 for r in reqs], "xfer target")
        deltas = np.asarray([r.delta for r in reqs], dtype=np.int64)

        # Atoms are sign-tagged negated: value -= d is word += d and
        # value += d is word -= d.  Gathers/scatters run sequentially
        # per round, so read-modify-write per parallel-processable set
        # is safe (no two tuples in a set share a cell).
        def apply(positions: np.ndarray) -> None:
            if positions.size == 0:
                return
            a_src = src_addrs[positions]
            a_dst = dst_addrs[positions]
            d = deltas[positions]
            vm.scatter(a_src, vm.add(vm.gather(a_src), d), policy=self.policy)
            vm.scatter(a_dst, vm.sub(vm.gather(a_dst), d), policy=self.policy)

        # Self-transfers (key == key2) are net no-ops and internally
        # duplicated tuples in the §3.3 sense; retire them up front.
        loop_idx = [i for i, r in enumerate(reqs) if r.key == r.key2]
        live_idx = np.asarray(
            [i for i, r in enumerate(reqs) if r.key != r.key2], dtype=np.int64
        )
        result.completed.extend(reqs[i] for i in loop_idx)

        if live_idx.size:
            v1 = src_addrs[live_idx]
            v2 = dst_addrs[live_idx]
            if self.carryover:
                labels = tuple_labels(vm, live_idx.size, 2)
                winners, losers = tuple_round(
                    vm, [v1, v2], labels,
                    work_offset=self.cells.work_offset, policy=self.policy,
                )
                apply(live_idx[winners])
                result.completed.extend(reqs[i] for i in live_idx[winners])
                for i in live_idx[losers]:
                    reqs[i].group = int(src_addrs[i])
                    result.carried.append(reqs[i])
                result.rounds += 1
            else:
                dec = fol_star(
                    vm, [v1, v2],
                    work_offset=self.cells.work_offset, policy=self.policy,
                )
                for s in dec.sets:
                    apply(live_idx[s])
                result.completed.extend(reqs[i] for i in live_idx)
                result.rounds += dec.m
        return _max_multiplicity(np.concatenate([src_addrs, dst_addrs]))

    # -- shared list cell bumps ----------------------------------------
    def _run_list(self, reqs: List[Request], result: BatchResult) -> int:
        vm = self.vm
        car_addrs = self._cell_car_addrs([r.key for r in reqs], "list request")
        deltas = np.asarray([r.delta for r in reqs], dtype=np.int64)

        def bump(positions: np.ndarray) -> None:
            addrs = car_addrs[positions]
            words = vm.gather(addrs)
            # Atoms are sign-tagged negated, so value += d is word -= d.
            vm.scatter(addrs, vm.sub(words, deltas[positions]), policy=self.policy)

        if self.carryover:
            labels = vm.iota(car_addrs.size)
            winners, losers = fol_round(
                vm, car_addrs, labels,
                work_offset=self.cells.work_offset, policy=self.policy,
            )
            bump(winners)
            result.completed.extend(reqs[i] for i in winners)
            for i in losers:
                reqs[i].group = int(car_addrs[i])
                result.carried.append(reqs[i])
            result.rounds += 1
        else:
            dec = fol1(
                vm, car_addrs,
                work_offset=self.cells.work_offset, policy=self.policy,
                on_set=lambda s, _j: bump(s),
            )
            result.completed.extend(reqs)
            result.rounds += dec.m
        return _max_multiplicity(car_addrs)
