"""Cross-batch carryover: amortising FOL rounds over the stream.

The paper's FOL1 (§3.2) retries *within* a batch: filtered lanes loop
through label-write/read-back rounds until every lane has survived once,
so a batch with maximum multiplicity M pays M full rounds of vector
start-up before it retires.  A streaming runtime has a better option:
run **one** filtering round per micro-batch, process the surviving
lanes, and re-enqueue the overwritten (filtered) lanes into the *next*
micro-batch, where they ride along with fresh arrivals.

This trades intra-batch rounds for cross-batch recirculation:

* each micro-batch issues a single round's worth of vector instructions
  regardless of sharing, so start-up cost per batch is flat;
* filtered lanes retry at the *next batch's* vector length — duplicates
  of a hot address are spread over the stream instead of serialising one
  short round per duplicate;
* total lane-visits are unchanged (a lane with in-batch rank r still
  filters r-1 times before it wins — Lemma 2 guarantees one winner per
  address per round either way), which is why the final state matches
  the one-shot decomposition.  The equivalence is proved property-wise
  in ``tests/test_runtime_equivalence.py``.

:func:`fol_round` is the single-round primitive (FOL1 steps 1–3 without
the repeat loop); :class:`CarryoverBuffer` is the typed holding pen the
service moves filtered requests through.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import AuditError, DeadlockError
from .queue import Request


def fol_round(
    vm,
    addrs: np.ndarray,
    labels: np.ndarray,
    *,
    work_offset: int = 0,
    policy: str = "arbitrary",
) -> Tuple[np.ndarray, np.ndarray]:
    """One filtering round over ``addrs``: write ``labels`` through the
    work area, gather them back, and split lane positions into
    ``(winners, losers)``.

    Winners hold distinct addresses (Lemma 2) and are safe for parallel
    main processing; losers are the overwritten lanes the caller defers
    to the next micro-batch.
    """
    if addrs.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    wa = vm.add(addrs, work_offset) if work_offset else addrs
    vm.scatter(wa, labels, policy=policy)
    readback = vm.gather(wa)
    survived = vm.eq(readback, labels)
    positions = vm.iota(addrs.size)
    winners = vm.compress(positions, survived)
    if winners.size == 0:
        raise DeadlockError(
            "carryover FOL round produced no survivors — ELS condition violated"
        )
    losers = vm.compress(positions, vm.mask_not(survived))
    if vm.audit is not None:
        vm.audit.on_round(addrs, winners, losers)
    return winners, losers


def tuple_round(
    vm,
    addr_vectors: List[np.ndarray],
    label_vectors: List[np.ndarray],
    *,
    work_offset: int = 0,
    policy: str = "arbitrary",
) -> Tuple[np.ndarray, np.ndarray]:
    """One FOL* filtering round over L index vectors (§3.3): a tuple
    survives only if *all* of its L labels read back intact.

    Unlike :func:`fol_round`, a single round of parallel tuple label
    writing can produce **zero** survivors (tuple A beats B on one cell
    while B beats A on another), so the paper's deadlock remedy is
    applied per round: the last tuple's labels are written with scalar
    stores *after* the vector scatters, guaranteeing at least one
    winner.  Used by the ``"xfer"`` request kind, whose unit process
    rewrites two shared list cells.

    Labels must be unique across all L vectors (use
    :func:`repro.core.labels.tuple_labels`).
    """
    n = addr_vectors[0].size
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    works = [
        vm.add(v, work_offset) if work_offset else v for v in addr_vectors
    ]
    # Step 1: vector label writes for all tuples but the last, then the
    # last tuple's labels by scalar stores (always survives).
    for wa, lb in zip(works, label_vectors):
        vm.scatter(wa[:-1], lb[:-1], policy=policy)
    for wa, lb in zip(works, label_vectors):
        vm.mem.sstore(int(wa[-1]), int(lb[-1]))
    # Step 2: read back through every vector and AND the survival masks.
    survived = None
    for wa, lb in zip(works, label_vectors):
        mask = vm.eq(vm.gather(wa), lb)
        survived = mask if survived is None else vm.mask_and(survived, mask)
    positions = vm.iota(n)
    winners = vm.compress(positions, survived)
    if winners.size == 0:
        raise DeadlockError(
            "tuple FOL round produced no survivors despite the scalar tail"
        )
    losers = vm.compress(positions, vm.mask_not(survived))
    if vm.audit is not None:
        # Tuple winners must hold *all* their cells exclusively: the
        # concatenated winner addresses across the L vectors must be
        # pairwise distinct (§3.3's parallel-processability).
        flat = np.concatenate([v[winners] for v in addr_vectors])
        uniq = np.unique(flat)
        if uniq.size != flat.size:
            raise AuditError(
                "tuple round winners share a cell — not parallel-processable"
            )
        vm.audit.stats.rounds += 1
    return winners, losers


class CarryoverBuffer:
    """Filtered requests waiting for the next micro-batch.

    Carried lanes are *in flight*, not re-offered to the admission
    queue: they already passed admission and occupy executor state (BST
    lanes hold a pre-built node and a descent position), so they bypass
    backpressure and are always drained first when the next batch forms.

    Releases are **deduplicated by conflict group** (the target address
    the lane was filtered at, recorded in :attr:`Request.group`): of k
    filtered lanes aliasing one address, only one can survive the next
    round — ELS admits a single winner per address — so re-running the
    other k-1 every batch would re-pay their element work for guaranteed
    losses (the Theorem 6 quadratic blow-up, but against the *global*
    duplicate count instead of one batch's).  :meth:`drain_ready` hands
    out one lane per group in FIFO order and holds the siblings, turning
    a hot address's cost from quadratic re-scans into one lane-visit per
    batch.
    """

    def __init__(self) -> None:
        self._items: List[Request] = []
        self.total_carried = 0
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    def put(self, requests: List[Request]) -> None:
        """Defer ``requests`` (just filtered) to a later batch."""
        for req in requests:
            req.attempts += 1
        self._items.extend(requests)
        self.total_carried += len(requests)
        self.max_depth = max(self.max_depth, len(self._items))

    def drain_ready(self) -> List[Request]:
        """Remove and return the lanes eligible for the next batch:
        the oldest deferred request of each conflict group."""
        ready: List[Request] = []
        held: List[Request] = []
        seen = set()
        for req in self._items:
            if req.group in seen:
                held.append(req)
            else:
                seen.add(req.group)
                ready.append(req)
        self._items = held
        return ready

    def drain(self) -> List[Request]:
        """Remove and return every deferred request (no dedup)."""
        items, self._items = self._items, []
        return items
