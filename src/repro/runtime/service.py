"""The streaming micro-batch FOL service.

:class:`StreamService` wires the subsystem together::

    arrivals -> BoundedQueue -> BatchPolicy -> StreamExecutor -> done
                    ^                              |
                    |        CarryoverBuffer <-----+  (filtered lanes)
                    +--- backpressure (block/reject)

Time is *simulated cycles*: the service clock advances to arrival
timestamps while idle and by each batch's charged cycle count while
executing, so queueing delay and service time share one unit and the
p50/p99 latencies are machine-level quantities, not wall-clock noise.

Workload generators produce request streams with the two knobs that
stress FOL: **arrival process** (open loop with exponential gaps, or
closed loop where everything is ready at t=0 and the bounded queue is
the only pacing) and **key skew** (truncated Zipf; hot keys alias the
same chain heads/cells, driving the pointer multiplicity M up).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..machine.cost_model import CostModel
from ..machine.trace import Tracer
from .batcher import BatchPolicy, FixedBatcher
from .carryover import CarryoverBuffer
from .executor import StreamExecutor
from .metrics import BatchRecord, StreamMetrics
from .queue import BoundedQueue, Request


class StreamService:
    """Top-level façade: run a request stream through micro-batched FOL."""

    def __init__(
        self,
        executor: StreamExecutor,
        batcher: Optional[BatchPolicy] = None,
        queue: Optional[BoundedQueue] = None,
        trace: bool = False,
    ) -> None:
        self.executor = executor
        self.batcher = batcher if batcher is not None else FixedBatcher()
        # Explicit None check: an empty BoundedQueue is falsy via __len__.
        self.queue = queue if queue is not None else BoundedQueue(capacity=4096)
        self.carry = CarryoverBuffer()
        self.metrics = StreamMetrics()
        self.trace = trace
        self.recorder = None
        self.now = 0.0

    # ------------------------------------------------------------------
    def attach_recorder(self, recorder) -> None:
        """Attach a lifecycle-span recorder (see
        :class:`repro.obs.events.TraceRecorder`) — or detach with
        ``None``.  Wires the queue's admission observer, the migration
        controller's step observer (sharded engines) and the metrics
        summary's stage breakdown.  The recorder is passive: cycle
        accounting is bit-identical with or without it."""
        self.recorder = recorder
        self.queue.observer = recorder
        self.metrics.trace_recorder = recorder
        controller = getattr(self.executor, "controller", None)
        if controller is not None:
            controller.observer = recorder

    # ------------------------------------------------------------------
    @classmethod
    def for_workload(
        cls,
        requests: Sequence[Request],
        *,
        batcher: Optional[BatchPolicy] = None,
        queue: Optional[BoundedQueue] = None,
        table_size: int = 509,
        n_cells: int = 64,
        key_space: int = 4096,
        carryover: bool = True,
        conflict_policy: str = "arbitrary",
        cost_model: Optional[CostModel] = None,
        backend="sim",
        trace: bool = False,
        seed: int = 0,
    ) -> "StreamService":
        """Build a service whose executor/machine are sized to fit
        ``requests`` (the common construction path; see also
        :meth:`StreamExecutor.for_workload`)."""
        executor = StreamExecutor.for_workload(
            requests,
            table_size=table_size,
            n_cells=n_cells,
            key_space=key_space,
            carryover=carryover,
            conflict_policy=conflict_policy,
            cost_model=cost_model,
            backend=backend,
            seed=seed,
        )
        return cls(executor, batcher=batcher, queue=queue, trace=trace)

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> StreamMetrics:
        """Drive every request to completion (or rejection); returns the
        populated metrics object (also kept on ``self.metrics``)."""
        arrivals = sorted(requests, key=lambda r: (r.arrival, r.rid))
        if self.trace:
            backend = getattr(self.executor, "backend", None)
            if backend is not None and not backend.calibrated:
                raise ReproError(
                    f"tracing records the simulated instruction mix, but "
                    f"backend {backend.name!r} charges no cycles; trace on "
                    f"the sim backend"
                )
            with Tracer(self.executor.vm.counter) as tracer:
                self._run_loop(arrivals)
            self.metrics.attach_trace(tracer)
        else:
            self._run_loop(arrivals)
        self.metrics.absorb_queue(self.queue)
        return self.metrics

    def _run_loop(self, arrivals: List[Request]) -> None:
        i = 0
        n = len(arrivals)
        batch_index = 0
        while True:
            # -- admit every arrival that is due and fits ---------------
            blocked = False
            while i < n and arrivals[i].arrival <= self.now:
                if self.queue.offer(arrivals[i], self.now):
                    i += 1
                elif self.queue.admission == "reject":
                    i += 1  # dropped and counted by the queue
                else:
                    blocked = True  # backpressure: producer stalls
                    break

            ready = self.carry.depth + self.queue.depth
            if ready == 0:
                if i >= n:
                    return  # drained
                self.now = max(self.now, arrivals[i].arrival)
                continue

            # -- wait for a fuller batch? -------------------------------
            arrivals_pending = i < n and not blocked
            if ready < self.batcher.target_size() and arrivals_pending:
                wake = self.batcher.wake_time(
                    self.now,
                    self.queue.oldest_enqueued(),
                    arrivals[i].arrival,
                    earliest_deadline=self.queue.earliest_deadline(),
                )
                if wake > self.now:
                    if self.recorder is not None:
                        self.recorder.linger_wait(self.now, wake)
                    self.now = wake
                    continue

            # -- form and execute one micro-batch -----------------------
            carried = self.carry.drain_ready()
            take = max(0, self.batcher.target_size() - len(carried))
            batch = carried + self.queue.take(take)
            launch = self.now
            result = self.executor.execute(batch)
            self.now += result.cycles
            for req in result.completed:
                req.completed = self.now
                self.metrics.record_completion(req.latency, tenant=req.tenant)
            self.carry.put(result.carried)
            self.metrics.record_batch(
                BatchRecord(
                    index=batch_index,
                    size=len(batch),
                    carried_in=len(carried),
                    queue_depth=self.queue.depth,
                    rounds=result.rounds,
                    multiplicity=result.multiplicity,
                    filtered=result.filtered,
                    completed=len(result.completed),
                    cycles=result.cycles,
                    kind_counts=result.kind_counts,
                    shard_sizes=result.shard_sizes,
                    shard_rounds=result.shard_rounds,
                    cross_units=result.cross_units,
                    migrations=result.migrations,
                    parked=result.parked,
                    t_end=self.now,
                )
            )
            if self.recorder is not None:
                self.recorder.record_batch(
                    batch_index, batch, result, launch, self.now
                )
            self.batcher.observe(
                len(batch),
                result.rounds,
                result.multiplicity,
                result.filtered,
                carried=len(carried),
            )
            batch_index += 1


# ----------------------------------------------------------------------
# workload generators
# ----------------------------------------------------------------------
def zipf_keys(
    rng: np.random.Generator, n: int, skew: float, key_space: int
) -> np.ndarray:
    """``n`` keys from a truncated Zipf over ``key_space`` ranks.

    ``skew == 0`` is uniform; ``skew >= 1`` concentrates mass on a few
    hot keys (at 1.1 the hottest key takes ~15% of the stream), which is
    exactly the regime that inflates FOL's pointer multiplicity M."""
    if key_space <= 0:
        raise ReproError(f"key space must be positive, got {key_space}")
    if skew < 0:
        raise ReproError(f"skew must be non-negative, got {skew}")
    if skew == 0.0:
        return rng.integers(0, key_space, size=n).astype(np.int64)
    ranks = np.arange(1, key_space + 1, dtype=np.float64)
    p = ranks ** -skew
    p /= p.sum()
    return rng.choice(key_space, size=n, p=p).astype(np.int64)


def _build_requests(
    rng: np.random.Generator,
    arrivals: np.ndarray,
    kinds: Sequence[str],
    skew: float,
    key_space: int,
    n_cells: int,
    max_delta: int,
    weights: Optional[Sequence[float]] = None,
) -> List[Request]:
    from ..engine.spec import EngineContext, get_spec

    by_kind = {k: get_spec(k) for k in kinds}
    n = arrivals.size
    keys = zipf_keys(rng, n, skew, key_space)
    if weights is None:
        kind_choices = rng.integers(0, len(kinds), size=n)
    else:
        if len(weights) != len(kinds):
            raise ReproError(
                f"{len(weights)} mix weights for {len(kinds)} kinds"
            )
        p = np.asarray(weights, dtype=np.float64)
        if p.size == 0 or (p < 0).any() or p.sum() <= 0:
            raise ReproError("mix weights must be non-negative, sum > 0")
        kind_choices = rng.choice(len(kinds), size=n, p=p / p.sum())
    deltas = rng.integers(1, max_delta + 1, size=n)
    # Transfer targets follow the *same* skew as sources, so a hot rank
    # is hot on both ends of the tuple — the worst case for sharding.
    keys2 = zipf_keys(rng, n, skew, key_space)
    ctx = EngineContext(n_cells=n_cells, key_space=key_space)
    return [
        by_kind[kinds[kind_choices[idx]]].make_request(
            idx,
            int(keys[idx]),
            int(keys2[idx]),
            int(deltas[idx]),
            float(arrivals[idx]),
            ctx,
        )
        for idx in range(n)
    ]


def open_loop_workload(
    rng: np.random.Generator,
    n: int,
    *,
    kinds: Sequence[str] = ("hash",),  # no-kind-lint
    skew: float = 0.0,
    key_space: int = 4096,
    mean_gap: float = 40.0,
    n_cells: int = 64,
    max_delta: int = 9,
    weights: Optional[Sequence[float]] = None,
) -> List[Request]:
    """Open loop: arrivals with exponential inter-arrival gaps of
    ``mean_gap`` cycles — the generator does not react to service speed,
    so a slow policy shows up as queue growth and latency."""
    gaps = rng.exponential(mean_gap, size=n)
    return _build_requests(
        rng, np.cumsum(gaps), kinds, skew, key_space, n_cells, max_delta,
        weights=weights,
    )


def closed_loop_workload(
    rng: np.random.Generator,
    n: int,
    *,
    kinds: Sequence[str] = ("hash",),  # no-kind-lint
    skew: float = 0.0,
    key_space: int = 4096,
    n_cells: int = 64,
    max_delta: int = 9,
    weights: Optional[Sequence[float]] = None,
) -> List[Request]:
    """Closed loop: every request is ready at t=0 and the bounded
    admission queue is the only pacing — the throughput-measuring
    configuration (latency then measures time-in-system from t=0)."""
    return _build_requests(
        rng, np.zeros(n), kinds, skew, key_space, n_cells, max_delta,
        weights=weights,
    )


def requests_from_keys(
    keys: Iterable[int], kind: str = "hash", deltas: Optional[Iterable[int]] = None  # no-kind-lint
) -> List[Request]:
    """Deterministic all-at-t0 stream from explicit keys (test helper)."""
    keys = list(keys)
    deltas = list(deltas) if deltas is not None else [1] * len(keys)
    if len(deltas) != len(keys):
        raise ReproError(f"{len(deltas)} deltas for {len(keys)} keys")
    return [
        Request(rid=i, kind=kind, key=int(k), delta=int(d))
        for i, (k, d) in enumerate(zip(keys, deltas))
    ]
