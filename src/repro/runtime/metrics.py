"""Per-batch counters and latency accounting for the stream service.

Every executed micro-batch appends one :class:`BatchRecord`; request
completions append their simulated arrival-to-completion latency.  The
aggregate view (:meth:`StreamMetrics.summary`) exports plain dicts so
benches and tests can assert on them.

:class:`StreamMetrics` is a thin facade over
:class:`repro.obs.core.MetricsBase` — the percentile math, NaN-safe
formatting, tenant cells/fairness and table rendering live in
:mod:`repro.obs.core` (shared with the serving layer's
:class:`~repro.serve.metrics.ServeMetrics`); this module only keeps
what is stream-specific: the per-batch records, cycle totals,
lanes-by-kind and the shard-level aggregates.

An optional :class:`~repro.machine.trace.Tracer` can be folded in
(:meth:`StreamMetrics.attach_trace`), adding the run's instruction mix —
what fraction of the service's cycles went to gathers vs. ALU vs.
compress — to the summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..machine.trace import Tracer
from ..obs.core import MetricsBase, format_table, subsample


@dataclass(frozen=True)
class BatchRecord:
    """Counters for one executed micro-batch.

    The shard fields stay at their empty defaults on a single-pipeline
    run; under :class:`~repro.shard.coordinator.ShardCoordinator` they
    carry the per-shard occupancy/rounds split plus the batch's
    cross-shard and migration traffic.
    """

    index: int
    size: int  # lanes in the batch (fresh + carried)
    carried_in: int  # lanes recirculated from the previous batch
    queue_depth: int  # admission-queue depth when the batch launched
    rounds: int  # FOL rounds issued
    multiplicity: int  # observed max pointer multiplicity M
    filtered: int  # lanes filtered out (carried to the next batch)
    completed: int  # requests retired by this batch
    cycles: float  # simulated cycles charged
    kind_counts: Tuple[Tuple[str, int], ...] = ()  # lanes per request kind
    shard_sizes: Tuple[int, ...] = ()  # lanes routed per shard
    shard_rounds: Tuple[int, ...] = ()  # concurrent FOL rounds per shard
    cross_units: int = 0  # cross-shard tuples claimed this batch
    migrations: int = 0  # routing bins whose handoff completed after this batch
    parked: int = 0  # lanes parked because their bin was mid-handoff
    t_end: float = 0.0  # service clock when this batch's cycles finished

    @property
    def filtered_ratio(self) -> float:
        """Fraction of the batch's lanes that were overwritten."""
        return self.filtered / self.size if self.size else 0.0

    @property
    def cycles_per_lane(self) -> float:
        return self.cycles / self.size if self.size else 0.0

    @property
    def shard_occupancy(self) -> float:
        """Fraction of shards this batch kept busy (1.0 = all)."""
        if not self.shard_sizes:
            return 1.0
        return sum(1 for s in self.shard_sizes if s) / len(self.shard_sizes)

    @property
    def shard_imbalance(self) -> float:
        """Max over mean per-shard lanes: 1.0 is perfectly balanced,
        K means one shard carried the whole batch."""
        if not self.shard_sizes or not self.size:
            return 1.0
        mean = self.size / len(self.shard_sizes)
        return max(self.shard_sizes) / mean if mean else 1.0


class StreamMetrics(MetricsBase):
    """Accumulates batch records and completion latencies for one run."""

    _precision = 2
    _fmt_dicts = True
    _tenant_unit_suffix = ""
    _summary_table_skip = ("instruction_mix", "tenants", "stage_breakdown")

    def __init__(self) -> None:
        super().__init__()
        self.batches: List[BatchRecord] = []
        self.instruction_mix: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    def record_batch(self, record: BatchRecord) -> None:
        self.batches.append(record)
        self.max_queue_depth = max(self.max_queue_depth, record.queue_depth)

    def attach_trace(self, tracer: Tracer) -> None:
        """Fold a tracer's cycles-by-category mix into the summary."""
        self.instruction_mix = tracer.cycles_by_category()

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> float:
        return sum(b.cycles for b in self.batches)

    @property
    def total_completed(self) -> int:
        return sum(b.completed for b in self.batches)

    @property
    def total_rounds(self) -> int:
        return sum(b.rounds for b in self.batches)

    def lanes_by_kind(self) -> Dict[str, int]:
        """Total lanes executed per request kind, summed over batches
        (a carried lane counts once per batch it rode in).  Generic:
        any registered kind that appeared shows up — no per-kind
        metric fields to maintain."""
        totals: Dict[str, int] = {}
        for b in self.batches:
            for kind, n in b.kind_counts:
                totals[kind] = totals.get(kind, 0) + n
        return totals

    @property
    def cycles_per_request(self) -> float:
        """Total cycles per completed request; ``nan`` when nothing
        completed (0.0 would claim free requests — see
        :meth:`~repro.obs.core.MetricsBase.latency_percentile`)."""
        done = self.total_completed
        return self.total_cycles / done if done else float("nan")

    def summary(self) -> Dict[str, object]:
        """Aggregate counters as a plain dict (the bench interface)."""
        sizes = [b.size for b in self.batches]
        filtered = sum(b.filtered for b in self.batches)
        lanes = sum(sizes)
        out: Dict[str, object] = {
            "batches": len(self.batches),
            "completed": self.total_completed,
            "rejected": self.rejected,
            "blocked_offers": self.blocked_offers,
            "blocked_requests": self.blocked_requests,
            "mean_batch_size": float(np.mean(sizes)) if sizes else 0.0,
            "fol_rounds": self.total_rounds,
            "filtered_ratio": filtered / lanes if lanes else 0.0,
            "max_multiplicity": max((b.multiplicity for b in self.batches), default=0),
            # The queue's locked high-water mark; the batch-launch
            # samples alone miss peaks between launches (every launch
            # *drains* the queue first, so samples sit below the peak).
            "max_queue_depth": self.reconciled_max_depth,
            "max_queue_depth_sampled": self.max_queue_depth,
            "total_cycles": self.total_cycles,
            "cycles_per_request": self.cycles_per_request,
            "p50_latency": self.latency_percentile(50),
            "p99_latency": self.latency_percentile(99),
            "lanes_by_kind": self.lanes_by_kind(),
        }
        if self.instruction_mix is not None:
            out["instruction_mix"] = dict(self.instruction_mix)
        self._tenant_summary_keys(out)
        out.update(self.shard_summary())
        self._stage_summary_keys(out)
        return out

    def shard_summary(self) -> Dict[str, object]:
        """Shard-level aggregates (empty dict on single-pipeline runs)."""
        sharded = [b for b in self.batches if b.shard_sizes]
        if not sharded:
            return {}
        return {
            "shards": len(sharded[0].shard_sizes),
            "mean_shard_occupancy": float(
                np.mean([b.shard_occupancy for b in sharded])
            ),
            "mean_shard_imbalance": float(
                np.mean([b.shard_imbalance for b in sharded])
            ),
            "cross_shard_units": sum(b.cross_units for b in sharded),
            "migrations": sum(b.migrations for b in sharded),
            "parked_requests": sum(b.parked for b in sharded),
        }

    # ------------------------------------------------------------------
    # pretty-printing (summary_table / tenant_table live on MetricsBase)
    # ------------------------------------------------------------------
    def batch_table(self, max_rows: Optional[int] = None) -> str:
        """Per-batch metrics table; evenly subsamples when the run has
        more batches than ``max_rows``."""
        headers = [
            "batch", "size", "carried", "depth",
            "rounds", "M", "filt%", "cyc/lane",
        ]
        rows = [
            [
                b.index, b.size, b.carried_in, b.queue_depth,
                b.rounds, b.multiplicity,
                f"{100 * b.filtered_ratio:.1f}", f"{b.cycles_per_lane:.1f}",
            ]
            for b in subsample(self.batches, max_rows)
        ]
        return format_table(headers, rows)

    def shard_table(self, max_rows: Optional[int] = None) -> str:
        """Per-batch shard split (sharded runs only): lanes per shard,
        concurrent rounds, cross-shard units and migrations."""
        records = [b for b in self.batches if b.shard_sizes]
        headers = ["batch", "lanes/shard", "rounds/shard", "occ", "imbal", "cross", "moves"]
        rows = [
            [
                b.index,
                ":".join(str(s) for s in b.shard_sizes),
                ":".join(str(r) for r in b.shard_rounds),
                f"{b.shard_occupancy:.2f}",
                f"{b.shard_imbalance:.2f}",
                b.cross_units,
                b.migrations,
            ]
            for b in subsample(records, max_rows)
        ]
        return format_table(headers, rows)
