"""Per-batch counters and latency accounting for the stream service.

Every executed micro-batch appends one :class:`BatchRecord`; request
completions append their simulated arrival-to-completion latency.  The
aggregate view (:meth:`StreamMetrics.summary`) exports plain dicts so
benches and tests can assert on them, and the pretty-printers reuse
:func:`repro.bench.reporting.format_table` so CLI output matches the
figure tables.

An optional :class:`~repro.machine.trace.Tracer` can be folded in
(:meth:`StreamMetrics.attach_trace`), adding the run's instruction mix —
what fraction of the service's cycles went to gathers vs. ALU vs.
compress — to the summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..bench.reporting import format_table
from ..machine.trace import Tracer


@dataclass(frozen=True)
class BatchRecord:
    """Counters for one executed micro-batch.

    The shard fields stay at their empty defaults on a single-pipeline
    run; under :class:`~repro.shard.coordinator.ShardCoordinator` they
    carry the per-shard occupancy/rounds split plus the batch's
    cross-shard and migration traffic.
    """

    index: int
    size: int  # lanes in the batch (fresh + carried)
    carried_in: int  # lanes recirculated from the previous batch
    queue_depth: int  # admission-queue depth when the batch launched
    rounds: int  # FOL rounds issued
    multiplicity: int  # observed max pointer multiplicity M
    filtered: int  # lanes filtered out (carried to the next batch)
    completed: int  # requests retired by this batch
    cycles: float  # simulated cycles charged
    kind_counts: Tuple[Tuple[str, int], ...] = ()  # lanes per request kind
    shard_sizes: Tuple[int, ...] = ()  # lanes routed per shard
    shard_rounds: Tuple[int, ...] = ()  # concurrent FOL rounds per shard
    cross_units: int = 0  # cross-shard tuples claimed this batch
    migrations: int = 0  # routing bins whose handoff completed after this batch
    parked: int = 0  # lanes parked because their bin was mid-handoff
    t_end: float = 0.0  # service clock when this batch's cycles finished

    @property
    def filtered_ratio(self) -> float:
        """Fraction of the batch's lanes that were overwritten."""
        return self.filtered / self.size if self.size else 0.0

    @property
    def cycles_per_lane(self) -> float:
        return self.cycles / self.size if self.size else 0.0

    @property
    def shard_occupancy(self) -> float:
        """Fraction of shards this batch kept busy (1.0 = all)."""
        if not self.shard_sizes:
            return 1.0
        return sum(1 for s in self.shard_sizes if s) / len(self.shard_sizes)

    @property
    def shard_imbalance(self) -> float:
        """Max over mean per-shard lanes: 1.0 is perfectly balanced,
        K means one shard carried the whole batch."""
        if not self.shard_sizes or not self.size:
            return 1.0
        mean = self.size / len(self.shard_sizes)
        return max(self.shard_sizes) / mean if mean else 1.0


class StreamMetrics:
    """Accumulates batch records and completion latencies for one run."""

    def __init__(self) -> None:
        self.batches: List[BatchRecord] = []
        self.latencies: List[float] = []
        self.rejected = 0
        self.blocked_offers = 0
        self.blocked_requests = 0
        self.max_queue_depth = 0  # sampled at batch launch (see summary())
        self.queue_max_depth = 0  # the queue's locked high-water mark
        self.instruction_mix: Optional[Dict[str, float]] = None
        # per-tenant accounting (empty on untenanted runs)
        self.tenant_latencies: Dict[str, List[float]] = {}
        self.tenant_admission: Dict[str, Dict[str, int]] = {}
        self.tenant_weights: Dict[str, float] = {}
        self.tenant_slos: Dict[str, float] = {}

    @property
    def blocked(self) -> int:
        """Legacy alias for :attr:`blocked_offers`."""
        return self.blocked_offers

    # ------------------------------------------------------------------
    def record_batch(self, record: BatchRecord) -> None:
        self.batches.append(record)
        self.max_queue_depth = max(self.max_queue_depth, record.queue_depth)

    def record_completion(self, latency: float, tenant: str = "") -> None:
        self.latencies.append(latency)
        if tenant:
            self.tenant_latencies.setdefault(tenant, []).append(latency)

    def attach_trace(self, tracer: Tracer) -> None:
        """Fold a tracer's cycles-by-category mix into the summary."""
        self.instruction_mix = tracer.cycles_by_category()

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """Simulated-latency percentile over completed requests.

        With no completions there is no latency distribution to take a
        percentile of; the result is ``nan`` (rendered as ``—`` in the
        tables and ``null`` in JSON reports), never a fake 0.0 that
        would read as an infinitely fast service."""
        if not self.latencies:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies), q))

    @property
    def total_cycles(self) -> float:
        return sum(b.cycles for b in self.batches)

    @property
    def total_completed(self) -> int:
        return sum(b.completed for b in self.batches)

    @property
    def total_rounds(self) -> int:
        return sum(b.rounds for b in self.batches)

    def lanes_by_kind(self) -> Dict[str, int]:
        """Total lanes executed per request kind, summed over batches
        (a carried lane counts once per batch it rode in).  Generic:
        any registered kind that appeared shows up — no per-kind
        metric fields to maintain."""
        totals: Dict[str, int] = {}
        for b in self.batches:
            for kind, n in b.kind_counts:
                totals[kind] = totals.get(kind, 0) + n
        return totals

    @property
    def cycles_per_request(self) -> float:
        """Total cycles per completed request; ``nan`` when nothing
        completed (0.0 would claim free requests — see
        :meth:`latency_percentile`)."""
        done = self.total_completed
        return self.total_cycles / done if done else float("nan")

    def summary(self) -> Dict[str, object]:
        """Aggregate counters as a plain dict (the bench interface)."""
        sizes = [b.size for b in self.batches]
        filtered = sum(b.filtered for b in self.batches)
        lanes = sum(sizes)
        out: Dict[str, object] = {
            "batches": len(self.batches),
            "completed": self.total_completed,
            "rejected": self.rejected,
            "blocked_offers": self.blocked_offers,
            "blocked_requests": self.blocked_requests,
            "mean_batch_size": float(np.mean(sizes)) if sizes else 0.0,
            "fol_rounds": self.total_rounds,
            "filtered_ratio": filtered / lanes if lanes else 0.0,
            "max_multiplicity": max((b.multiplicity for b in self.batches), default=0),
            # The queue's locked high-water mark; the batch-launch
            # samples alone miss peaks between launches (every launch
            # *drains* the queue first, so samples sit below the peak).
            "max_queue_depth": max(self.max_queue_depth, self.queue_max_depth),
            "max_queue_depth_sampled": self.max_queue_depth,
            "total_cycles": self.total_cycles,
            "cycles_per_request": self.cycles_per_request,
            "p50_latency": self.latency_percentile(50),
            "p99_latency": self.latency_percentile(99),
            "lanes_by_kind": self.lanes_by_kind(),
        }
        if self.instruction_mix is not None:
            out["instruction_mix"] = dict(self.instruction_mix)
        if self.tenant_latencies or self.tenant_admission:
            out["jain_fairness"] = self.jain_fairness()
            out["tenants"] = self.tenant_summary()
        out.update(self.shard_summary())
        return out

    # ------------------------------------------------------------------
    # per-tenant aggregates
    # ------------------------------------------------------------------
    def tenant_names(self) -> List[str]:
        """Every tenant seen by the run (completions or admission)."""
        return sorted(set(self.tenant_latencies) | set(self.tenant_admission))

    def tenant_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant admission counters, latency percentiles and SLO
        attainment (fraction of completions inside the tenant's
        budget), keyed by tenant name."""
        from .qos import tenant_summary_cells

        return tenant_summary_cells(
            self.tenant_latencies,
            self.tenant_admission,
            self.tenant_weights,
            self.tenant_slos,
        )

    def jain_fairness(self) -> float:
        """Jain's fairness index across tenants (see
        :func:`repro.runtime.qos.tenant_fairness` for the value
        definition: SLO attainment when every tenant has a budget,
        weight-normalised throughput otherwise)."""
        from .qos import tenant_fairness

        return tenant_fairness(self.tenant_summary(), self.tenant_weights)

    def tenant_table(self) -> str:
        """Per-tenant metrics rendered as a table (QoS runs)."""
        summary = self.tenant_summary()
        headers = [
            "tenant", "offered", "admitted", "rejected", "blocked",
            "completed", "p50", "p99", "slo", "attain%",
        ]
        rows = []
        for name, cell in summary.items():
            slo = cell.get("slo")
            attain = cell.get("slo_attainment")
            rows.append([
                name,
                cell.get("offered", "—"),
                cell.get("admitted", "—"),
                cell.get("rejected", "—"),
                cell.get("blocked_requests", "—"),
                cell.get("completed", 0),
                _fmt_value(cell.get("p50_latency", float("nan"))),
                _fmt_value(cell.get("p99_latency", float("nan"))),
                _fmt_value(slo) if slo is not None else "—",
                f"{100 * attain:.1f}" if attain is not None else "—",
            ])
        return format_table(headers, rows)

    def shard_summary(self) -> Dict[str, object]:
        """Shard-level aggregates (empty dict on single-pipeline runs)."""
        sharded = [b for b in self.batches if b.shard_sizes]
        if not sharded:
            return {}
        return {
            "shards": len(sharded[0].shard_sizes),
            "mean_shard_occupancy": float(
                np.mean([b.shard_occupancy for b in sharded])
            ),
            "mean_shard_imbalance": float(
                np.mean([b.shard_imbalance for b in sharded])
            ),
            "cross_shard_units": sum(b.cross_units for b in sharded),
            "migrations": sum(b.migrations for b in sharded),
            "parked_requests": sum(b.parked for b in sharded),
        }

    # ------------------------------------------------------------------
    # pretty-printing
    # ------------------------------------------------------------------
    def batch_table(self, max_rows: Optional[int] = None) -> str:
        """Per-batch metrics table; evenly subsamples when the run has
        more batches than ``max_rows``."""
        headers = [
            "batch", "size", "carried", "depth",
            "rounds", "M", "filt%", "cyc/lane",
        ]
        records = self.batches
        if max_rows is not None and len(records) > max_rows:
            idx = np.linspace(0, len(records) - 1, max_rows).astype(int)
            records = [records[i] for i in sorted(set(idx))]
        rows = [
            [
                b.index, b.size, b.carried_in, b.queue_depth,
                b.rounds, b.multiplicity,
                f"{100 * b.filtered_ratio:.1f}", f"{b.cycles_per_lane:.1f}",
            ]
            for b in records
        ]
        return format_table(headers, rows)

    def summary_table(self) -> str:
        """Aggregate metrics rendered as a two-column table."""
        s = self.summary()
        # instruction_mix and the per-tenant cells have their own
        # renderings (attach_trace / tenant_table); a nested dict row
        # would be unreadable here.
        skip = ("instruction_mix", "tenants")
        rows = [[k, _fmt_value(v)] for k, v in s.items() if k not in skip]
        return format_table(["metric", "value"], rows)

    def shard_table(self, max_rows: Optional[int] = None) -> str:
        """Per-batch shard split (sharded runs only): lanes per shard,
        concurrent rounds, cross-shard units and migrations."""
        records = [b for b in self.batches if b.shard_sizes]
        if max_rows is not None and len(records) > max_rows:
            idx = np.linspace(0, len(records) - 1, max_rows).astype(int)
            records = [records[i] for i in sorted(set(idx))]
        headers = ["batch", "lanes/shard", "rounds/shard", "occ", "imbal", "cross", "moves"]
        rows = [
            [
                b.index,
                ":".join(str(s) for s in b.shard_sizes),
                ":".join(str(r) for r in b.shard_rounds),
                f"{b.shard_occupancy:.2f}",
                f"{b.shard_imbalance:.2f}",
                b.cross_units,
                b.migrations,
            ]
            for b in records
        ]
        return format_table(headers, rows)


def _fmt_value(v: object) -> str:
    if isinstance(v, float):
        if np.isnan(v):
            return "—"  # undefined metric (e.g. no completions)
        return f"{v:,.2f}"
    if isinstance(v, dict):
        return " ".join(f"{k}={_fmt_value(n)}" for k, n in v.items()) or "—"
    return str(v)
