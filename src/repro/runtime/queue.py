"""Bounded admission queue for streaming symbolic-update requests.

The runtime's front door: producers *offer* :class:`Request` objects and
the queue either admits them or pushes back.  Two admission policies:

* ``"block"`` — a full queue refuses the offer and the producer must
  retry later; in the simulated service loop this models closed-loop
  backpressure (arrivals stall and their latency grows, nothing is
  lost).
* ``"reject"`` — a full queue drops the request and counts it; the
  open-loop load-shedding policy of a service that prefers bounded
  latency over completeness.

Timestamps are *simulated cycles* (the same clock the
:class:`~repro.machine.counter.CycleCounter` advances) in the simulated
runtime, and wall-clock seconds when the queue fronts the serving layer
(:mod:`repro.serve`) — the queue itself is unit-agnostic.

The queue is **thread-safe**: one lock serialises admission, dequeue
and the stats counters, so concurrent producers (the serving layer's
load generators, or plain threads) never lose, duplicate or miscount a
request.  The single-threaded simulated service pays one uncontended
lock acquire per operation, which is noise next to a batch execution.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set

from ..errors import ReproError
from ..mem.arena import NIL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .qos import QoSPolicy

#: Admission policies understood by :class:`BoundedQueue`.
ADMISSION_POLICIES = ("block", "reject")

#: Sentinel for "BST descent not started" (root slot resolved lazily so
#: requests can be built before the executor exists).
FRESH_SLOT = -1


def __getattr__(name: str):
    # REQUEST_KINDS is served live from the workload registry (PEP 562)
    # rather than snapshotted at import time: this module is imported
    # while the registry is still filling, and a frozen tuple here
    # would silently miss later-registered kinds.
    if name == "REQUEST_KINDS":
        from ..engine.spec import registered_kinds

        return registered_kinds()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class Request:
    """One symbolic update travelling through the stream.

    ``kind`` selects the main processing, dispatched through the
    workload registry (:mod:`repro.engine`) — run
    ``python -m repro stream --help`` or see ``repro/engine/kinds/``
    for the registered kinds.  Single-address kinds carry their target
    in ``key``; arity-2 tuple kinds (unit processes rewriting *two*
    storage areas, L = 2 in the sense of FOL*, §3.3) name the second
    target in ``key2``.

    The mutable tail fields are per-request execution state the
    carryover loop threads across micro-batches: how many FOL rounds
    the request has been filtered out of (``attempts``), where a BST
    descent should resume (``slot``) and which pre-built tree node the
    request owns (``node``).
    """

    rid: int
    kind: str
    key: int
    delta: int = 1
    key2: int = -1  # second target cell, "xfer" requests only
    arrival: float = 0.0
    enqueued: float = 0.0
    completed: float = 0.0
    attempts: int = 0
    slot: int = FRESH_SLOT
    node: int = NIL
    group: int = -1  # conflict group (target address) set when carried
    home: int = -1  # shard whose memory holds this lane's state (sharded engine)
    tenant: str = ""  # tenant tag ("" = untenanted legacy traffic)
    slo: float = math.inf  # latency budget from enqueue (inf = no deadline)

    def __post_init__(self) -> None:
        from ..engine.spec import get_spec

        get_spec(self.kind).validate(self)

    @property
    def latency(self) -> float:
        """Arrival-to-completion latency; ``nan`` until the request
        completes (``completed`` keeps its 0.0 sentinel), matching the
        metrics layer's NaN-for-undefined convention — the old
        ``completed - arrival`` read as a *negative* latency for
        requests that were rejected or still in flight."""
        if not self.completed:
            return float("nan")
        return self.completed - self.arrival

    @property
    def deadline(self) -> float:
        """Absolute completion deadline: ``enqueued + slo``.

        Measured from admission, not arrival — in the closed-loop
        workloads every arrival is t=0, so an arrival-based deadline
        would be blown before the first batch launched."""
        return self.enqueued + self.slo


@dataclass
class QueueStats:
    """Counters the admission queue keeps for the metrics layer.

    ``blocked_offers`` counts refused *offer attempts* under the
    ``block`` policy; ``blocked_requests`` counts unique requests that
    stalled at least once.  They differ because the closed-loop service
    re-offers the same pending request every loop iteration, so the
    old single ``blocked`` counter could exceed the total request count
    while actually describing one stalled head-of-line request.
    """

    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    blocked_offers: int = 0
    blocked_requests: int = 0
    max_depth: int = 0

    @property
    def blocked(self) -> int:
        """Legacy alias for :attr:`blocked_offers`."""
        return self.blocked_offers

    def as_dict(self) -> Dict[str, int]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "blocked_offers": self.blocked_offers,
            "blocked_requests": self.blocked_requests,
            "max_depth": self.max_depth,
        }


class BoundedQueue:
    """FIFO request queue with a hard capacity and an admission policy.

    With a :class:`~repro.runtime.qos.QoSPolicy` attached the single
    global FIFO becomes per-tenant FIFOs behind the same interface:

    * admission additionally enforces a per-tenant depth cap, so one
      hot tenant's backlog is bounded instead of monopolising the
      whole queue (the global reject/block cliff);
    * :meth:`take` dequeues by weighted fair queuing — per-tenant
      virtual time advancing ``1/weight`` per dequeued request, ties
      broken by tenant registration order — so batches mix tenants by
      their configured weights yet stay FIFO within a tenant;
    * per-tenant :class:`QueueStats` accumulate next to the global
      ones (also without a policy, whenever requests carry tenant
      tags, so a FIFO baseline can still report per-tenant counts).

    Without a policy every code path is the original global FIFO —
    the simulated cycle accounting is bit-identical.
    """

    def __init__(
        self,
        capacity: int,
        admission: str = "block",
        qos: Optional["QoSPolicy"] = None,
    ) -> None:
        if capacity <= 0:
            raise ReproError(f"queue capacity must be positive, got {capacity}")
        if admission not in ADMISSION_POLICIES:
            raise ReproError(
                f"unknown admission policy {admission!r}; "
                f"expected one of {ADMISSION_POLICIES}"
            )
        self.capacity = capacity
        self.admission = admission
        self.qos = qos
        #: Optional lifecycle-trace recorder (see repro.obs.events).
        #: When set, every offer reports its outcome (``blocked`` only
        #: once per request, mirroring ``blocked_requests``); when None
        #: — the default — admission pays a single attribute check.
        self.observer = None
        self.stats = QueueStats()
        self.tenant_stats: Dict[str, QueueStats] = {}
        self._items: Deque[Request] = deque()  # global FIFO (no policy)
        self._fifos: "OrderedDict[str, Deque[Request]]" = OrderedDict()
        self._vtime: Dict[str, float] = {}
        self._vclock = 0.0  # virtual time of the last dequeue
        self._size = 0
        self._blocked_rids: Set[int] = set()
        self._lock = threading.Lock()
        if qos is not None:
            for name in qos.names:
                self._register_tenant(name)

    def _register_tenant(self, name: str) -> None:
        # Lock held (or __init__).  Unknown tenants register lazily on
        # first offer; registration order is the WFQ tie-break.
        self._fifos[name] = deque()
        self._vtime[name] = 0.0
        self.tenant_stats.setdefault(name, QueueStats())

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return self._size

    @property
    def depth(self) -> int:
        """Requests currently waiting."""
        with self._lock:
            return self._size

    @property
    def full(self) -> bool:
        with self._lock:
            return self._size >= self.capacity

    def oldest_enqueued(self) -> Optional[float]:
        """Enqueue timestamp of the oldest queued request (None when
        empty) — the min over tenant FIFO heads under a QoS policy."""
        with self._lock:
            if self.qos is None:
                return self._items[0].enqueued if self._items else None
            heads = [f[0].enqueued for f in self._fifos.values() if f]
            return min(heads) if heads else None

    def earliest_deadline(self) -> Optional[float]:
        """Soonest absolute SLO deadline among queued requests, or None
        when no QoS policy is attached / no queued request has a finite
        SLO.  Per-tenant FIFOs make this O(tenants): within a tenant the
        head request has the earliest enqueue time and tenants share one
        SLO class, so the head's deadline is the tenant's minimum."""
        with self._lock:
            if self.qos is None:
                return None
            deadlines = [
                f[0].enqueued + f[0].slo
                for f in self._fifos.values()
                if f and math.isfinite(f[0].slo)
            ]
            return min(deadlines) if deadlines else None

    # ------------------------------------------------------------------
    def offer(self, req: Request, now: float) -> bool:
        """Try to admit ``req`` at time ``now``.

        Returns True on admission.  On a refused offer the request is
        either dropped (``reject``) or left with the producer
        (``block``); both return False and the caller distinguishes via
        :attr:`admission`.  Under a QoS policy the offer is also
        refused when the request's tenant is at its depth cap, even if
        the queue as a whole has room.  Atomic under concurrent
        producers: the full-check, append and counters happen under one
        lock, so ``admitted + rejected + blocked_offers == offered``
        always holds (globally and per tenant) and the queue never
        overshoots its capacity.
        """
        with self._lock:
            name = req.tenant
            tstats: Optional[QueueStats] = None
            if self.qos is not None or name:
                tstats = self.tenant_stats.get(name)
                if tstats is None:
                    if self.qos is not None:
                        self._register_tenant(name)
                        tstats = self.tenant_stats[name]
                    else:
                        tstats = self.tenant_stats.setdefault(
                            name, QueueStats()
                        )
            self.stats.offered += 1
            if tstats is not None:
                tstats.offered += 1

            refuse = self._size >= self.capacity
            fifo: Optional[Deque[Request]] = None
            if self.qos is not None:
                fifo = self._fifos[name]
                refuse = refuse or len(fifo) >= self.qos.depth_cap(
                    name, self.capacity
                )
            if refuse:
                if self.admission == "reject":
                    self.stats.rejected += 1
                    if tstats is not None:
                        tstats.rejected += 1
                    if self.observer is not None:
                        self.observer.request_offered(req, now, "rejected")
                else:
                    self.stats.blocked_offers += 1
                    if tstats is not None:
                        tstats.blocked_offers += 1
                    if req.rid not in self._blocked_rids:
                        self._blocked_rids.add(req.rid)
                        self.stats.blocked_requests += 1
                        if tstats is not None:
                            tstats.blocked_requests += 1
                        if self.observer is not None:
                            self.observer.request_offered(req, now, "blocked")
                return False

            req.enqueued = now
            if fifo is not None:
                fifo.append(req)
            else:
                self._items.append(req)
            self._size += 1
            self.stats.admitted += 1
            self.stats.max_depth = max(self.stats.max_depth, self._size)
            if tstats is not None:
                tstats.admitted += 1
                if fifo is not None:
                    tstats.max_depth = max(tstats.max_depth, len(fifo))
            if self.observer is not None:
                self.observer.request_offered(req, now, "admitted")
            return True

    def take(self, n: int) -> List[Request]:
        """Dequeue up to ``n`` requests — FIFO order, or weighted fair
        queuing across tenant FIFOs when a QoS policy is attached."""
        with self._lock:
            if self.qos is None:
                n = min(n, len(self._items))
                out = [self._items.popleft() for _ in range(n)]
                self._size -= len(out)
                return out
            out: List[Request] = []
            while len(out) < n and self._size > 0:
                best_v = math.inf
                best_name = None
                for name, fifo in self._fifos.items():
                    if fifo:
                        # An idle tenant's virtual time is advanced to
                        # the current virtual clock so it cannot bank
                        # service while absent and burst on return.
                        v = max(self._vtime[name], self._vclock)
                        if v < best_v:
                            best_v, best_name = v, name
                assert best_name is not None
                req = self._fifos[best_name].popleft()
                self._size -= 1
                self._vclock = best_v
                self._vtime[best_name] = best_v + 1.0 / self.qos.weight(
                    best_name
                )
                out.append(req)
            return out
