"""Bounded admission queue for streaming symbolic-update requests.

The runtime's front door: producers *offer* :class:`Request` objects and
the queue either admits them or pushes back.  Two admission policies:

* ``"block"`` — a full queue refuses the offer and the producer must
  retry later; in the simulated service loop this models closed-loop
  backpressure (arrivals stall and their latency grows, nothing is
  lost).
* ``"reject"`` — a full queue drops the request and counts it; the
  open-loop load-shedding policy of a service that prefers bounded
  latency over completeness.

Timestamps are *simulated cycles* (the same clock the
:class:`~repro.machine.counter.CycleCounter` advances) in the simulated
runtime, and wall-clock seconds when the queue fronts the serving layer
(:mod:`repro.serve`) — the queue itself is unit-agnostic.

The queue is **thread-safe**: one lock serialises admission, dequeue
and the stats counters, so concurrent producers (the serving layer's
load generators, or plain threads) never lose, duplicate or miscount a
request.  The single-threaded simulated service pays one uncontended
lock acquire per operation, which is noise next to a batch execution.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from ..errors import ReproError
from ..mem.arena import NIL

#: Admission policies understood by :class:`BoundedQueue`.
ADMISSION_POLICIES = ("block", "reject")

#: Sentinel for "BST descent not started" (root slot resolved lazily so
#: requests can be built before the executor exists).
FRESH_SLOT = -1


def __getattr__(name: str):
    # REQUEST_KINDS is served live from the workload registry (PEP 562)
    # rather than snapshotted at import time: this module is imported
    # while the registry is still filling, and a frozen tuple here
    # would silently miss later-registered kinds.
    if name == "REQUEST_KINDS":
        from ..engine.spec import registered_kinds

        return registered_kinds()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class Request:
    """One symbolic update travelling through the stream.

    ``kind`` selects the main processing, dispatched through the
    workload registry (:mod:`repro.engine`) — run
    ``python -m repro stream --help`` or see ``repro/engine/kinds/``
    for the registered kinds.  Single-address kinds carry their target
    in ``key``; arity-2 tuple kinds (unit processes rewriting *two*
    storage areas, L = 2 in the sense of FOL*, §3.3) name the second
    target in ``key2``.

    The mutable tail fields are per-request execution state the
    carryover loop threads across micro-batches: how many FOL rounds
    the request has been filtered out of (``attempts``), where a BST
    descent should resume (``slot``) and which pre-built tree node the
    request owns (``node``).
    """

    rid: int
    kind: str
    key: int
    delta: int = 1
    key2: int = -1  # second target cell, "xfer" requests only
    arrival: float = 0.0
    enqueued: float = 0.0
    completed: float = 0.0
    attempts: int = 0
    slot: int = FRESH_SLOT
    node: int = NIL
    group: int = -1  # conflict group (target address) set when carried
    home: int = -1  # shard whose memory holds this lane's state (sharded engine)

    def __post_init__(self) -> None:
        from ..engine.spec import get_spec

        get_spec(self.kind).validate(self)

    @property
    def latency(self) -> float:
        """Arrival-to-completion simulated latency."""
        return self.completed - self.arrival


@dataclass
class QueueStats:
    """Counters the admission queue keeps for the metrics layer."""

    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    blocked: int = 0
    max_depth: int = 0


class BoundedQueue:
    """FIFO request queue with a hard capacity and an admission policy."""

    def __init__(self, capacity: int, admission: str = "block") -> None:
        if capacity <= 0:
            raise ReproError(f"queue capacity must be positive, got {capacity}")
        if admission not in ADMISSION_POLICIES:
            raise ReproError(
                f"unknown admission policy {admission!r}; "
                f"expected one of {ADMISSION_POLICIES}"
            )
        self.capacity = capacity
        self.admission = admission
        self.stats = QueueStats()
        self._items: Deque[Request] = deque()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        """Requests currently waiting."""
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def oldest_enqueued(self) -> Optional[float]:
        """Enqueue timestamp of the head request (None when empty)."""
        with self._lock:
            return self._items[0].enqueued if self._items else None

    # ------------------------------------------------------------------
    def offer(self, req: Request, now: float) -> bool:
        """Try to admit ``req`` at time ``now``.

        Returns True on admission.  On a full queue the request is
        either dropped (``reject``) or left with the producer
        (``block``); both return False and the caller distinguishes via
        :attr:`admission`.  Atomic under concurrent producers: the
        full-check, append and counters happen under one lock, so
        ``admitted + rejected + blocked == offered`` always holds and
        the queue never overshoots its capacity.
        """
        with self._lock:
            self.stats.offered += 1
            if len(self._items) >= self.capacity:
                if self.admission == "reject":
                    self.stats.rejected += 1
                else:
                    self.stats.blocked += 1
                return False
            req.enqueued = now
            self._items.append(req)
            self.stats.admitted += 1
            self.stats.max_depth = max(self.stats.max_depth, len(self._items))
            return True

    def take(self, n: int) -> List[Request]:
        """Dequeue up to ``n`` requests in FIFO order."""
        with self._lock:
            n = min(n, len(self._items))
            return [self._items.popleft() for _ in range(n)]
