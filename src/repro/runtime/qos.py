"""Multi-tenant QoS: tenant classes, weighted admission and fairness.

The paper's FOL micro-batching (§3–4) assumes one homogeneous request
stream.  Real traffic is many *tenants* with different key skews and
latency budgets, and a single hot tenant filling the global
:class:`~repro.runtime.queue.BoundedQueue` starves everyone behind one
reject/block policy.  This module supplies the per-tenant layer:

* :class:`TenantClass` — one tenant's traffic share, key-skew and SLO.
* :func:`parse_tenants` / :func:`parse_slo` — the CLI spec grammar
  (``A=0.7:zipf1.2,B=0.3:uniform`` and ``A=50ms,B=200ms``).
* :class:`QoSPolicy` — weighted admission parameters derived from the
  tenant classes: per-tenant queue-depth caps under backpressure and
  the weights the queue's weighted-fair dequeue uses.
* :func:`tenant_workload` — a per-tenant workload generator that draws
  each tenant's keys with its *own* skew (the hot-tenant scenario) and
  tags every request.  It is a separate generator, not a mode of
  :func:`~repro.runtime.service.open_loop_workload`, so the single
  tenant path keeps its exact RNG draw order (golden parity).
* :func:`jain_index` — Jain's fairness index over per-tenant values.

SLO units follow the clock of the layer running the queue: simulated
*cycles* in ``repro stream`` (bare numbers) and wall-clock *seconds*
in ``repro serve`` (``50ms``/``0.2s`` suffixes) — the queue itself is
unit-agnostic, exactly like its timestamps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..obs.core import jain_index, tenant_fairness, tenant_summary_cells

__all__ = [
    "TenantClass",
    "QoSPolicy",
    "parse_tenants",
    "parse_slo",
    "apply_slos",
    "jain_index",
    "tenant_summary_cells",
    "tenant_fairness",
    "tenant_workload",
]


@dataclass(frozen=True)
class TenantClass:
    """One tenant's traffic class.

    ``share`` is both the tenant's expected fraction of offered traffic
    and its weight in weighted-fair admission; ``skew`` is the Zipf
    exponent of its key draw (0 = uniform); ``slo`` is the latency
    budget measured from *enqueue* (inf = no deadline).
    """

    name: str
    share: float
    skew: float = 0.0
    slo: float = math.inf

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("tenant name must be non-empty")
        if not (self.share > 0) or not math.isfinite(self.share):
            raise ReproError(
                f"tenant {self.name!r}: share must be a positive finite "
                f"number, got {self.share}"
            )
        if self.skew < 0 or not math.isfinite(self.skew):
            raise ReproError(
                f"tenant {self.name!r}: skew must be non-negative, "
                f"got {self.skew}"
            )
        if not (self.slo > 0):
            raise ReproError(
                f"tenant {self.name!r}: SLO must be positive, got {self.slo}"
            )


def parse_tenants(text: str) -> Tuple[TenantClass, ...]:
    """Parse ``A=0.7:zipf1.2,B=0.3:uniform`` into tenant classes.

    Grammar: comma-separated ``NAME=SHARE[:DIST]`` entries where DIST is
    ``uniform`` (default) or ``zipf<EXPONENT>``.  Shares are relative
    weights (they need not sum to 1).  Raises :class:`ReproError` on any
    malformed entry — the CLI turns that into exit code 2.
    """
    tenants: List[TenantClass] = []
    seen: set = set()
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            raise ReproError(f"empty tenant entry in {text!r}")
        name, sep, spec = entry.partition("=")
        name = name.strip()
        if not sep or not name:
            raise ReproError(
                f"tenant entry {entry!r} must look like NAME=SHARE[:DIST]"
            )
        if name in seen:
            raise ReproError(f"duplicate tenant {name!r} in {text!r}")
        seen.add(name)
        share_text, _, dist = spec.partition(":")
        try:
            share = float(share_text)
        except ValueError:
            raise ReproError(
                f"tenant {name!r}: share {share_text!r} is not a number"
            ) from None
        dist = dist.strip()
        if not dist or dist == "uniform":
            skew = 0.0
        elif dist.startswith("zipf"):
            try:
                skew = float(dist[len("zipf"):])
            except ValueError:
                raise ReproError(
                    f"tenant {name!r}: distribution {dist!r} is not "
                    f"'uniform' or 'zipf<EXPONENT>'"
                ) from None
        else:
            raise ReproError(
                f"tenant {name!r}: distribution {dist!r} is not "
                f"'uniform' or 'zipf<EXPONENT>'"
            )
        tenants.append(TenantClass(name=name, share=share, skew=skew))
    if not tenants:
        raise ReproError(f"no tenants in spec {text!r}")
    return tuple(tenants)


def parse_slo(text: str, *, unit: str = "auto") -> Dict[str, float]:
    """Parse ``A=50ms,B=200ms`` into per-tenant latency budgets.

    Values take an optional unit suffix: ``ms``/``s`` convert to
    seconds (the serving layer's wall clock); a bare number is taken
    verbatim (simulated cycles in the stream runtime).  ``unit`` may
    pin the accepted form: ``"seconds"`` requires a suffix, ``"cycles"``
    forbids one, ``"auto"`` accepts both.
    """
    slos: Dict[str, float] = {}
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            raise ReproError(f"empty SLO entry in {text!r}")
        name, sep, value_text = entry.partition("=")
        name = name.strip()
        value_text = value_text.strip()
        if not sep or not name or not value_text:
            raise ReproError(
                f"SLO entry {entry!r} must look like NAME=BUDGET "
                f"(e.g. A=50ms or A=8000)"
            )
        if name in slos:
            raise ReproError(f"duplicate SLO for tenant {name!r} in {text!r}")
        scale = None
        if value_text.endswith("ms"):
            scale, digits = 1e-3, value_text[:-2]
        elif value_text.endswith("s"):
            scale, digits = 1.0, value_text[:-1]
        else:
            digits = value_text
        if unit == "seconds" and scale is None:
            raise ReproError(
                f"SLO {entry!r}: the serving layer measures wall-clock "
                f"time; give the budget a unit suffix (ms or s)"
            )
        if unit == "cycles" and scale is not None:
            raise ReproError(
                f"SLO {entry!r}: the stream runtime measures simulated "
                f"cycles; give a bare cycle count, not {value_text!r}"
            )
        try:
            value = float(digits)
        except ValueError:
            raise ReproError(
                f"SLO {entry!r}: budget {value_text!r} is not a number "
                f"(optionally suffixed ms/s)"
            ) from None
        if not (value > 0) or not math.isfinite(value):
            raise ReproError(
                f"SLO {entry!r}: budget must be positive and finite"
            )
        slos[name] = value * (scale if scale is not None else 1.0)
    if not slos:
        raise ReproError(f"no SLO entries in spec {text!r}")
    return slos


def apply_slos(
    tenants: Sequence[TenantClass], slos: Mapping[str, float]
) -> Tuple[TenantClass, ...]:
    """Merge parsed SLO budgets onto tenant classes by name."""
    names = {t.name for t in tenants}
    unknown = sorted(set(slos) - names)
    if unknown:
        raise ReproError(
            f"SLO names {unknown} do not match any tenant "
            f"(tenants: {sorted(names)})"
        )
    return tuple(
        replace(t, slo=slos[t.name]) if t.name in slos else t
        for t in tenants
    )


class QoSPolicy:
    """Weighted-admission parameters derived from the tenant classes.

    Handed to :class:`~repro.runtime.queue.BoundedQueue` it switches
    the queue from one global FIFO to per-tenant FIFOs with:

    * **depth caps under backpressure** — tenant *t* may occupy at most
      ``ceil(burst * capacity * share_t / total_share)`` slots, so a hot
      tenant's backlog is bounded (and with it that tenant's queueing
      delay) instead of filling the whole queue and starving everyone.
      ``burst < 1`` trades admission (more of the hot tenant is shed)
      for a tighter per-tenant delay bound.
    * **weighted-fair dequeue** — batches draw requests across tenants
      by smallest virtual finish time (vtime grows by ``1/weight`` per
      dequeued request), so service capacity follows the configured
      weights regardless of who shouts loudest, and is work-conserving:
      an idle tenant's share flows to the active ones.

    Requests tagged with a tenant the policy does not know fall into a
    default class weighted like the lightest configured tenant.
    """

    def __init__(
        self, tenants: Sequence[TenantClass], *, burst: float = 1.0
    ) -> None:
        if not tenants:
            raise ReproError("QoSPolicy needs at least one tenant class")
        if not (0 < burst) or not math.isfinite(burst):
            raise ReproError(f"burst factor must be positive, got {burst}")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate tenant names: {names}")
        self.tenants: Tuple[TenantClass, ...] = tuple(tenants)
        self.burst = burst
        self._by_name = {t.name: t for t in self.tenants}
        self._total = sum(t.share for t in self.tenants)
        self._default_weight = min(t.share for t in self.tenants)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.tenants)

    def weight(self, name: str) -> float:
        t = self._by_name.get(name)
        return t.share if t is not None else self._default_weight

    def slo(self, name: str) -> float:
        t = self._by_name.get(name)
        return t.slo if t is not None else math.inf

    def depth_cap(self, name: str, capacity: int) -> int:
        """Queue slots tenant ``name`` may occupy (never below 1)."""
        share = self.weight(name) / self._total
        return max(1, math.ceil(self.burst * capacity * share))

    def weights(self) -> Dict[str, float]:
        return {t.name: t.share for t in self.tenants}

    def slos(self) -> Dict[str, float]:
        return {t.name: t.slo for t in self.tenants}


# jain_index / tenant_summary_cells / tenant_fairness moved to the
# observability spine (repro.obs.core) and are re-exported above: both
# metrics facades consume them through obs, and this module stays the
# compatibility surface for QoS callers.

# ----------------------------------------------------------------------
# tenant-tagged workload generation
# ----------------------------------------------------------------------
def tenant_workload(
    rng: np.random.Generator,
    n: int,
    tenants: Sequence[TenantClass],
    *,
    kinds: Sequence[str] = ("hash",),  # no-kind-lint
    weights: Optional[Sequence[float]] = None,
    key_space: int = 4096,
    n_cells: int = 64,
    max_delta: int = 9,
    mean_gap: Optional[float] = None,
) -> List["Request"]:
    """``n`` tenant-tagged requests mixing the tenants by share.

    Each request first draws its tenant (by relative share), then its
    key with *that tenant's* skew — so one tenant can hammer a few hot
    keys while another stays uniform, the scenario QoS admission is
    for.  ``mean_gap`` switches between closed loop (None: everything
    at t=0) and open loop (exponential inter-arrival gaps).  Kind mix
    and deltas follow the single-tenant generators.
    """
    from ..engine.spec import EngineContext, get_spec

    from .service import zipf_keys

    if n <= 0:
        raise ReproError(f"request count must be positive, got {n}")
    if not tenants:
        raise ReproError("tenant_workload needs at least one tenant class")
    by_kind = {k: get_spec(k) for k in kinds}
    shares = np.asarray([t.share for t in tenants], dtype=np.float64)
    tenant_idx = rng.choice(len(tenants), size=n, p=shares / shares.sum())
    keys = np.zeros(n, dtype=np.int64)
    keys2 = np.zeros(n, dtype=np.int64)
    # Per-tenant key draws in registration order keep the stream
    # deterministic for a fixed seed regardless of interleaving.
    for ti, tenant in enumerate(tenants):
        mask = tenant_idx == ti
        m = int(mask.sum())
        if m:
            keys[mask] = zipf_keys(rng, m, tenant.skew, key_space)
            keys2[mask] = zipf_keys(rng, m, tenant.skew, key_space)
    if weights is None:
        kind_choices = rng.integers(0, len(kinds), size=n)
    else:
        if len(weights) != len(kinds):
            raise ReproError(f"{len(weights)} mix weights for {len(kinds)} kinds")
        p = np.asarray(weights, dtype=np.float64)
        if p.size == 0 or (p < 0).any() or p.sum() <= 0:
            raise ReproError("mix weights must be non-negative, sum > 0")
        kind_choices = rng.choice(len(kinds), size=n, p=p / p.sum())
    deltas = rng.integers(1, max_delta + 1, size=n)
    if mean_gap is None:
        arrivals = np.zeros(n)
    else:
        if mean_gap < 0:
            raise ReproError(f"mean gap must be non-negative, got {mean_gap}")
        arrivals = np.cumsum(rng.exponential(mean_gap, size=n))
    ctx = EngineContext(n_cells=n_cells, key_space=key_space)
    out: List["Request"] = []
    for idx in range(n):
        tenant = tenants[tenant_idx[idx]]
        req = by_kind[kinds[kind_choices[idx]]].make_request(
            idx,
            int(keys[idx]),
            int(keys2[idx]),
            int(deltas[idx]),
            float(arrivals[idx]),
            ctx,
        )
        req.tenant = tenant.name
        req.slo = tenant.slo
        out.append(req)
    return out
