"""repro.runtime — streaming micro-batch execution of FOL workloads.

The paper vectorizes a *fixed* index vector; this package turns the
same kernels into a continuously running service: requests stream into
a bounded admission queue (:mod:`~repro.runtime.queue`), a pluggable
policy slices them into micro-batches (:mod:`~repro.runtime.batcher`),
each batch runs through FOL against shared hash/tree/list state
(:mod:`~repro.runtime.executor`), and — instead of retrying filtered
lanes in-batch — overwritten lanes recirculate into the next batch
(:mod:`~repro.runtime.carryover`).  Every batch is metered
(:mod:`~repro.runtime.metrics`) in simulated cycles.

Quickstart
----------
>>> import numpy as np
>>> from repro.runtime import StreamService, AdaptiveBatcher, open_loop_workload
>>> rng = np.random.default_rng(0)
>>> reqs = open_loop_workload(rng, 2000, kinds=("hash",), skew=1.1)
>>> svc = StreamService.for_workload(reqs, batcher=AdaptiveBatcher())
>>> m = svc.run(reqs)
>>> print(m.summary_table())          # doctest: +SKIP
"""

from .batcher import (
    BATCH_POLICIES,
    AdaptiveBatcher,
    BatchPolicy,
    DeadlineBatcher,
    FixedBatcher,
    make_batcher,
)
from .carryover import CarryoverBuffer, fol_round, tuple_round
from .executor import BatchResult, StreamExecutor
from .metrics import BatchRecord, StreamMetrics
from .qos import (
    QoSPolicy,
    TenantClass,
    apply_slos,
    jain_index,
    parse_slo,
    parse_tenants,
    tenant_workload,
)
from .queue import (
    ADMISSION_POLICIES,
    BoundedQueue,
    QueueStats,
    Request,
)
from .service import (
    StreamService,
    closed_loop_workload,
    open_loop_workload,
    requests_from_keys,
    zipf_keys,
)


def __getattr__(name: str):
    # Served live from the workload registry (see repro.runtime.queue).
    if name == "REQUEST_KINDS":
        from ..engine.spec import registered_kinds

        return registered_kinds()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    # queue
    "ADMISSION_POLICIES",
    "REQUEST_KINDS",
    "BoundedQueue",
    "QueueStats",
    "Request",
    # batcher
    "BATCH_POLICIES",
    "BatchPolicy",
    "FixedBatcher",
    "DeadlineBatcher",
    "AdaptiveBatcher",
    "make_batcher",
    # carryover
    "CarryoverBuffer",
    "fol_round",
    "tuple_round",
    # executor
    "BatchResult",
    "StreamExecutor",
    # metrics
    "BatchRecord",
    "StreamMetrics",
    # qos
    "QoSPolicy",
    "TenantClass",
    "apply_slos",
    "jain_index",
    "parse_slo",
    "parse_tenants",
    "tenant_workload",
    # service
    "StreamService",
    "open_loop_workload",
    "closed_loop_workload",
    "requests_from_keys",
    "zipf_keys",
]
