"""Region allocation and typed record arenas over simulated memory.

The paper's symbolic structures (hash chains, cons cells, tree nodes) are
records linked by pointers.  Here a *pointer* is a word address into one
:class:`~repro.machine.memory.Memory`; a :class:`RecordArena` carves a
region of memory into fixed-size records and hands out addresses.

Address ``0`` is reserved as :data:`NIL` (the null pointer): the
:class:`BumpAllocator` never allocates word 0, so ``ptr == NIL`` is an
unambiguous emptiness test and a stray gather through NIL still lands
inside memory (reading the reserved word) rather than faulting — the
same forgivingness real machines had, which the *phantom node* checks in
:mod:`repro.trees.rewrite` deliberately tighten.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..errors import AllocationError
from ..machine.memory import Memory

#: The null pointer. Word 0 of every memory is reserved for it.
NIL = 0


class BumpAllocator:
    """Carves non-overlapping regions out of one :class:`Memory`.

    Bookkeeping is free (it models the *static* layout a Fortran program
    fixes at compile time), so no cycles are charged here.
    """

    def __init__(self, memory: Memory) -> None:
        self.memory = memory
        self._next = 1  # word 0 is NIL
        self.regions: Dict[str, Tuple[int, int]] = {}

    def alloc(self, n: int, name: str) -> int:
        """Reserve ``n`` words; returns the base address."""
        if n < 0:
            raise AllocationError(f"negative region size {n}")
        if name in self.regions:
            raise AllocationError(f"region name {name!r} already allocated")
        base = self._next
        if base + n > self.memory.size:
            raise AllocationError(
                f"out of memory: need {n} words at {base}, size {self.memory.size}"
            )
        self._next = base + n
        self.regions[name] = (base, n)
        return base

    @property
    def used(self) -> int:
        """Words allocated so far (including the NIL word)."""
        return self._next

    @property
    def free(self) -> int:
        """Words still available."""
        return self.memory.size - self._next


class RecordArena:
    """Fixed-size-record arena: the heap for one node type.

    Parameters
    ----------
    allocator:
        Where to carve the backing region from.
    fields:
        Field names, one word each, in layout order.
    capacity:
        Maximum number of records.
    name:
        Region name for diagnostics.

    Allocation is a bump pointer.  ``alloc_many`` returns a contiguous
    block of record addresses, which is how the vectorized algorithms
    allocate a node per key in one step (a single vector-length
    address-generation instruction, charged by the caller through the
    :class:`~repro.machine.vm.VectorMachine` it uses to build the iota).
    """

    def __init__(
        self,
        allocator: BumpAllocator,
        fields: Sequence[str],
        capacity: int,
        name: str = "arena",
    ) -> None:
        if not fields:
            raise AllocationError("record must have at least one field")
        if capacity <= 0:
            raise AllocationError(f"capacity must be positive, got {capacity}")
        self.memory: Memory = allocator.memory
        self.fields = tuple(fields)
        self.record_size = len(self.fields)
        self.capacity = capacity
        self.name = name
        self._offsets = {f: i for i, f in enumerate(self.fields)}
        self.base = allocator.alloc(capacity * self.record_size, name)
        self._next = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    @property
    def allocated(self) -> int:
        """Number of records handed out so far."""
        return self._next

    @property
    def remaining(self) -> int:
        """Records still available."""
        return self.capacity - self._next

    def alloc_one(self) -> int:
        """Allocate one record; returns its address (pointer)."""
        if self._next >= self.capacity:
            raise AllocationError(f"arena {self.name!r} exhausted ({self.capacity})")
        ptr = self.base + self._next * self.record_size
        self._next += 1
        return ptr

    def alloc_many(self, n: int) -> np.ndarray:
        """Allocate ``n`` records; returns a vector of addresses."""
        if n < 0:
            raise AllocationError(f"negative allocation count {n}")
        if self._next + n > self.capacity:
            raise AllocationError(
                f"arena {self.name!r} exhausted: want {n}, have {self.remaining}"
            )
        start = self.base + self._next * self.record_size
        self._next += n
        return np.arange(
            start, start + n * self.record_size, self.record_size, dtype=np.int64
        )

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def offset(self, field: str) -> int:
        """Word offset of ``field`` within a record."""
        try:
            return self._offsets[field]
        except KeyError:
            raise AllocationError(
                f"unknown field {field!r}; arena {self.name!r} has {self.fields}"
            ) from None

    def field_addr(self, ptr: int, field: str) -> int:
        """Address of ``ptr->field`` (pure address arithmetic; callers
        running on the scalar unit charge one ALU op themselves)."""
        return int(ptr) + self.offset(field)

    def field_addrs(self, ptrs: np.ndarray, field: str) -> np.ndarray:
        """Vector of addresses of ``ptrs[i]->field``.  Pure address
        arithmetic; vector callers charge it as one ALU instruction via
        their :class:`VectorMachine` (see ``vm.add``)."""
        return np.asarray(ptrs, dtype=np.int64) + self.offset(field)

    def contains(self, ptr: int) -> bool:
        """True if ``ptr`` is the address of an allocated record."""
        off = int(ptr) - self.base
        return (
            0 <= off < self._next * self.record_size and off % self.record_size == 0
        )

    # ------------------------------------------------------------------
    # debug access (never charged)
    # ------------------------------------------------------------------
    def peek_field(self, ptr: int, field: str) -> int:
        """Debug read of ``ptr->field`` without charging cycles."""
        return self.memory.peek(self.field_addr(ptr, field))

    def poke_field(self, ptr: int, field: str, value: int) -> None:
        """Debug write of ``ptr->field`` without charging cycles."""
        self.memory.poke(self.field_addr(ptr, field), value)

    def all_records(self) -> np.ndarray:
        """Addresses of every allocated record (debug/verification)."""
        return np.arange(
            self.base,
            self.base + self._next * self.record_size,
            self.record_size,
            dtype=np.int64,
        )
