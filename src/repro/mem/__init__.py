"""Heap layer: region allocation and typed record arenas."""

from .arena import NIL, BumpAllocator, RecordArena

__all__ = ["NIL", "BumpAllocator", "RecordArena"]
