"""Parallel rewriting of lists with shared elements — Figure 3a.

The workload: M list heads, where lists may share suffix cells, and a
destructive elementwise update (here: add a delta to every atom).  Two
semantic variants, both impossible for plain SIVP when cells are shared:

* :func:`vector_map_add_per_reference` — the update applies **once per
  list that reaches the cell** (a shared cell referenced by 3 lists is
  incremented 3 times), i.e. "possibly rewriting the same data item
  multiple times".  The lists advance in lock-step; at every step the
  current-cell index vector may contain duplicates, so FOL1 decomposes
  it and the sets are updated sequentially — each duplicate lands in a
  different set, so each reference contributes exactly one update.
* :func:`vector_map_add_per_cell` — the update applies **once per
  distinct cell** (pure in-place map over the union of the lists).
  Only FOL's *first* set is updated — S₁ contains every distinct
  address exactly once (Lemma 3) — the same S₁-only specialisation the
  paper credits to vectorized GC and maze routing (§5).

Both return the number of lock-step waves for instrumentation, and both
have sequential baselines charged on the scalar unit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.fol1 import fol1
from ..machine.scalar import ScalarProcessor
from ..machine.vm import VectorMachine
from ..mem.arena import NIL
from .cells import ConsArena


def scalar_map_add_per_reference(
    sp: ScalarProcessor,
    arena: ConsArena,
    heads: Sequence[int],
    delta: int,
) -> None:
    """Baseline: walk each list in turn, adding ``delta`` (encoded
    atoms are negative, so adding to the value means subtracting from
    the encoding) once per visit."""
    off_car = arena.cells.offset("car")
    off_cdr = arena.cells.offset("cdr")
    for head in heads:
        ptr = int(head)
        while ptr != NIL:
            sp.branch()
            word = sp.load(ptr + off_car)
            sp.store(ptr + off_car, word - delta)  # atom encoding is negated
            sp.alu()
            ptr = sp.load(ptr + off_cdr)
            sp.loop_iter()
        sp.branch()


def vector_map_add_per_reference(
    vm: VectorMachine,
    arena: ConsArena,
    heads: Sequence[int],
    delta: int,
    policy: str = "arbitrary",
) -> int:
    """All lists advance together; shared cells are updated once per
    referencing list, serialised by FOL1.  Returns the wave count."""
    off_car = arena.cells.offset("car")
    off_cdr = arena.cells.offset("cdr")
    ptrs = np.asarray(list(heads), dtype=np.int64)
    waves = 0
    while True:
        live = vm.ne(ptrs, NIL)
        if not vm.any_true(live):
            return waves
        waves += 1
        cur = vm.compress(ptrs, live)
        car_addrs = vm.add(cur, off_car)

        def bump(positions: np.ndarray, _round: int) -> None:
            addrs = car_addrs[positions]
            words = vm.gather(addrs)
            vm.scatter(addrs, vm.sub(words, delta), policy=policy)

        # The car word itself is the work area: FOL labels scribble on
        # it, but every labelled word belongs to some set and is then
        # rewritten by that set's gather-modify-scatter... except the
        # gather would read a label, so labels must NOT share the car
        # word here (read-modify-write main processing *reads* the old
        # value).  A shadow work area is required, as §3.2's sharing
        # condition ("main processing always rewrites the work area")
        # fails for read-modify-write.  We reuse the cdr word? No — it
        # is live too.  Hence the dedicated work region below.
        fol1(
            vm,
            car_addrs,
            work_offset=arena.work_offset,
            policy=policy,
            on_set=bump,
        )

        nxt = vm.gather(vm.add(cur, off_cdr))
        ptrs = vm.select(live, _expand(ptrs, live, nxt), ptrs)
        vm.loop_overhead()


def _expand(ptrs: np.ndarray, live: np.ndarray, packed: np.ndarray) -> np.ndarray:
    """Scatter ``packed`` (values for the true lanes of ``live``) back
    into a copy of ``ptrs`` — the inverse of compress (no cycle charge:
    callers account for it via the surrounding select)."""
    out = ptrs.copy()
    out[live] = packed
    return out


def scalar_map_add_per_cell(
    sp: ScalarProcessor,
    arena: ConsArena,
    heads: Sequence[int],
    delta: int,
) -> None:
    """Baseline for once-per-distinct-cell semantics: walk every list,
    tracking visited cells (modelled as a bitmap load/store per cell)."""
    off_car = arena.cells.offset("car")
    off_cdr = arena.cells.offset("cdr")
    visited: set[int] = set()
    for head in heads:
        ptr = int(head)
        while ptr != NIL:
            sp.branch()
            sp.load(ptr + off_car)  # bitmap probe stand-in
            if ptr not in visited:
                visited.add(ptr)
                word = sp.load(ptr + off_car)
                sp.store(ptr + off_car, word - delta)
                sp.alu()
            ptr = sp.load(ptr + off_cdr)
            sp.loop_iter()
        sp.branch()


def vector_map_add_per_cell(
    vm: VectorMachine,
    arena: ConsArena,
    heads: Sequence[int],
    delta: int,
    policy: str = "arbitrary",
) -> int:
    """Once-per-distinct-cell map: per wave, FOL's S₁ is exactly one
    occurrence of each distinct current cell, so updating S₁ *only*
    implements set semantics — but a cell shared between lists is
    visited again on *later* waves when another list arrives later, so
    a visited mark (stored in the cell's shadow work word between
    waves) suppresses re-updates.  Returns the wave count."""
    off_car = arena.cells.offset("car")
    off_cdr = arena.cells.offset("cdr")
    mark_offset = arena.mark_offset
    ptrs = np.asarray(list(heads), dtype=np.int64)
    waves = 0
    while True:
        live = vm.ne(ptrs, NIL)
        if not vm.any_true(live):
            return waves
        waves += 1
        cur = vm.compress(ptrs, live)

        # Skip cells already updated in an earlier wave.
        marks = vm.gather(vm.add(cur, mark_offset))
        fresh_mask = vm.eq(marks, 0)
        fresh = vm.compress(cur, fresh_mask)
        if fresh.size:
            car_addrs = vm.add(fresh, off_car)
            dec = fol1(
                vm,
                car_addrs,
                work_offset=arena.work_offset,
                policy=policy,
                stop_after=1,
            )
            s1 = dec.sets[0]
            addrs = car_addrs[s1]
            words = vm.gather(addrs)
            vm.scatter(addrs, vm.sub(words, delta), policy=policy)
            vm.scatter(vm.add(fresh, mark_offset), vm.splat(fresh.size, 1), policy=policy)

        nxt = vm.gather(vm.add(cur, off_cdr))
        ptrs = vm.select(live, _expand(ptrs, live, nxt), ptrs)
        vm.loop_overhead()
