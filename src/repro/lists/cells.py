"""Cons cells: linked lists with shared tails (Figure 3a's structures).

A cell is a ``(car, cdr)`` record.  ``car`` holds either an **atom**
(encoded integer) or a pointer to another cell; ``cdr`` holds a pointer
or :data:`~repro.mem.arena.NIL`.  Atoms are encoded as ``-(value + 1)``
so every atom is negative and every pointer positive — the tag bit of a
1991 Lisp heap, flattened into the sign.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..errors import ReproError
from ..mem.arena import NIL, BumpAllocator, RecordArena

CELL_FIELDS = ("car", "cdr")


def encode_atom(value: int) -> int:
    """Encode an integer atom (sign-tagged, always negative)."""
    if value < 0:
        raise ReproError(f"atoms must be non-negative, got {value}")
    return -(int(value) + 1)


def decode_atom(word: int) -> int:
    """Decode a sign-tagged atom."""
    if word >= 0:
        raise ReproError(f"word {word} is a pointer, not an atom")
    return -int(word) - 1


def is_atom(word: int) -> bool:
    """True for atom encodings (negative words)."""
    return word < 0


class ConsArena:
    """Cons-cell heap with list construction and inspection helpers."""

    def __init__(self, allocator: BumpAllocator, capacity: int, name: str = "cons") -> None:
        self.cells = RecordArena(allocator, CELL_FIELDS, capacity, name=name)
        self.memory = allocator.memory
        # Shadow regions (one word per cell word, constant offset from
        # the cell): FOL label work area, and a visited-mark word used
        # by the once-per-distinct-cell map.  Read-modify-write main
        # processing *reads* the old car, so §3.2's share-the-storage
        # trick does not apply and a real work area is needed.
        self._work_base = allocator.alloc(
            capacity * self.cells.record_size, f"{name}.fol_work"
        )
        self._mark_base = allocator.alloc(
            capacity * self.cells.record_size, f"{name}.marks"
        )

    @property
    def work_offset(self) -> int:
        """Additive offset from a cell address to its FOL work word."""
        return self._work_base - self.cells.base

    @property
    def mark_offset(self) -> int:
        """Additive offset from a cell address to its visited-mark word."""
        return self._mark_base - self.cells.base

    def clear_marks(self) -> None:
        """Reset all visited marks (uncharged test helper)."""
        n = self.cells.capacity * self.cells.record_size
        self.memory.words[self._mark_base : self._mark_base + n] = 0

    # -- construction (uncharged; workload setup) ------------------------
    def cons(self, car: int, cdr: int) -> int:
        ptr = self.cells.alloc_one()
        self.cells.poke_field(ptr, "car", int(car))
        self.cells.poke_field(ptr, "cdr", int(cdr))
        return ptr

    def from_values(self, values: Iterable[int], tail: int = NIL) -> int:
        """Build a list of atoms ending at ``tail`` (which may be a
        shared suffix of another list)."""
        head = tail
        for v in reversed(list(values)):
            head = self.cons(encode_atom(v), head)
        return head

    # -- inspection (uncharged) -------------------------------------------
    def to_values(self, head: int, max_len: Optional[int] = None) -> List[int]:
        """Atom values of a list (raises on cycles via the length cap)."""
        limit = max_len if max_len is not None else self.cells.allocated + 1
        out: List[int] = []
        ptr = int(head)
        while ptr != NIL:
            if len(out) >= limit:
                raise ReproError("list longer than heap — cycle?")
            word = self.cells.peek_field(ptr, "car")
            if not is_atom(word):
                raise ReproError(f"cell {ptr} car is not an atom")
            out.append(decode_atom(word))
            ptr = self.cells.peek_field(ptr, "cdr")
        return out

    def cell_addresses(self, head: int) -> List[int]:
        """Addresses of each cell along a list (uncharged walk)."""
        out: List[int] = []
        ptr = int(head)
        while ptr != NIL:
            if len(out) > self.cells.allocated:
                raise ReproError("list longer than heap — cycle?")
            out.append(ptr)
            ptr = self.cells.peek_field(ptr, "cdr")
        return out

    def length(self, head: int) -> int:
        """List length (uncharged)."""
        return len(self.cell_addresses(head))

    def shared_suffix_start(self, head_a: int, head_b: int) -> int:
        """First cell shared by two lists, or NIL (uncharged; used by
        tests to build Figure 3a scenarios deliberately)."""
        cells_a = set(self.cell_addresses(head_a))
        for ptr in self.cell_addresses(head_b):
            if ptr in cells_a:
                return ptr
        return NIL
