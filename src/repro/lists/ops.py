"""Vector list operations built on list ranking.

Bulk operations over many linked lists at once, each a constant or
logarithmic number of vector rounds:

* :func:`vector_list_lengths` — lengths of many lists from one global
  ranking pass (shared suffixes fine).
* :func:`vector_list_to_arrays` — serialise lists into contiguous
  memory, positions computed from ranks (one scatter, no walking).
* :func:`vector_reverse_lists` — destructive in-place reversal of many
  lists at once: one scatter builds the predecessor map, one scatter
  flips every ``cdr``; the new heads (old tails) come from a pointer
  chase.  Reversal rewrites shared cells ambiguously, so sharing is
  *detected* with an overwrite-and-check round (FOL as an assertion
  mechanism) and rejected.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import ReproError
from ..machine.vm import VectorMachine
from ..mem.arena import NIL, BumpAllocator
from .cells import ConsArena
from .ranking import RankingScratch, chase_to_tail, list_ranks, record_index


def vector_list_lengths(
    vm: VectorMachine,
    arena: ConsArena,
    scratch: RankingScratch,
    heads: Sequence[int],
) -> np.ndarray:
    """Lengths of the lists at ``heads`` (NIL heads have length 0).
    One global ranking pass; shared suffixes are fine."""
    heads_arr = np.asarray(list(heads), dtype=np.int64)
    if heads_arr.size == 0:
        return heads_arr
    _, ranks = list_ranks(vm, scratch, "cdr")
    idx = record_index(vm, arena.cells,
                       vm.select(vm.ne(heads_arr, NIL), heads_arr, arena.cells.base))
    # length = distance-to-tail + 1 for non-NIL heads
    head_ranks = ranks[idx]
    vm.counter.charge_vector(
        vm.cost.vector_cost(heads_arr.size, vm.cost.chime_gather),
        heads_arr.size, "v_gather",
    )
    return np.where(heads_arr != NIL, head_ranks + 1, 0).astype(np.int64)


def vector_list_to_arrays(
    vm: VectorMachine,
    arena: ConsArena,
    scratch: RankingScratch,
    head: int,
    out_base: int,
) -> int:
    """Serialise the (unshared) list at ``head`` into contiguous memory
    at ``out_base``: position of each cell = rank(head) − rank(cell),
    written with one scatter of the car words.  Returns the length.

    Precondition: ``head``'s cells are not shared with other structures
    in the arena (their ranks must be a contiguous run ending at the
    tail); violated preconditions surface as a length/position check.
    """
    if head == NIL:
        return 0
    nodes, ranks = list_ranks(vm, scratch, "cdr")
    idx_head = (head - arena.cells.base) // arena.cells.record_size
    head_rank = int(ranks[idx_head])
    length = head_rank + 1

    # membership: exactly the cells whose tail equals head's tail and
    # whose rank <= head's rank... for the unshared single-list case a
    # cheaper filter suffices: cells on the path have ranks head_rank,
    # head_rank-1, ..., 0 and are found by chasing is avoided — instead
    # scatter *all* cells and let positions outside [0, length) be
    # masked off; stray same-rank cells from other chains would collide,
    # which the occupancy check below catches.
    pos = vm.sub(vm.splat(nodes.size, head_rank), ranks)
    in_range = vm.mask_and(vm.ge(pos, 0), vm.lt(pos, length))
    cars = vm.gather(vm.add(nodes, arena.cells.offset("car")))
    # overwrite-and-check occupancy: each position must be claimed once
    labels = vm.iota(nodes.size)
    vm.scatter_masked(vm.add(pos, out_base), labels, in_range)
    readback = vm.gather(vm.add(vm.select(in_range, pos, 0), out_base))
    winners = vm.mask_and(in_range, vm.eq(readback, labels))
    lost = vm.mask_and(in_range, vm.mask_not(winners))
    if vm.any_true(lost) or vm.count_true(winners) != length:
        raise ReproError(
            "list positions collide with another chain in the arena — "
            "serialisation would be ambiguous"
        )
    vm.scatter_masked(vm.add(pos, out_base), cars, winners)
    return length


def vector_reverse_lists(
    vm: VectorMachine,
    arena: ConsArena,
    scratch: RankingScratch,
    heads: Sequence[int],
) -> List[int]:
    """Destructively reverse every list in ``heads`` in parallel;
    returns the new head pointers (the old tails).

    Sharing between the lists would make a cell's predecessor ambiguous;
    it is detected by an overwrite-and-check round on the predecessor
    map and rejected with :class:`ReproError`.
    """
    heads_arr = np.asarray(list(heads), dtype=np.int64)
    live_heads = heads_arr[heads_arr != NIL]
    if live_heads.size == 0:
        return heads_arr.tolist()
    cells = arena.cells
    off_cdr = cells.offset("cdr")
    nodes = cells.all_records()
    idx = record_index(vm, cells, nodes)

    # find the tails first (they become the new heads)
    new_heads = chase_to_tail(vm, cells, "cdr", heads_arr, cells.allocated)

    # predecessor map via one scatter through the cdr links, with an
    # overwrite-and-check round detecting shared cells (two writers)
    vm.mem.fill(scratch.succ_base, cells.capacity, NIL)
    cdr = vm.gather(vm.add(nodes, off_cdr))
    has_succ = vm.ne(cdr, NIL)
    succ_idx = record_index(vm, cells, vm.select(has_succ, cdr, cells.base))
    labels = vm.iota(nodes.size)
    vm.scatter_masked(vm.add(succ_idx, scratch.rank_base), labels, has_succ)
    readback = vm.gather(vm.add(succ_idx, scratch.rank_base))
    lost = vm.mask_and(has_succ, vm.ne(readback, labels))
    if vm.any_true(lost):
        raise ReproError("lists share cells — reversal would be ambiguous")
    vm.scatter_masked(vm.add(succ_idx, scratch.succ_base), nodes, has_succ)

    # flip every cdr to its predecessor (old heads get NIL — they have
    # no predecessor, and the fill above left their map entries NIL)
    preds = vm.gather(vm.add(idx, scratch.succ_base))
    vm.scatter(vm.add(nodes, off_cdr), preds, policy="arbitrary")

    return [int(h) for h in new_heads]
