"""Parallel list ranking by pointer jumping — the workhorse primitive
for turning linked structures into arrays on a vector machine.

``list_ranks`` computes, for *every* allocated record of an arena, its
distance (number of ``next`` hops) to the end of its chain, in O(log n)
vector rounds: each round every lane adds its successor's rank to its
own and jumps to its successor's successor.  It is correct for any
forest of in-trees over the records (shared tails are fine — sharing
only merges chains toward a common tail), and detects cycles by
non-convergence.

This is the classic PRAM technique of the era; the paper's §5 citations
(vectorized GC, maze routing) live in the same toolbox.  Here it backs
:mod:`repro.trees.rebalance` (vine → array) and the vector list
operations in :mod:`repro.lists.ops`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ReproError
from ..machine.vm import VectorMachine
from ..mem.arena import NIL, BumpAllocator, RecordArena


class RankingScratch:
    """Rank + successor scratch regions for one arena (one word per
    record each)."""

    def __init__(self, allocator: BumpAllocator, arena: RecordArena,
                 name: str = "rank") -> None:
        self.arena = arena
        cap = arena.capacity
        self.rank_base = allocator.alloc(cap, f"{name}.rank")
        self.succ_base = allocator.alloc(cap, f"{name}.succ")

    @classmethod
    def from_bases(cls, arena: RecordArena, rank_base: int,
                   succ_base: int) -> "RankingScratch":
        """Wrap pre-allocated regions (each ≥ arena.capacity words)."""
        scratch = cls.__new__(cls)
        scratch.arena = arena
        scratch.rank_base = rank_base
        scratch.succ_base = succ_base
        return scratch


def record_index(vm: VectorMachine, arena: RecordArena, ptrs: np.ndarray) -> np.ndarray:
    """Record numbers of node pointers (pure vector arithmetic)."""
    return vm.floordiv(vm.sub(ptrs, arena.base), arena.record_size)


def list_ranks(
    vm: VectorMachine,
    scratch: RankingScratch,
    next_field: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Distance-to-tail of every allocated record along ``next_field``
    chains.  Returns ``(nodes, ranks)`` where ``nodes`` are the record
    addresses and ``ranks[i]`` is node i's hop count to its chain tail.

    Raises :class:`ReproError` if the chains do not converge (a cycle).
    """
    arena = scratch.arena
    nodes = arena.all_records()
    n = nodes.size
    if n == 0:
        return nodes, np.zeros(0, dtype=np.int64)
    off_next = arena.offset(next_field)
    idx = record_index(vm, arena, nodes)

    succ = vm.gather(vm.add(nodes, off_next))
    rank = vm.select(vm.ne(succ, NIL), 1, 0)
    vm.scatter(vm.add(idx, scratch.succ_base), succ, policy="arbitrary")
    vm.scatter(vm.add(idx, scratch.rank_base), rank, policy="arbitrary")

    for _ in range(n.bit_length() + 2):
        succ = vm.gather(vm.add(idx, scratch.succ_base))
        live = vm.ne(succ, NIL)
        if not vm.any_true(live):
            ranks = vm.gather(vm.add(idx, scratch.rank_base))
            return nodes, ranks
        sidx = record_index(vm, arena, vm.select(live, succ, arena.base))
        add_rank = vm.gather(vm.add(sidx, scratch.rank_base))
        cur_rank = vm.gather(vm.add(idx, scratch.rank_base))
        vm.scatter(
            vm.add(idx, scratch.rank_base),
            vm.add(cur_rank, vm.select(live, add_rank, 0)),
            policy="arbitrary",
        )
        succ2 = vm.gather(vm.add(sidx, scratch.succ_base))
        vm.scatter_masked(vm.add(idx, scratch.succ_base), succ2, live,
                          policy="arbitrary")
        vm.loop_overhead()

    raise ReproError("list ranking did not converge — cycle in chains?")


def chase_to_tail(
    vm: VectorMachine,
    arena: RecordArena,
    next_field: str,
    heads: np.ndarray,
    max_hops: int,
) -> np.ndarray:
    """Pointer-jump each head to the tail of its chain (the last record
    before NIL).  NIL heads stay NIL.  O(max chain length) gathers over
    the heads vector only — used when just a few chains need resolving."""
    off_next = arena.offset(next_field)
    cur = np.asarray(heads, dtype=np.int64)
    for _ in range(max_hops + 1):
        live = vm.ne(cur, NIL)
        nxt = vm.gather(vm.add(vm.select(live, cur, arena.base), off_next))
        step = vm.mask_and(live, vm.ne(nxt, NIL))
        if not vm.any_true(step):
            return cur
        cur = vm.select(step, nxt, cur)
        vm.loop_overhead()
    raise ReproError("tail chase did not converge — cycle in chains?")
