"""Linked lists with shared tails (Figure 3a) and their parallel
rewriting via FOL."""

from .cells import ConsArena, decode_atom, encode_atom, is_atom
from .ops import vector_list_lengths, vector_list_to_arrays, vector_reverse_lists
from .ranking import RankingScratch, chase_to_tail, list_ranks, record_index
from .rewrite import (
    scalar_map_add_per_cell,
    scalar_map_add_per_reference,
    vector_map_add_per_cell,
    vector_map_add_per_reference,
)

__all__ = [
    "ConsArena",
    "RankingScratch",
    "list_ranks",
    "chase_to_tail",
    "record_index",
    "vector_list_lengths",
    "vector_list_to_arrays",
    "vector_reverse_lists",
    "encode_atom",
    "decode_atom",
    "is_atom",
    "scalar_map_add_per_reference",
    "vector_map_add_per_reference",
    "scalar_map_add_per_cell",
    "vector_map_add_per_cell",
]
