"""Vectorized connected components / spanning forest — the paper's §6
future work ("apply FOL to various symbolic algorithms including tree
rebalancing and graph rewriting") made concrete.

The structure-rewriting step of component merging is a *shared-data
update*: many edges may try to re-parent the same root in one wave, so
the update is exactly the problem FOL solves.  Per wave:

1. **Find** — every edge endpoint chases parent pointers to its root by
   repeated gathers (all lanes jump together; path-halving keeps the
   chains short).
2. **Filter** — edges whose endpoints share a root are dropped (their
   lanes carry no work).
3. **Merge** — each surviving edge wants ``parent[max_root] :=
   min_root``.  Duplicate max-roots collide; one FOL overwrite-and-check
   round (S₁ only) elects a winner per root, the winners scatter their
   merges, and the losers simply retry next wave against the updated
   forest — the same losers-reread pattern as the §5 GC.

The min/max orientation makes every merge strictly decrease the loser
root's id, so the parent forest stays acyclic without ranks.  The
elected edges form a spanning forest (returned for verification against
``networkx``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ReproError
from ..machine.scalar import ScalarProcessor
from ..machine.vm import VectorMachine
from ..mem.arena import BumpAllocator


class ParentForest:
    """Union-find parent array in simulated memory (one word per node),
    plus a shadow work region for FOL label traffic."""

    def __init__(self, allocator: BumpAllocator, n_nodes: int, name: str = "forest") -> None:
        if n_nodes <= 0:
            raise ReproError(f"need at least one node, got {n_nodes}")
        self.n = int(n_nodes)
        self.base = allocator.alloc(self.n, f"{name}.parent")
        self.work_base = allocator.alloc(self.n, f"{name}.work")
        self.memory = allocator.memory
        self.memory.words[self.base : self.base + self.n] = np.arange(
            self.n, dtype=np.int64
        )

    @property
    def work_offset(self) -> int:
        """Additive offset from a parent word to its FOL work word."""
        return self.work_base - self.base

    # -- verification helpers (uncharged) --------------------------------
    def roots(self) -> np.ndarray:
        """Fully-resolved root of every node (uncharged)."""
        parent = self.memory.peek_range(self.base, self.n)
        out = np.arange(self.n, dtype=np.int64)
        for _ in range(self.n + 1):
            nxt = parent[out]
            if np.array_equal(nxt, out):
                return out
            out = nxt
        raise ReproError("parent forest contains a cycle")

    def component_count(self) -> int:
        """Number of connected components (uncharged)."""
        return int(np.unique(self.roots()).size)


def _check_edges(u: np.ndarray, v: np.ndarray, n: int) -> Tuple[np.ndarray, np.ndarray]:
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if u.shape != v.shape or u.ndim != 1:
        raise ReproError("edge endpoint arrays must be equal-length 1-D")
    if u.size and (min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= n):
        raise ReproError(f"edge endpoints must lie in [0, {n})")
    return u, v


def vector_components(
    vm: VectorMachine,
    forest: ParentForest,
    u: np.ndarray,
    v: np.ndarray,
    policy: str = "arbitrary",
    max_waves: Optional[int] = None,
) -> np.ndarray:
    """Union all edges ``(u[i], v[i])`` into ``forest`` by vector
    operations.  Returns the index vector of the edges elected into the
    spanning forest (a subset of ``range(len(u))``)."""
    u, v = _check_edges(u, v, forest.n)
    if u.size == 0:
        return np.zeros(0, dtype=np.int64)
    base = forest.base
    positions = vm.iota(u.size)
    ru, rv = u.copy(), v.copy()
    forest_edges = []

    waves = 0
    limit = max_waves if max_waves is not None else forest.n + u.size + 4
    while positions.size:
        waves += 1
        if waves > limit:
            raise ReproError(f"component merging exceeded {limit} waves")

        # 1. find roots of both endpoints by lock-step pointer jumping
        # (with path halving: grandparent writes shorten future chains)
        ru = _vector_find_roots(vm, base, ru, forest.n)
        rv = _vector_find_roots(vm, base, rv, forest.n)

        # 2. drop internal edges (same root)
        differs = vm.ne(ru, rv)
        if not vm.any_true(differs):
            break
        positions = vm.compress(positions, differs)
        ru = vm.compress(ru, differs)
        rv = vm.compress(rv, differs)

        # orient: big root adopts small root as parent
        hi = vm.select(vm.gt(ru, rv), ru, rv)
        lo = vm.select(vm.gt(ru, rv), rv, ru)

        # 3. FOL election: one merge per distinct hi-root this wave
        target_addrs = vm.add(hi, base)
        labels = positions
        vm.scatter(vm.add(target_addrs, forest.work_offset), labels, policy=policy)
        readback = vm.gather(vm.add(target_addrs, forest.work_offset))
        won = vm.eq(readback, labels)
        vm.scatter_masked(target_addrs, lo, won, policy=policy)

        forest_edges.append(vm.compress(positions, won))

        # losers re-find roots against the updated forest next wave
        lost = vm.mask_not(won)
        positions = vm.compress(positions, lost)
        ru = vm.compress(hi, lost)
        rv = vm.compress(lo, lost)
        vm.loop_overhead()

    if forest_edges:
        out = np.concatenate(forest_edges)
        out.sort()
        return out
    return np.zeros(0, dtype=np.int64)


def _vector_find_roots(
    vm: VectorMachine, base: int, nodes: np.ndarray, n: int
) -> np.ndarray:
    """All lanes chase parent pointers until every lane is at a root.
    Applies path halving: each jump scatters the grandparent back, a
    conflict-free write because all lanes write values gathered from
    the same consistent snapshot and any winner is equally valid (the
    classic benign race of pointer jumping, safe under ELS)."""
    cur = nodes
    for _ in range(n + 1):
        parent = vm.gather(vm.add(cur, base))
        at_root = vm.eq(parent, cur)
        if vm.all_true(at_root):
            return cur
        grand = vm.gather(vm.add(parent, base))
        # path halving: parent[cur] := grand (ELS picks any winner)
        vm.scatter(vm.add(cur, base), grand, policy="arbitrary")
        cur = vm.select(at_root, cur, grand)
    raise ReproError("root finding did not converge — cycle in forest?")


def scalar_components(
    sp: ScalarProcessor,
    forest: ParentForest,
    u: np.ndarray,
    v: np.ndarray,
) -> np.ndarray:
    """Sequential union-find baseline (path halving, no ranks, same
    min-root orientation).  Returns the spanning-forest edge indices."""
    u, v = _check_edges(u, v, forest.n)
    base = forest.base

    def find(x: int) -> int:
        while True:
            p = sp.load(base + x)
            sp.branch()
            if p == x:
                return x
            g = sp.load(base + p)
            sp.store(base + x, g)
            x = g

    chosen = []
    for i in range(u.size):
        ru, rv = find(int(u[i])), find(int(v[i]))
        sp.branch()
        if ru != rv:
            hi, lo = (ru, rv) if ru > rv else (rv, ru)
            sp.alu()
            sp.store(base + hi, lo)
            chosen.append(i)
        sp.loop_iter()
    return np.asarray(chosen, dtype=np.int64)
