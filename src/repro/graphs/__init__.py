"""Graph algorithms via FOL (the paper's §6 future work)."""

from .components import ParentForest, scalar_components, vector_components

__all__ = ["ParentForest", "vector_components", "scalar_components"]
