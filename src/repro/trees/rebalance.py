r"""Vectorized BST rebalancing — the paper's §6 future work ("tree
rebalancing"), built from three parallel phases:

1. **Tree → vine** (parallel right rotations).  A right rotation at a
   node ``n`` with left child ``l`` rewrites *three* cells — the slot
   pointing at ``n``, ``l.right`` and ``n.left`` — so simultaneous
   rotations on overlapping nodes conflict exactly the way §2's tree
   rewriting does.  Each wave finds every rotation site, decomposes the
   (slot, l.right-cell, n.left-cell) tuples with **FOL\*** (L = 3), and
   applies each parallel-processable set with pure gathers/scatters
   (re-validating later sets, since earlier rotations can restructure
   them away).  When no node has a left child the tree is a right vine,
   i.e. a sorted linked list.

2. **Vine → array** (pointer jumping).  Each node's distance to the
   vine tail is computed by the classic parallel list-ranking doubling
   loop — O(log n) vector rounds of gather/add/scatter over a rank and
   a successor region.

3. **Array → balanced tree** (conflict-free linking).  The recursive
   midpoint construction is run breadth-first: a wave holds a vector of
   (lo, hi, slot) ranges; every range links ``order[(lo+hi)//2]`` into
   its slot and emits its two sub-ranges.  All writes in a wave target
   distinct cells, so no FOL is needed — O(log n) waves.

The result is a height-minimal BST with the same key multiset, verified
against a charged sequential rebuild baseline.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.fol_star import fol_star
from ..errors import ReproError
from ..machine.scalar import ScalarProcessor
from ..machine.vm import VectorMachine
from ..mem.arena import NIL, BumpAllocator
from .bst import BinarySearchTree


class RebalanceWorkspace:
    """Scratch regions for rebalancing trees of up to ``capacity``
    nodes: FOL* work words, list-ranking rank/successor arrays, the
    in-order node array, and the range worklist."""

    def __init__(self, allocator: BumpAllocator, tree: BinarySearchTree,
                 name: str = "rebal") -> None:
        self.tree = tree
        cap = tree.nodes.capacity
        rs = tree.nodes.record_size
        # FOL* work region shadows node cells AND the root slot, so any
        # rewritten cell address maps to work at a fixed offset.  The
        # shadow must span [nodes.base, root_addr] — allocate by extent.
        lo = tree.nodes.base
        hi = tree.root_addr + 1
        self._work_base = allocator.alloc(hi - lo, f"{name}.fol_work")
        self.work_offset = self._work_base - lo
        # per-record regions (indexed by record number)
        self.rank_base = allocator.alloc(cap, f"{name}.rank")
        self.succ_base = allocator.alloc(cap, f"{name}.succ")
        self.order_base = allocator.alloc(cap, f"{name}.order")
        self.memory = allocator.memory


def vector_rebalance(
    vm: VectorMachine,
    ws: RebalanceWorkspace,
    policy: str = "arbitrary",
    max_waves: Optional[int] = None,
) -> Tuple[int, int]:
    """Rebalance ``ws.tree`` in place; returns (rotations, waves)."""
    tree = ws.tree
    n = tree.nodes.allocated
    if n == 0:
        return 0, 0
    rotations, waves = _tree_to_vine(vm, ws, policy, max_waves)
    _vine_to_order(vm, ws)
    _order_to_balanced(vm, ws, n, policy)
    return rotations, waves


# ----------------------------------------------------------------------
# phase 1: parallel right rotations until no left children remain
# ----------------------------------------------------------------------
def _tree_to_vine(
    vm: VectorMachine,
    ws: RebalanceWorkspace,
    policy: str,
    max_waves: Optional[int],
) -> Tuple[int, int]:
    tree = ws.tree
    nodes = tree.nodes
    off_left = nodes.offset("left")
    off_right = nodes.offset("right")
    all_nodes = nodes.all_records()
    # Every right rotation strictly decreases the sum of left-subtree
    # sizes (bounded by n^2/2), and every wave applies at least one
    # rotation, so n^2 waves always suffice.
    limit = max_waves if max_waves is not None else nodes.allocated ** 2 + 8

    rotations = 0
    waves = 0
    while True:
        waves += 1
        if waves > limit:
            raise ReproError(f"tree-to-vine exceeded {limit} waves")

        # rotation sites: every reachable node with a left child.  The
        # slot map (cell pointing at each node) is recomputed per wave
        # by scattering parent-cell addresses through the child links.
        slot_of = _slot_map(vm, ws, all_nodes)
        vm.iota(all_nodes.size)  # charge record-address generation
        lefts = vm.gather(vm.add(all_nodes, off_left))
        reachable = vm.ne(slot_of, NIL)
        site = vm.mask_and(vm.ne(lefts, NIL), reachable)
        n_sites = vm.count_true(site)
        if n_sites == 0:
            return rotations, waves - 1

        ns = vm.compress(all_nodes, site)
        ls = vm.compress(lefts, site)
        slots = vm.compress(slot_of, site)

        dec = fol_star(
            vm,
            [slots, vm.add(ls, off_right), vm.add(ns, off_left)],
            work_offset=ws.work_offset,
            policy=policy,
        )
        for s in dec.sets:
            sn, sl, sslot = ns[s], ls[s], slots[s]
            # re-validate: earlier sets may have rotated these away
            still = vm.mask_and(
                vm.eq(vm.gather(sslot), sn),
                vm.eq(vm.gather(vm.add(sn, off_left)), sl),
            )
            sn = vm.compress(sn, still)
            sl = vm.compress(sl, still)
            sslot = vm.compress(sslot, still)
            if sn.size == 0:
                vm.loop_overhead()
                continue
            # rotate right:  slot := l ; n.left := l.right ; l.right := n
            lr = vm.gather(vm.add(sl, off_right))
            vm.scatter(sslot, sl, policy=policy)
            vm.scatter(vm.add(sn, off_left), lr, policy=policy)
            vm.scatter(vm.add(sl, off_right), sn, policy=policy)
            rotations += int(sn.size)
            vm.loop_overhead()


def _slot_map(vm: VectorMachine, ws: RebalanceWorkspace,
              all_nodes: np.ndarray) -> np.ndarray:
    """For every allocated node, the address of the cell pointing at it
    (NIL for unreachable nodes).  Built with two conflict-free scatters
    through the child links plus the root entry."""
    tree = ws.tree
    nodes = tree.nodes
    rs = nodes.record_size
    base = nodes.base
    off_left = nodes.offset("left")
    off_right = nodes.offset("right")

    # reuse the succ region as scratch for the map (indexed by record)
    cap = nodes.capacity
    vm.mem.fill(ws.succ_base, cap, NIL)

    for off in (off_left, off_right):
        child = vm.gather(vm.add(all_nodes, off))
        has = vm.ne(child, NIL)
        c = vm.compress(child, has)
        parents = vm.compress(all_nodes, has)
        if c.size:
            idx = vm.floordiv(vm.sub(c, base), rs)
            vm.scatter(vm.add(idx, ws.succ_base), vm.add(parents, off),
                       policy="arbitrary")
    root = vm.mem.sload(tree.root_addr)
    if root != NIL:
        ridx = (root - base) // rs
        vm.mem.sstore(ws.succ_base + ridx, tree.root_addr)
    idx_all = vm.floordiv(vm.sub(all_nodes, base), rs)
    return vm.gather(vm.add(idx_all, ws.succ_base))


# ----------------------------------------------------------------------
# phase 2: list ranking by pointer jumping
# ----------------------------------------------------------------------
def _vine_to_order(vm: VectorMachine, ws: RebalanceWorkspace) -> None:
    from ..lists.ranking import RankingScratch, list_ranks

    tree = ws.tree
    scratch = RankingScratch.from_bases(tree.nodes, ws.rank_base, ws.succ_base)
    all_nodes, ranks = list_ranks(vm, scratch, "right")
    n = all_nodes.size

    # rank[i] is the distance to the vine tail; position from the head
    # is (n-1) - rank.  Scatter node pointers into in-order slots —
    # conflict-free because ranks are distinct along a list.
    pos = vm.sub(vm.splat(n, n - 1), ranks)
    vm.scatter(vm.add(pos, ws.order_base), all_nodes, policy="arbitrary")


# ----------------------------------------------------------------------
# phase 3: balanced linking, breadth-first over midpoint ranges
# ----------------------------------------------------------------------
def _order_to_balanced(
    vm: VectorMachine, ws: RebalanceWorkspace, n: int, policy: str
) -> None:
    tree = ws.tree
    nodes = tree.nodes
    off_left = nodes.offset("left")
    off_right = nodes.offset("right")

    lo = np.zeros(1, dtype=np.int64)
    hi = np.full(1, n, dtype=np.int64)
    slots = np.full(1, tree.root_addr, dtype=np.int64)
    vm.iota(1)  # charge worklist initialisation

    waves = 0
    while lo.size:
        waves += 1
        if waves > 2 * n + 4:
            raise ReproError("balanced linking did not converge")
        mid = vm.floordiv(vm.add(lo, hi), 2)
        node = vm.gather(vm.add(mid, ws.order_base))
        vm.scatter(slots, node, policy=policy)
        # clear children; sub-ranges re-link them in later waves
        vm.scatter(vm.add(node, off_left), vm.splat(node.size, NIL), policy=policy)
        vm.scatter(vm.add(node, off_right), vm.splat(node.size, NIL), policy=policy)

        l_lo, l_hi, l_slot = lo, mid, vm.add(node, off_left)
        r_lo, r_hi, r_slot = vm.add(mid, 1), hi, vm.add(node, off_right)
        new_lo = np.concatenate([l_lo, r_lo])
        new_hi = np.concatenate([l_hi, r_hi])
        new_slot = np.concatenate([l_slot, r_slot])
        keep = vm.lt(new_lo, new_hi)
        lo = vm.compress(new_lo, keep)
        hi = vm.compress(new_hi, keep)
        slots = vm.compress(new_slot, keep)
        vm.loop_overhead()


# ----------------------------------------------------------------------
# sequential baseline
# ----------------------------------------------------------------------
def scalar_rebalance(sp: ScalarProcessor, tree: BinarySearchTree) -> None:
    """Charged sequential rebuild: in-order walk collects the nodes,
    then a recursive midpoint pass relinks them."""
    off_key = tree.nodes.offset("key")
    off_left = tree.nodes.offset("left")
    off_right = tree.nodes.offset("right")

    # in-order traversal collecting node pointers
    order = []
    stack = []
    ptr = sp.load(tree.root_addr)
    while ptr != NIL or stack:
        sp.branch()
        while ptr != NIL:
            stack.append(ptr)
            ptr = sp.load(ptr + off_left)
            sp.loop_iter()
        ptr = stack.pop()
        order.append(ptr)
        ptr = sp.load(ptr + off_right)
        sp.loop_iter()

    def build(lo: int, hi: int) -> int:
        sp.branch()
        if lo >= hi:
            return NIL
        mid = (lo + hi) // 2
        sp.alu(2)
        node = order[mid]
        sp.store(node + off_left, build(lo, mid))
        sp.store(node + off_right, build(mid + 1, hi))
        return node

    sp.store(tree.root_addr, build(0, len(order)))


def minimal_height(n: int) -> int:
    """Height of a perfectly balanced BST over n nodes."""
    return n.bit_length()
