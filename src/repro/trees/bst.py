"""Multi-insertion into an unbalanced binary search tree — paper §4.3.

Sequential baseline: standard BST insert, one key at a time, charged on
the scalar unit.

Vectorized algorithm (FOL1 specialisation): all keys descend the tree in
lock-step.  Each step gathers the current nodes' keys, picks the left or
right child slot, and descends where a child exists.  Keys that reach an
empty (NIL) slot try to claim it: they scatter their unique subscript
labels *into the slot word itself* (the slot is about to be overwritten
by main processing, so it doubles as the FOL work area), gather back,
and the surviving lane per slot allocates a node and stores its pointer
there.  Filtered lanes simply keep descending — next step they gather
the slot again and find the winner's freshly inserted node, exactly as
if the winner had been processed "before" them in a sequential order.

Duplicate keys descend right (``key >= node.key`` goes right), matching
the baseline, so both implementations accept duplicate keys.

The paper's benchmark (Figure 14) pre-builds a tree of ``Ni`` random
keys because an empty tree makes every first-wave key collide at the
root — "too disadvantageous for vector processing".
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..errors import ReproError
from ..machine.scalar import ScalarProcessor
from ..machine.vm import VectorMachine
from ..mem.arena import NIL, BumpAllocator, RecordArena

#: Node layout: key, left-child pointer, right-child pointer.
BST_FIELDS = ("key", "left", "right")


class BinarySearchTree:
    """Linked BST over a record arena; root held in a memory word so the
    empty-tree case is also a pointer rewrite."""

    def __init__(self, allocator: BumpAllocator, capacity: int, name: str = "bst") -> None:  # no-kind-lint
        self.nodes = RecordArena(allocator, BST_FIELDS, capacity, name=f"{name}.nodes")
        self.root_addr = allocator.alloc(1, f"{name}.root")
        self.memory = allocator.memory
        self.memory.words[self.root_addr] = NIL

    # ------------------------------------------------------------------
    # uncharged helpers (test setup / verification)
    # ------------------------------------------------------------------
    def build(self, keys: Iterable[int]) -> None:
        """Sequentially insert ``keys`` without charging cycles — used to
        pre-build the initial Ni-node tree of Figure 14's setup."""
        for key in keys:
            key = int(key)
            node = self.nodes.alloc_one()
            self.nodes.poke_field(node, "key", key)
            self.nodes.poke_field(node, "left", NIL)
            self.nodes.poke_field(node, "right", NIL)
            ptr = self.memory.peek(self.root_addr)
            if ptr == NIL:
                self.memory.poke(self.root_addr, node)
                continue
            while True:
                nkey = self.nodes.peek_field(ptr, "key")
                field = "left" if key < nkey else "right"
                child = self.nodes.peek_field(ptr, field)
                if child == NIL:
                    self.nodes.poke_field(ptr, field, node)
                    break
                ptr = child

    def inorder(self) -> List[int]:
        """In-order key sequence (uncharged, iterative to spare the
        Python recursion limit on degenerate trees)."""
        out: List[int] = []
        stack: List[int] = []
        ptr = self.memory.peek(self.root_addr)
        while ptr != NIL or stack:
            while ptr != NIL:
                stack.append(ptr)
                ptr = self.nodes.peek_field(ptr, "left")
            ptr = stack.pop()
            out.append(self.nodes.peek_field(ptr, "key"))
            ptr = self.nodes.peek_field(ptr, "right")
        return out

    def check_bst_invariant(self) -> None:
        """Raise unless the in-order sequence is sorted."""
        seq = self.inorder()
        if any(a > b for a, b in zip(seq, seq[1:])):
            raise ReproError("BST invariant violated: in-order sequence not sorted")

    def size(self) -> int:
        """Number of reachable nodes (uncharged)."""
        return len(self.inorder())

    def depth(self) -> int:
        """Tree height (uncharged, iterative)."""
        root = self.memory.peek(self.root_addr)
        if root == NIL:
            return 0
        best = 0
        stack = [(root, 1)]
        while stack:
            ptr, d = stack.pop()
            best = max(best, d)
            for f in ("left", "right"):
                child = self.nodes.peek_field(ptr, f)
                if child != NIL:
                    stack.append((child, d + 1))
        return best


# ----------------------------------------------------------------------
# sequential insertion (baseline)
# ----------------------------------------------------------------------
def scalar_bst_insert(
    sp: ScalarProcessor,
    tree: BinarySearchTree,
    keys: Iterable[int],
) -> None:
    """Insert keys one at a time, charging scalar cycles per step."""
    nodes = tree.nodes
    off_left = nodes.offset("left")
    off_right = nodes.offset("right")
    off_key = nodes.offset("key")
    for key in keys:
        key = int(key)
        node = nodes.alloc_one()
        sp.alu()  # allocation bump
        sp.store(node + off_key, key)
        sp.store(node + off_left, NIL)
        sp.store(node + off_right, NIL)
        slot = tree.root_addr
        while True:
            ptr = sp.load(slot)
            sp.branch()
            if ptr == NIL:
                sp.store(slot, node)
                break
            nkey = sp.load(ptr + off_key)
            sp.alu(2)  # compare + slot address arithmetic
            slot = ptr + (off_left if key < nkey else off_right)
            sp.loop_iter()
        sp.loop_iter()


# ----------------------------------------------------------------------
# vectorized multi-insertion (FOL1 specialisation)
# ----------------------------------------------------------------------
def vector_bst_insert(
    vm: VectorMachine,
    tree: BinarySearchTree,
    keys: np.ndarray,
    policy: str = "arbitrary",
    max_steps: Optional[int] = None,
) -> int:
    """Insert all ``keys`` by vector operations; returns the number of
    descend-and-claim steps executed."""
    keys = np.asarray(keys, dtype=np.int64)
    n = keys.size
    if n == 0:
        return 0
    nodes = tree.nodes
    off_left = nodes.offset("left")
    off_right = nodes.offset("right")
    off_key = nodes.offset("key")

    # Fresh nodes for every key, fields initialised by vector stores.
    new_nodes = nodes.alloc_many(n)
    vm.iota(n)  # charge the address generation
    vm.scatter(vm.add(new_nodes, off_key), keys, policy=policy)
    vm.scatter(vm.add(new_nodes, off_left), vm.splat(n, NIL), policy=policy)
    vm.scatter(vm.add(new_nodes, off_right), vm.splat(n, NIL), policy=policy)

    # Every key starts at the root *slot* (the word holding the root
    # pointer), so inserting into an empty tree needs no special case.
    slots = vm.splat(n, tree.root_addr)
    labels = vm.iota(n)
    active = vm.iota(n)  # positions of keys not yet inserted

    steps = 0
    limit = max_steps if max_steps is not None else 2 * (tree.nodes.capacity + n) + 4
    while active.size:
        steps += 1
        if steps > limit:
            raise ReproError(f"vector BST insert exceeded {limit} steps")

        cur_slots = slots[active]
        ptrs = vm.gather(cur_slots)
        at_nil = vm.eq(ptrs, NIL)

        # -- claim phase: lanes standing on a NIL slot run one FOL round
        #    (label write + read-back, masked to those lanes).
        if vm.any_true(at_nil):
            lb = labels[active]
            vm.scatter_masked(cur_slots, lb, at_nil, policy=policy)
            readback = vm.gather(cur_slots)
            won = vm.mask_and(at_nil, vm.eq(readback, lb))
            if vm.audit is not None:
                vm.audit.on_claim(cur_slots, at_nil, won)
            # One survivor per slot (ELS) — link its pre-built node in.
            vm.scatter_masked(cur_slots, new_nodes[active], won, policy=policy)
            if not vm.any_true(won):
                raise ReproError("BST claim round made no progress")
            # Winners are inserted and leave the active set; losers stay
            # and will descend into the winner's fresh node next step.
            remaining = vm.mask_not(won)
            active = vm.compress(active, remaining)
            if active.size == 0:
                break
            cur_slots = slots[active]
            ptrs = vm.gather(cur_slots)

        # -- descend phase: every touched slot now holds a node, so all
        #    remaining lanes follow left/right by key comparison.
        node_keys = vm.gather(vm.add(ptrs, off_key))
        go_left = vm.lt(keys[active], node_keys)
        child_slots = vm.add(ptrs, vm.select(go_left, off_left, off_right))
        slots[active] = child_slots
        vm.loop_overhead()

    return steps
