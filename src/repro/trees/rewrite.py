"""Parallel operation-tree rewriting by the associative law — paper §2
and §3.3's FOL* application.

Trees are built from ``(op, left, right, value)`` records: interior
nodes carry ``OP_MUL`` and two children; leaves carry ``OP_LEAF`` and a
value.  The rewriting rule is the associative law

    X * (Y * Z)  →  (X * Y) * Z

applied destructively and **in place**, reusing the two nodes of the
redex (node ``n`` and its right child ``r``) exactly as Figure 5 reuses
n1/n3:

    before: n = (X, r),    r = (Y, Z)
    after:  n = (r, Z),    r = (X, Y)

One rewrite rewrites **two** nodes (L = 2), and overlapping redexes
share a node (Figure 5's n3 sits in both (n1, n3) and (n3, n5)), so
forced parallel application corrupts the tree.  Three drivers:

* :func:`sequential_rewrite_all` — scalar baseline, one redex at a time.
* :func:`fol_star_rewrite_all` — safe parallel rewriting: each round
  finds all redexes with vector scans, decomposes them with FOL*
  (V¹ = redex heads, V² = their right children), and applies each
  parallel-processable set with pure vector gathers/scatters.
* :func:`forced_rewrite_all` — the §2 strawman: applies *all* redexes of
  a round in parallel with no filtering.  With overlapping redexes the
  ELS-resolved writes interleave and the result is garbage (lost leaves,
  duplicated subtrees, even cycles); :func:`check_tree` detects this.

Repeated to a fixed point, the rule left-linearises the tree:
``a*(b*(c*d))`` becomes ``((a*b)*c)*d``.  Associativity preserves the
in-order leaf sequence, which is the correctness oracle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.fol_star import fol_star
from ..errors import PhantomNodeError, RewriteError
from ..machine.scalar import ScalarProcessor
from ..machine.vm import VectorMachine
from ..mem.arena import NIL, BumpAllocator, RecordArena

OP_LEAF = 0
OP_MUL = 1

TREE_FIELDS = ("op", "left", "right", "value")


class OpTreeArena:
    """Arena of operation-tree nodes plus construction helpers."""

    def __init__(self, allocator: BumpAllocator, capacity: int, name: str = "optree") -> None:
        self.nodes = RecordArena(allocator, TREE_FIELDS, capacity, name=name)
        self.memory = allocator.memory
        # Shadow work region for FOL* label traffic: one word per node
        # word, at a constant offset from the node base, mirroring the
        # paper's "work areas reserved for each storage area" (§3.3).
        self._fol_work_base = allocator.alloc(
            capacity * self.nodes.record_size, f"{name}.fol_work"
        )

    @property
    def work_offset(self) -> int:
        """Additive offset from a node address to its FOL work word."""
        return self._fol_work_base - self.nodes.base

    # -- construction (uncharged; workload setup) -----------------------
    def leaf(self, value: int) -> int:
        ptr = self.nodes.alloc_one()
        self.nodes.poke_field(ptr, "op", OP_LEAF)
        self.nodes.poke_field(ptr, "left", NIL)
        self.nodes.poke_field(ptr, "right", NIL)
        self.nodes.poke_field(ptr, "value", int(value))
        return ptr

    def mul(self, left: int, right: int) -> int:
        ptr = self.nodes.alloc_one()
        self.nodes.poke_field(ptr, "op", OP_MUL)
        self.nodes.poke_field(ptr, "left", int(left))
        self.nodes.poke_field(ptr, "right", int(right))
        self.nodes.poke_field(ptr, "value", 0)
        return ptr

    def right_comb(self, values: Sequence[int]) -> int:
        """Build ``v0 * (v1 * (v2 * (...)))`` — the §2 example shape with
        the maximum density of overlapping redexes."""
        if not values:
            raise RewriteError("right_comb needs at least one value")
        node = self.leaf(values[-1])
        for v in reversed(values[:-1]):
            node = self.mul(self.leaf(v), node)
        return node

    def random_tree(self, values: Sequence[int], rng: np.random.Generator) -> int:
        """Random binary multiplication tree over ``values`` (in order)."""
        if not values:
            raise RewriteError("random_tree needs at least one value")
        nodes = [self.leaf(v) for v in values]
        while len(nodes) > 1:
            i = int(rng.integers(0, len(nodes) - 1))
            nodes[i : i + 2] = [self.mul(nodes[i], nodes[i + 1])]
        return nodes[0]

    # -- verification (uncharged) ----------------------------------------
    def leaves_inorder(self, root: int, max_nodes: Optional[int] = None) -> List[int]:
        """In-order leaf values; raises on cycles / phantom structure."""
        limit = max_nodes if max_nodes is not None else self.nodes.allocated * 2 + 4
        out: List[int] = []
        visited = 0
        stack = [int(root)]
        while stack:
            ptr = stack.pop()
            visited += 1
            if visited > limit:
                raise PhantomNodeError("traversal exceeded node budget — cycle?")
            if not self.nodes.contains(ptr):
                raise PhantomNodeError(f"pointer {ptr} is not an allocated node")
            op = self.nodes.peek_field(ptr, "op")
            if op == OP_LEAF:
                out.append(self.nodes.peek_field(ptr, "value"))
            elif op == OP_MUL:
                stack.append(self.nodes.peek_field(ptr, "right"))
                stack.append(self.nodes.peek_field(ptr, "left"))
            else:
                raise PhantomNodeError(f"node {ptr} has invalid op {op}")
        return out

    def check_tree(self, root: int) -> None:
        """Raise unless the structure from ``root`` is a proper tree:
        acyclic, every interior node visited exactly once, all pointers
        valid."""
        seen: set[int] = set()
        stack = [int(root)]
        while stack:
            ptr = stack.pop()
            if not self.nodes.contains(ptr):
                raise PhantomNodeError(f"pointer {ptr} is not an allocated node")
            if ptr in seen:
                raise PhantomNodeError(f"node {ptr} reachable twice — sharing/cycle")
            seen.add(ptr)
            if self.nodes.peek_field(ptr, "op") == OP_MUL:
                stack.append(self.nodes.peek_field(ptr, "right"))
                stack.append(self.nodes.peek_field(ptr, "left"))

    def is_left_linear(self, root: int) -> bool:
        """True if no redex remains (every right child is a leaf)."""
        stack = [int(root)]
        while stack:
            ptr = stack.pop()
            if self.nodes.peek_field(ptr, "op") != OP_MUL:
                continue
            right = self.nodes.peek_field(ptr, "right")
            if self.nodes.peek_field(right, "op") == OP_MUL:
                return False
            stack.append(self.nodes.peek_field(ptr, "left"))
        return True


# ----------------------------------------------------------------------
# redex discovery (vector scan over the allocated node block)
# ----------------------------------------------------------------------
def find_redexes(vm: VectorMachine, arena: OpTreeArena) -> Tuple[np.ndarray, np.ndarray]:
    """Return (heads, right_children) of every redex: nodes ``n`` with
    ``n.op = * `` whose right child is also a ``*`` node.  One pass of
    vector gathers over the allocated records."""
    all_nodes = arena.nodes.all_records()
    if all_nodes.size == 0:
        return all_nodes, all_nodes
    off_op = arena.nodes.offset("op")
    off_right = arena.nodes.offset("right")
    vm.iota(all_nodes.size)  # charge the record-address generation
    ops = vm.gather(vm.add(all_nodes, off_op))
    rights = vm.gather(vm.add(all_nodes, off_right))
    is_mul = vm.eq(ops, OP_MUL)
    # NIL-guarded gather: leaves have right = NIL = 0, a valid (reserved)
    # word, so the gather is safe and the mask discards the result.
    right_ops = vm.gather(vm.add(rights, off_op))
    redex = vm.mask_and(is_mul, vm.eq(right_ops, OP_MUL))
    heads = vm.compress(all_nodes, redex)
    right_children = vm.compress(rights, redex)
    return heads, right_children


def _apply_redex_set(
    vm: VectorMachine,
    arena: OpTreeArena,
    heads: np.ndarray,
    rights: np.ndarray,
    policy: str,
) -> None:
    """Apply X*(Y*Z) → (X*Y)*Z to every (n, r) pair in parallel:
    all gathers before all scatters, as one vector unit process."""
    off_left = arena.nodes.offset("left")
    off_right = arena.nodes.offset("right")
    x = vm.gather(vm.add(heads, off_left))
    y = vm.gather(vm.add(rights, off_left))
    z = vm.gather(vm.add(rights, off_right))
    vm.scatter(vm.add(heads, off_left), rights, policy=policy)   # n.left  := r
    vm.scatter(vm.add(heads, off_right), z, policy=policy)       # n.right := Z
    vm.scatter(vm.add(rights, off_left), x, policy=policy)       # r.left  := X
    vm.scatter(vm.add(rights, off_right), y, policy=policy)      # r.right := Y


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
def sequential_rewrite_all(
    sp: ScalarProcessor,
    arena: OpTreeArena,
    root: int,
    max_passes: Optional[int] = None,
) -> int:
    """Scalar baseline: repeatedly scan for a redex and rewrite it, until
    left-linear.  Returns the number of rewrites applied."""
    off_op = arena.nodes.offset("op")
    off_left = arena.nodes.offset("left")
    off_right = arena.nodes.offset("right")
    rewrites = 0
    limit = max_passes if max_passes is not None else arena.nodes.allocated ** 2 + 8
    passes = 0
    while True:
        passes += 1
        if passes > limit:
            raise RewriteError("sequential rewriting did not reach a fixed point")
        # depth-first search for one redex
        stack = [int(root)]
        found = None
        while stack:
            ptr = stack.pop()
            sp.branch()
            op = sp.load(ptr + off_op)
            if op != OP_MUL:
                continue
            right = sp.load(ptr + off_right)
            sp.alu()
            r_op = sp.load(right + off_op)
            sp.branch()
            if r_op == OP_MUL:
                found = (ptr, right)
                break
            stack.append(sp.load(ptr + off_left))
            sp.alu()
        if found is None:
            return rewrites
        n, r = found
        x = sp.load(n + off_left)
        y = sp.load(r + off_left)
        z = sp.load(r + off_right)
        sp.store(n + off_left, r)
        sp.store(n + off_right, z)
        sp.store(r + off_left, x)
        sp.store(r + off_right, y)
        sp.loop_iter()
        rewrites += 1


def fol_star_rewrite_all(
    vm: VectorMachine,
    arena: OpTreeArena,
    root: int,
    policy: str = "arbitrary",
    max_waves: Optional[int] = None,
) -> Tuple[int, int]:
    """Safe parallel rewriting: per wave, find all redexes, decompose
    with FOL* (L = 2), apply each parallel-processable set by vector
    operations.  Returns ``(rewrites, waves)``.

    FOL* labels travel through the arena's shadow work region (one word
    per node at a constant offset): unlike hashing, the rewrite does not
    overwrite every labelled word, so labels must not destroy live node
    fields.
    """
    work_offset = arena.work_offset
    rewrites = 0
    waves = 0
    limit = max_waves if max_waves is not None else arena.nodes.allocated + 4
    while True:
        waves += 1
        if waves > limit:
            raise RewriteError("FOL* rewriting did not reach a fixed point")
        heads, rights = find_redexes(vm, arena)
        if heads.size == 0:
            return rewrites, waves - 1
        dec = fol_star(
            vm, [heads, rights], work_offset=work_offset, policy=policy
        )
        off_op = arena.nodes.offset("op")
        off_right = arena.nodes.offset("right")
        for s in dec.sets:
            h, r = heads[s], rights[s]
            # Rewriting an earlier set can *invalidate* a later set's
            # redexes (rewriting (n1,n3) destroys the (n3,n5) redex of
            # Figure 5), so each set is re-validated before application:
            # the tuple must still match X*(Y*Z).  Filtered-out tuples
            # are rediscovered by the next wave's scan if still live.
            still = vm.mask_and(
                vm.eq(vm.gather(vm.add(h, off_op)), OP_MUL),
                vm.mask_and(
                    vm.eq(vm.gather(vm.add(h, off_right)), r),
                    vm.eq(vm.gather(vm.add(r, off_op)), OP_MUL),
                ),
            )
            h = vm.compress(h, still)
            r = vm.compress(r, still)
            if h.size:
                _apply_redex_set(vm, arena, h, r, policy)
                rewrites += int(h.size)
            vm.loop_overhead()


def forced_rewrite_all(
    vm: VectorMachine,
    arena: OpTreeArena,
    root: int,
    policy: str = "arbitrary",
) -> int:
    """The §2 strawman: apply *every* redex of one wave in parallel with
    no FOL filtering.  Overlapping redexes race; the ELS scatter keeps
    one arbitrary write per cell and the result is generally corrupt
    (use :meth:`OpTreeArena.check_tree` /
    :meth:`OpTreeArena.leaves_inorder` to observe the damage).
    Returns the number of redexes it *attempted* to rewrite."""
    heads, rights = find_redexes(vm, arena)
    if heads.size:
        _apply_redex_set(vm, arena, heads, rights, policy)
    return int(heads.size)
