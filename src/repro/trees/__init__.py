"""Tree applications: BST multi-insertion (§4.3) and parallel operation-
tree rewriting by the associative law (§2, §3.3)."""

from .bst import BinarySearchTree, scalar_bst_insert, vector_bst_insert
from .rebalance import (
    RebalanceWorkspace,
    minimal_height,
    scalar_rebalance,
    vector_rebalance,
)
from .rewrite import (
    OP_LEAF,
    OP_MUL,
    OpTreeArena,
    find_redexes,
    fol_star_rewrite_all,
    forced_rewrite_all,
    sequential_rewrite_all,
)

__all__ = [
    "BinarySearchTree",
    "scalar_bst_insert",
    "vector_bst_insert",
    "RebalanceWorkspace",
    "vector_rebalance",
    "scalar_rebalance",
    "minimal_height",
    "OP_LEAF",
    "OP_MUL",
    "OpTreeArena",
    "find_redexes",
    "fol_star_rewrite_all",
    "forced_rewrite_all",
    "sequential_rewrite_all",
]
