"""`repro.obs` — the observability spine.

Two halves (see docs/observability.md):

* :mod:`repro.obs.core` — the clock-agnostic telemetry core every
  metrics facade builds on (percentiles, NaN-safe formatting, tables,
  tenant cells + Jain fairness, queue-ledger absorption).
* :mod:`repro.obs.events` — the opt-in request-lifecycle span layer
  (``--trace``): per-request stage decomposition (admit / queue /
  batch / execute / commit / park / carry) and a JSONL event sink.

:mod:`repro.obs.report` post-processes a flushed JSONL file into the
``python -m repro trace`` report (stage histograms, per-tenant
breakdown, top-k slowest requests).
"""

from .core import (
    Clock,
    MetricsBase,
    fmt_cell,
    fmt_value,
    format_table,
    jain_index,
    percentile,
    subsample,
    tenant_fairness,
    tenant_summary_cells,
)
from .events import STAGES, TraceRecorder, load_events
from .report import TraceReport, render_trace_report

__all__ = [
    "Clock",
    "MetricsBase",
    "fmt_cell",
    "fmt_value",
    "format_table",
    "jain_index",
    "percentile",
    "subsample",
    "tenant_fairness",
    "tenant_summary_cells",
    "STAGES",
    "TraceRecorder",
    "TraceReport",
    "load_events",
    "render_trace_report",
]
