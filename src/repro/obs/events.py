"""Opt-in request-lifecycle spans: the ``--trace`` event layer.

A :class:`TraceRecorder` observes one run and turns per-request
lifecycle transitions — offered → admitted/rejected/blocked → batched →
executed → committed or parked-for-migration → completed — into an
exact **per-stage latency decomposition**.  Each completed request's
arrival-to-completion latency is split into:

* ``admit``   — arrival to admission (backpressure/blocked time before
  the queue accepted the request);
* ``queue``   — admission to first batch launch, *minus* any overlap
  with deliberate batch-formation waits;
* ``batch``   — the part of the pre-launch wait the batching policy
  chose (linger / adaptive fill / deadline margin);
* ``execute`` — shard-local pipeline time of every batch the request
  rode (the batch is the unit of time: all riders share its phases);
* ``commit``  — the cross-shard claim/commit exchange phases of those
  batches;
* ``park``    — migration phases plus the carry gaps of lanes parked
  because their routing bin was mid-handoff;
* ``carry``   — inter-batch gaps of lanes filtered by FOL (conflict
  recirculation, claim losses).

The seven spans sum to the end-to-end latency by construction (up to
float rounding), in whatever unit the owning layer's
:class:`~repro.obs.core.Clock` runs — simulated cycles for
``repro stream``, wall seconds for ``repro serve``.

The recorder is passive: it never advances a clock or charges a cycle,
so metrics and simulated cycle counts are bit-identical with tracing on
or off (the golden fixtures pin the off path, the decomposition tests
pin the on path).  With no recorder attached every emission site is a
``None`` check — zero overhead.

Events accumulate in memory and flush to a JSONL sink
(:meth:`TraceRecorder.flush`) that ``python -m repro trace`` renders;
one run at smoke scale is a few thousand events, so memory is not a
concern (a long soak should trace a window, not the whole run).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .core import Clock, format_table, percentile

#: The lifecycle stages, in pipeline order.  Their per-request spans
#: sum to the request's end-to-end latency.
STAGES = ("admit", "queue", "batch", "execute", "commit", "park", "carry")


class _Lane:
    """In-flight per-request span accumulator."""

    __slots__ = ("arrival", "enqueued", "tenant", "stages", "last_exit", "parked")

    def __init__(self, arrival: float, enqueued: float, tenant: str) -> None:
        self.arrival = arrival
        self.enqueued = enqueued
        self.tenant = tenant
        self.stages: Dict[str, float] = dict.fromkeys(STAGES, 0.0)
        self.last_exit: Optional[float] = None  # end of the last batch ridden
        self.parked = False  # parked (vs filtered) out of that batch


class TraceRecorder:
    """Collects lifecycle events and per-request stage spans for one run.

    Emission sites: :class:`~repro.runtime.queue.BoundedQueue` calls
    :meth:`request_offered` (as the queue's ``observer``); the stream
    service / serve frontend call :meth:`linger_wait` when the batching
    policy delays a launch and :meth:`record_batch` after each executed
    batch; the :class:`~repro.shard.migration.MigrationController`
    calls :meth:`migration_step` when bin handoffs flip.  Worker-side
    execute timings ride the serving layer's existing mp reply queue
    and arrive on ``BatchResult.shard_exec_spans``.
    """

    def __init__(
        self, clock: Clock, sink: Optional[Union[str, Path]] = None
    ) -> None:
        self.clock = clock
        self.sink = Path(sink) if sink is not None else None
        self.events: List[dict] = []
        self.completed_spans: List[dict] = []
        self.counts = {"offered": 0, "admitted": 0, "rejected": 0, "blocked": 0}
        self._lanes: Dict[int, _Lane] = {}
        # Batch-formation waits, as merged monotonic (start, end) pairs.
        self._linger_starts: List[float] = []
        self._linger_ends: List[float] = []

    # ------------------------------------------------------------------
    # emission hooks
    # ------------------------------------------------------------------
    def request_offered(self, req, now: float, outcome: str) -> None:
        """Admission transition (``outcome`` is ``admitted``,
        ``rejected`` or ``blocked``; the queue reports ``blocked`` once
        per request, not once per re-offer)."""
        self.counts["offered"] += 1
        if outcome == "admitted":
            self.counts["admitted"] += 1
            lane = _Lane(req.arrival, now, req.tenant)
            lane.stages["admit"] = max(0.0, now - req.arrival)
            self._lanes[req.rid] = lane
        else:
            self.counts[outcome] += 1
        self._emit(
            {"ev": "offered", "t": now, "rid": req.rid,
             "tenant": req.tenant, "outcome": outcome}
        )

    def linger_wait(self, start: float, end: float) -> None:
        """The batching policy chose to wait ``[start, end)`` for a
        fuller batch; queued lanes' overlap with these intervals is the
        ``batch`` stage."""
        if end <= start:
            return
        if self._linger_ends and start <= self._linger_ends[-1]:
            # merge with the previous interval (contiguous waits)
            self._linger_ends[-1] = max(self._linger_ends[-1], end)
            return
        self._linger_starts.append(start)
        self._linger_ends.append(end)

    def record_batch(
        self, index: int, batch: Sequence, result, t_launch: float, t_end: float
    ) -> None:
        """Close the pre-launch span of every rider, attribute the
        batch's phase spans, and finalise completions.  ``result`` is
        the :class:`~repro.runtime.executor.BatchResult`; its
        ``exchange_span``/``migration_span`` carry the claim-commit and
        migration phases in the layer's clock unit."""
        total = max(0.0, t_end - t_launch)
        commit = min(max(0.0, getattr(result, "exchange_span", 0.0)), total)
        park_phase = min(
            max(0.0, getattr(result, "migration_span", 0.0)), total - commit
        )
        execute = total - commit - park_phase
        parked_rids = {r.rid for r in result.carried[: result.parked]}
        event: dict = {
            "ev": "batch", "t": t_launch, "batch": index,
            "size": len(batch), "completed": len(result.completed),
            "execute": execute, "commit": commit, "park": park_phase,
        }
        shard_exec = getattr(result, "shard_exec_spans", ())
        if shard_exec:
            event["shard_exec"] = [float(s) for s in shard_exec]
        self._emit(event)

        for req in batch:
            lane = self._lane(req)
            if lane.last_exit is None:
                span = max(0.0, t_launch - lane.enqueued)
                overlap = self._linger_overlap(lane.enqueued, t_launch)
                lane.stages["queue"] += span - overlap
                lane.stages["batch"] += overlap
                carried = False
            else:
                gap = max(0.0, t_launch - lane.last_exit)
                lane.stages["park" if lane.parked else "carry"] += gap
                carried = True
            lane.stages["execute"] += execute
            lane.stages["commit"] += commit
            lane.stages["park"] += park_phase
            self._emit(
                {"ev": "batched", "t": t_launch, "rid": req.rid,
                 "batch": index, "carried": carried}
            )
        for rid in getattr(result, "cross_committed", ()):
            self._emit({"ev": "committed", "t": t_end, "rid": rid, "batch": index})
        for req in result.completed:
            lane = self._lanes.pop(req.rid, None)
            if lane is None:
                continue
            record = {
                "ev": "completed", "t": t_end, "rid": req.rid,
                "tenant": lane.tenant,
                "latency": t_end - lane.arrival,
                "stages": dict(lane.stages),
            }
            self.completed_spans.append(record)
            self._emit(record)
        for req in result.carried:
            lane = self._lane(req)
            lane.last_exit = t_end
            lane.parked = req.rid in parked_rids
            self._emit(
                {"ev": "parked" if lane.parked else "filtered",
                 "t": t_end, "rid": req.rid, "batch": index}
            )

    def migration_step(self, report) -> None:
        """A migration step flipped bins (controller observer hook)."""
        self._emit(
            {"ev": "migration", "t": self.clock.now(),
             "bins": report.completed, "skipped": report.skipped,
             "words": report.words, "rtts": report.rtts}
        )

    # ------------------------------------------------------------------
    def _lane(self, req) -> _Lane:
        lane = self._lanes.get(req.rid)
        if lane is None:  # e.g. recorder attached after admission
            lane = _Lane(req.arrival, req.enqueued, req.tenant)
            self._lanes[req.rid] = lane
        return lane

    def _linger_overlap(self, start: float, end: float) -> float:
        """Total overlap of ``[start, end)`` with the linger intervals."""
        if end <= start or not self._linger_starts:
            return 0.0
        i = bisect_left(self._linger_ends, start)
        overlap = 0.0
        while i < len(self._linger_starts) and self._linger_starts[i] < end:
            overlap += min(end, self._linger_ends[i]) - max(
                start, self._linger_starts[i]
            )
            i += 1
        return overlap

    def _emit(self, event: dict) -> None:
        self.events.append(event)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def stage_breakdown(self) -> Dict[str, object]:
        """Per-stage latency decomposition over completed requests.

        ``stages[<stage>]`` carries total/mean/p50/p99 spans and the
        stage's share of total latency; ``sum_to_latency_max_err`` is
        the worst relative gap between a request's stage sum and its
        end-to-end latency (exact decomposition ⇒ ~float epsilon)."""
        done = self.completed_spans
        total_latency = sum(d["latency"] for d in done)
        out: Dict[str, object] = {
            "unit": self.clock.unit,
            "requests": len(done),
            "total_latency": total_latency,
            "sum_to_latency_max_err": self._max_decomposition_error(),
            "stages": {},
        }
        for stage in STAGES:
            values = [d["stages"][stage] for d in done]
            total = sum(values)
            out["stages"][stage] = {
                "total": total,
                "share": total / total_latency if total_latency else float("nan"),
                "mean": total / len(values) if values else float("nan"),
                "p50": percentile(values, 50),
                "p99": percentile(values, 99),
            }
        return out

    def _max_decomposition_error(self) -> float:
        err = 0.0
        for d in self.completed_spans:
            if d["latency"] > 0:
                gap = abs(sum(d["stages"].values()) - d["latency"])
                err = max(err, gap / d["latency"])
        return err

    def stage_table(self) -> str:
        """The decomposition as a table (milliseconds on a wall clock)."""
        bd = self.stage_breakdown()
        scale = 1e3 if self.clock.unit == "seconds" else 1.0
        unit = "ms" if self.clock.unit == "seconds" else self.clock.unit
        headers = ["stage", f"total ({unit})", "share%", f"p50 ({unit})", f"p99 ({unit})"]
        rows = []
        for stage in STAGES:
            cell = bd["stages"][stage]
            share = cell["share"]
            rows.append([
                stage,
                f"{scale * cell['total']:,.2f}",
                f"{100 * share:.1f}" if share == share else "—",
                f"{scale * cell['p50']:,.2f}" if cell["p50"] == cell["p50"] else "—",
                f"{scale * cell['p99']:,.2f}" if cell["p99"] == cell["p99"] else "—",
            ])
        return format_table(headers, rows)

    # ------------------------------------------------------------------
    # JSONL sink
    # ------------------------------------------------------------------
    def flush(self) -> Optional[Path]:
        """Write every event to the JSONL sink (one object per line,
        prefixed by a ``meta`` header naming the clock unit)."""
        if self.sink is None:
            return None
        self.sink.parent.mkdir(parents=True, exist_ok=True)
        with self.sink.open("w") as fh:
            fh.write(json.dumps(
                {"ev": "meta", "unit": self.clock.unit, "schema": 1}
            ) + "\n")
            for event in self.events:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        return self.sink


def load_events(path: Union[str, Path]) -> List[dict]:
    """Read a trace JSONL file back into event dicts (skipping blank
    lines; raises ``ValueError`` on malformed JSON with the line no)."""
    out: List[dict] = []
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from None
    return out
