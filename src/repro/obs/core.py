"""Clock-agnostic telemetry core shared by every metrics facade.

One observability spine (ISSUE 10): the percentile math, NaN-safe
formatting, ASCII table rendering, admission-ledger absorption and the
per-tenant cells + Jain fairness used to live copy-pasted across
``runtime/metrics.py``, ``serve/metrics.py``, ``runtime/qos.py`` and
``bench/reporting.py`` — which is how the PR 9 ``blocked_offers``/NaN
bugs had to be fixed twice.  They live here now, once:

* :class:`Clock` — a unit-tagged time source.  The stream runtime runs
  on *simulated cycles* (the service clock), the serving layer on
  *wall seconds* (a monotonic origin); everything in this module is
  agnostic to which, it only labels values with ``clock.unit``.
* :func:`percentile` — NaN-for-undefined percentiles (an empty run has
  no latency distribution; 0.0 would read as an infinitely fast
  service).
* :func:`fmt_value` / :func:`fmt_cell` / :func:`format_table` — the
  NaN-safe pretty-printers behind every summary, tenant and bench
  table.
* :func:`jain_index` / :func:`tenant_summary_cells` /
  :func:`tenant_fairness` — the per-tenant aggregates both facades
  report (re-exported by :mod:`repro.runtime.qos` for compatibility).
* :class:`MetricsBase` — the shared half of ``StreamMetrics`` and
  ``ServeMetrics``: completion ledger, latency percentiles, queue-stat
  absorption, tenant summaries/fairness and the tenant/summary table
  renderers, parameterised by each facade's units and float precision.

The one hard rule: this module imports nothing from the layers it
observes (only :mod:`math`/:mod:`numpy`), so every layer can import it
without cycles — and ``tools/check_obs_imports.py`` forbids fresh
percentile/format helpers anywhere else under ``repro/``.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "Clock",
    "percentile",
    "fmt_value",
    "fmt_cell",
    "format_table",
    "subsample",
    "jain_index",
    "tenant_summary_cells",
    "tenant_fairness",
    "MetricsBase",
]


class Clock:
    """A unit-tagged time source (simulated cycles or wall seconds).

    ``fn`` returns the current time in ``unit``; the constructors cover
    the repo's two time bases.  Telemetry never converts between units
    — it records whatever the owning layer's clock says and labels it.
    """

    def __init__(self, fn: Callable[[], float], unit: str) -> None:
        self.fn = fn
        self.unit = unit

    def now(self) -> float:
        return float(self.fn())

    @classmethod
    def simulated(cls, fn: Callable[[], float]) -> "Clock":
        """The stream runtime's simulated-cycle clock (``fn`` typically
        reads ``service.now``)."""
        return cls(fn, "cycles")

    @classmethod
    def wall(cls, origin: Optional[float] = None) -> "Clock":
        """Monotonic wall clock in seconds since ``origin`` (defaults
        to now) — the serving layer's time base."""
        t0 = time.perf_counter() if origin is None else origin
        return cls(lambda: time.perf_counter() - t0, "seconds")


def percentile(values: Sequence[float], q: float) -> float:
    """Percentile with the NaN-for-undefined convention: no samples
    means no distribution, so the result is ``nan`` (rendered ``—`` in
    tables and ``null`` in JSON), never a fake 0.0."""
    if not len(values):
        return float("nan")
    return float(np.percentile(np.asarray(values), q))


def fmt_value(v: object, precision: int = 2, dicts: bool = False) -> str:
    """NaN-safe scalar formatting for two-column summary tables.

    ``precision`` is the facade's float precision (the stream runtime
    prints cycles at 2 decimals, the serving layer milliseconds at 3);
    ``dicts`` additionally flattens one dict level to ``k=v`` pairs
    (the stream summary's ``lanes_by_kind`` row).
    """
    if isinstance(v, float):
        if np.isnan(v):
            return "—"  # undefined metric (e.g. no completions)
        return f"{v:,.{precision}f}"
    if dicts and isinstance(v, dict):
        return " ".join(f"{k}={fmt_value(n, precision, True)}" for k, n in v.items()) or "—"
    return str(v)


def fmt_cell(cell: object) -> str:
    """Bench-table cell formatting (thousands separators, NaN as ``—``,
    floats ≥ 1000 rounded to integers)."""
    if isinstance(cell, float):
        if math.isnan(cell):
            return "—"  # undefined metric (e.g. no completions)
        if cell >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.2f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def format_table(headers: Sequence[str], rows) -> str:
    """Right-aligned ASCII table."""
    srows = [[fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def subsample(records: Sequence, max_rows: Optional[int]) -> List:
    """Evenly subsample ``records`` down to ``max_rows`` (the table
    renderers' shared row cap)."""
    records = list(records)
    if max_rows is not None and len(records) > max_rows:
        idx = np.linspace(0, len(records) - 1, max_rows).astype(int)
        records = [records[i] for i in sorted(set(idx))]
    return records


# ----------------------------------------------------------------------
# per-tenant aggregates (re-exported by repro.runtime.qos)
# ----------------------------------------------------------------------
def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` over per-tenant values.

    1.0 means perfectly even, ``1/n`` means one tenant took everything.
    Non-finite entries are dropped; with no usable entries (or an
    all-zero allocation) the index is undefined and ``nan`` is returned,
    matching the metrics layer's NaN-for-undefined convention.
    """
    arr = np.asarray([v for v in values if math.isfinite(v)], dtype=np.float64)
    if arr.size == 0 or not (arr > 0).any() or (arr < 0).any():
        return float("nan")
    return float(arr.sum() ** 2 / (arr.size * (arr ** 2).sum()))


def tenant_summary_cells(
    tenant_latencies: Mapping[str, Sequence[float]],
    tenant_admission: Mapping[str, Mapping[str, int]],
    tenant_weights: Mapping[str, float],
    tenant_slos: Mapping[str, float],
) -> Dict[str, Dict[str, object]]:
    """Per-tenant metric cells shared by StreamMetrics and ServeMetrics.

    One cell per tenant name seen anywhere (completions or admission):
    completion count, latency percentiles (NaN with no completions —
    never a fake zero), SLO attainment when the tenant has a finite
    budget, the admission counters, and the configured weight.  Latency
    and SLO share whatever unit the caller recorded (cycles or
    seconds)."""
    out: Dict[str, Dict[str, object]] = {}
    for name in sorted(set(tenant_latencies) | set(tenant_admission)):
        lats = np.asarray(tenant_latencies.get(name, ()), dtype=np.float64)
        done = np.isfinite(lats)
        cell: Dict[str, object] = {
            "completed": int(done.sum()),
            "p50_latency": (
                float(np.percentile(lats[done], 50))
                if done.any()
                else float("nan")
            ),
            "p99_latency": (
                float(np.percentile(lats[done], 99))
                if done.any()
                else float("nan")
            ),
        }
        slo = tenant_slos.get(name)
        if slo is not None and math.isfinite(slo):
            cell["slo"] = float(slo)
            cell["slo_attainment"] = (
                float((lats[done] <= slo).mean()) if done.any() else 0.0
            )
        if name in tenant_weights:
            cell["weight"] = float(tenant_weights[name])
        cell.update(tenant_admission.get(name, {}))
        out[name] = cell
    return out


def tenant_fairness(
    cells: Mapping[str, Mapping[str, object]],
    tenant_weights: Mapping[str, float],
) -> float:
    """Jain's fairness index across the tenant cells.

    When every tenant has a finite SLO the per-tenant values are SLO
    attainment (a starved tenant contributes 0 and drags the index
    toward ``1/n``); without full SLO coverage it falls back to
    weight-normalised completed counts (throughput fairness)."""
    names = sorted(cells)
    if not names:
        return float("nan")
    if all("slo_attainment" in cells[n] for n in names):
        return jain_index([float(cells[n]["slo_attainment"]) for n in names])
    return jain_index(
        [
            float(cells[n].get("completed", 0))
            / float(tenant_weights.get(n, 1.0))
            for n in names
        ]
    )


# ----------------------------------------------------------------------
# the shared metrics half
# ----------------------------------------------------------------------
class MetricsBase:
    """Everything ``StreamMetrics`` and ``ServeMetrics`` have in common.

    Subclasses set three class attributes that parameterise rendering:
    ``_precision`` (float decimals in tables), ``_fmt_dicts`` (flatten
    dict rows in the summary table) and ``_tenant_unit_suffix`` (``""``
    for raw clock units, ``"_ms"`` for the serving layer's millisecond
    tenant cells).
    """

    _precision = 2
    _fmt_dicts = True
    _tenant_unit_suffix = ""
    _summary_table_skip = ("tenants",)

    def __init__(self) -> None:
        self.latencies: List[float] = []
        self.rejected = 0
        self.blocked_offers = 0
        self.blocked_requests = 0
        self.max_queue_depth = 0  # sampled at batch/exchange launch
        self.queue_max_depth = 0  # the queue's locked high-water mark
        # per-tenant accounting (empty on untenanted runs)
        self.tenant_latencies: Dict[str, List[float]] = {}
        self.tenant_admission: Dict[str, Dict[str, int]] = {}
        self.tenant_weights: Dict[str, float] = {}
        self.tenant_slos: Dict[str, float] = {}
        # optional lifecycle-span recorder (see repro.obs.events);
        # None means tracing is off and nothing else changes.
        self.trace_recorder = None

    @property
    def blocked(self) -> int:
        """Legacy alias for :attr:`blocked_offers`."""
        return self.blocked_offers

    # ------------------------------------------------------------------
    def record_completion(self, latency: float, tenant: str = "") -> None:
        self.latencies.append(latency)
        if tenant:
            self.tenant_latencies.setdefault(tenant, []).append(latency)

    def latency_percentile(self, q: float) -> float:
        """Latency percentile over completed requests, in the owning
        layer's clock unit (``nan`` with no completions)."""
        return percentile(self.latencies, q)

    @property
    def reconciled_max_depth(self) -> int:
        """The queue's locked high-water mark reconciled with the
        launch-time samples: every launch *drains* the queue first, so
        samples alone sit below the true peak."""
        return max(self.max_queue_depth, self.queue_max_depth)

    def absorb_queue(self, queue) -> None:
        """Copy a :class:`~repro.runtime.queue.BoundedQueue`'s admission
        ledger (global + per-tenant) and QoS configuration in — the one
        place the queue's counters become metrics fields."""
        stats = queue.stats
        self.rejected = stats.rejected
        self.blocked_offers = stats.blocked_offers
        self.blocked_requests = stats.blocked_requests
        self.queue_max_depth = stats.max_depth
        if queue.tenant_stats:
            self.tenant_admission = {
                name: ts.as_dict() for name, ts in queue.tenant_stats.items()
            }
        if queue.qos is not None:
            self.tenant_weights = queue.qos.weights()
            self.tenant_slos.update(queue.qos.slos())

    # ------------------------------------------------------------------
    # per-tenant aggregates
    # ------------------------------------------------------------------
    def tenant_names(self) -> List[str]:
        """Every tenant seen by the run (completions or admission)."""
        return sorted(set(self.tenant_latencies) | set(self.tenant_admission))

    def _tenant_cells(self) -> Dict[str, Dict[str, object]]:
        return tenant_summary_cells(
            self.tenant_latencies,
            self.tenant_admission,
            self.tenant_weights,
            self.tenant_slos,
        )

    def tenant_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant admission counters, latency percentiles and SLO
        attainment, keyed by tenant name (subclasses may rescale the
        latency cells to their display unit)."""
        return self._tenant_cells()

    def jain_fairness(self) -> float:
        """Jain's fairness index across tenants (see
        :func:`tenant_fairness` for the value definition: SLO attainment
        when every tenant has a budget, weight-normalised throughput
        otherwise)."""
        return tenant_fairness(self._tenant_cells(), self.tenant_weights)

    def tenant_table(self) -> str:
        """Per-tenant metrics rendered as a table (QoS runs)."""
        sfx = self._tenant_unit_suffix
        unit_hdr = sfx.lstrip("_")
        headers = [
            "tenant", "offered", "admitted", "rejected", "blocked",
            "completed", f"p50{unit_hdr}", f"p99{unit_hdr}",
            f"slo{sfx}" if sfx else "slo", "attain%",
        ]
        rows = []
        for name, cell in self.tenant_summary().items():
            slo = cell.get(f"slo{sfx}")
            attain = cell.get("slo_attainment")
            rows.append([
                name,
                cell.get("offered", "—"),
                cell.get("admitted", "—"),
                cell.get("rejected", "—"),
                cell.get("blocked_requests", "—"),
                cell.get("completed", 0),
                self._fmt(cell.get(f"p50_latency{sfx}", float("nan"))),
                self._fmt(cell.get(f"p99_latency{sfx}", float("nan"))),
                self._fmt(slo) if slo is not None else "—",
                f"{100 * attain:.1f}" if attain is not None else "—",
            ])
        return format_table(headers, rows)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def _fmt(self, v: object) -> str:
        return fmt_value(v, self._precision, self._fmt_dicts)

    def summary(self) -> Dict[str, object]:  # pragma: no cover - abstract
        raise NotImplementedError

    def summary_table(self) -> str:
        """Aggregate metrics rendered as a two-column table (nested
        per-tenant cells and the instruction mix render via their own
        tables instead of one unreadable row)."""
        rows = [
            [k, self._fmt(v)]
            for k, v in self.summary().items()
            if k not in self._summary_table_skip
        ]
        return format_table(["metric", "value"], rows)

    def _tenant_summary_keys(self, out: Dict[str, object]) -> None:
        """Append the tenant block to a summary dict when the run was
        tenant-tagged (shared tail of both facades' ``summary()``)."""
        if self.tenant_latencies or self.tenant_admission:
            out["jain_fairness"] = self.jain_fairness()
            out["tenants"] = self.tenant_summary()

    def _stage_summary_keys(self, out: Dict[str, object]) -> None:
        """Append the per-stage latency decomposition when a lifecycle
        trace recorder is attached (``--trace`` runs only — with
        tracing off the summary is bit-identical to pre-span builds)."""
        if self.trace_recorder is not None:
            out["stage_breakdown"] = self.trace_recorder.stage_breakdown()
