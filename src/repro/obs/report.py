"""Offline trace reports: render a ``--trace-out`` JSONL file.

``python -m repro trace <file>`` loads the lifecycle events a
:class:`~repro.obs.events.TraceRecorder` flushed and renders three
views over the completed requests:

* the per-stage latency decomposition (same table the live run
  prints), plus an ASCII histogram per stage;
* the per-tenant stage breakdown (which tenant spends its latency
  where);
* the top-k slowest requests with their individual stage spans — the
  "why was this one slow" view.

Everything here is pure post-processing of the JSONL: no recorder, no
run state, so traces can be inspected long after the run (or shipped
from another machine)."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..errors import ReproError
from .core import format_table, percentile
from .events import STAGES, load_events

#: Width of the histogram bars, in characters at full height.
_BAR_WIDTH = 40


class TraceReport:
    """Aggregated view over one trace file's events."""

    def __init__(self, events: Sequence[dict], source: str = "<events>"):
        self.source = source
        meta: Dict[str, object] = {}
        if events and events[0].get("ev") == "meta":
            meta = events[0]
            events = events[1:]
        self.unit = str(meta.get("unit", "units"))
        self.events = list(events)
        self.completed = [e for e in self.events if e.get("ev") == "completed"]
        self.counts: Dict[str, int] = {}
        for e in self.events:
            kind = str(e.get("ev", "?"))
            self.counts[kind] = self.counts.get(kind, 0) + 1

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "TraceReport":
        return cls(load_events(path), source=str(path))

    # ------------------------------------------------------------------
    @property
    def _scale(self) -> float:
        return 1e3 if self.unit == "seconds" else 1.0

    @property
    def _unit_label(self) -> str:
        return "ms" if self.unit == "seconds" else self.unit

    def _fmt(self, value: float) -> str:
        return f"{self._scale * value:,.2f}"

    # ------------------------------------------------------------------
    def header(self) -> str:
        parts = [f"trace: {self.source}", f"unit: {self._unit_label}"]
        order = ("offered", "batched", "completed", "filtered", "parked",
                 "committed", "batch", "migration")
        counted = [f"{k}={self.counts[k]}" for k in order if k in self.counts]
        counted += [
            f"{k}={v}" for k, v in sorted(self.counts.items())
            if k not in order
        ]
        parts.append("events: " + (", ".join(counted) if counted else "none"))
        return "\n".join(parts)

    def stage_table(self) -> str:
        """Per-stage decomposition over completed requests (the same
        shape the live ``--trace`` summary prints)."""
        done = self.completed
        total_latency = sum(e["latency"] for e in done)
        u = self._unit_label
        headers = ["stage", f"total ({u})", "share%", f"p50 ({u})", f"p99 ({u})"]
        rows = []
        for stage in STAGES:
            values = [e["stages"].get(stage, 0.0) for e in done]
            total = sum(values)
            share = total / total_latency if total_latency else float("nan")
            p50 = percentile(values, 50)
            p99 = percentile(values, 99)
            rows.append([
                stage,
                self._fmt(total),
                f"{100 * share:.1f}" if share == share else "—",
                self._fmt(p50) if p50 == p50 else "—",
                self._fmt(p99) if p99 == p99 else "—",
            ])
        return format_table(headers, rows)

    # ------------------------------------------------------------------
    def stage_histograms(self, bins: int = 8) -> str:
        """One ASCII histogram per stage with any nonzero span."""
        if bins <= 0:
            raise ReproError(f"histogram bins must be positive, got {bins}")
        sections: List[str] = []
        for stage in STAGES:
            values = [e["stages"].get(stage, 0.0) for e in self.completed]
            if not values or max(values) <= 0.0:
                continue
            sections.append(self._histogram(stage, values, bins))
        if not sections:
            return "(no nonzero stage spans)"
        return "\n\n".join(sections)

    def _histogram(self, stage: str, values: List[float], bins: int) -> str:
        lo, hi = min(values), max(values)
        if hi <= lo:  # all mass in one bin
            bins, width = 1, 1.0
        else:
            width = (hi - lo) / bins
        counts = [0] * bins
        for v in values:
            i = min(bins - 1, int((v - lo) / width)) if hi > lo else 0
            counts[i] += 1
        peak = max(counts)
        lines = [f"{stage} ({self._unit_label}):"]
        for i, n in enumerate(counts):
            left = lo + i * width
            right = lo + (i + 1) * width if hi > lo else hi
            bar = "#" * max(1 if n else 0, round(_BAR_WIDTH * n / peak))
            lines.append(
                f"  [{self._fmt(left):>10s}, {self._fmt(right):>10s})"
                f" {n:>6d} {bar}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def tenant_table(self) -> str:
        """Per-tenant stage totals: where each tenant's latency goes."""
        by_tenant: Dict[str, List[dict]] = {}
        for e in self.completed:
            by_tenant.setdefault(str(e.get("tenant", "")), []).append(e)
        u = self._unit_label
        headers = (["tenant", "done", f"p99 ({u})"]
                   + [f"{s} ({u})" for s in STAGES])
        rows = []
        for tenant in sorted(by_tenant):
            done = by_tenant[tenant]
            p99 = percentile([e["latency"] for e in done], 99)
            row = [tenant or "—", str(len(done)),
                   self._fmt(p99) if p99 == p99 else "—"]
            for stage in STAGES:
                row.append(
                    self._fmt(sum(e["stages"].get(stage, 0.0) for e in done))
                )
            rows.append(row)
        return format_table(headers, rows)

    # ------------------------------------------------------------------
    def slowest_table(self, top: int = 10) -> str:
        """The ``top`` highest-latency requests with their stage spans."""
        if top <= 0:
            raise ReproError(f"top-k must be positive, got {top}")
        ranked = sorted(
            self.completed, key=lambda e: -float(e["latency"])
        )[:top]
        u = self._unit_label
        headers = (["rid", "tenant", f"latency ({u})"]
                   + [f"{s} ({u})" for s in STAGES])
        rows = []
        for e in ranked:
            row = [str(e.get("rid", "?")), str(e.get("tenant", "")) or "—",
                   self._fmt(e["latency"])]
            for stage in STAGES:
                row.append(self._fmt(e["stages"].get(stage, 0.0)))
            rows.append(row)
        return format_table(headers, rows)

    # ------------------------------------------------------------------
    def render(self, top: int = 10, bins: int = 8) -> str:
        """The full report (what ``python -m repro trace`` prints)."""
        out = [self.header()]
        if not self.completed:
            out.append("no completed requests in this trace")
            return "\n\n".join(out)
        out.append("stage decomposition over "
                   f"{len(self.completed)} completed requests:\n"
                   + self.stage_table())
        out.append("stage histograms:\n\n" + self.stage_histograms(bins=bins))
        tenants = {str(e.get("tenant", "")) for e in self.completed}
        if tenants - {""}:
            out.append("per-tenant stage totals:\n" + self.tenant_table())
        out.append(f"top {min(top, len(self.completed))} slowest requests:\n"
                   + self.slowest_table(top=top))
        return "\n\n".join(out)


def render_trace_report(
    path: Union[str, Path], *, top: int = 10, bins: int = 8,
    source: Optional[str] = None,
) -> str:
    """Load ``path`` and render the full report string."""
    report = TraceReport.from_file(path)
    if source is not None:
        report.source = source
    return report.render(top=top, bins=bins)
