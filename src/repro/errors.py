"""Exception hierarchy for the FOL reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish machine-level faults (bad addresses,
register misuse) from algorithm-level contract violations (non-unique
labels, full hash tables).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class MachineError(ReproError):
    """Base class for simulated-machine faults."""


class MemoryFault(MachineError):
    """An address or address vector fell outside an allocated region."""


class AllocationError(MachineError):
    """The arena or memory could not satisfy an allocation request."""


class VectorLengthError(MachineError):
    """Operand vectors passed to a vector instruction have mismatched lengths."""


class LabelError(ReproError):
    """Labels supplied to FOL violate the uniqueness precondition."""


class DecompositionError(ReproError):
    """A produced decomposition violates the paper's output conditions.

    Raised only by the validators in :mod:`repro.core.decomposition`;
    a correct FOL implementation never triggers it.
    """


class DeadlockError(ReproError):
    """FOL* made no progress in a round (empty ``S_j``; see paper §3.3)."""


class AuditError(ReproError):
    """A runtime invariant audit failed.

    Raised by :mod:`repro.audit.invariants` when an observed machine
    state violates a guarantee the paper's correctness argument rests on
    (the ELS condition on conflicting scatter lanes, Lemma 2's
    one-winner-per-address property, or Theorems 3-6's decomposition
    conditions).  A correct machine and a correct FOL implementation
    never trigger it; the fuzz harness treats it as a found bug.
    """


class TableFullError(ReproError):
    """An open-addressing hash table ran out of probeable slots."""


class RewriteError(ReproError):
    """A tree/graph rewrite failed (e.g. phantom-node access in the
    deliberately unsafe forced-parallel rewriter)."""


class PhantomNodeError(RewriteError):
    """A rewrite step dereferenced a node that no longer exists.

    This reproduces the failure mode of Figure 5 in the paper: forced
    parallel rewriting of a shared node can leave a sibling rewrite
    holding a pointer into a structure that was already restructured.
    """
