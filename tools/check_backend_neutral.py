#!/usr/bin/env python
"""Lint: the serving layers must stay backend-neutral.

The backend refactor moved every direct use of the cycle-model VM
behind :class:`repro.backend.Backend`: specs emit FOL plans, commits
program the backend-supplied ops facade, and executors ask their
backend for a machine.  A stray ``from repro.machine.vm import ...``
in ``repro.engine``, ``repro.runtime`` or ``repro.shard`` silently
re-couples the serving layers to the simulator — code that would
import cleanly but break (or mis-measure) the moment a run selects
``--backend native``.

This script parses every Python file under ``src/repro/{engine,
runtime,shard}`` and fails on any import of ``repro.machine.vm`` —
absolute (``import repro.machine.vm``, ``from repro.machine.vm import
make_machine``, ``from repro.machine import vm``) or relative
(``from ..machine.vm import ...``, ``from ...machine import vm``).
The backend package itself and ``repro.machine`` are exempt by
construction (they are the two sides of the seam); kernel-level
libraries (``repro.core``, ``repro.hashing``, ...) legitimately target
the VM facade and are out of scope.  Lines carrying a
``# no-vm-lint`` pragma are skipped (for type-only or doc-tooling
imports).

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
#: The backend-neutral serving layers (everything above the seam).
CHECKED_DIRS = ("engine", "runtime", "shard", "serve")
PRAGMA = "# no-vm-lint"


def _is_vm_module(dotted: str) -> bool:
    """True for the vm module in absolute or package-relative spelling."""
    return dotted == "repro.machine.vm" or dotted.endswith("machine.vm") or (
        dotted == "machine.vm"
    )


def _violations(tree: ast.AST) -> list:
    """(lineno, description) pairs for every vm import in ``tree``."""
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_vm_module(alias.name):
                    out.append((node.lineno, f"import {alias.name}"))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            dots = "." * node.level
            if _is_vm_module(module):
                names = ", ".join(a.name for a in node.names)
                out.append((node.lineno, f"from {dots}{module} import {names}"))
            elif module.endswith("machine") or module == "machine":
                vm_names = [a.name for a in node.names if a.name == "vm"]
                if vm_names:
                    out.append((node.lineno, f"from {dots}{module} import vm"))
    return out


def check_file(path: Path) -> list:
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    findings = []
    for lineno, desc in _violations(tree):
        line = lines[lineno - 1] if lineno <= len(lines) else ""
        if PRAGMA in line:
            continue
        findings.append(
            f"{path.relative_to(REPO)}:{lineno}: {desc} — the serving "
            f"layers must go through repro.backend (resolve_backend / "
            f"Backend.make_machine), or mark the line {PRAGMA} if it is "
            f"not an execution dependency"
        )
    return findings


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv:
        print(f"usage: {Path(sys.argv[0]).name} (no arguments)", file=sys.stderr)
        return 2
    findings = []
    checked = 0
    for sub in CHECKED_DIRS:
        for path in sorted((SRC / sub).rglob("*.py")):
            checked += 1
            findings.extend(check_file(path))
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"\n{len(findings)} direct vm import(s) in the serving layers",
            file=sys.stderr,
        )
        return 1
    print(
        f"serving layers are backend-neutral "
        f"({checked} files under src/repro/{{{','.join(CHECKED_DIRS)}}})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
