#!/usr/bin/env python
"""Lint: no workload-kind string literals outside the registry.

The whole point of ``repro.engine`` is that each request kind is
declared in exactly one place — its spec module under
``src/repro/engine/kinds/`` — and every engine (stream executor, shard
router/worker/coordinator, oracles, fuzzer, CLI) dispatches through the
registry.  A stray ``if req.kind == "hash":`` anywhere else silently
re-introduces the per-kind branching this refactor removed, and the next
kind added would miss that code path.

This script parses every Python file under ``src/repro`` (excluding
``engine/kinds/``) and fails if any string constant equals a registered
kind name.  Excluded:

* docstrings (module/class/function) — prose may name kinds freely;
* lines carrying a ``# no-kind-lint`` pragma — for the handful of
  legitimate non-dispatch uses (arena labels, CLI defaults);
* comments (invisible to the AST anyway).

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
EXCLUDED_DIRS = {SRC / "engine" / "kinds"}
PRAGMA = "# no-kind-lint"


def registered_kinds() -> tuple:
    sys.path.insert(0, str(REPO / "src"))
    from repro.engine.spec import registered_kinds as kinds

    return kinds()


def docstring_constants(tree: ast.AST) -> set:
    """id()s of the Constant nodes that are docstrings."""
    out = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                out.add(id(body[0].value))
    return out


def check_file(path: Path, kinds: frozenset) -> list:
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    docstrings = docstring_constants(tree)
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Constant) or id(node) in docstrings:
            continue
        if not (isinstance(node.value, str) and node.value in kinds):
            continue
        line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        if PRAGMA in line:
            continue
        findings.append(
            f"{path.relative_to(REPO)}:{node.lineno}: "
            f"kind literal {node.value!r} outside engine/kinds/ "
            f"(dispatch through repro.engine.spec, or mark the line "
            f"{PRAGMA} if it is not a dispatch)"
        )
    return findings


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv:
        print(f"usage: {Path(sys.argv[0]).name} (no arguments)", file=sys.stderr)
        return 2
    kinds = frozenset(registered_kinds())
    findings = []
    for path in sorted(SRC.rglob("*.py")):
        if any(excl in path.parents for excl in EXCLUDED_DIRS):
            continue
        findings.extend(check_file(path, kinds))
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"\n{len(findings)} stray kind literal(s); registered kinds: "
            f"{', '.join(sorted(kinds))}",
            file=sys.stderr,
        )
        return 1
    print(f"no stray kind literals (checked against: {', '.join(sorted(kinds))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
