#!/usr/bin/env python
"""Lint: every ``BENCH_*.json`` shares one machine-readable envelope.

The repo's perf trajectory accumulates in ``BENCH_*.json`` files at the
repo root (one per bench, overwritten per run, uploaded by CI).  The
dashboards and regression diffs downstream only work if the files stay
mutually parseable, so this checker enforces the common shape every
bench writer (``repro.bench.reporting.write_json``) produces:

* the top level is a JSON object;
* ``"bench"`` is a non-empty string naming the bench;
* ``"config"`` is an object recording the parameters of the run;
* at least one further object-valued key holds a result series
  (``"saturation"``, ``"scaling"``, ``"workloads"``, ...);
* ``"meta"``, when present, is an object whose ``"schema"`` is an int
  (the envelope version this checker understands is 1);
* no bare ``NaN``/``Infinity`` tokens — undefined metrics must be
  written as ``null`` (non-JSON tokens break strict parsers).

``BENCH_migration.json`` additionally gets a bench-specific check: the
rate/latency ``frontier`` must cover every pacing strategy named in
``config.strategies`` plus the ``static`` baseline arm, the
``steady_state`` series must report ``cycles_per_request`` per arm and
the headline ``improvement_pct``, and ``reconfiguration`` must report a
``p99_spike_ratio`` per strategy — a partially-run sweep must fail CI,
not upload a plausible-looking file.

``BENCH_qos.json`` likewise: the ``hot_tenant`` series must carry both
the ``fifo`` and ``qos`` arms, each with a per-tenant cell (p99 +
admission counters) for every tenant named in ``config.tenants``, a
``jain_fairness`` value and ``worst_tenant_p99``, plus the headline
``improvement_pct``; the ``burst_sweep`` must cover every burst in
``config.bursts``.

``BENCH_serve.json`` (ISSUE 10): the ``trace_overhead`` series must
carry the ``off`` and ``on`` arms (each with ``p99_latency_ms``), the
headline ``overhead_pct`` against ``target_pct``, and the traced arm's
``stage_breakdown`` naming every lifecycle stage (admit / queue /
batch / execute / commit / park / carry) with ``total`` and ``share``
cells — the ``--trace`` cost claim must never upload half-measured.

Exit status: 0 clean, 1 findings, 2 usage error.

Usage::

    python tools/check_bench_schema.py [paths...]   # default: repo root
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List

REPO = Path(__file__).resolve().parent.parent
SCHEMA_VERSION = 1


def _reject_nonfinite(token: str):
    # json.load only calls parse_constant for NaN/Infinity/-Infinity —
    # legal for Python's encoder, fatal for strict JSON parsers.
    raise ValueError(f"non-finite JSON token {token!r} (write null instead)")


def check_file(path: Path) -> List[str]:
    """Return the envelope violations for one bench file."""
    problems: List[str] = []
    try:
        payload = json.loads(
            path.read_text(), parse_constant=_reject_nonfinite
        )
    except ValueError as exc:
        return [f"{path.name}: not parseable as strict JSON: {exc}"]

    if not isinstance(payload, dict):
        return [f"{path.name}: top level must be an object"]

    bench = payload.get("bench")
    if not isinstance(bench, str) or not bench:
        problems.append(f"{path.name}: 'bench' must be a non-empty string")
    config = payload.get("config")
    if not isinstance(config, dict):
        problems.append(f"{path.name}: 'config' must be an object")

    meta = payload.get("meta")
    if meta is not None:
        if not isinstance(meta, dict):
            problems.append(f"{path.name}: 'meta' must be an object")
        elif not isinstance(meta.get("schema"), int):
            problems.append(
                f"{path.name}: 'meta.schema' must be an int "
                f"(current version: {SCHEMA_VERSION})"
            )

    series = [
        k
        for k, v in payload.items()
        if k not in ("bench", "config", "meta") and isinstance(v, dict)
    ]
    if not series:
        problems.append(
            f"{path.name}: expected at least one object-valued result "
            f"series besides 'bench'/'config'/'meta'"
        )
    stray = [
        k
        for k, v in payload.items()
        if k not in ("bench", "config", "meta") and not isinstance(v, dict)
    ]
    for k in stray:
        problems.append(
            f"{path.name}: top-level key {k!r} is not an object — result "
            f"series must be objects so diffs stay keyed"
        )
    if payload.get("bench") == "migration":
        problems.extend(check_migration(path, payload))
    if payload.get("bench") == "qos":
        problems.extend(check_qos(path, payload))
    if payload.get("bench") == "serve":
        problems.extend(check_serve(path, payload))
    return problems


#: Lifecycle stages the traced arm's breakdown must cover (must match
#: ``repro.obs.events.STAGES``; duplicated here so the linter stays
#: import-free).
LIFECYCLE_STAGES = (
    "admit", "queue", "batch", "execute", "commit", "park", "carry"
)


def check_serve(path: Path, payload: dict) -> List[str]:
    """Bench-specific shape for ``BENCH_serve.json``: the ``--trace``
    overhead measurement must be complete (both arms + breakdown)."""
    problems: List[str] = []
    overhead = payload.get("trace_overhead")
    if not isinstance(overhead, dict):
        return [f"{path.name}: 'trace_overhead' series missing"]
    for arm in ("off", "on"):
        cell = overhead.get(arm)
        if not isinstance(cell, dict) or "p99_latency_ms" not in cell:
            problems.append(
                f"{path.name}: trace_overhead[{arm!r}] lacks p99_latency_ms"
            )
    for field in ("overhead_pct", "target_pct"):
        if not isinstance(overhead.get(field), (int, float)):
            problems.append(
                f"{path.name}: trace_overhead.{field} must be a number"
            )
    breakdown = overhead.get("stage_breakdown")
    if not isinstance(breakdown, dict):
        problems.append(
            f"{path.name}: trace_overhead.stage_breakdown missing"
        )
    else:
        stages = breakdown.get("stages")
        if not isinstance(stages, dict):
            problems.append(
                f"{path.name}: trace_overhead.stage_breakdown.stages missing"
            )
        else:
            for stage in LIFECYCLE_STAGES:
                cell = stages.get(stage)
                if not isinstance(cell, dict) or not {
                    "total", "share"
                } <= set(cell):
                    problems.append(
                        f"{path.name}: stage_breakdown lacks a "
                        f"total/share cell for stage {stage!r}"
                    )
    return problems


def check_migration(path: Path, payload: dict) -> List[str]:
    """Bench-specific shape for ``BENCH_migration.json``: the pacing
    sweep must be complete across every strategy the run configured."""
    problems: List[str] = []
    config = payload.get("config") or {}
    strategies = config.get("strategies")
    if not isinstance(strategies, list) or not strategies:
        return [
            f"{path.name}: config.strategies must be a non-empty list "
            f"of pacing strategies"
        ]
    arms = ["static"] + [str(s) for s in strategies]

    frontier = payload.get("frontier")
    if not isinstance(frontier, dict):
        problems.append(f"{path.name}: 'frontier' series missing")
    else:
        for arm in arms:
            points = frontier.get(arm)
            if not isinstance(points, list) or not points:
                problems.append(
                    f"{path.name}: frontier is missing arm {arm!r}"
                )
                continue
            for i, pt in enumerate(points):
                missing = [
                    f for f in ("offered_rate", "achieved_rate",
                                "p50_latency", "p99_latency")
                    if f not in pt
                ]
                if missing:
                    problems.append(
                        f"{path.name}: frontier[{arm!r}][{i}] lacks "
                        f"{missing}"
                    )

    steady = payload.get("steady_state")
    if not isinstance(steady, dict):
        problems.append(f"{path.name}: 'steady_state' series missing")
    else:
        for arm in arms:
            cell = steady.get(arm)
            if not isinstance(cell, dict) or "cycles_per_request" not in cell:
                problems.append(
                    f"{path.name}: steady_state[{arm!r}] lacks "
                    f"cycles_per_request"
                )
        if not isinstance(steady.get("improvement_pct"), (int, float)):
            problems.append(
                f"{path.name}: steady_state.improvement_pct must be a "
                f"number (the headline acceptance metric)"
            )

    reconf = payload.get("reconfiguration")
    if not isinstance(reconf, dict):
        problems.append(f"{path.name}: 'reconfiguration' series missing")
    else:
        for strategy in strategies:
            cell = reconf.get(str(strategy))
            if not isinstance(cell, dict) or "p99_spike_ratio" not in cell:
                problems.append(
                    f"{path.name}: reconfiguration[{strategy!r}] lacks "
                    f"p99_spike_ratio"
                )
    return problems


def check_qos(path: Path, payload: dict) -> List[str]:
    """Bench-specific shape for ``BENCH_qos.json``: both admission arms
    must be complete over every configured tenant and burst point."""
    problems: List[str] = []
    config = payload.get("config") or {}
    tenants = config.get("tenants")
    if not isinstance(tenants, dict) or not tenants:
        return [
            f"{path.name}: config.tenants must be a non-empty object "
            f"of tenant classes"
        ]

    hot = payload.get("hot_tenant")
    if not isinstance(hot, dict):
        problems.append(f"{path.name}: 'hot_tenant' series missing")
    else:
        for arm in ("fifo", "qos"):
            cell = hot.get(arm)
            if not isinstance(cell, dict):
                problems.append(
                    f"{path.name}: hot_tenant is missing arm {arm!r}"
                )
                continue
            for field in ("worst_tenant_p99", "jain_fairness"):
                if not isinstance(cell.get(field), (int, float)):
                    problems.append(
                        f"{path.name}: hot_tenant[{arm!r}].{field} must "
                        f"be a number"
                    )
            arm_tenants = cell.get("tenants")
            if not isinstance(arm_tenants, dict):
                problems.append(
                    f"{path.name}: hot_tenant[{arm!r}].tenants missing"
                )
                continue
            for name in tenants:
                tcell = arm_tenants.get(str(name))
                if not isinstance(tcell, dict):
                    problems.append(
                        f"{path.name}: hot_tenant[{arm!r}] lacks a cell "
                        f"for tenant {name!r}"
                    )
                    continue
                missing = [
                    f for f in ("p99_latency", "completed",
                                "offered", "admitted", "rejected")
                    if f not in tcell
                ]
                if missing:
                    problems.append(
                        f"{path.name}: hot_tenant[{arm!r}][{name!r}] "
                        f"lacks {missing}"
                    )
        if not isinstance(hot.get("improvement_pct"), (int, float)):
            problems.append(
                f"{path.name}: hot_tenant.improvement_pct must be a "
                f"number (the headline acceptance metric)"
            )

    sweep = payload.get("burst_sweep")
    bursts = config.get("bursts")
    if not isinstance(sweep, dict):
        problems.append(f"{path.name}: 'burst_sweep' series missing")
    elif isinstance(bursts, list):
        for burst in bursts:
            key = f"burst{burst:g}"
            cell = sweep.get(key)
            if not isinstance(cell, dict) or "worst_tenant_p99" not in cell:
                problems.append(
                    f"{path.name}: burst_sweep[{key!r}] lacks "
                    f"worst_tenant_p99"
                )
    return problems


def main(argv: List[str]) -> int:
    roots = [Path(a) for a in argv] or [REPO]
    files: List[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(sorted(root.glob("BENCH_*.json")))
        else:
            print(f"error: no such path: {root}", file=sys.stderr)
            return 2
    if not files:
        print("error: no BENCH_*.json files found", file=sys.stderr)
        return 2

    problems: List[str] = []
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print("bench schema violations:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"bench schema OK: {len(files)} file(s) share the envelope")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
