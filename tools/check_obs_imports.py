#!/usr/bin/env python
"""Lint: one observability spine — no fresh telemetry helpers outside
``repro.obs``.

ISSUE 10 collapsed the duplicated percentile math and table/number
formatting that had grown in ``runtime/metrics.py``, ``serve/
metrics.py``, ``runtime/qos.py`` and ``bench/reporting.py`` into the
single clock-agnostic core ``repro.obs.core``.  This script keeps it
collapsed: it parses every Python file under ``src/repro`` except
``src/repro/obs/`` and fails on

* any **attribute call** named ``percentile`` (e.g. ``np.percentile``)
  — quantiles come from :func:`repro.obs.core.percentile`, which is
  NaN-safe on empty inputs;
* any **function or method definition** whose name re-introduces a
  formatting/aggregation helper the spine owns: ``percentile``,
  ``_percentile``, ``fmt_value``, ``_fmt_value``, ``_fmt``,
  ``fmt_cell``, ``format_table``, ``jain_index``, ``tenant_fairness``,
  ``tenant_summary_cells``.

Importing those names *from* ``repro.obs`` is of course fine — that is
the whole point.  A line carrying ``# no-obs-lint`` is skipped for the
rare legitimate exception.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
EXCLUDED_DIRS = {SRC / "obs"}
PRAGMA = "# no-obs-lint"

#: Helper names the spine owns; defining one elsewhere is a finding.
RESERVED_DEFS = frozenset({
    "percentile",
    "_percentile",
    "fmt_value",
    "_fmt_value",
    "_fmt",
    "fmt_cell",
    "format_table",
    "jain_index",
    "tenant_fairness",
    "tenant_summary_cells",
})

#: Attribute calls that bypass the spine's NaN-safe wrappers.
FORBIDDEN_ATTR_CALLS = frozenset({"percentile", "nanpercentile", "quantile"})


def check_file(path: Path) -> list:
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    findings = []

    def line_has_pragma(lineno: int) -> bool:
        return lineno <= len(lines) and PRAGMA in lines[lineno - 1]

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in RESERVED_DEFS and not line_has_pragma(node.lineno):
                findings.append(
                    f"{path.relative_to(REPO)}:{node.lineno}: "
                    f"defines {node.name!r} outside repro/obs/ — import it "
                    f"from repro.obs.core instead (or mark the line "
                    f"{PRAGMA} if this is genuinely not telemetry)"
                )
        elif isinstance(node, ast.Call):
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr in FORBIDDEN_ATTR_CALLS
                and not line_has_pragma(node.lineno)
            ):
                findings.append(
                    f"{path.relative_to(REPO)}:{node.lineno}: "
                    f"calls .{fn.attr}() outside repro/obs/ — use "
                    f"repro.obs.core.percentile (NaN-safe on empty input)"
                )
    return findings


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv:
        print(f"usage: {Path(sys.argv[0]).name} (no arguments)", file=sys.stderr)
        return 2
    findings = []
    for path in sorted(SRC.rglob("*.py")):
        if any(excl in path.parents for excl in EXCLUDED_DIRS):
            continue
        findings.extend(check_file(path))
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"\n{len(findings)} telemetry helper(s) outside repro/obs/; "
            f"the observability spine owns: {', '.join(sorted(RESERVED_DEFS))}",
            file=sys.stderr,
        )
        return 1
    print("observability spine intact: no stray percentile/format helpers "
          "outside repro/obs/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
