#!/usr/bin/env python3
"""Reproduce Table 1: the two FOL-vectorized O(N) sorting algorithms.

Runs address-calculation sorting (Figures 11/12) and distribution
counting sort at the paper's sizes (2^6, 2^10, 2^14), verifying each
output against NumPy's sort and printing the cycle counts and
acceleration ratios next to the paper's reported values.

Also walks through the Figure 13 worked example ([38, 11, 42, 39],
keys in [0,100)) step by step.

Run:  python examples/sorting_table1.py [--quick]
"""

import argparse

import numpy as np

from repro.bench.figures import table1
from repro.bench.reporting import print_section
from repro.machine import CostModel, Memory, VectorMachine
from repro.mem import BumpAllocator
from repro.sorting import AddressCalcWorkspace, vector_address_calc_sort


def figure13_walkthrough() -> None:
    """The paper's worked example, on the real implementation."""
    data = np.array([38, 11, 42, 39], dtype=np.int64)
    vm = VectorMachine(Memory(256, cost_model=CostModel.free(), seed=0))
    ws = AddressCalcWorkspace(BumpAllocator(vm.mem), n_max=4)
    out = vector_address_calc_sort(vm, ws, data, vmax=100)
    print("Figure 13 walkthrough")
    print("  input :", data.tolist())
    n = data.size
    print("  spread: hash(x) = floor(2n*x/100) ->",
          ((2 * n * data) // 100).tolist())
    print("  output:", out.tolist())
    assert out.tolist() == [11, 38, 39, 42]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="skip N=2^14")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    figure13_walkthrough()

    sizes = (2**6, 2**10) if args.quick else (2**6, 2**10, 2**14)
    series = table1(sizes=sizes, seed=args.seed)
    print_section("Table 1 — O(N) sorting algorithms", series.render())


if __name__ == "__main__":
    main()
