#!/usr/bin/env python3
"""Reproduce Figure 14: multi-insertion into a binary search tree.

Pre-builds random trees of the paper's sizes Ni ∈ {8, 32, 128, 512,
2048}, enters up to 500 random keys by the FOL1-based vector algorithm
(§4.3) and by the sequential baseline, and prints the acceleration
ratios per (Ni, insert-count) point.

Run:  python examples/bst_fig14.py [--quick]
"""

import argparse

from repro.bench.figures import fig14
from repro.bench.reporting import print_section


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    if args.quick:
        ni, counts = (8, 128), (50, 200)
    else:
        ni, counts = (8, 32, 128, 512, 2048), (25, 50, 100, 200, 300, 400, 500)

    series = fig14(ni_values=ni, insert_counts=counts, seed=args.seed)
    print_section("Figure 14 — BST multi-insertion acceleration", series.render())

    print(
        "\nreading the series: bigger initial trees (Ni) spread the incoming\n"
        "keys across more subtrees, so fewer lanes fight over one NIL slot\n"
        "per wave; more inserted keys mean longer vectors.  Both push the\n"
        "ratio up, exactly the trend of the paper's Figure 14 (where the\n"
        "author cautions each point was a single trial)."
    )


if __name__ == "__main__":
    main()
