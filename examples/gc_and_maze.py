#!/usr/bin/env python3
"""The §5 related-work algorithms: vectorized copying GC and maze
routing, both built on the S1-only FOL specialisation.

* GC: builds a cons heap with sharing, a cycle and garbage; collects it
  wave-by-wave with overwrite-and-check copier election; verifies the
  reachable structure is isomorphic and garbage is reclaimed.
* Maze: routes corner-to-corner through a random grid with a vectorized
  Lee wavefront, then cross-checks the path length against sequential
  BFS.

Run:  python examples/gc_and_maze.py
"""

import numpy as np

from repro.apps import CopyingHeap, MazeGrid, check_path, scalar_route, vector_collect
from repro.bench.workloads import random_maze
from repro.lists.cells import encode_atom
from repro.machine import CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import NIL, BumpAllocator


def gc_demo() -> None:
    print("=== vectorized copying GC ===")
    vm = VectorMachine(Memory(65536, cost_model=CostModel.s810(), seed=1))
    heap = CopyingHeap(BumpAllocator(vm.mem), capacity=4096)

    shared = heap.cons(encode_atom(7), NIL)          # shared by two lists
    a = heap.cons(encode_atom(1), shared)
    b = heap.cons(encode_atom(2), shared)
    ring = heap.cons(encode_atom(3), NIL)            # a cycle
    heap.from_cells.poke_field(ring, "cdr", ring)
    for i in range(500):                              # garbage
        heap.cons(encode_atom(i), NIL)
    heap.add_root(a)
    heap.add_root(b)
    heap.add_root(ring)

    before = heap.structure_signature(heap.roots(), heap.from_cells)
    copied, waves = vector_collect(vm, heap)
    after = heap.structure_signature(heap.roots(), heap.to_cells)

    print(f"live cells copied : {copied} (of {heap.from_cells.allocated} allocated)")
    print(f"waves             : {waves}")
    print(f"structure intact  : {before == after}")
    print(f"simulated cycles  : {vm.counter.total:,.0f}")


def maze_demo() -> None:
    print("\n=== vectorized maze routing ===")
    grid = random_maze(np.random.default_rng(5), 24, 32, wall_density=0.2)
    src, dst = (0, 0), (23, 31)

    vvm = VectorMachine(Memory(8192, cost_model=CostModel.s810(), seed=2))
    maze_v = MazeGrid(BumpAllocator(vvm.mem), grid)
    from repro.apps import vector_route
    path_v = vector_route(vvm, maze_v, src, dst)

    svm = VectorMachine(Memory(8192, cost_model=CostModel.s810(), seed=2))
    maze_s = MazeGrid(BumpAllocator(svm.mem), grid)
    path_s = scalar_route(ScalarProcessor(svm.mem), maze_s, src, dst)

    if path_v is None:
        print("target unreachable (both agree:", path_s is None, ")")
        return
    check_path(maze_v, path_v, src, dst)
    print(f"path length       : {len(path_v)} (scalar BFS: {len(path_s)})")
    accel = svm.counter.total / vvm.counter.total
    print(f"simulated cycles  : vector {vvm.counter.total:,.0f}, "
          f"scalar {svm.counter.total:,.0f}  (accel {accel:.2f}x)")


if __name__ == "__main__":
    gc_demo()
    maze_demo()
