#!/usr/bin/env python3
"""Reproduce Figures 9 and 10: multiple hashing into an empty table.

Sweeps the load factor for the paper's two table sizes (521 and 4099),
runs the sequential baseline and the vectorized overwrite-and-check
algorithm (Figure 8) on identical key sets, and prints the CPU-time and
acceleration-ratio series the paper plots.

Run:  python examples/hashing_load_factor.py [--quick]
"""

import argparse

from repro.bench.figures import LOAD_FACTORS, fig9_10
from repro.bench.reporting import print_section


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer load factors, smaller table only")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    if args.quick:
        sizes, lfs = (521,), (0.2, 0.5, 0.9)
    else:
        sizes, lfs = (521, 4099), LOAD_FACTORS

    series = fig9_10(table_sizes=sizes, load_factors=lfs, seed=args.seed)
    print_section("Figures 9 & 10 — multiple hashing vs load factor", series.render())

    print(
        "\nreading the curves: acceleration climbs while longer key vectors\n"
        "amortise the vector start-up, peaks mid-load, then falls as\n"
        "collisions force more (and shorter) overwrite-and-check rounds —\n"
        "the paper reports peaks of 5.2 (N=521) and 12.3 (N=4099) at 0.5."
    )


if __name__ == "__main__":
    main()
