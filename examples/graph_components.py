#!/usr/bin/env python3
"""Graph connected components with FOL — the paper's §6 future work.

Builds a random graph, finds its connected components two ways — the
FOL-elected parallel union (pointer jumping + overwrite-and-check merge
election) and a sequential union-find — and cross-checks both against
networkx.

Run:  python examples/graph_components.py
"""

import networkx as nx
import numpy as np

from repro.graphs import ParentForest, scalar_components, vector_components
from repro.machine import CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import BumpAllocator


def main() -> None:
    n_nodes, n_edges = 2000, 3000
    rng = np.random.default_rng(7)
    u = rng.integers(0, n_nodes, size=n_edges)
    v = rng.integers(0, n_nodes, size=n_edges)

    # oracle
    g = nx.Graph()
    g.add_nodes_from(range(n_nodes))
    g.add_edges_from(zip(u.tolist(), v.tolist()))
    expected = nx.number_connected_components(g)

    # vectorized
    vvm = VectorMachine(Memory(2 * n_nodes + 64, cost_model=CostModel.s810(), seed=1))
    vf = ParentForest(BumpAllocator(vvm.mem), n_nodes)
    forest_edges = vector_components(vvm, vf, u, v)

    # sequential
    svm = Memory(2 * n_nodes + 64, cost_model=CostModel.s810(), seed=1)
    sf = ParentForest(BumpAllocator(svm), n_nodes)
    scalar_components(ScalarProcessor(svm), sf, u, v)

    assert vf.component_count() == sf.component_count() == expected
    print(f"graph: {n_nodes} nodes, {n_edges} edges")
    print(f"components: {expected} (networkx agrees)")
    print(f"spanning forest edges elected by FOL: {forest_edges.size} "
          f"(= nodes - components = {n_nodes - expected})")
    accel = svm.counter.total / vvm.counter.total
    print(f"cycles: scalar {svm.counter.total:,.0f}, vector "
          f"{vvm.counter.total:,.0f}  (accel {accel:.2f}x)")

    print(
        "\nwhere FOL sits: many edges may re-parent the same root in one\n"
        "wave; an overwrite-and-check round elects one merge per root and\n"
        "the losers simply retry against the updated forest — the same\n"
        "losers-reread pattern as the paper's §5 GC citation."
    )


if __name__ == "__main__":
    main()
