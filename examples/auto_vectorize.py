#!/usr/bin/env python3
"""The vectorizing transformation in action.

The paper presents FOL as something a *vectorizing transformation*
inserts when a loop's stores may alias.  This example writes three tiny
loops in the library's loop IR, shows how the classifier sorts them into
the paper's Figure 2 taxonomy, and runs each both sequentially and
vectorized to show the results agree exactly.

Run:  python examples/auto_vectorize.py
"""

import numpy as np

from repro.compiler import (
    Loop,
    Store,
    add,
    classify,
    const,
    inp,
    lane,
    load,
    run_sequential,
    run_vectorized,
    sub,
)
from repro.machine import CostModel, Memory, ScalarProcessor, VectorMachine


def twin_machines(seed=0):
    cm = CostModel.s810()
    vm = VectorMachine(Memory(8192, cost_model=cm, seed=seed))
    sm = Memory(8192, cost_model=cm, seed=seed)
    return vm, ScalarProcessor(sm)


def show(title, loop, n, inputs, regions, probe_range, work_offset=None):
    plan = classify(loop)
    print(f"\n--- {title}")
    print(f"    classification: {plan.kind}  ({'; '.join(plan.notes)})")
    vm, sp = twin_machines()
    run_vectorized(vm, loop, n, inputs, regions, work_offset=work_offset)
    run_sequential(sp, loop, n, inputs, regions)
    base, cnt = probe_range
    v = vm.mem.peek_range(base, cnt)
    s = sp.mem.peek_range(base, cnt)
    assert np.array_equal(v, s), "vectorized result diverged from sequential!"
    print(f"    results agree: {v.tolist()}")
    accel = sp.counter.total / vm.counter.total
    print(f"    cycles: scalar {sp.counter.total:,.0f}, vector "
          f"{vm.counter.total:,.0f}  (accel {accel:.2f}x)")


def main() -> None:
    n = 16

    # 1. Figure 2a — independent stores (array reversal).
    reversal = Loop(body=[
        Store("out", sub(const(n - 1), lane()), load("src", lane()))
    ])
    vm, sp = twin_machines()
    for i in range(n):
        vm.mem.poke(300 + i, i * i)
        sp.mem.poke(300 + i, i * i)
    # (seed the source region in both machines, then reuse show()'s logic
    # manually so the poke stays)
    plan = classify(reversal)
    print(f"--- array reversal\n    classification: {plan.kind}")
    run_vectorized(vm, reversal, n, {}, {"out": 100, "src": 300})
    run_sequential(sp, reversal, n, {}, {"out": 100, "src": 300})
    assert np.array_equal(vm.mem.peek_range(100, n), sp.mem.peek_range(100, n))
    print(f"    results agree: {vm.mem.peek_range(100, n).tolist()}")

    # 2. SHARED store with duplicate targets — the transformation inserts
    # *ordered* FOL1 (footnote 7) so last-write-wins is preserved exactly.
    # 512 lanes over 256 targets: sharing is rare, the vector unit wins.
    rng = np.random.default_rng(0)
    big_n = 512
    p = rng.integers(0, 256, size=big_n).astype(np.int64)
    x = np.arange(1000, 1000 + big_n, dtype=np.int64)
    scatter = Loop(body=[Store("out", inp("p"), inp("x"))], inputs=("p", "x"))
    show("permutation store with duplicates (512 lanes)", scatter, big_n,
         {"p": p, "x": x}, {"out": 100}, (100, 6), work_offset=4000)

    # 3. RMW histogram — the canonical shared-update loop of the paper.
    k = rng.integers(0, 64, size=big_n).astype(np.int64)
    hist = Loop(
        body=[Store("h", inp("k"), add(load("h", inp("k")), const(1)))],
        inputs=("k",),
    )
    show("histogram, 512 keys into 64 bins", hist, big_n,
         {"k": k}, {"h": 100}, (100, 8), work_offset=4000)


if __name__ == "__main__":
    main()
