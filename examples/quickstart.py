#!/usr/bin/env python3
"""Quickstart: the Filtering-Overwritten-Label method in five minutes.

Demonstrates the core idea of Kanada's paper on a tiny example you can
trace by hand:

1. build a simulated vector machine,
2. decompose an index vector with shared (duplicated) addresses into
   parallel-processable sets with FOL1,
3. check the paper's theorems on the result,
4. use FOL inside a real application — multiple hashing with chaining.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BumpAllocator, fol1, make_machine
from repro.core.theorems import check_all, fol1_element_work, multiplicity_histogram
from repro.hashing import ChainedHashTable, vector_chained_insert


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A machine: memory + vector unit + cycle ledger.
    # ------------------------------------------------------------------
    vm = make_machine(mem_size=4096, seed=42)

    # ------------------------------------------------------------------
    # 2. An index vector with sharing: address 100 appears three times,
    #    address 200 twice — think "three pointers to the same cons
    #    cell".  Updating all five targets in one vector step would
    #    let lanes race; FOL splits them into safe waves.
    # ------------------------------------------------------------------
    v = np.array([100, 200, 100, 300, 100, 200], dtype=np.int64)
    print("index vector:", v)
    print("multiplicity histogram:", multiplicity_histogram(v))

    dec = fol1(vm, v)
    print(f"\nFOL1 produced M = {dec.m} parallel-processable sets:")
    for j, s in enumerate(dec.sets):
        print(f"  S{j + 1}: positions {s.tolist()} -> addresses {v[s].tolist()}")

    # ------------------------------------------------------------------
    # 3. The paper's guarantees, checked executable-y:
    #    termination, disjoint decomposition, parallel-processability,
    #    monotone cardinalities, minimality (Theorems 1-5).
    # ------------------------------------------------------------------
    check_all(dec)
    print("\nall theorem checks passed")
    print("total vector elements processed:", fol1_element_work(dec))
    print(f"simulated cycles so far: {vm.counter.total:,.0f}")

    # ------------------------------------------------------------------
    # 4. FOL in anger: enter 1000 keys (with duplicates) into a chained
    #    hash table entirely by vector operations (Figure 7).
    # ------------------------------------------------------------------
    vm2 = make_machine(mem_size=32_768, seed=7)
    table = ChainedHashTable(BumpAllocator(vm2.mem), size=127, capacity=1000)
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 5000, size=1000)

    rounds = vector_chained_insert(vm2, table, keys)
    stored = np.sort(table.stored_keys())
    assert np.array_equal(stored, np.sort(keys))
    print(f"\nmultiple hashing: entered {keys.size} keys in {rounds} FOL rounds")
    print(f"busiest chain length: {max(len(c) for c in table.all_chains())}")
    print(f"simulated cycles: {vm2.counter.total:,.0f}")
    print("\ncycle breakdown:")
    print(vm2.counter.report())


if __name__ == "__main__":
    main()
