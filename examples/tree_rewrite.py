#!/usr/bin/env python3
"""The Section 2 problem and the Section 3.3 cure, live.

Builds the paper's a*(b*(c*d)) operation tree and left-linearises it by
the associative law X*(Y*Z) -> (X*Y)*Z three ways:

* sequentially (the baseline),
* "forced" parallel rewriting with no conflict filtering — the strawman
  of Figure 5, which corrupts the tree because the two redexes share
  node n3,
* FOL*-filtered parallel rewriting (L = 2), which is safe.

Run:  python examples/tree_rewrite.py
"""

import numpy as np

from repro.errors import PhantomNodeError
from repro.machine import CostModel, Memory, ScalarProcessor, VectorMachine
from repro.mem import BumpAllocator
from repro.trees import (
    OpTreeArena,
    fol_star_rewrite_all,
    forced_rewrite_all,
    sequential_rewrite_all,
)


def fresh(seed: int = 0):
    vm = VectorMachine(Memory(8192, cost_model=CostModel.free(), seed=seed))
    return vm, OpTreeArena(BumpAllocator(vm.mem), capacity=256)


def show(arena, root, label):
    try:
        arena.check_tree(root)
        leaves = arena.leaves_inorder(root)
        linear = arena.is_left_linear(root)
        print(f"  {label}: leaves={leaves} left-linear={linear}")
        return leaves
    except PhantomNodeError as exc:
        print(f"  {label}: CORRUPTED — {exc}")
        return None


def main() -> None:
    values = [1, 2, 3, 4]  # a*(b*(c*d))

    print("sequential rewriting (baseline):")
    vm, arena = fresh()
    root = arena.right_comb(values)
    n = sequential_rewrite_all(ScalarProcessor(vm.mem), arena, root)
    show(arena, root, f"after {n} rewrites")

    print("\nforced parallel rewriting (the §2 strawman) over 8 seeds:")
    corrupt = 0
    for seed in range(8):
        vm, arena = fresh(seed)
        root = arena.right_comb(values)
        forced_rewrite_all(vm, arena, root)
        leaves = show(arena, root, f"seed {seed}")
        if leaves != values:
            corrupt += 1
    print(f"  -> corrupted in {corrupt}/8 lane orders "
          "(any nonzero count proves unsafety)")

    print("\nFOL*-filtered parallel rewriting (§3.3):")
    vm, arena = fresh()
    root = arena.right_comb(values)
    rewrites, waves = fol_star_rewrite_all(vm, arena, root)
    show(arena, root, f"after {rewrites} rewrites in {waves} waves")

    print("\nbigger comb (24 leaves), where waves matter:")
    vals = list(range(1, 25))
    vm, arena = fresh()
    root = arena.right_comb(vals)
    rewrites, waves = fol_star_rewrite_all(vm, arena, root)
    assert arena.leaves_inorder(root) == vals
    print(f"  {rewrites} rewrites across {waves} waves; leaf order preserved")


if __name__ == "__main__":
    main()
