"""Tests for the plain-text reporting helpers."""

from repro.bench.reporting import banner, format_table, sparkline


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 12345]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "12,345" in lines[3]

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159], [1234.5]])
        assert "3.14" in text
        assert "1,234" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_series_ends_high(self):
        s = sparkline([0, 1, 2, 3, 4])
        assert s[0] == " "
        assert s[-1] == "@"

    def test_constant_series(self):
        s = sparkline([5, 5, 5])
        assert len(s) == 3

    def test_length_matches_input(self):
        assert len(sparkline(list(range(17)))) == 17


class TestBanner:
    def test_contains_title(self):
        assert "hello" in banner("hello")
