"""Tests for the vectorizing transformation layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (
    INDEPENDENT,
    READ_ONLY_SHARED,
    SHARED_FOL1,
    SHARED_FOL_STAR,
    CompileError,
    Let,
    Loop,
    Store,
    add,
    affine,
    classify,
    const,
    inp,
    lane,
    load,
    mod,
    mul,
    run_sequential,
    run_vectorized,
    sub,
    var,
)
from repro.compiler.ast import Affine, BinOp, Var, let_env_affine
from repro.machine import CostModel, Memory, ScalarProcessor, VectorMachine


def machines(size=2048, seed=0):
    vm = VectorMachine(Memory(size, cost_model=CostModel.free(), seed=seed))
    sm = Memory(size, cost_model=CostModel.free(), seed=seed)
    return vm, ScalarProcessor(sm)


def run_both(loop, n, inputs, regions, size=2048, seed=0, work_offset=None,
             policy="arbitrary"):
    """Run scalar and vector executors on twin machines; return both
    memories for comparison plus the plan."""
    vm, sp = machines(size, seed)
    plan = run_vectorized(vm, loop, n, inputs, regions,
                          work_offset=work_offset, policy=policy)
    run_sequential(sp, loop, n, inputs, regions)
    return vm.mem, sp.mem, plan


# ----------------------------------------------------------------------
# affine analysis
# ----------------------------------------------------------------------
class TestAffine:
    def test_const(self):
        assert affine(const(7)) == Affine(7, 0)

    def test_lane(self):
        assert affine(lane()) == Affine(0, 1)

    def test_linear_combination(self):
        e = add(const(10), mul(const(3), lane()))
        assert affine(e) == Affine(10, 3)

    def test_subtraction_cancels_stride(self):
        e = sub(lane(), lane())
        assert affine(e) == Affine(0, 0)
        assert not affine(e).lane_distinct

    def test_input_is_data_dependent(self):
        assert affine(inp("k")) is None

    def test_mod_is_data_dependent(self):
        assert affine(mod(lane(), const(8))) is None

    def test_lane_times_lane_rejected(self):
        assert affine(mul(lane(), lane())) is None

    def test_let_propagation(self):
        body = [Let("x", mul(const(2), lane())),
                Store("r", var("x"), const(1))]
        env = let_env_affine(body)
        assert env["x"] == Affine(0, 2)


# ----------------------------------------------------------------------
# loop validation
# ----------------------------------------------------------------------
class TestLoopValidation:
    def test_undeclared_input_rejected(self):
        with pytest.raises(CompileError):
            Loop(body=[Store("r", lane(), inp("k"))], inputs=())

    def test_unbound_var_rejected(self):
        with pytest.raises(CompileError):
            Loop(body=[Store("r", var("x"), const(1))])

    def test_bad_operator_rejected(self):
        with pytest.raises(CompileError):
            BinOp("^", const(1), const(2))


# ----------------------------------------------------------------------
# classification (Figure 2)
# ----------------------------------------------------------------------
class TestClassify:
    def test_affine_store_is_independent(self):
        loop = Loop(body=[Store("out", lane(), const(5))])
        assert classify(loop).kind == INDEPENDENT

    def test_reversal_is_independent(self):
        loop = Loop(body=[
            Store("out", sub(const(99), lane()), load("src", lane()))
        ])
        assert classify(loop).kind == INDEPENDENT

    def test_shared_read_is_read_only(self):
        loop = Loop(
            body=[Store("out", lane(), load("tbl", inp("k")))],
            inputs=("k",),
        )
        assert classify(loop).kind == READ_ONLY_SHARED

    def test_data_store_is_fol1(self):
        loop = Loop(
            body=[Store("out", inp("p"), inp("x"))],
            inputs=("p", "x"),
        )
        plan = classify(loop)
        assert plan.kind == SHARED_FOL1

    def test_two_data_stores_need_commutative(self):
        body = [Store("a", inp("p"), const(1)), Store("b", inp("q"), const(2))]
        with pytest.raises(CompileError):
            classify(Loop(body=body, inputs=("p", "q")))
        plan = classify(Loop(body=body, inputs=("p", "q"), commutative=True))
        assert plan.kind == SHARED_FOL_STAR

    def test_zero_stride_store_is_shared(self):
        """Every lane storing to one fixed cell is a shared update."""
        loop = Loop(body=[Store("r", const(3), lane())])
        assert classify(loop).kind == SHARED_FOL1

    def test_load_through_stored_region_requires_rmw_form(self):
        loop = Loop(
            body=[Store("r", inp("p"), load("r", inp("q")))],
            inputs=("p", "q"),
        )
        with pytest.raises(CompileError):
            classify(loop)

    def test_rmw_form_accepted(self):
        loop = Loop(
            body=[Store("r", inp("k"), add(load("r", inp("k")), const(1)))],
            inputs=("k",),
        )
        assert classify(loop).kind == SHARED_FOL1

    def test_load_in_store_address_rejected(self):
        loop = Loop(body=[Store("r", load("idx", lane()), const(1))])
        with pytest.raises(CompileError):
            classify(loop)


# ----------------------------------------------------------------------
# end-to-end scalar/vector equivalence
# ----------------------------------------------------------------------
class TestIndependentExecution:
    def test_fill(self):
        loop = Loop(body=[Store("out", lane(), const(9))])
        vmem, smem, plan = run_both(loop, 16, {}, {"out": 100})
        assert plan.kind == INDEPENDENT
        assert np.array_equal(vmem.peek_range(100, 16), smem.peek_range(100, 16))

    def test_reversal(self):
        n = 20
        loop = Loop(body=[
            Store("out", sub(const(n - 1), lane()), load("src", lane()))
        ])
        vm, sp = machines()
        for i in range(n):
            vm.mem.poke(300 + i, i * i)
            sp.mem.poke(300 + i, i * i)
        run_vectorized(vm, loop, n, {}, {"out": 100, "src": 300})
        run_sequential(sp, loop, n, {}, {"out": 100, "src": 300})
        assert np.array_equal(vm.mem.peek_range(100, n), sp.mem.peek_range(100, n))
        assert vm.mem.peek(100) == (n - 1) ** 2


class TestFol1Execution:
    def test_permutation_store_last_wins(self):
        """Duplicate targets: sequential semantics = last write wins;
        the ordered-FOL1 plan must reproduce it exactly."""
        p = np.array([3, 1, 3, 0, 3], dtype=np.int64)
        x = np.array([10, 20, 30, 40, 50], dtype=np.int64)
        loop = Loop(body=[Store("out", inp("p"), inp("x"))], inputs=("p", "x"))
        vmem, smem, plan = run_both(
            loop, 5, {"p": p, "x": x}, {"out": 100}, work_offset=800
        )
        assert plan.kind == SHARED_FOL1
        assert np.array_equal(vmem.peek_range(100, 4), smem.peek_range(100, 4))
        assert vmem.peek(103) == 50  # the *last* store to cell 3

    def test_histogram_rmw(self):
        k = np.array([2, 5, 2, 2, 0, 5], dtype=np.int64)
        loop = Loop(
            body=[Store("h", inp("k"), add(load("h", inp("k")), const(1)))],
            inputs=("k",),
        )
        vmem, smem, plan = run_both(loop, 6, {"k": k}, {"h": 100}, work_offset=800)
        assert plan.kind == SHARED_FOL1
        hist = vmem.peek_range(100, 8)
        assert hist[2] == 3 and hist[5] == 2 and hist[0] == 1
        assert np.array_equal(hist, smem.peek_range(100, 8))

    def test_guarded_store(self):
        """Guards: only even lanes store."""
        p = np.array([1, 1, 1, 1], dtype=np.int64)
        loop = Loop(
            body=[
                Let("even", sub(const(1), mod(lane(), const(2)))),
                Store("out", inp("p"), lane(), guard=var("even")),
            ],
            inputs=("p",),
        )
        vmem, smem, plan = run_both(loop, 4, {"p": p}, {"out": 100}, work_offset=800)
        assert vmem.peek(101) == smem.peek(101) == 2  # last even lane

    def test_missing_work_offset_rejected(self):
        loop = Loop(body=[Store("out", inp("p"), const(1))], inputs=("p",))
        vm, _ = machines()
        with pytest.raises(CompileError):
            run_vectorized(vm, loop, 2, {"p": np.array([0, 0])}, {"out": 100})


class TestFolStarExecution:
    def test_two_store_commutative_loop(self):
        """Mark both endpoints of each edge (order-free)."""
        u = np.array([0, 1, 0, 2], dtype=np.int64)
        v = np.array([3, 3, 1, 0], dtype=np.int64)
        loop = Loop(
            body=[
                Store("m", inp("u"), const(1)),
                Store("m", inp("v"), const(1)),
            ],
            inputs=("u", "v"),
            commutative=True,
        )
        vmem, smem, plan = run_both(
            loop, 4, {"u": u, "v": v}, {"m": 100}, work_offset=800
        )
        assert plan.kind == SHARED_FOL_STAR
        assert np.array_equal(vmem.peek_range(100, 4), smem.peek_range(100, 4))

    def test_internally_duplicated_tuple_isolated(self):
        """A lane whose two stores hit the same cell (u == v) must still
        execute both in statement order."""
        u = np.array([2, 2], dtype=np.int64)
        v = np.array([2, 3], dtype=np.int64)
        loop = Loop(
            body=[
                Store("m", inp("u"), const(7)),
                Store("m", inp("v"), const(9)),
            ],
            inputs=("u", "v"),
            commutative=True,
        )
        vm, sp = machines()
        run_vectorized(vm, loop, 2, {"u": u, "v": v}, {"m": 100}, work_offset=800)
        # lane 1's second store is unshared: always 9
        assert vm.mem.peek(103) == 9
        # cell 2 is written by both lanes; the loop is commutative, so
        # either lane may finish last — but within a lane the statement
        # order held, so the value is one of the *final* per-lane writes
        # (9 from lane 0's second store, or 7 from lane 1's first),
        # never a stale intermediate from a broken interleaving.
        assert vm.mem.peek(102) in (7, 9)


class TestRunArgChecks:
    def test_missing_input(self):
        loop = Loop(body=[Store("o", lane(), inp("x"))], inputs=("x",))
        vm, _ = machines()
        with pytest.raises(CompileError):
            run_vectorized(vm, loop, 4, {}, {"o": 100})

    def test_short_input(self):
        loop = Loop(body=[Store("o", lane(), inp("x"))], inputs=("x",))
        vm, _ = machines()
        with pytest.raises(CompileError):
            run_vectorized(vm, loop, 4, {"x": np.array([1])}, {"o": 100})

    def test_n_zero_noop(self):
        loop = Loop(body=[Store("o", lane(), const(1))])
        vm, _ = machines()
        plan = run_vectorized(vm, loop, 0, {}, {"o": 100})
        assert plan.kind == INDEPENDENT


@settings(max_examples=40, deadline=None)
@given(
    p=st.lists(st.integers(0, 15), min_size=1, max_size=40),
    x=st.data(),
    seed=st.integers(0, 5),
)
def test_scatter_loop_matches_sequential(p, x, seed):
    """Property: the FOL1 plan reproduces sequential last-write-wins
    semantics for arbitrary duplicate patterns."""
    n = len(p)
    xs = x.draw(st.lists(st.integers(0, 999), min_size=n, max_size=n))
    loop = Loop(body=[Store("out", inp("p"), inp("x"))], inputs=("p", "x"))
    vmem, smem, _ = run_both(
        loop, n,
        {"p": np.asarray(p, dtype=np.int64), "x": np.asarray(xs, dtype=np.int64)},
        {"out": 100}, seed=seed, work_offset=800,
    )
    assert np.array_equal(vmem.peek_range(100, 16), smem.peek_range(100, 16))


@settings(max_examples=40, deadline=None)
@given(
    k=st.lists(st.integers(0, 9), min_size=0, max_size=50),
    seed=st.integers(0, 5),
)
def test_histogram_matches_sequential(k, seed):
    n = len(k)
    loop = Loop(
        body=[Store("h", inp("k"), add(load("h", inp("k")), const(1)))],
        inputs=("k",),
    )
    vmem, smem, _ = run_both(
        loop, n, {"k": np.asarray(k, dtype=np.int64)}, {"h": 100},
        seed=seed, work_offset=800,
    )
    assert np.array_equal(vmem.peek_range(100, 10), smem.peek_range(100, 10))
    expected = np.bincount(np.asarray(k, dtype=np.int64), minlength=10) if n else np.zeros(10)
    assert np.array_equal(vmem.peek_range(100, 10), expected)
