"""Unit tests for the scalar-unit facade used by all baselines."""

import pytest

from repro.machine import CostModel, Memory, ScalarProcessor


@pytest.fixture
def charged_sp() -> ScalarProcessor:
    cm = CostModel(
        scalar_alu=3.0, scalar_mem=10.0, scalar_mem_seq=2.0, scalar_branch=5.0
    )
    return ScalarProcessor(Memory(128, cost_model=cm))


class TestMemoryOps:
    def test_load_store(self, charged_sp):
        charged_sp.store(4, 77)
        assert charged_sp.load(4) == 77
        assert charged_sp.counter.scalar_cycles == 20.0  # two mem ops

    def test_seq_ops_cheaper(self, charged_sp):
        charged_sp.seq_store(4, 1)
        charged_sp.seq_load(4)
        assert charged_sp.counter.scalar_cycles == 4.0  # two seq ops


class TestRegisterOps:
    def test_alu_count(self, charged_sp):
        charged_sp.alu(3)
        assert charged_sp.counter.scalar_cycles == 9.0

    def test_alu_zero_is_free(self, charged_sp):
        charged_sp.alu(0)
        assert charged_sp.counter.scalar_cycles == 0.0

    def test_branch(self, charged_sp):
        charged_sp.branch(2)
        assert charged_sp.counter.scalar_cycles == 10.0

    def test_loop_iter_is_alu_plus_branch(self, charged_sp):
        charged_sp.loop_iter()
        assert charged_sp.counter.scalar_cycles == 8.0


class TestSugar:
    def test_add(self, charged_sp):
        assert charged_sp.add(2, 3) == 5
        assert charged_sp.counter.scalar_cycles == 3.0

    def test_compare(self, charged_sp):
        assert charged_sp.compare(4, 4)
        assert not charged_sp.compare(4, 5)

    def test_less_equal(self, charged_sp):
        assert charged_sp.less_equal(3, 3)
        assert not charged_sp.less_equal(4, 3)

    def test_hash_mod(self, charged_sp):
        assert charged_sp.hash_mod(353, 100) == 53
        assert charged_sp.counter.scalar_cycles == 3.0


class TestFillArray:
    def test_fills_and_charges_per_element(self, charged_sp):
        charged_sp.fill_array(10, 5, -1)
        assert all(charged_sp.mem.peek(10 + i) == -1 for i in range(5))
        # (seq mem + alu) per element
        assert charged_sp.counter.scalar_cycles == 5 * (2.0 + 3.0)
